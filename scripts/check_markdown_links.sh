#!/usr/bin/env bash
# Checks that every relative Markdown link in the repo's documentation
# resolves to an existing file or directory.  External (http/https/mailto)
# links and pure in-page anchors are skipped; a `path#anchor` link is
# checked for the path part only, and a titled link `[t](path "title")`
# (or 'title') for the path before the title.
#
# Usage: scripts/check_markdown_links.sh [file.md ...]
#        (defaults to every tracked/visible .md outside build dirs)
#        scripts/check_markdown_links.sh --self-test
#        (runs the checker against generated fixtures: titled links and
#         anchors must pass, a broken target must fail — the docs CI job
#         invokes this before the real check)
set -euo pipefail

self_test() {
    local tmp
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    : > "$tmp/target.txt"
    cat > "$tmp/good.md" <<'EOF'
[plain](target.txt) and [titled](target.txt "a title") inline.
[single-quoted title](target.txt 'another title')
[anchored](target.txt#section) [titled anchor](target.txt#sec "t")
[external](https://example.com "titled external") [in-page](#anchor)
EOF
    cat > "$tmp/bad.md" <<'EOF'
[broken](missing.txt "the title must not hide the miss")
EOF
    if ! "$0" "$tmp/good.md" > /dev/null; then
        echo "SELF-TEST FAIL: titled/anchored links to an existing file were rejected"
        exit 1
    fi
    if "$0" "$tmp/bad.md" > /dev/null 2>&1; then
        echo "SELF-TEST FAIL: a titled link to a missing file was accepted"
        exit 1
    fi
    echo "self-test passed (titled links resolved, broken titled link caught)"
    exit 0
}

[[ ${1:-} == --self-test ]] && self_test

cd "$(dirname "$0")/.."

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
    # ISSUE.md is per-PR task metadata (it quotes link syntax literally),
    # not documentation — skip it by default.
    while IFS= read -r f; do files+=("$f"); done < <(
        find . -name '*.md' -not -path './build*' -not -path './.git/*' \
             -not -name 'ISSUE.md' | sort)
fi

failures=0
for file in "${files[@]}"; do
    dir=$(dirname "$file")
    # Inline links [text](target); tolerate several per line.
    while IFS= read -r target; do
        # Strip an optional link title: `path "title"` / `path 'title'`.
        if [[ $target =~ ^(.*[^[:space:]])[[:space:]]+(\"[^\"]*\"|\'[^\']*\')$ ]]; then
            target=${BASH_REMATCH[1]}
        fi
        case "$target" in
            http://*|https://*|mailto:*|'#'*) continue ;;
        esac
        path=${target%%#*}
        [[ -z "$path" ]] && continue
        if [[ ! -e "$dir/$path" ]]; then
            echo "BROKEN: $file -> $target"
            failures=$((failures + 1))
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//')
done

if [[ $failures -gt 0 ]]; then
    echo "$failures broken link(s)"
    exit 1
fi
echo "all markdown links resolve (${#files[@]} files checked)"
