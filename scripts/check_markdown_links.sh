#!/usr/bin/env bash
# Checks that every relative Markdown link in the repo's documentation
# resolves to an existing file or directory.  External (http/https/mailto)
# links and pure in-page anchors are skipped; a `path#anchor` link is
# checked for the path part only.
#
# Usage: scripts/check_markdown_links.sh [file.md ...]
#        (defaults to every tracked/visible .md outside build dirs)
set -euo pipefail

cd "$(dirname "$0")/.."

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
    while IFS= read -r f; do files+=("$f"); done < <(
        find . -name '*.md' -not -path './build*' -not -path './.git/*' | sort)
fi

failures=0
for file in "${files[@]}"; do
    dir=$(dirname "$file")
    # Inline links [text](target); tolerate several per line.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|'#'*) continue ;;
        esac
        path=${target%%#*}
        [[ -z "$path" ]] && continue
        if [[ ! -e "$dir/$path" ]]; then
            echo "BROKEN: $file -> $target"
            failures=$((failures + 1))
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//')
done

if [[ $failures -gt 0 ]]; then
    echo "$failures broken link(s)"
    exit 1
fi
echo "all markdown links resolve (${#files[@]} files checked)"
