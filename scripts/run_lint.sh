#!/usr/bin/env bash
# Single entry point for the static correctness layer.  Runs, in order:
#   1. ppsc_lint --self-test          (the lint's own fixture corpus)
#   2. ppsc_lint over the tree        (determinism/race rules R1–R6)
#   3. cppcheck over the same tree       (errors fail; warnings advisory)
#   4. clang-tidy over compile_commands.json (curated .clang-tidy profile)
#
# Usage:
#   scripts/run_lint.sh [--build-dir DIR] [--require-clang-tidy]
#                       [--require-cppcheck] [--tidy-jobs N]
#
# cppcheck and clang-tidy are optional locally (the dev container ships
# only g++); when a binary is absent that pass is skipped with a notice.
# CI passes --require-clang-tidy / --require-cppcheck so a missing tool is
# a hard failure there, never a silent green.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build"
require_tidy=0
require_cppcheck=0
tidy_jobs="$(nproc 2>/dev/null || echo 2)"

while [[ $# -gt 0 ]]; do
    case "$1" in
        --build-dir)           build_dir="$2"; shift 2 ;;
        --require-clang-tidy)  require_tidy=1; shift ;;
        --require-cppcheck)    require_cppcheck=1; shift ;;
        --tidy-jobs)           tidy_jobs="$2"; shift 2 ;;
        *) echo "run_lint.sh: unknown argument '$1'" >&2; exit 2 ;;
    esac
done

cd "${repo_root}"

# --- 1+2. ppsc_lint ---------------------------------------------------------
lint_bin="${build_dir}/ppsc_lint"
if [[ ! -x "${lint_bin}" ]]; then
    echo "== building ppsc_lint (not found in ${build_dir}) =="
    if [[ ! -f "${build_dir}/CMakeCache.txt" ]]; then
        cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release \
            -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    fi
    cmake --build "${build_dir}" --target ppsc_lint -j >/dev/null
fi

echo "== ppsc_lint --self-test =="
"${lint_bin}" --self-test

echo "== ppsc_lint over src/ examples/ tools/ =="
"${lint_bin}" "${repo_root}/src" "${repo_root}/examples" \
    "${repo_root}/tools/ppsc_lint/ppsc_lint.cpp"

# --- 3. cppcheck ------------------------------------------------------------
# A second, independent C++ static analyzer: different engine, different
# blind spots than clang-tidy.  Definite errors (null deref, OOB, UB) fail
# the run via --error-exitcode; warning/style output is printed as advisory
# context only.  Inline suppressions use `// cppcheck-suppress <id>` with a
# reason, same audit-trail discipline as ppsc-lint allow().
if command -v cppcheck >/dev/null 2>&1; then
    # Same file set as the ppsc_lint tree pass: the lint fixtures are
    # deliberately pathological and stay out of scope.
    cppcheck_paths=("${repo_root}/src" "${repo_root}/examples"
        "${repo_root}/tools/ppsc_lint/ppsc_lint.cpp")
    cppcheck_common=(--std=c++20 --language=c++ --inline-suppr --quiet
        --suppress=missingIncludeSystem -I "${repo_root}/src")
    echo "== cppcheck (errors are blocking) =="
    cppcheck "${cppcheck_common[@]}" --error-exitcode=1 "${cppcheck_paths[@]}"
    echo "== cppcheck --enable=warning,portability (advisory) =="
    cppcheck "${cppcheck_common[@]}" --enable=warning,portability \
        "${cppcheck_paths[@]}" || \
        echo "== cppcheck advisory findings above (non-blocking) =="
else
    if [[ "${require_cppcheck}" -eq 1 ]]; then
        echo "run_lint.sh: cppcheck required (--require-cppcheck) but not installed" >&2
        exit 1
    fi
    echo "== cppcheck not installed; skipping cppcheck pass (install cppcheck to run it) =="
fi

# --- 4. clang-tidy ----------------------------------------------------------
if ! command -v clang-tidy >/dev/null 2>&1; then
    if [[ "${require_tidy}" -eq 1 ]]; then
        echo "run_lint.sh: clang-tidy required (--require-clang-tidy) but not installed" >&2
        exit 1
    fi
    echo "== clang-tidy not installed; skipping tidy pass (install clang-tidy to run it) =="
    exit 0
fi

compdb="${build_dir}/compile_commands.json"
if [[ ! -f "${compdb}" ]]; then
    echo "== regenerating ${compdb} =="
    cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Tidy every first-party translation unit that appears in the compilation
# database (tests are included deliberately: races in test scaffolding have
# burned us before).  GTest/benchmark system headers are excluded by the
# HeaderFilterRegex in .clang-tidy.
mapfile -t tidy_files < <(
    python3 - "${compdb}" "${repo_root}" <<'PY'
import json, sys
compdb, root = sys.argv[1], sys.argv[2]
seen = set()
for entry in json.load(open(compdb)):
    f = entry["file"]
    if not f.startswith(root):
        continue
    rel = f[len(root):].lstrip("/")
    if rel.startswith(("src/", "tools/", "examples/", "tests/")):
        seen.add(f)
print("\n".join(sorted(seen)))
PY
)

echo "== clang-tidy over ${#tidy_files[@]} translation units (jobs=${tidy_jobs}) =="
run_tidy="$(command -v run-clang-tidy || true)"
if [[ -n "${run_tidy}" ]]; then
    "${run_tidy}" -quiet -p "${build_dir}" -j "${tidy_jobs}" "${tidy_files[@]}"
else
    printf '%s\n' "${tidy_files[@]}" | xargs -P "${tidy_jobs}" -n 1 \
        clang-tidy -quiet -p "${build_dir}"
fi

echo "== lint clean =="
