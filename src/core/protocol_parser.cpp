#include "core/protocol_parser.hpp"

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace ppsc {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
    throw std::invalid_argument("protocol parse error, line " + std::to_string(line) + ": " +
                                message);
}

std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string token;
    while (is >> token) {
        if (token.front() == '#') break;  // comment until end of line
        tokens.push_back(token);
    }
    return tokens;
}

}  // namespace

Protocol parse_protocol(std::string_view text, std::vector<ParseWarning>* warnings) {
    ProtocolBuilder b;
    std::vector<std::string> names;  // ProtocolBuilder has no name lookup pre-build
    auto lookup = [&](const std::string& name, std::size_t line_no) -> StateId {
        for (std::size_t q = 0; q < names.size(); ++q) {
            if (names[q] == name) return static_cast<StateId>(q);
        }
        fail(line_no, "unknown state '" + name + "'");
    };

    std::istringstream input{std::string(text)};
    std::string line;
    std::size_t line_number = 0;
    bool any_input = false;
    // Canonical pre-pair -> [(canonical post-pair, defining line)...], for
    // the duplicate/conflict detection on `trans`/`trans+` lines.
    std::unordered_map<std::uint64_t, std::vector<std::pair<std::uint64_t, std::size_t>>>
        seen_rules;
    while (std::getline(input, line)) {
        ++line_number;
        const std::vector<std::string> tokens = tokenize(line);
        if (tokens.empty()) continue;
        const std::string& keyword = tokens[0];
        if (keyword == "state") {
            if (tokens.size() != 3) fail(line_number, "expected: state <name> <0|1>");
            if (tokens[2] != "0" && tokens[2] != "1") fail(line_number, "output must be 0 or 1");
            try {
                b.add_state(tokens[1], tokens[2] == "1" ? 1 : 0);
            } catch (const std::invalid_argument& e) {
                fail(line_number, e.what());
            }
            names.push_back(tokens[1]);
        } else if (keyword == "input") {
            if (tokens.size() != 4 || tokens[2] != "->")
                fail(line_number, "expected: input <var> -> <state>");
            try {
                b.set_input(tokens[1], lookup(tokens[3], line_number));
            } catch (const std::invalid_argument& e) {
                fail(line_number, e.what());
            }
            any_input = true;
        } else if (keyword == "leaders") {
            if (tokens.size() != 3) fail(line_number, "expected: leaders <state> <count>");
            AgentCount count = 0;
            try {
                // Full-token parse: "12x" must be rejected, not read as 12
                // (found by ppsc-lint R5 — stoll alone accepts any prefix).
                std::size_t used = 0;
                // ppsc-lint: allow(R5) full-token check directly below; a typed fail() on any violation
                count = std::stoll(tokens[2], &used);
                if (used != tokens[2].size()) fail(line_number, "count must be an integer");
            } catch (const std::invalid_argument&) {
                fail(line_number, "count must be an integer");
            } catch (const std::out_of_range&) {
                fail(line_number, "count out of range");
            }
            try {
                b.add_leaders(lookup(tokens[1], line_number), count);
            } catch (const std::invalid_argument& e) {
                fail(line_number, e.what());
            }
        } else if (keyword == "trans" || keyword == "trans+") {
            if (tokens.size() != 6 || tokens[3] != "->")
                fail(line_number, "expected: " + keyword + " <p> <q> -> <p'> <q'>");
            StateId p = lookup(tokens[1], line_number);
            StateId q = lookup(tokens[2], line_number);
            StateId p2 = lookup(tokens[4], line_number);
            StateId q2 = lookup(tokens[5], line_number);
            // `trans` defines a pre-pair; `trans+` explicitly adds a further
            // (nondeterministic) rule to an already-defined pre-pair.  A
            // plain `trans` re-targeting a defined pair is overwhelmingly a
            // typo, not intent — a typed error.  Canonicalise both sides
            // exactly as ProtocolBuilder does before comparing.
            if (p > q) std::swap(p, q);
            if (p2 > q2) std::swap(p2, q2);
            const std::uint64_t pre_key = (static_cast<std::uint64_t>(
                                               static_cast<std::uint32_t>(p))
                                           << 32) |
                                          static_cast<std::uint32_t>(q);
            const std::uint64_t post_key = (static_cast<std::uint64_t>(
                                                static_cast<std::uint32_t>(p2))
                                            << 32) |
                                           static_cast<std::uint32_t>(q2);
            const std::string pair_text = "{" + names[static_cast<std::size_t>(p)] + ", " +
                                          names[static_cast<std::size_t>(q)] + "}";
            auto& defined = seen_rules[pre_key];
            if (keyword == "trans+" && defined.empty())
                fail(line_number, "trans+ extends pair " + pair_text +
                                      ", which has no prior rule (use trans)");
            const std::size_t first_line = defined.empty() ? line_number : defined[0].second;
            bool identical_dup = false;
            for (const auto& [earlier_post, earlier_line] : defined) {
                if (earlier_post == post_key) {
                    if (warnings != nullptr)
                        warnings->push_back(
                            {line_number, "duplicate rule for pair " + pair_text +
                                              " (identical to line " +
                                              std::to_string(earlier_line) + ")"});
                    identical_dup = true;
                    break;
                }
            }
            if (!identical_dup && keyword == "trans" && !defined.empty())
                throw DuplicateRuleError(
                    line_number, first_line,
                    "protocol parse error, line " + std::to_string(line_number) +
                        ": conflicting redefinition of pair " + pair_text +
                        " (first defined at line " + std::to_string(first_line) +
                        "; use trans+ to add a nondeterministic rule)");
            if (!identical_dup) defined.emplace_back(post_key, line_number);
            b.add_transition(p, q, p2, q2);
        } else {
            fail(line_number, "unknown keyword '" + keyword + "'");
        }
    }
    if (!any_input) fail(line_number, "no input declaration");
    try {
        return std::move(b).build();
    } catch (const std::invalid_argument& e) {
        fail(line_number, e.what());
    }
}

std::string format_protocol(const Protocol& protocol) {
    std::ostringstream os;
    for (std::size_t q = 0; q < protocol.num_states(); ++q)
        os << "state " << protocol.state_name(static_cast<StateId>(q)) << ' '
           << protocol.output(static_cast<StateId>(q)) << '\n';
    const auto vars = protocol.input_variables();
    for (std::size_t v = 0; v < vars.size(); ++v)
        os << "input " << vars[v] << " -> " << protocol.state_name(protocol.input_state(v))
           << '\n';
    for (std::size_t q = 0; q < protocol.num_states(); ++q) {
        const AgentCount count = protocol.leaders()[static_cast<StateId>(q)];
        if (count > 0)
            os << "leaders " << protocol.state_name(static_cast<StateId>(q)) << ' ' << count
               << '\n';
    }
    // First rule of a pre-pair is `trans`; further rules (nondeterministic
    // protocols) are `trans+`, which is what keeps the serialisation
    // parseable under the parser's conflicting-redefinition check.
    std::unordered_set<std::uint64_t> emitted_pairs;
    for (const Transition& t : protocol.transitions()) {
        const std::uint64_t pre_key =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.pre1)) << 32) |
            static_cast<std::uint32_t>(t.pre2);
        const bool first = emitted_pairs.insert(pre_key).second;
        os << (first ? "trans " : "trans+ ") << protocol.state_name(t.pre1) << ' '
           << protocol.state_name(t.pre2) << " -> " << protocol.state_name(t.post1) << ' '
           << protocol.state_name(t.post2) << '\n';
    }
    return os.str();
}

}  // namespace ppsc
