#include "core/config.hpp"

#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace ppsc {

std::uint64_t Config::next_version() noexcept {
    static std::atomic<std::uint64_t> next_block{0};
    thread_local std::uint64_t stamp = 0;
    if ((stamp & 0xffffffffull) == 0)
        stamp = next_block.fetch_add(1, std::memory_order_relaxed) << 32;
    return ++stamp;
}

Config Config::from_counts(std::vector<AgentCount> counts) {
    AgentCount total = 0;
    for (const AgentCount c : counts) {
        if (c < 0) throw std::invalid_argument("Config::from_counts: negative count");
        total += c;
    }
    Config config(counts.size());
    config.counts_ = std::move(counts);
    config.total_ = total;
    config.version_ = next_version();
    return config;
}

Config Config::single(std::size_t num_states, StateId state, AgentCount count) {
    Config config(num_states);
    config.set(state, count);
    return config;
}

void Config::set(StateId state, AgentCount count) {
    if (count < 0) throw std::invalid_argument("Config::set: negative count");
    AgentCount& slot = counts_.at(static_cast<std::size_t>(state));
    total_ += count - slot;
    slot = count;
    version_ = next_version();
}

void Config::add(StateId state, AgentCount delta) {
    AgentCount& slot = counts_.at(static_cast<std::size_t>(state));
    if (slot + delta < 0) throw std::invalid_argument("Config::add: count would go negative");
    slot += delta;
    total_ += delta;
    version_ = next_version();
}

std::vector<StateId> Config::support() const {
    std::vector<StateId> states;
    for (std::size_t q = 0; q < counts_.size(); ++q) {
        if (counts_[q] > 0) states.push_back(static_cast<StateId>(q));
    }
    return states;
}

bool Config::is_saturated(AgentCount j) const noexcept {
    for (const AgentCount c : counts_) {
        if (c < j) return false;
    }
    return true;
}

bool Config::leq(const Config& rhs) const noexcept {
    if (counts_.size() != rhs.counts_.size()) return false;
    for (std::size_t q = 0; q < counts_.size(); ++q) {
        if (counts_[q] > rhs.counts_[q]) return false;
    }
    return true;
}

Config& Config::operator+=(const Config& rhs) {
    if (counts_.size() != rhs.counts_.size())
        throw std::invalid_argument("Config::operator+=: dimension mismatch");
    for (std::size_t q = 0; q < counts_.size(); ++q) counts_[q] += rhs.counts_[q];
    total_ += rhs.total_;
    version_ = next_version();
    return *this;
}

Config& Config::operator-=(const Config& rhs) {
    if (counts_.size() != rhs.counts_.size())
        throw std::invalid_argument("Config::operator-=: dimension mismatch");
    for (std::size_t q = 0; q < counts_.size(); ++q) {
        if (counts_[q] < rhs.counts_[q])
            throw std::invalid_argument("Config::operator-=: count would go negative");
    }
    for (std::size_t q = 0; q < counts_.size(); ++q) counts_[q] -= rhs.counts_[q];
    total_ -= rhs.total_;
    version_ = next_version();
    return *this;
}

Config& Config::operator*=(AgentCount factor) {
    if (factor < 0) throw std::invalid_argument("Config::operator*=: negative factor");
    for (auto& c : counts_) c *= factor;
    total_ *= factor;
    version_ = next_version();
    return *this;
}

std::string Config::to_string(std::span<const std::string> names) const {
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (std::size_t q = 0; q < counts_.size(); ++q) {
        if (counts_[q] == 0) continue;
        if (!first) os << ", ";
        first = false;
        if (counts_[q] != 1) os << counts_[q] << "·";
        if (q < names.size())
            os << names[q];
        else
            os << 'q' << q;
    }
    os << '}';
    return os.str();
}

}  // namespace ppsc
