#include "core/predicate.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "support/check.hpp"

namespace ppsc {

struct Predicate::Node {
    enum class Kind { kThreshold, kModulo, kNot, kAnd, kOr };

    Kind kind;
    std::vector<std::int64_t> coeffs;  // atoms only
    std::int64_t constant = 0;         // threshold bound / modulo remainder
    std::int64_t modulus = 0;          // modulo atoms only
    std::shared_ptr<const Node> left;
    std::shared_ptr<const Node> right;
};

Predicate Predicate::threshold(std::vector<std::int64_t> coeffs, std::int64_t constant) {
    auto node = std::make_shared<Node>();
    node->kind = Node::Kind::kThreshold;
    node->coeffs = std::move(coeffs);
    node->constant = constant;
    return Predicate(std::move(node));
}

Predicate Predicate::modulo(std::vector<std::int64_t> coeffs, std::int64_t modulus,
                            std::int64_t remainder) {
    if (modulus < 2) throw std::invalid_argument("Predicate::modulo: modulus must be >= 2");
    if (remainder < 0 || remainder >= modulus)
        throw std::invalid_argument("Predicate::modulo: remainder out of range");
    auto node = std::make_shared<Node>();
    node->kind = Node::Kind::kModulo;
    node->coeffs = std::move(coeffs);
    node->constant = remainder;
    node->modulus = modulus;
    return Predicate(std::move(node));
}

Predicate Predicate::negation(Predicate inner) {
    auto node = std::make_shared<Node>();
    node->kind = Node::Kind::kNot;
    node->left = std::move(inner.node_);
    return Predicate(std::move(node));
}

Predicate Predicate::conjunction(Predicate lhs, Predicate rhs) {
    auto node = std::make_shared<Node>();
    node->kind = Node::Kind::kAnd;
    node->left = std::move(lhs.node_);
    node->right = std::move(rhs.node_);
    return Predicate(std::move(node));
}

Predicate Predicate::disjunction(Predicate lhs, Predicate rhs) {
    auto node = std::make_shared<Node>();
    node->kind = Node::Kind::kOr;
    node->left = std::move(lhs.node_);
    node->right = std::move(rhs.node_);
    return Predicate(std::move(node));
}

namespace {

std::size_t node_arity(const Predicate::Node& node);

std::size_t child_arity(const std::shared_ptr<const Predicate::Node>& child) {
    return child ? node_arity(*child) : 0;
}

std::size_t node_arity(const Predicate::Node& node) {
    using Kind = Predicate::Node::Kind;
    switch (node.kind) {
        case Kind::kThreshold:
        case Kind::kModulo:
            return node.coeffs.size();
        case Kind::kNot:
            return child_arity(node.left);
        case Kind::kAnd:
        case Kind::kOr:
            return std::max(child_arity(node.left), child_arity(node.right));
    }
    PPSC_UNREACHABLE();
}

std::int64_t weighted_sum(const std::vector<std::int64_t>& coeffs,
                          std::span<const AgentCount> input) {
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < coeffs.size() && i < input.size(); ++i)
        sum += coeffs[i] * input[i];
    return sum;
}

bool node_evaluate(const Predicate::Node& node, std::span<const AgentCount> input) {
    using Kind = Predicate::Node::Kind;
    switch (node.kind) {
        case Kind::kThreshold:
            return weighted_sum(node.coeffs, input) >= node.constant;
        case Kind::kModulo: {
            std::int64_t value = weighted_sum(node.coeffs, input) % node.modulus;
            if (value < 0) value += node.modulus;
            return value == node.constant;
        }
        case Kind::kNot:
            return !node_evaluate(*node.left, input);
        case Kind::kAnd:
            return node_evaluate(*node.left, input) && node_evaluate(*node.right, input);
        case Kind::kOr:
            return node_evaluate(*node.left, input) || node_evaluate(*node.right, input);
    }
    PPSC_UNREACHABLE();
}

void node_print(const Predicate::Node& node, std::ostringstream& os) {
    using Kind = Predicate::Node::Kind;
    auto print_sum = [&os](const std::vector<std::int64_t>& coeffs) {
        bool first = true;
        for (std::size_t i = 0; i < coeffs.size(); ++i) {
            if (coeffs[i] == 0) continue;
            if (!first) os << (coeffs[i] > 0 ? " + " : " - ");
            else if (coeffs[i] < 0) os << '-';
            first = false;
            const std::int64_t magnitude = coeffs[i] < 0 ? -coeffs[i] : coeffs[i];
            if (magnitude != 1) os << magnitude << "·";
            os << 'x' << i;
        }
        if (first) os << '0';
    };
    switch (node.kind) {
        case Kind::kThreshold:
            print_sum(node.coeffs);
            os << " >= " << node.constant;
            return;
        case Kind::kModulo:
            print_sum(node.coeffs);
            os << " ≡ " << node.constant << " (mod " << node.modulus << ")";
            return;
        case Kind::kNot:
            os << "¬(";
            node_print(*node.left, os);
            os << ')';
            return;
        case Kind::kAnd:
            os << '(';
            node_print(*node.left, os);
            os << ") ∧ (";
            node_print(*node.right, os);
            os << ')';
            return;
        case Kind::kOr:
            os << '(';
            node_print(*node.left, os);
            os << ") ∨ (";
            node_print(*node.right, os);
            os << ')';
            return;
    }
}

}  // namespace

std::size_t Predicate::arity() const {
    return node_arity(*node_);
}

Predicate::Kind Predicate::kind() const {
    switch (node_->kind) {
        case Node::Kind::kThreshold:
            return Kind::kThreshold;
        case Node::Kind::kModulo:
            return Kind::kModulo;
        case Node::Kind::kNot:
            return Kind::kNot;
        case Node::Kind::kAnd:
            return Kind::kAnd;
        case Node::Kind::kOr:
            return Kind::kOr;
    }
    PPSC_UNREACHABLE();
}

const std::vector<std::int64_t>& Predicate::coefficients() const {
    if (kind() != Kind::kThreshold && kind() != Kind::kModulo)
        throw std::logic_error("Predicate::coefficients: not an atom");
    return node_->coeffs;
}

std::int64_t Predicate::constant() const {
    if (kind() != Kind::kThreshold && kind() != Kind::kModulo)
        throw std::logic_error("Predicate::constant: not an atom");
    return node_->constant;
}

std::int64_t Predicate::modulus() const {
    if (kind() != Kind::kModulo) throw std::logic_error("Predicate::modulus: not a modulo atom");
    return node_->modulus;
}

Predicate Predicate::left() const {
    if (!node_->left) throw std::logic_error("Predicate::left: atom has no children");
    return Predicate(node_->left);
}

Predicate Predicate::right() const {
    if (!node_->right) throw std::logic_error("Predicate::right: no right child");
    return Predicate(node_->right);
}

bool Predicate::evaluate(std::span<const AgentCount> input) const {
    return node_evaluate(*node_, input);
}

std::string Predicate::to_string() const {
    std::ostringstream os;
    node_print(*node_, os);
    return os.str();
}

}  // namespace ppsc
