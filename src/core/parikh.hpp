// Parikh images and displacement arithmetic (Section 5.1 of the paper).
//
// The displacement Δt of a transition t = p,q ↦ p',q' is the vector
// p'+q'−p−q ∈ Z^Q; the displacement of a multiset π of transitions is
// Δπ = Σ_t π(t)·Δt.  "C =π⇒ C'" means C' = C + Δπ — a purely arithmetic
// relation that ignores whether an actual firing order exists (Lemma 5.1
// relates the two).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/protocol.hpp"

namespace ppsc {

/// Multiset of transitions π ∈ N^T, indexed by TransitionId.
using ParikhImage = std::vector<std::int64_t>;

/// |π| — the total number of transition occurrences.
std::int64_t parikh_size(const ParikhImage& parikh);

/// Parikh mapping of a firing sequence.
ParikhImage parikh_of_sequence(const Protocol& protocol, std::span<const TransitionId> sequence);

/// Δπ ∈ Z^Q.
std::vector<std::int64_t> parikh_displacement(const Protocol& protocol,
                                              const ParikhImage& parikh);

/// C + Δπ as a signed vector (components may be negative; callers check).
std::vector<std::int64_t> apply_parikh(const Config& config, const Protocol& protocol,
                                       const ParikhImage& parikh);

/// Definition 4: π is potentially realisable iff IC(i) =π⇒ C for some input
/// i and configuration C ∈ N^Q.  For a single-input protocol this holds iff
/// L(q) + Δπ(q) ≥ 0 for every non-input state q (the input state can always
/// be padded by choosing i large).  Throws std::invalid_argument if the
/// protocol does not have exactly one input variable.
bool is_potentially_realisable(const Protocol& protocol, const ParikhImage& parikh);

/// The smallest input i witnessing Definition 4 for a potentially
/// realisable π, i.e. the least i with IC(i) + Δπ ≥ 0.
AgentCount minimal_realising_input(const Protocol& protocol, const ParikhImage& parikh);

}  // namespace ppsc
