#include "core/protocol.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "support/check.hpp"

namespace ppsc {

namespace {

/// Canonicalises an unordered pair (a, b) to a ≤ b.
void sort_pair(StateId& a, StateId& b) noexcept {
    if (a > b) std::swap(a, b);
}

}  // namespace

std::size_t Protocol::pair_index(StateId p, StateId q) noexcept {
    // p ≤ q required; index into the triangular pair table.
    return static_cast<std::size_t>(q) * (static_cast<std::size_t>(q) + 1) / 2 +
           static_cast<std::size_t>(p);
}

void Protocol::build_pair_lookup(RuleTable kind) {
    const std::size_t n = names_.size();
    const std::size_t num_pairs = n * (n + 1) / 2;
    if (kind == RuleTable::automatic)
        kind = num_pairs <= kDenseRuleTablePairCap ? RuleTable::dense : RuleTable::sparse;
    rule_table_ = kind;
    if (kind == RuleTable::dense) {
        sparse_pair_to_id_ = DenseIndexMap();
        dense_pair_to_id_.assign(num_pairs, kNoPair);
        for (std::size_t i = 0; i < nonsilent_pairs_.size(); ++i) {
            const auto [p, q] = nonsilent_pairs_[i];
            dense_pair_to_id_[pair_index(p, q)] = static_cast<PairId>(i);
        }
    } else {
        dense_pair_to_id_.clear();
        dense_pair_to_id_.shrink_to_fit();
        std::vector<std::uint64_t> keys;
        keys.reserve(nonsilent_pairs_.size());
        for (const auto& [p, q] : nonsilent_pairs_) keys.push_back(pack_pair(p, q));
        sparse_pair_to_id_.assign(keys);
    }
}

std::size_t Protocol::rule_table_bytes() const noexcept {
    const std::size_t shared = rule_offsets_.capacity() * sizeof(std::uint32_t) +
                               pair_rule_ids_.capacity() * sizeof(TransitionId) +
                               nonsilent_pairs_.capacity() * sizeof(nonsilent_pairs_[0]);
    const std::size_t lookup = rule_table_ == RuleTable::dense
                                   ? dense_pair_to_id_.capacity() * sizeof(PairId)
                                   : sparse_pair_to_id_.memory_bytes();
    return shared + lookup;
}

Protocol Protocol::with_rule_table(RuleTable kind) const {
    Protocol copy = *this;
    copy.build_pair_lookup(kind);
    return copy;
}

std::optional<StateId> Protocol::find_state(std::string_view name) const {
    auto it = name_to_state_.find(std::string(name));
    if (it == name_to_state_.end()) return std::nullopt;
    return it->second;
}

bool Protocol::is_leaderless() const noexcept {
    return leaders_.size() == 0;
}

Config Protocol::initial_config(std::span<const AgentCount> input) const {
    if (input.size() != input_states_.size())
        throw std::invalid_argument("Protocol::initial_config: input arity mismatch");
    Config config = leaders_;
    for (std::size_t i = 0; i < input.size(); ++i) {
        if (input[i] < 0)
            throw std::invalid_argument("Protocol::initial_config: negative input");
        config.add(input_states_[i], input[i]);
    }
    if (config.size() < 2)
        throw std::invalid_argument(
            "Protocol::initial_config: configurations need at least two agents");
    return config;
}

Config Protocol::initial_config(AgentCount i) const {
    if (input_states_.size() != 1)
        throw std::invalid_argument(
            "Protocol::initial_config(i): protocol does not have exactly one input variable");
    const AgentCount values[] = {i};
    return initial_config(values);
}

std::optional<int> Protocol::consensus_output(const Config& config) const {
    std::optional<int> verdict;
    for (std::size_t q = 0; q < num_states(); ++q) {
        if (config[static_cast<StateId>(q)] == 0) continue;
        const int b = outputs_[q];
        if (!verdict)
            verdict = b;
        else if (*verdict != b)
            return std::nullopt;
    }
    return verdict;
}

bool Protocol::enabled(const Config& config, const Transition& t) const noexcept {
    if (t.pre1 == t.pre2) return config[t.pre1] >= 2;
    return config[t.pre1] >= 1 && config[t.pre2] >= 1;
}

Config Protocol::fire(Config config, const Transition& t) const {
    config.add(t.pre1, -1);
    config.add(t.pre2, -1);
    config.add(t.post1, 1);
    config.add(t.post2, 1);
    return config;
}

std::vector<std::int64_t> Protocol::displacement(const Transition& t) const {
    std::vector<std::int64_t> delta(num_states(), 0);
    delta[static_cast<std::size_t>(t.pre1)] -= 1;
    delta[static_cast<std::size_t>(t.pre2)] -= 1;
    delta[static_cast<std::size_t>(t.post1)] += 1;
    delta[static_cast<std::size_t>(t.post2)] += 1;
    return delta;
}

std::string Protocol::to_text() const {
    std::ostringstream os;
    os << "Protocol with " << num_states() << " states, " << num_transitions()
       << " non-silent transitions";
    os << (is_leaderless() ? " (leaderless)\n" : " (with leaders)\n");
    os << "  states:";
    for (std::size_t q = 0; q < num_states(); ++q)
        os << ' ' << names_[q] << "/" << static_cast<int>(outputs_[q]);
    os << "\n  inputs:";
    for (std::size_t i = 0; i < input_names_.size(); ++i)
        os << ' ' << input_names_[i] << "->" << names_[static_cast<std::size_t>(input_states_[i])];
    if (!is_leaderless()) os << "\n  leaders: " << leaders_.to_string(names_);
    os << "\n  transitions:\n";
    for (const Transition& t : transitions_) {
        os << "    " << names_[static_cast<std::size_t>(t.pre1)] << ','
           << names_[static_cast<std::size_t>(t.pre2)] << " -> "
           << names_[static_cast<std::size_t>(t.post1)] << ','
           << names_[static_cast<std::size_t>(t.post2)] << '\n';
    }
    return os.str();
}

std::string Protocol::to_dot() const {
    std::ostringstream os;
    os << "digraph protocol {\n  rankdir=LR;\n";
    for (std::size_t q = 0; q < num_states(); ++q) {
        os << "  q" << q << " [label=\"" << names_[q] << "\", shape="
           << (outputs_[q] ? "doublecircle" : "circle") << "];\n";
    }
    for (const Transition& t : transitions_) {
        // Render each transition as a pair of edges annotated with the partner.
        os << "  q" << t.pre1 << " -> q" << t.post1 << " [label=\"with "
           << names_[static_cast<std::size_t>(t.pre2)] << "\"];\n";
        os << "  q" << t.pre2 << " -> q" << t.post2 << " [label=\"with "
           << names_[static_cast<std::size_t>(t.pre1)] << "\"];\n";
    }
    os << "}\n";
    return os.str();
}

// ---------------------------------------------------------------------------
// ProtocolBuilder

StateId ProtocolBuilder::add_state(std::string name, int output) {
    if (output != 0 && output != 1)
        throw std::invalid_argument("ProtocolBuilder::add_state: output must be 0 or 1");
    if (name.empty()) throw std::invalid_argument("ProtocolBuilder::add_state: empty name");
    if (name_to_state_.contains(name))
        throw std::invalid_argument("ProtocolBuilder::add_state: duplicate state name '" + name +
                                    "'");
    const StateId id = static_cast<StateId>(names_.size());
    name_to_state_.emplace(name, id);
    names_.push_back(std::move(name));
    outputs_.push_back(static_cast<std::uint8_t>(output));
    return id;
}

void ProtocolBuilder::set_output(StateId state, int output) {
    if (output != 0 && output != 1)
        throw std::invalid_argument("ProtocolBuilder::set_output: output must be 0 or 1");
    outputs_.at(static_cast<std::size_t>(state)) = static_cast<std::uint8_t>(output);
}

void ProtocolBuilder::add_transition(StateId p, StateId q, StateId p2, StateId q2) {
    const auto n = static_cast<StateId>(names_.size());
    for (const StateId s : {p, q, p2, q2}) {
        if (s < 0 || s >= n)
            throw std::invalid_argument("ProtocolBuilder::add_transition: unknown state id");
    }
    sort_pair(p, q);
    sort_pair(p2, q2);
    const Transition t{p, q, p2, q2};
    if (t.is_silent()) return;  // silent transitions are implicit
    // Full 32-bit ids in the dedup key: 16-bit packing would alias distinct
    // transitions once protocols pass 2¹⁶ states (the double-exponential
    // threshold family gets there).
    const auto pack = [](StateId a, StateId b) {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
               static_cast<std::uint32_t>(b);
    };
    if (!seen_transitions_.insert({pack(p, q), pack(p2, q2)}).second) return;
    transitions_.push_back(t);
}

void ProtocolBuilder::add_transition(std::string_view p, std::string_view q, std::string_view p2,
                                     std::string_view q2) {
    add_transition(require_state(p), require_state(q), require_state(p2), require_state(q2));
}

StateId ProtocolBuilder::require_state(std::string_view name) const {
    auto it = name_to_state_.find(std::string(name));
    if (it == name_to_state_.end())
        throw std::invalid_argument("ProtocolBuilder: unknown state name '" + std::string(name) +
                                    "'");
    return it->second;
}

void ProtocolBuilder::set_input(std::string name, StateId state) {
    if (state < 0 || static_cast<std::size_t>(state) >= names_.size())
        throw std::invalid_argument("ProtocolBuilder::set_input: unknown state id");
    for (const auto& existing : input_names_) {
        if (existing == name)
            throw std::invalid_argument("ProtocolBuilder::set_input: duplicate input variable '" +
                                        name + "'");
    }
    input_names_.push_back(std::move(name));
    input_states_.push_back(state);
}

void ProtocolBuilder::add_leaders(StateId state, AgentCount count) {
    if (state < 0 || static_cast<std::size_t>(state) >= names_.size())
        throw std::invalid_argument("ProtocolBuilder::add_leaders: unknown state id");
    if (count <= 0) throw std::invalid_argument("ProtocolBuilder::add_leaders: count must be > 0");
    leaders_.emplace_back(state, count);
}

Protocol ProtocolBuilder::build() && {
    if (names_.empty()) throw std::invalid_argument("ProtocolBuilder::build: no states");
    if (input_names_.empty())
        throw std::invalid_argument("ProtocolBuilder::build: no input variable declared");

    Protocol p;
    p.names_ = std::move(names_);
    p.outputs_ = std::move(outputs_);
    p.transitions_ = std::move(transitions_);
    p.input_names_ = std::move(input_names_);
    p.input_states_ = std::move(input_states_);
    p.name_to_state_ = std::move(name_to_state_);

    Config leaders(p.names_.size());
    for (const auto& [state, count] : leaders_) leaders.add(state, count);
    p.leaders_ = std::move(leaders);

    // Sparse non-silent pair structure: the deduped pre-pairs as a flat
    // list in first-seen transition order (PairId = list index — the order
    // every downstream consumer, and therefore every trajectory, depends
    // on), the self-pair ids, and the CSR adjacency of the non-self "has a
    // non-silent rule with" relation.  Simulators use the adjacency as the
    // per-pair weight-delta table for incremental pair-weight maintenance.
    const std::size_t n = p.names_.size();
    p.self_pair_.assign(n, Protocol::kNoPair);
    std::vector<std::uint32_t> degree(n, 0);
    // Build-time only: pre-pair key → PairId (the persistent lookup is
    // built by build_pair_lookup in the chosen representation below).
    std::unordered_map<std::uint64_t, Protocol::PairId> pair_of;
    pair_of.reserve(p.transitions_.size());
    for (const Transition& t : p.transitions_) {
        const StateId q1 = t.pre1, q2 = t.pre2;  // canonical: q1 ≤ q2
        const auto [it, inserted] = pair_of.try_emplace(
            Protocol::pack_pair(q1, q2),
            static_cast<Protocol::PairId>(p.nonsilent_pairs_.size()));
        if (!inserted) continue;
        p.nonsilent_pairs_.emplace_back(q1, q2);
        if (q1 == q2) {
            p.self_pair_[static_cast<std::size_t>(q1)] = it->second;
        } else {
            ++degree[static_cast<std::size_t>(q1)];
            ++degree[static_cast<std::size_t>(q2)];
        }
    }

    // Compact CSR rule table keyed by PairId: count rules per pair,
    // prefix-sum into offsets, then fill.  TransitionIds stay ordered
    // within a pair (fill order follows transition order), matching the
    // retired triangular layout rule for rule.
    const std::size_t num_pairs = p.nonsilent_pairs_.size();
    p.rule_offsets_.assign(num_pairs + 1, 0);
    for (const Transition& t : p.transitions_)
        ++p.rule_offsets_[pair_of.at(Protocol::pack_pair(t.pre1, t.pre2)) + 1];
    for (std::size_t i = 1; i <= num_pairs; ++i)
        p.rule_offsets_[i] += p.rule_offsets_[i - 1];
    p.pair_rule_ids_.resize(p.transitions_.size());
    std::vector<std::uint32_t> cursor(p.rule_offsets_.begin(), p.rule_offsets_.end() - 1);
    for (std::size_t i = 0; i < p.transitions_.size(); ++i) {
        const Transition& t = p.transitions_[i];
        p.pair_rule_ids_[cursor[pair_of.at(Protocol::pack_pair(t.pre1, t.pre2))]++] =
            static_cast<TransitionId>(i);
    }

    p.build_pair_lookup(rule_table_);

    p.neighbor_offsets_.assign(n + 1, 0);
    for (std::size_t q = 0; q < n; ++q)
        p.neighbor_offsets_[q + 1] = p.neighbor_offsets_[q] + degree[q];
    p.neighbors_.resize(p.neighbor_offsets_[n]);
    std::vector<std::uint32_t> neighbor_cursor(p.neighbor_offsets_.begin(),
                                               p.neighbor_offsets_.end() - 1);
    for (std::size_t i = 0; i < p.nonsilent_pairs_.size(); ++i) {
        const auto [q1, q2] = p.nonsilent_pairs_[i];
        if (q1 == q2) continue;
        const auto id = static_cast<Protocol::PairId>(i);
        p.neighbors_[neighbor_cursor[static_cast<std::size_t>(q1)]++] = {q2, id};
        p.neighbors_[neighbor_cursor[static_cast<std::size_t>(q2)]++] = {q1, id};
    }

    // Post-state transition incidence (transitions_producing): count, prefix
    // sum, fill.  Scanning transitions in id order keeps every per-state list
    // ascending — the order the trap worklist relies on.
    std::vector<std::uint32_t> producing_degree(n, 0);
    for (const Transition& t : p.transitions_) {
        ++producing_degree[static_cast<std::size_t>(t.post1)];
        if (t.post2 != t.post1) ++producing_degree[static_cast<std::size_t>(t.post2)];
    }
    p.producing_offsets_.assign(n + 1, 0);
    for (std::size_t q = 0; q < n; ++q)
        p.producing_offsets_[q + 1] = p.producing_offsets_[q] + producing_degree[q];
    p.producing_ids_.resize(p.producing_offsets_[n]);
    std::vector<std::uint32_t> producing_cursor(p.producing_offsets_.begin(),
                                                p.producing_offsets_.end() - 1);
    for (std::size_t i = 0; i < p.transitions_.size(); ++i) {
        const Transition& t = p.transitions_[i];
        p.producing_ids_[producing_cursor[static_cast<std::size_t>(t.post1)]++] =
            static_cast<TransitionId>(i);
        if (t.post2 != t.post1)
            p.producing_ids_[producing_cursor[static_cast<std::size_t>(t.post2)]++] =
                static_cast<TransitionId>(i);
    }
    return p;
}

}  // namespace ppsc
