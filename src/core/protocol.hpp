// The population protocol model (Section 2.2 of the paper).
//
// A protocol P = (Q, T, L, X, I, O):
//   Q — finite set of states (indexed 0..n-1, with human-readable names);
//   T — transitions, mapping unordered state pairs to unordered state pairs;
//   L — leader multiset (empty for leaderless protocols);
//   X — input variables;
//   I — input mapping X → Q;
//   O — output mapping Q → {0, 1}.
//
// Totality: the paper assumes every pair {p,q} enables at least one
// transition.  We store only *non-silent* transitions; any pair without an
// explicit rule implicitly has the silent transition p,q ↦ p,q, so every
// Protocol built here is total by construction.
//
// Protocols are immutable after construction; build them with
// ProtocolBuilder.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "support/check.hpp"
#include "support/hash.hpp"

namespace ppsc {

/// One transition p,q ↦ p',q' in canonical form (pre1 ≤ pre2, post1 ≤ post2).
struct Transition {
    StateId pre1 = 0;
    StateId pre2 = 0;
    StateId post1 = 0;
    StateId post2 = 0;

    bool operator==(const Transition&) const noexcept = default;

    bool is_silent() const noexcept { return pre1 == post1 && pre2 == post2; }
};

using TransitionId = std::int32_t;

/// Representation of the pair → rules lookup (see Protocol::pair_id).
///
///   dense  — a triangular array indexed by the packed pair, Θ(|Q|²)
///            memory but a two-read lookup; the right choice while the
///            table fits comfortably in memory.
///   sparse — an open-addressed hash map keyed only on the pairs that
///            actually carry non-silent rules, Θ(#non-silent pairs)
///            memory; unlocks |Q| ≥ 10⁵ for rule-sparse protocols (the
///            flagship double-exponential family has Θ(|Q|) rules).
///
/// `automatic` (the default) picks dense below kDenseRuleTablePairCap
/// triangular pairs and sparse above.  Both representations expose
/// identical lookups over identical PairIds, so everything downstream —
/// simulators included — behaves identically per seed.
enum class RuleTable { automatic, dense, sparse };

/// Triangular-pair-count threshold for RuleTable::automatic: 2²³ pairs keep
/// the dense array at 32 MiB (4 bytes per pair), i.e. dense up to |Q| ≈ 4095.
inline constexpr std::size_t kDenseRuleTablePairCap = std::size_t{1} << 23;

class ProtocolBuilder;

class Protocol {
public:
    std::size_t num_states() const noexcept { return names_.size(); }
    std::size_t num_transitions() const noexcept { return transitions_.size(); }

    const std::string& state_name(StateId q) const { return names_.at(static_cast<std::size_t>(q)); }
    std::span<const std::string> state_names() const noexcept { return names_; }

    /// Looks up a state by name; nullopt if absent.
    std::optional<StateId> find_state(std::string_view name) const;

    /// O(q) ∈ {0,1}.
    int output(StateId q) const { return outputs_.at(static_cast<std::size_t>(q)); }

    /// All non-silent transitions, each with a stable TransitionId equal to
    /// its index in this span (used by Parikh images).
    std::span<const Transition> transitions() const noexcept { return transitions_; }

    /// Index into nonsilent_pairs().
    using PairId = std::uint32_t;
    static constexpr PairId kNoPair = static_cast<PairId>(-1);

    /// PairId of the unordered pair {p, q}, or kNoPair if the pair is
    /// silent.  The hot-path lookup: a two-read triangular-array access
    /// under the dense rule table, one open-addressed hash probe under the
    /// sparse one.
    PairId pair_id(StateId p, StateId q) const {
        if (p > q) std::swap(p, q);
        if (rule_table_ == RuleTable::dense) {
            const std::size_t idx = pair_index(p, q);
            PPSC_DASSERT(idx < dense_pair_to_id_.size());
            return dense_pair_to_id_[idx];
        }
        return sparse_pair_to_id_.find(pack_pair(p, q));
    }

    /// The rules of the non-silent pair `id` as indices into transitions(),
    /// in transition-declaration order: a compact CSR keyed by PairId, so
    /// it costs Θ(#non-silent pairs) regardless of the rule-table kind.
    std::span<const TransitionId> rules_for_pair_id(PairId id) const {
        PPSC_DASSERT(static_cast<std::size_t>(id) + 1 < rule_offsets_.size());
        const std::uint32_t begin = rule_offsets_[id];
        const std::uint32_t end = rule_offsets_[id + 1];
        return {pair_rule_ids_.data() + begin, static_cast<std::size_t>(end - begin)};
    }

    /// Non-silent successor pairs of the unordered pair {p, q} as indices
    /// into transitions().  Empty span ⇒ the pair is silent.
    std::span<const TransitionId> rules_for_pair(StateId p, StateId q) const {
        const PairId id = pair_id(p, q);
        if (id == kNoPair) return {};
        return rules_for_pair_id(id);
    }

    /// True iff {p,q} has no non-silent rule.  O(1).
    bool pair_is_silent(StateId p, StateId q) const { return pair_id(p, q) == kNoPair; }

    /// The rule-table representation in use (automatic already resolved).
    RuleTable rule_table() const noexcept { return rule_table_; }

    /// Heap bytes held by the pair → rules lookup structures (the dense
    /// triangular array or the sparse hash table, plus the shared compact
    /// CSR) — the quantity the sparse representation shrinks from Θ(|Q|²)
    /// to Θ(#non-silent pairs).
    std::size_t rule_table_bytes() const noexcept;

    /// A copy of this protocol with the pair → rules lookup rebuilt in the
    /// requested representation (automatic re-resolves by size).  PairIds,
    /// rule order, and therefore all simulation trajectories are unchanged.
    Protocol with_rule_table(RuleTable kind) const;

    /// The distinct non-silent unordered pre-pairs {p, q} (canonical p ≤ q),
    /// in a stable order — the index of a pair in this span is its PairId.
    /// Simulators sample fired interactions weight-proportionally over this
    /// list.
    std::span<const std::pair<StateId, StateId>> nonsilent_pairs() const noexcept {
        return nonsilent_pairs_;
    }

    /// One entry of the per-state weight-delta table: changing the count of
    /// state q by Δ changes the ordered weight of the non-silent pair
    /// `pair` = {q, partner} by 2·Δ·count(partner).
    struct PairNeighbor {
        StateId partner;
        PairId pair;
    };

    /// CSR adjacency of the non-self "has a non-silent rule with" relation:
    /// for each partner p ≠ q of q, the PairId of {q, p}.  This is the
    /// per-pair weight-delta table that lets a simulator keep a Fenwick tree
    /// over ordered pair weights in sync in O(deg(q) · log #pairs) per count
    /// change.
    std::span<const PairNeighbor> pair_neighbors(StateId q) const {
        const auto i = static_cast<std::size_t>(q);
        PPSC_DASSERT(i + 1 < neighbor_offsets_.size());
        return {neighbors_.data() + neighbor_offsets_[i],
                static_cast<std::size_t>(neighbor_offsets_[i + 1] - neighbor_offsets_[i])};
    }

    /// PairId of the self pair {q, q}, or kNoPair if it is silent.  The
    /// ordered weight of a self pair is count(q)·(count(q) − 1).
    PairId self_pair(StateId q) const {
        PPSC_DASSERT(static_cast<std::size_t>(q) < self_pair_.size());
        return self_pair_[static_cast<std::size_t>(q)];
    }

    /// Transition-incidence index: the TransitionIds whose *post* states
    /// include q (each transition listed once even when post1 == post2), in
    /// ascending TransitionId order.  CSR over all states, Θ(|Q| + |T|)
    /// memory.  This is the reactivation set of worklist fixpoints over
    /// shrinking state sets: removing q can only newly violate transitions
    /// that produce q.
    std::span<const TransitionId> transitions_producing(StateId q) const {
        const auto i = static_cast<std::size_t>(q);
        PPSC_DASSERT(i + 1 < producing_offsets_.size());
        return {producing_ids_.data() + producing_offsets_[i],
                static_cast<std::size_t>(producing_offsets_[i + 1] - producing_offsets_[i])};
    }

    /// Leader multiset L (all-zero for leaderless protocols).
    const Config& leaders() const noexcept { return leaders_; }
    bool is_leaderless() const noexcept;

    /// Input variables in declaration order.
    std::span<const std::string> input_variables() const noexcept { return input_names_; }
    StateId input_state(std::size_t var_index) const {
        return input_states_.at(var_index);
    }

    /// IC(m) = L + Σ_x m(x)·I(x).  `input` is indexed like
    /// input_variables().  Throws std::invalid_argument on size mismatch
    /// or |IC(m)| < 2 (configurations have at least two agents).
    Config initial_config(std::span<const AgentCount> input) const;

    /// IC(i) for single-input protocols; throws if |X| != 1.
    Config initial_config(AgentCount i) const;

    /// O(C): 0 or 1 if all agents agree, nullopt if mixed or C empty.
    std::optional<int> consensus_output(const Config& config) const;

    /// Is transition `t` enabled at `config` (C ≥ pre)?
    bool enabled(const Config& config, const Transition& t) const noexcept;

    /// Fires `t` at `config` (C − pre + post).  Caller must ensure
    /// enabledness; violations throw via Config arithmetic.
    Config fire(Config config, const Transition& t) const;

    /// Displacement Δt ∈ Z^Q of one transition (Section 5.1).
    std::vector<std::int64_t> displacement(const Transition& t) const;

    /// Human-readable multi-line description.
    std::string to_text() const;

    /// GraphViz rendering of the transition structure.
    std::string to_dot() const;

private:
    friend class ProtocolBuilder;
    Protocol() : leaders_(0) {}

    static std::size_t pair_index(StateId p, StateId q) noexcept;

    /// Packs the canonical pair p ≤ q into the sparse lookup key.
    static std::uint64_t pack_pair(StateId p, StateId q) noexcept {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p)) << 32) |
               static_cast<std::uint32_t>(q);
    }

    /// (Re)builds the pair → PairId lookup from nonsilent_pairs_ in the
    /// requested representation; `automatic` resolves by triangular size.
    void build_pair_lookup(RuleTable kind);

    std::vector<std::string> names_;
    std::vector<std::uint8_t> outputs_;
    std::vector<Transition> transitions_;
    // Compact CSR rule table keyed by PairId: the rules of non-silent pair
    // id are pair_rule_ids_[rule_offsets_[id] .. rule_offsets_[id+1]).
    // Θ(#non-silent pairs) in every representation.
    std::vector<std::uint32_t> rule_offsets_;
    std::vector<TransitionId> pair_rule_ids_;
    // Pair → PairId lookup, in one of two representations (rule_table_):
    // the dense triangular array (Θ(|Q|²) entries, kNoPair ⇔ silent) or the
    // open-addressed hash map over the non-silent pairs only (a miss ⇔
    // silent).
    RuleTable rule_table_ = RuleTable::dense;
    std::vector<PairId> dense_pair_to_id_;
    DenseIndexMap sparse_pair_to_id_;
    // Sparse non-silent pair structure (see nonsilent_pairs()/pair_neighbors).
    std::vector<std::pair<StateId, StateId>> nonsilent_pairs_;
    std::vector<std::uint32_t> neighbor_offsets_;  // size |Q|+1
    std::vector<PairNeighbor> neighbors_;          // flat, grouped by state
    std::vector<PairId> self_pair_;                // size |Q|, kNoPair if silent
    // Post-state transition incidence (see transitions_producing).
    std::vector<std::uint32_t> producing_offsets_;  // size |Q|+1
    std::vector<TransitionId> producing_ids_;       // flat, ascending per state
    std::vector<std::string> input_names_;
    std::vector<StateId> input_states_;
    Config leaders_;
    std::unordered_map<std::string, StateId> name_to_state_;
};

/// Incremental, validating construction of protocols.
///
/// Example (the 2-state "at least one agent in A" detector):
///     ProtocolBuilder b;
///     auto a   = b.add_state("A", 1);
///     auto x   = b.add_state("X", 0);
///     b.add_transition(a, x, a, a);
///     b.set_input("x", x);
///     Protocol p = std::move(b).build();
class ProtocolBuilder {
public:
    /// Declares a state. Throws std::invalid_argument on duplicate name or
    /// output not in {0,1}.
    StateId add_state(std::string name, int output);

    /// Changes the output of an existing state.
    void set_output(StateId state, int output);

    /// Adds the transition {p,q} ↦ {p2,q2} (unordered on both sides).
    /// Silent transitions are accepted and ignored; duplicates are merged.
    void add_transition(StateId p, StateId q, StateId p2, StateId q2);

    /// Name-based overload for readable construction code.
    void add_transition(std::string_view p, std::string_view q, std::string_view p2,
                        std::string_view q2);

    /// Declares input variable `name` mapped to `state`.
    void set_input(std::string name, StateId state);

    /// Adds `count` leader agents in `state`.
    void add_leaders(StateId state, AgentCount count);

    /// Chooses the pair → rules lookup representation of the built
    /// protocol (default: automatic, resolved by |Q|).
    void set_rule_table(RuleTable kind) noexcept { rule_table_ = kind; }

    std::size_t num_states() const noexcept { return names_.size(); }

    /// Finalises the protocol. Throws std::invalid_argument if no states or
    /// no input variable were declared.
    Protocol build() &&;

private:
    StateId require_state(std::string_view name) const;

    struct PackedTransitionHash {
        std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& key) const noexcept {
            std::size_t seed = static_cast<std::size_t>(key.first);
            hash_combine(seed, static_cast<std::size_t>(key.second));
            return seed;
        }
    };

    std::vector<std::string> names_;
    std::vector<std::uint8_t> outputs_;
    std::vector<Transition> transitions_;
    /// Canonical (pre-pair, post-pair), each as two full 32-bit state ids.
    std::unordered_set<std::pair<std::uint64_t, std::uint64_t>, PackedTransitionHash>
        seen_transitions_;
    std::vector<std::string> input_names_;
    std::vector<StateId> input_states_;
    std::vector<std::pair<StateId, AgentCount>> leaders_;
    std::unordered_map<std::string, StateId> name_to_state_;
    RuleTable rule_table_ = RuleTable::automatic;
};

}  // namespace ppsc
