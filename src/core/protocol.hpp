// The population protocol model (Section 2.2 of the paper).
//
// A protocol P = (Q, T, L, X, I, O):
//   Q — finite set of states (indexed 0..n-1, with human-readable names);
//   T — transitions, mapping unordered state pairs to unordered state pairs;
//   L — leader multiset (empty for leaderless protocols);
//   X — input variables;
//   I — input mapping X → Q;
//   O — output mapping Q → {0, 1}.
//
// Totality: the paper assumes every pair {p,q} enables at least one
// transition.  We store only *non-silent* transitions; any pair without an
// explicit rule implicitly has the silent transition p,q ↦ p,q, so every
// Protocol built here is total by construction.
//
// Protocols are immutable after construction; build them with
// ProtocolBuilder.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "support/check.hpp"
#include "support/hash.hpp"

namespace ppsc {

/// One transition p,q ↦ p',q' in canonical form (pre1 ≤ pre2, post1 ≤ post2).
struct Transition {
    StateId pre1 = 0;
    StateId pre2 = 0;
    StateId post1 = 0;
    StateId post2 = 0;

    bool operator==(const Transition&) const noexcept = default;

    bool is_silent() const noexcept { return pre1 == post1 && pre2 == post2; }
};

using TransitionId = std::int32_t;

class ProtocolBuilder;

class Protocol {
public:
    std::size_t num_states() const noexcept { return names_.size(); }
    std::size_t num_transitions() const noexcept { return transitions_.size(); }

    const std::string& state_name(StateId q) const { return names_.at(static_cast<std::size_t>(q)); }
    std::span<const std::string> state_names() const noexcept { return names_; }

    /// Looks up a state by name; nullopt if absent.
    std::optional<StateId> find_state(std::string_view name) const;

    /// O(q) ∈ {0,1}.
    int output(StateId q) const { return outputs_.at(static_cast<std::size_t>(q)); }

    /// All non-silent transitions, each with a stable TransitionId equal to
    /// its index in this span (used by Parikh images).
    std::span<const Transition> transitions() const noexcept { return transitions_; }

    /// Non-silent successor pairs of the unordered pair {p, q} as indices
    /// into transitions().  Empty span ⇒ the pair is silent.
    ///
    /// Hot path: the rules live in a CSR layout (one offsets array + one
    /// flat id array indexed by the triangular pair index), so a lookup is
    /// two adjacent array reads with no pointer chasing.
    std::span<const TransitionId> rules_for_pair(StateId p, StateId q) const {
        if (p > q) std::swap(p, q);
        const std::size_t idx = pair_index(p, q);
        PPSC_DASSERT(idx + 1 < pair_offsets_.size());
        const std::uint32_t begin = pair_offsets_[idx];
        const std::uint32_t end = pair_offsets_[idx + 1];
        return {pair_rule_ids_.data() + begin, static_cast<std::size_t>(end - begin)};
    }

    /// True iff {p,q} has no non-silent rule.  O(1) precomputed bitset test.
    bool pair_is_silent(StateId p, StateId q) const {
        if (p > q) std::swap(p, q);
        const std::size_t idx = pair_index(p, q);
        PPSC_DASSERT((idx >> 6) < pair_silent_bits_.size());
        return (pair_silent_bits_[idx >> 6] >> (idx & 63)) & 1u;
    }

    /// Index into nonsilent_pairs().
    using PairId = std::uint32_t;
    static constexpr PairId kNoPair = static_cast<PairId>(-1);

    /// The distinct non-silent unordered pre-pairs {p, q} (canonical p ≤ q),
    /// in a stable order — the index of a pair in this span is its PairId.
    /// Simulators sample fired interactions weight-proportionally over this
    /// list.
    std::span<const std::pair<StateId, StateId>> nonsilent_pairs() const noexcept {
        return nonsilent_pairs_;
    }

    /// One entry of the per-state weight-delta table: changing the count of
    /// state q by Δ changes the ordered weight of the non-silent pair
    /// `pair` = {q, partner} by 2·Δ·count(partner).
    struct PairNeighbor {
        StateId partner;
        PairId pair;
    };

    /// CSR adjacency of the non-self "has a non-silent rule with" relation:
    /// for each partner p ≠ q of q, the PairId of {q, p}.  This is the
    /// per-pair weight-delta table that lets a simulator keep a Fenwick tree
    /// over ordered pair weights in sync in O(deg(q) · log #pairs) per count
    /// change.
    std::span<const PairNeighbor> pair_neighbors(StateId q) const {
        const auto i = static_cast<std::size_t>(q);
        PPSC_DASSERT(i + 1 < neighbor_offsets_.size());
        return {neighbors_.data() + neighbor_offsets_[i],
                static_cast<std::size_t>(neighbor_offsets_[i + 1] - neighbor_offsets_[i])};
    }

    /// PairId of the self pair {q, q}, or kNoPair if it is silent.  The
    /// ordered weight of a self pair is count(q)·(count(q) − 1).
    PairId self_pair(StateId q) const {
        PPSC_DASSERT(static_cast<std::size_t>(q) < self_pair_.size());
        return self_pair_[static_cast<std::size_t>(q)];
    }

    /// Leader multiset L (all-zero for leaderless protocols).
    const Config& leaders() const noexcept { return leaders_; }
    bool is_leaderless() const noexcept;

    /// Input variables in declaration order.
    std::span<const std::string> input_variables() const noexcept { return input_names_; }
    StateId input_state(std::size_t var_index) const {
        return input_states_.at(var_index);
    }

    /// IC(m) = L + Σ_x m(x)·I(x).  `input` is indexed like
    /// input_variables().  Throws std::invalid_argument on size mismatch
    /// or |IC(m)| < 2 (configurations have at least two agents).
    Config initial_config(std::span<const AgentCount> input) const;

    /// IC(i) for single-input protocols; throws if |X| != 1.
    Config initial_config(AgentCount i) const;

    /// O(C): 0 or 1 if all agents agree, nullopt if mixed or C empty.
    std::optional<int> consensus_output(const Config& config) const;

    /// Is transition `t` enabled at `config` (C ≥ pre)?
    bool enabled(const Config& config, const Transition& t) const noexcept;

    /// Fires `t` at `config` (C − pre + post).  Caller must ensure
    /// enabledness; violations throw via Config arithmetic.
    Config fire(Config config, const Transition& t) const;

    /// Displacement Δt ∈ Z^Q of one transition (Section 5.1).
    std::vector<std::int64_t> displacement(const Transition& t) const;

    /// Human-readable multi-line description.
    std::string to_text() const;

    /// GraphViz rendering of the transition structure.
    std::string to_dot() const;

private:
    friend class ProtocolBuilder;
    Protocol() : leaders_(0) {}

    static std::size_t pair_index(StateId p, StateId q) noexcept;

    std::vector<std::string> names_;
    std::vector<std::uint8_t> outputs_;
    std::vector<Transition> transitions_;
    // CSR rule table over triangular pair indices: the rules of pair i are
    // pair_rule_ids_[pair_offsets_[i] .. pair_offsets_[i+1]).  The silent
    // bitset answers pair_is_silent without touching the offsets.
    std::vector<std::uint32_t> pair_offsets_;
    std::vector<TransitionId> pair_rule_ids_;
    std::vector<std::uint64_t> pair_silent_bits_;
    // Sparse non-silent pair structure (see nonsilent_pairs()/pair_neighbors).
    std::vector<std::pair<StateId, StateId>> nonsilent_pairs_;
    std::vector<std::uint32_t> neighbor_offsets_;  // size |Q|+1
    std::vector<PairNeighbor> neighbors_;          // flat, grouped by state
    std::vector<PairId> self_pair_;                // size |Q|, kNoPair if silent
    std::vector<std::string> input_names_;
    std::vector<StateId> input_states_;
    Config leaders_;
    std::unordered_map<std::string, StateId> name_to_state_;
};

/// Incremental, validating construction of protocols.
///
/// Example (the 2-state "at least one agent in A" detector):
///     ProtocolBuilder b;
///     auto a   = b.add_state("A", 1);
///     auto x   = b.add_state("X", 0);
///     b.add_transition(a, x, a, a);
///     b.set_input("x", x);
///     Protocol p = std::move(b).build();
class ProtocolBuilder {
public:
    /// Declares a state. Throws std::invalid_argument on duplicate name or
    /// output not in {0,1}.
    StateId add_state(std::string name, int output);

    /// Changes the output of an existing state.
    void set_output(StateId state, int output);

    /// Adds the transition {p,q} ↦ {p2,q2} (unordered on both sides).
    /// Silent transitions are accepted and ignored; duplicates are merged.
    void add_transition(StateId p, StateId q, StateId p2, StateId q2);

    /// Name-based overload for readable construction code.
    void add_transition(std::string_view p, std::string_view q, std::string_view p2,
                        std::string_view q2);

    /// Declares input variable `name` mapped to `state`.
    void set_input(std::string name, StateId state);

    /// Adds `count` leader agents in `state`.
    void add_leaders(StateId state, AgentCount count);

    std::size_t num_states() const noexcept { return names_.size(); }

    /// Finalises the protocol. Throws std::invalid_argument if no states or
    /// no input variable were declared.
    Protocol build() &&;

private:
    StateId require_state(std::string_view name) const;

    struct PackedTransitionHash {
        std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& key) const noexcept {
            std::size_t seed = static_cast<std::size_t>(key.first);
            hash_combine(seed, static_cast<std::size_t>(key.second));
            return seed;
        }
    };

    std::vector<std::string> names_;
    std::vector<std::uint8_t> outputs_;
    std::vector<Transition> transitions_;
    /// Canonical (pre-pair, post-pair), each as two full 32-bit state ids.
    std::unordered_set<std::pair<std::uint64_t, std::uint64_t>, PackedTransitionHash>
        seen_transitions_;
    std::vector<std::string> input_names_;
    std::vector<StateId> input_states_;
    std::vector<std::pair<StateId, AgentCount>> leaders_;
    std::unordered_map<std::string, StateId> name_to_state_;
};

}  // namespace ppsc
