// Configurations: multisets of agents over the states of a protocol.
//
// A configuration C ∈ N^Q maps each state to the number of agents currently
// in it (Section 2.2 of the paper).  The representation is a dense count
// vector — protocols in this library have at most a few hundred states, so
// dense wins on locality and hashing.  Config is a regular value type.
//
// Two hot-path affordances for the simulator:
//   * |C| is cached and maintained incrementally, so size() is O(1);
//   * every mutation stamps a fresh, per-thread-unique version() — samplers
//     keyed on (address, version) can detect external modification without
//     rescanning the counts.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/hash.hpp"

namespace ppsc {

using StateId = std::int32_t;
using AgentCount = std::int64_t;

class Config {
public:
    /// The empty configuration over `num_states` states.
    explicit Config(std::size_t num_states) : counts_(num_states, 0) {}

    Config(const Config& other) : counts_(other.counts_), total_(other.total_) {}
    Config(Config&& other) noexcept
        : counts_(std::move(other.counts_)), total_(other.total_) {
        other.total_ = 0;  // keep size()==Σcounts on the moved-from shell
    }
    Config& operator=(const Config& other) {
        counts_ = other.counts_;
        total_ = other.total_;
        version_ = next_version();
        return *this;
    }
    Config& operator=(Config&& other) noexcept {
        counts_ = std::move(other.counts_);
        total_ = other.total_;
        other.total_ = 0;  // keep size()==Σcounts on the moved-from shell
        version_ = next_version();
        return *this;
    }

    /// From explicit counts. Throws std::invalid_argument on negative counts.
    static Config from_counts(std::vector<AgentCount> counts);

    /// Configuration with `count` agents in a single state.
    static Config single(std::size_t num_states, StateId state, AgentCount count);

    std::size_t num_states() const noexcept { return counts_.size(); }

    /// |C| — the total number of agents.  O(1): maintained incrementally.
    AgentCount size() const noexcept { return total_; }

    /// Unchecked hot-path access (bounds-asserted in debug builds only).
    AgentCount operator[](StateId state) const {
        PPSC_DASSERT(state >= 0 && static_cast<std::size_t>(state) < counts_.size());
        return counts_[static_cast<std::size_t>(state)];
    }

    /// Sets the count of one state. Throws std::invalid_argument on negative,
    /// std::out_of_range on a bad state id.
    void set(StateId state, AgentCount count);

    /// Adds `delta` agents (may be negative). Throws std::invalid_argument
    /// if the result would be negative.
    void add(StateId state, AgentCount delta);

    /// JCK — the set of states with at least one agent.
    std::vector<StateId> support() const;

    /// True iff every state holds at least `j` agents (j-saturation, §5.1).
    bool is_saturated(AgentCount j) const noexcept;

    /// Componentwise order C ≤ D (the order of Dickson's lemma).
    bool leq(const Config& rhs) const noexcept;

    Config& operator+=(const Config& rhs);
    /// Componentwise subtraction. Throws std::invalid_argument if any
    /// component would go negative.
    Config& operator-=(const Config& rhs);
    /// Scalar multiple.
    Config& operator*=(AgentCount factor);

    friend Config operator+(Config lhs, const Config& rhs) { return lhs += rhs; }
    friend Config operator-(Config lhs, const Config& rhs) { return lhs -= rhs; }
    friend Config operator*(Config lhs, AgentCount factor) { return lhs *= factor; }
    friend Config operator*(AgentCount factor, Config rhs) { return rhs *= factor; }

    /// Value equality on the counts (the version stamp does not participate).
    bool operator==(const Config& rhs) const noexcept { return counts_ == rhs.counts_; }

    const std::vector<AgentCount>& counts() const noexcept { return counts_; }

    /// Mutation stamp: changes on every mutation and is unique across the
    /// whole process, so `(address, version)` identifies one value of one
    /// live object even when configurations migrate between threads.  Used
    /// by Simulator to cache its incremental sampler.
    std::uint64_t version() const noexcept { return version_; }

    std::size_t hash() const noexcept { return hash_int_vector(counts_); }

    /// "{2·q0, q3}" style rendering; `names` may be empty (indices used).
    std::string to_string(std::span<const std::string> names = {}) const;

private:
    // Process-unique stamps without per-mutation contention: each thread
    // draws 2³²-stamp blocks from one global atomic and counts through its
    // block locally (a thread exhausting a block just draws the next one).
    static std::uint64_t next_version() noexcept;

    std::vector<AgentCount> counts_;
    AgentCount total_ = 0;
    std::uint64_t version_ = next_version();
};

struct ConfigHash {
    std::size_t operator()(const Config& c) const noexcept { return c.hash(); }
};

}  // namespace ppsc
