#include "core/parikh.hpp"

#include <numeric>
#include <stdexcept>

namespace ppsc {

std::int64_t parikh_size(const ParikhImage& parikh) {
    return std::accumulate(parikh.begin(), parikh.end(), std::int64_t{0});
}

ParikhImage parikh_of_sequence(const Protocol& protocol,
                               std::span<const TransitionId> sequence) {
    ParikhImage parikh(protocol.num_transitions(), 0);
    for (const TransitionId t : sequence) parikh.at(static_cast<std::size_t>(t)) += 1;
    return parikh;
}

std::vector<std::int64_t> parikh_displacement(const Protocol& protocol,
                                              const ParikhImage& parikh) {
    if (parikh.size() != protocol.num_transitions())
        throw std::invalid_argument("parikh_displacement: Parikh image has wrong dimension");
    std::vector<std::int64_t> delta(protocol.num_states(), 0);
    const auto transitions = protocol.transitions();
    for (std::size_t i = 0; i < parikh.size(); ++i) {
        const std::int64_t count = parikh[i];
        if (count == 0) continue;
        if (count < 0)
            throw std::invalid_argument("parikh_displacement: negative multiplicity");
        const Transition& t = transitions[i];
        delta[static_cast<std::size_t>(t.pre1)] -= count;
        delta[static_cast<std::size_t>(t.pre2)] -= count;
        delta[static_cast<std::size_t>(t.post1)] += count;
        delta[static_cast<std::size_t>(t.post2)] += count;
    }
    return delta;
}

std::vector<std::int64_t> apply_parikh(const Config& config, const Protocol& protocol,
                                       const ParikhImage& parikh) {
    std::vector<std::int64_t> result = parikh_displacement(protocol, parikh);
    for (std::size_t q = 0; q < result.size(); ++q)
        result[q] += config[static_cast<StateId>(q)];
    return result;
}

bool is_potentially_realisable(const Protocol& protocol, const ParikhImage& parikh) {
    if (protocol.input_variables().size() != 1)
        throw std::invalid_argument(
            "is_potentially_realisable: protocol must have exactly one input variable");
    const StateId input = protocol.input_state(0);
    const std::vector<std::int64_t> delta = parikh_displacement(protocol, parikh);
    for (std::size_t q = 0; q < delta.size(); ++q) {
        if (static_cast<StateId>(q) == input) continue;
        if (protocol.leaders()[static_cast<StateId>(q)] + delta[q] < 0) return false;
    }
    return true;
}

AgentCount minimal_realising_input(const Protocol& protocol, const ParikhImage& parikh) {
    if (!is_potentially_realisable(protocol, parikh))
        throw std::invalid_argument("minimal_realising_input: π is not potentially realisable");
    const StateId input = protocol.input_state(0);
    const std::vector<std::int64_t> delta = parikh_displacement(protocol, parikh);
    const std::int64_t at_input =
        protocol.leaders()[input] + delta[static_cast<std::size_t>(input)];
    return at_input >= 0 ? 0 : -at_input;
}

}  // namespace ppsc
