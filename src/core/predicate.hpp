// Presburger predicates over input multisets.
//
// Population protocols compute exactly the Presburger-definable predicates
// (Angluin et al., cited as [8] in the paper).  Every Presburger predicate
// is a boolean combination of threshold constraints Σ aᵢxᵢ ≥ c and modulo
// constraints Σ aᵢxᵢ ≡ r (mod m); this class represents exactly that
// normal form.  Predicates are immutable values (shared structure inside).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace ppsc {

class Predicate {
public:
    /// Σ coeffs[i]·x_i ≥ constant.
    static Predicate threshold(std::vector<std::int64_t> coeffs, std::int64_t constant);

    /// Σ coeffs[i]·x_i ≡ remainder (mod modulus).  Throws
    /// std::invalid_argument unless modulus ≥ 2 and 0 ≤ remainder < modulus.
    static Predicate modulo(std::vector<std::int64_t> coeffs, std::int64_t modulus,
                            std::int64_t remainder);

    /// The paper's central predicate family: x ≥ η over one variable.
    static Predicate x_at_least(std::int64_t eta) { return threshold({1}, eta); }

    /// Majority: x₀ > x₁  (i.e. x₀ − x₁ ≥ 1).
    static Predicate majority() { return threshold({1, -1}, 1); }

    static Predicate negation(Predicate inner);
    static Predicate conjunction(Predicate lhs, Predicate rhs);
    static Predicate disjunction(Predicate lhs, Predicate rhs);

    /// Number of input variables (the max arity over all atoms).
    std::size_t arity() const;

    /// Evaluates at an input multiset (indexed by variable).  Inputs beyond
    /// an atom's coefficient list contribute zero.
    bool evaluate(std::span<const AgentCount> input) const;

    /// Single-variable convenience.
    bool evaluate(AgentCount x) const {
        const AgentCount values[] = {x};
        return evaluate(values);
    }

    std::string to_string() const;

    /// Structural inspection — used by the Presburger-to-protocol compiler
    /// (protocols/presburger.hpp) to walk the syntax tree.
    enum class Kind { kThreshold, kModulo, kNot, kAnd, kOr };
    Kind kind() const;
    /// Atom coefficients (threshold/modulo only; throws otherwise).
    const std::vector<std::int64_t>& coefficients() const;
    /// Threshold constant / modulo remainder (atoms only; throws otherwise).
    std::int64_t constant() const;
    /// Modulo modulus (modulo atoms only; throws otherwise).
    std::int64_t modulus() const;
    /// Children (kNot: left only; kAnd/kOr: both; atoms: throws).
    Predicate left() const;
    Predicate right() const;

    /// Implementation node (opaque; public only so implementation helpers
    /// can name it).
    struct Node;

private:
    explicit Predicate(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

    std::shared_ptr<const Node> node_;
};

}  // namespace ppsc
