// Text format for population protocols.
//
// A small line-oriented format so protocols can be shipped as data files
// and driven from the command line (examples/protocol_tool):
//
//     # threshold-2 detector
//     state x 0
//     state T 1
//     input x -> x
//     leaders T 1            # optional
//     trans x x -> T T
//     trans x T -> T T
//
// Lines: `state <name> <0|1>`, `input <var> -> <state>`,
// `leaders <state> <count>`, `trans <p> <q> -> <p'> <q'>`; `#` starts a
// comment; blank lines ignored.  Each unordered pre-pair may carry one
// `trans` rule; a further rule for the same pair (a nondeterministic
// protocol) must be written `trans+ <p> <q> -> <p'> <q'>` — a plain
// `trans` re-targeting an already-defined pair is a typed parse error
// (DuplicateRuleError below), and a byte-identical duplicate is a warning.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/protocol.hpp"

namespace ppsc {

/// Conflicting redefinition of a pre-pair: two `trans` lines with the same
/// unordered pre-pair but different post-pairs.  The text format describes
/// deterministic rule tables (nondeterministic protocols are built
/// programmatically via ProtocolBuilder, which accepts multiple rules per
/// pair), so a redefinition is overwhelmingly a typo — a typed error rather
/// than a silent last-writer-wins or an accidental nondeterministic merge.
class DuplicateRuleError : public std::invalid_argument {
public:
    DuplicateRuleError(std::size_t line, std::size_t previous_line, const std::string& what)
        : std::invalid_argument(what), line_(line), previous_line_(previous_line) {}

    /// Line of the conflicting redefinition.
    std::size_t line() const noexcept { return line_; }
    /// Line of the original definition it conflicts with.
    std::size_t previous_line() const noexcept { return previous_line_; }

private:
    std::size_t line_;
    std::size_t previous_line_;
};

/// Non-fatal parser finding (e.g. a byte-identical duplicate rule).
struct ParseWarning {
    std::size_t line = 0;
    std::string message;
};

/// Parses the format above.  Throws std::invalid_argument with a
/// line-numbered message on any syntax or semantic error, and the typed
/// DuplicateRuleError subtype when the same pre-pair is redefined with a
/// different post-pair.  A byte-identical duplicate rule is legal but
/// reported through `warnings` (ignored when null).
Protocol parse_protocol(std::string_view text, std::vector<ParseWarning>* warnings = nullptr);

/// Serialises a protocol back to the text format (round-trips through
/// parse_protocol).
std::string format_protocol(const Protocol& protocol);

}  // namespace ppsc
