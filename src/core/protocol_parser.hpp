// Text format for population protocols.
//
// A small line-oriented format so protocols can be shipped as data files
// and driven from the command line (examples/protocol_tool):
//
//     # threshold-2 detector
//     state x 0
//     state T 1
//     input x -> x
//     leaders T 1            # optional
//     trans x x -> T T
//     trans x T -> T T
//
// Lines: `state <name> <0|1>`, `input <var> -> <state>`,
// `leaders <state> <count>`, `trans <p> <q> -> <p'> <q'>`; `#` starts a
// comment; blank lines ignored.
#pragma once

#include <string_view>

#include "core/protocol.hpp"

namespace ppsc {

/// Parses the format above.  Throws std::invalid_argument with a
/// line-numbered message on any syntax or semantic error.
Protocol parse_protocol(std::string_view text);

/// Serialises a protocol back to the text format (round-trips through
/// parse_protocol).
std::string format_protocol(const Protocol& protocol);

}  // namespace ppsc
