// Log-domain non-negative numbers for astronomical bounds.
//
// Several quantities in the paper — β = 2^(2(2n+1)!+1) (Definition 3), the
// Theorem 5.9 bound 2^((2n+2)!), levels of the fast-growing hierarchy
// (Theorem 4.5) — cannot be materialised even as BigNats for moderate n
// (their *bit counts* overflow memory).  LogNum represents such values as
// log₂(x) in a long double, which comfortably covers towers like
// 2^(10^4000).  For doubly-astronomical values (where even log₂ overflows)
// it saturates to +infinity and says so.
//
// Arithmetic: multiplication and powers are exact in log-domain (up to
// floating-point rounding); addition uses log-sum-exp and is documented as
// approximate.  Comparisons compare log values.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

#include "support/bignat.hpp"

namespace ppsc {

class LogNum {
public:
    /// Zero.
    LogNum() : log2_(-std::numeric_limits<long double>::infinity()) {}

    /// From a machine integer.
    static LogNum from_u64(std::uint64_t value);

    /// From an exact BigNat.
    static LogNum from_bignat(const BigNat& value);

    /// The value 2^exponent where the exponent itself may be huge.
    static LogNum power_of_two(long double exponent) { return LogNum(exponent); }

    /// The value 2^e where e is an exact BigNat exponent (e.g. (2n+2)!).
    static LogNum power_of_two(const BigNat& exponent);

    /// Saturated "too large even for log-domain".
    static LogNum infinity();

    bool is_zero() const noexcept { return std::isinf(static_cast<double>(log2_)) && log2_ < 0; }
    bool is_infinite() const noexcept { return std::isinf(static_cast<double>(log2_)) && log2_ > 0; }

    /// log₂ of the value (the representation itself).
    long double log2_value() const noexcept { return log2_; }

    LogNum operator*(const LogNum& rhs) const;
    LogNum operator/(const LogNum& rhs) const;

    /// Approximate addition via log-sum-exp.
    LogNum operator+(const LogNum& rhs) const;

    /// this^e.
    LogNum pow(long double exponent) const;

    std::partial_ordering operator<=>(const LogNum& rhs) const noexcept {
        return log2_ <=> rhs.log2_;
    }
    bool operator==(const LogNum& rhs) const noexcept { return log2_ == rhs.log2_; }

    /// Rendering: exact-ish decimal for small values, "2^k" for large,
    /// "2^(≈1.2e30)" for very large, "inf" when saturated.
    std::string to_string() const;

private:
    explicit LogNum(long double log2) : log2_(log2) {}

    long double log2_;
};

}  // namespace ppsc
