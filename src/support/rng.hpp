// Deterministic, fast random number generation for simulations.
//
// All stochastic components of the library (schedulers, workload
// generators, the busy-beaver sampler) take an explicit Rng so that every
// experiment is reproducible from its seed.  SplitMix64 passes BigCrush,
// has a 64-bit state, and is trivially seedable — more than adequate for
// protocol scheduling (we are not doing cryptography).
#pragma once

#include <bit>
#include <cstdint>

#include "support/check.hpp"

namespace ppsc {

class Rng {
public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /// Next raw 64-bit value (SplitMix64).
    std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Uniform value in [0, bound). Requires bound > 0.
    /// Lemire's nearly-divisionless method.
    std::uint64_t below(std::uint64_t bound) noexcept {
        PPSC_CHECK(bound > 0);
        unsigned __int128 m = static_cast<unsigned __int128>(next()) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                m = static_cast<unsigned __int128>(next()) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform value in [0, bound) for bounds beyond 64 bits (ordered-pair
    /// weights of populations past 2³¹ agents).  Requires bound > 0.
    /// Delegates to below() whenever the bound fits a word, so callers that
    /// stay in 64-bit range consume the stream exactly as before.
    unsigned __int128 below128(unsigned __int128 bound) noexcept {
        PPSC_CHECK(bound > 0);
        constexpr auto kWordMax = static_cast<unsigned __int128>(~std::uint64_t{0});
        if (bound <= kWordMax) return below(static_cast<std::uint64_t>(bound));
        // Mask-and-reject over the smallest power-of-two range covering
        // bound: < 2 draws of 128 bits in expectation.
        const auto high = static_cast<std::uint64_t>((bound - 1) >> 64);  // > 0 here
        const int bits = 128 - std::countl_zero(high);
        const unsigned __int128 mask =
            (static_cast<unsigned __int128>(bits == 128 ? ~std::uint64_t{0}
                                                        : (std::uint64_t{1} << (bits - 64)) - 1)
             << 64) |
            ~std::uint64_t{0};
        while (true) {
            // Two sequenced draws: high word first.  (A single combined
            // expression would leave the call order unspecified and make
            // per-seed trajectories compiler-dependent.)
            const std::uint64_t high_word = next();
            const std::uint64_t low_word = next();
            const unsigned __int128 v =
                ((static_cast<unsigned __int128>(high_word) << 64) | low_word) & mask;
            if (v < bound) return v;
        }
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// True with probability p (0 ≤ p ≤ 1).
    bool bernoulli(double p) noexcept { return uniform() < p; }

    /// The full generator state — SplitMix64's state is one word, so a
    /// checkpoint carrying this value resumes the stream exactly where it
    /// left off (sim/checkpoint.hpp).
    std::uint64_t state() const noexcept { return state_; }

    /// Restores a state captured by state(): the next draw continues the
    /// original stream byte-identically.
    void set_state(std::uint64_t state) noexcept { state_ = state; }

private:
    std::uint64_t state_;
};

}  // namespace ppsc
