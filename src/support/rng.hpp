// Deterministic, fast random number generation for simulations.
//
// All stochastic components of the library (schedulers, workload
// generators, the busy-beaver sampler) take an explicit Rng so that every
// experiment is reproducible from its seed.  SplitMix64 passes BigCrush,
// has a 64-bit state, and is trivially seedable — more than adequate for
// protocol scheduling (we are not doing cryptography).
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "support/check.hpp"

namespace ppsc {

class Rng {
public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /// Next raw 64-bit value (SplitMix64).
    std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Uniform value in [0, bound). Requires bound > 0.
    /// Lemire's nearly-divisionless method.
    std::uint64_t below(std::uint64_t bound) noexcept {
        PPSC_CHECK(bound > 0);
        unsigned __int128 m = static_cast<unsigned __int128>(next()) * bound;
        // ppsc-lint: allow(R4) deliberate low-word extraction — Lemire's method inspects the low 64 bits
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                m = static_cast<unsigned __int128>(next()) * bound;
                // ppsc-lint: allow(R4) deliberate low-word extraction, same as above
                low = static_cast<std::uint64_t>(m);
            }
        }
        // ppsc-lint: allow(R4) m >> 64 of a 128-bit product fits 64 bits exactly
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform value in [0, bound) for bounds beyond 64 bits (ordered-pair
    /// weights of populations past 2³¹ agents).  Requires bound > 0.
    /// Delegates to below() whenever the bound fits a word, so callers that
    /// stay in 64-bit range consume the stream exactly as before.
    unsigned __int128 below128(unsigned __int128 bound) noexcept {
        PPSC_CHECK(bound > 0);
        constexpr auto kWordMax = static_cast<unsigned __int128>(~std::uint64_t{0});
        // ppsc-lint: allow(R4) guarded by the bound <= kWordMax test on this very line
        if (bound <= kWordMax) return below(static_cast<std::uint64_t>(bound));
        // Mask-and-reject over the smallest power-of-two range covering
        // bound: < 2 draws of 128 bits in expectation.
        // ppsc-lint: allow(R4) (bound - 1) >> 64 of a 128-bit value fits 64 bits exactly
        const auto high = static_cast<std::uint64_t>((bound - 1) >> 64);  // > 0 here
        const int bits = 128 - std::countl_zero(high);
        const unsigned __int128 mask =
            (static_cast<unsigned __int128>(bits == 128 ? ~std::uint64_t{0}
                                                        : (std::uint64_t{1} << (bits - 64)) - 1)
             << 64) |
            ~std::uint64_t{0};
        while (true) {
            // Two sequenced draws: high word first.  (A single combined
            // expression would leave the call order unspecified and make
            // per-seed trajectories compiler-dependent.)
            const std::uint64_t high_word = next();
            const std::uint64_t low_word = next();
            const unsigned __int128 v =
                ((static_cast<unsigned __int128>(high_word) << 64) | low_word) & mask;
            if (v < bound) return v;
        }
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// True with probability p (0 ≤ p ≤ 1).
    bool bernoulli(double p) noexcept { return uniform() < p; }

    /// Standard normal deviate (Box–Muller, one of the pair used).  Two
    /// uniforms per call, so the draw count per variate is deterministic.
    double normal() noexcept {
        double u1 = uniform();
        const double u2 = uniform();
        // uniform() can return exactly 0; log(0) would poison the stream.
        if (u1 <= 0.0) u1 = 0x1.0p-53;
        return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586477 * u2);
    }

    /// Exact Binomial(n, p) deviate.  Inversion for small n·p, Hörmann's
    /// BTRS transformed rejection otherwise — both sample the exact pmf, so
    /// the choice of algorithm only affects speed, not the distribution.
    /// n may be as large as 2⁵³ (the arithmetic is double-based).
    std::uint64_t binomial(std::uint64_t n, double p) noexcept {
        if (n == 0 || p <= 0.0) return 0;
        if (p >= 1.0) return n;
        if (p > 0.5) return n - binomial_half(n, 1.0 - p);
        return binomial_half(n, p);
    }

    /// Exact Poisson(λ) deviate: CDF inversion for small λ, Hörmann's PTRS
    /// transformed rejection for large.  Saturates at uint64 max for
    /// astronomically large λ (callers clamp to a budget anyway).
    std::uint64_t poisson(double lambda) noexcept {
        if (lambda <= 0.0) return 0;
        if (lambda < 10.0) {
            // Multiplicative inversion: product of uniforms vs e^{-λ}.
            const double limit = std::exp(-lambda);
            double prod = 1.0;
            std::uint64_t k = 0;
            do {
                prod *= uniform();
                if (prod < limit) return k;
                ++k;
            } while (k < 1000);
            return k;  // unreachable in practice for λ < 10
        }
        if (lambda > 0x1.0p62) return ~std::uint64_t{0};
        return poisson_ptrs(lambda);
    }

    /// Gamma(shape, 1) deviate for shape ≥ 1 (Marsaglia–Tsang squeeze).
    double gamma(double shape) noexcept {
        PPSC_CHECK(shape >= 1.0);
        const double d = shape - 1.0 / 3.0;
        const double c = 1.0 / std::sqrt(9.0 * d);
        while (true) {
            double x;
            double v;
            do {
                x = normal();
                v = 1.0 + c * x;
            } while (v <= 0.0);
            v = v * v * v;
            const double u = uniform();
            if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
            if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
        }
    }

    /// Negative binomial: number of failures before the k-th success in
    /// Bernoulli(p) trials (k ≥ 1, 0 < p ≤ 1).  Sampled as the exact
    /// Gamma–Poisson mixture Poisson(Gamma(k)·(1−p)/p); saturates at uint64
    /// max when the expectation leaves the representable range.
    std::uint64_t negative_binomial(std::uint64_t k, double p) noexcept {
        PPSC_CHECK(k >= 1 && p > 0.0);
        if (p >= 1.0) return 0;
        const double lambda = gamma(static_cast<double>(k)) * ((1.0 - p) / p);
        return poisson(lambda);
    }

    /// The full generator state — SplitMix64's state is one word, so a
    /// checkpoint carrying this value resumes the stream exactly where it
    /// left off (sim/checkpoint.hpp).
    std::uint64_t state() const noexcept { return state_; }

    /// Restores a state captured by state(): the next draw continues the
    /// original stream byte-identically.
    void set_state(std::uint64_t state) noexcept { state_ = state; }

private:
    static double lfact(double x) noexcept { return std::lgamma(x + 1.0); }

    /// Binomial(n, p) for 0 < p ≤ 0.5.
    std::uint64_t binomial_half(std::uint64_t n, double p) noexcept {
        const double np = static_cast<double>(n) * p;
        if (np < 10.0 || n < 64) {
            // Geometric-gap inversion: walk from 0 jumping over failures;
            // O(n·p) expected draws, exact for any n.
            const double log_q = std::log1p(-p);
            std::uint64_t successes = 0;
            double trials = 0.0;
            const double nd = static_cast<double>(n);
            while (true) {
                double u = uniform();
                if (u <= 0.0) u = 0x1.0p-53;
                trials += std::floor(std::log(u) / log_q) + 1.0;
                if (trials > nd) return successes;
                ++successes;
            }
        }
        return binomial_btrs(n, p);
    }

    /// Hörmann's BTRS transformed rejection (1993), exact for n·p ≥ 10,
    /// p ≤ 0.5.  The same parameterization numpy uses.
    std::uint64_t binomial_btrs(std::uint64_t n, double p) noexcept {
        const double nd = static_cast<double>(n);
        const double q = 1.0 - p;
        const double spq = std::sqrt(nd * p * q);
        const double b = 1.15 + 2.53 * spq;
        const double a = -0.0873 + 0.0248 * b + 0.01 * p;
        const double c = nd * p + 0.5;
        const double v_r = 0.92 - 4.2 / b;
        const double alpha = (2.83 + 5.1 / b) * spq;
        const double lpq = std::log(p / q);
        const double m = std::floor((nd + 1.0) * p);
        const double h = lfact(m) + lfact(nd - m);
        while (true) {
            const double u = uniform() - 0.5;
            double v = uniform();
            const double us = 0.5 - std::fabs(u);
            const double kd = std::floor((2.0 * a / us + b) * u + c);
            if (kd < 0.0 || kd > nd) continue;
            if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(kd);
            if (v <= 0.0) continue;
            v = std::log(v * alpha / (a / (us * us) + b));
            if (v <= h - lfact(kd) - lfact(nd - kd) + (kd - m) * lpq) {
                return static_cast<std::uint64_t>(kd);
            }
        }
    }

    /// Hörmann's PTRS transformed rejection for Poisson, exact for λ ≥ 10.
    std::uint64_t poisson_ptrs(double lambda) noexcept {
        const double slam = std::sqrt(lambda);
        const double loglam = std::log(lambda);
        const double b = 0.931 + 2.53 * slam;
        const double a = -0.059 + 0.02483 * b;
        const double invalpha = 1.1239 + 1.1328 / (b - 3.4);
        const double v_r = 0.9277 - 3.6224 / (b - 2.0);
        while (true) {
            const double u = uniform() - 0.5;
            double v = uniform();
            const double us = 0.5 - std::fabs(u);
            const double kd = std::floor((2.0 * a / us + b) * u + lambda + 0.43);
            if (us >= 0.07 && v <= v_r) {
                return kd < 0.0 ? 0 : static_cast<std::uint64_t>(kd);
            }
            if (kd < 0.0 || (us < 0.013 && v > us)) continue;
            if (v <= 0.0) continue;
            if (std::log(v) + std::log(invalpha) - std::log(a / (us * us) + b) <=
                kd * loglam - lambda - lfact(kd)) {
                return static_cast<std::uint64_t>(kd);
            }
        }
    }

    std::uint64_t state_;
};

}  // namespace ppsc
