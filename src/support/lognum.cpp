#include "support/lognum.hpp"

#include <cstdio>
#include <limits>

namespace ppsc {

LogNum LogNum::from_u64(std::uint64_t value) {
    if (value == 0) return LogNum();
    return LogNum(std::log2(static_cast<long double>(value)));
}

LogNum LogNum::from_bignat(const BigNat& value) {
    if (value.is_zero()) return LogNum();
    return LogNum(static_cast<long double>(value.log2_approx()));
}

LogNum LogNum::power_of_two(const BigNat& exponent) {
    // A long double holds ~2^16384; exponents beyond ~1e4900 saturate.
    const double log2_of_exponent = exponent.log2_approx();
    if (log2_of_exponent > 16300.0) return infinity();
    long double e = 0.0L;
    for (std::size_t i = exponent.limbs().size(); i-- > 0;)
        e = e * 4294967296.0L + static_cast<long double>(exponent.limbs()[i]);
    return LogNum(e);
}

LogNum LogNum::infinity() {
    return LogNum(std::numeric_limits<long double>::infinity());
}

LogNum LogNum::operator*(const LogNum& rhs) const {
    if (is_zero() || rhs.is_zero()) return LogNum();
    return LogNum(log2_ + rhs.log2_);
}

LogNum LogNum::operator/(const LogNum& rhs) const {
    if (is_zero()) return LogNum();
    return LogNum(log2_ - rhs.log2_);
}

LogNum LogNum::operator+(const LogNum& rhs) const {
    if (is_zero()) return rhs;
    if (rhs.is_zero()) return *this;
    const long double hi = std::max(log2_, rhs.log2_);
    const long double lo = std::min(log2_, rhs.log2_);
    if (hi - lo > 64.0L) return LogNum(hi);  // the smaller addend vanishes
    return LogNum(hi + std::log2(1.0L + std::exp2(lo - hi)));
}

LogNum LogNum::pow(long double exponent) const {
    if (is_zero()) return exponent == 0.0L ? LogNum(0.0L) : LogNum();
    return LogNum(log2_ * exponent);
}

std::string LogNum::to_string() const {
    if (is_zero()) return "0";
    if (is_infinite()) return "inf";
    char buffer[80];
    if (log2_ <= 63.0L) {
        const auto value = static_cast<unsigned long long>(std::llroundl(std::exp2(log2_)));
        std::snprintf(buffer, sizeof buffer, "%llu", value);
    } else if (log2_ < 1.0e6L) {
        std::snprintf(buffer, sizeof buffer, "2^%.1Lf", log2_);
    } else {
        std::snprintf(buffer, sizeof buffer, "2^(~%.3Le)", log2_);
    }
    return buffer;
}

}  // namespace ppsc
