// Fenwick (binary indexed) tree over signed 64-bit weights.
//
// The simulation hot path needs three operations on the agent-count vector
// of a configuration: point update (a transition moves agents between
// states), total weight (the population size), and inverse-CDF sampling
// ("which state holds the agent with rank r?").  A Fenwick tree does all
// three in O(log n) — replacing the O(n) prefix scan the simulator used to
// run on every interaction — and its flat array layout keeps the whole
// structure in one or two cache lines for the protocol sizes this library
// works with.
//
// Weights must stay non-negative for sample() to be meaningful; add() does
// not enforce this (the simulator's count arithmetic already does).
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace ppsc {

class FenwickTree {
public:
    FenwickTree() = default;
    explicit FenwickTree(std::span<const std::int64_t> weights) { assign(weights); }

    /// Rebuilds the tree over `weights` in O(n).
    void assign(std::span<const std::int64_t> weights);

    std::size_t size() const noexcept { return size_; }

    /// Sum of all weights, maintained incrementally — O(1).
    std::int64_t total() const noexcept { return total_; }

    /// weights[i] += delta — O(log n).
    void add(std::size_t i, std::int64_t delta) {
        PPSC_DASSERT(i < size_);
        total_ += delta;
        for (std::size_t j = i + 1; j <= size_; j += j & (~j + 1)) tree_[j] += delta;
    }

    /// Sum of weights[0..i) — O(log n).
    std::int64_t prefix_sum(std::size_t i) const;

    /// weights[i] — O(log n).
    std::int64_t value(std::size_t i) const;

    /// The smallest index i with prefix_sum(i+1) > r, i.e. the state holding
    /// the agent of rank `r` when weights are agent counts.  Requires
    /// 0 ≤ r < total().  O(log n).
    std::size_t sample(std::int64_t r) const {
        PPSC_DASSERT(r >= 0 && r < total_);
        std::size_t idx = 0;
        for (std::size_t mask = top_mask_; mask != 0; mask >>= 1) {
            const std::size_t next = idx + mask;
            if (next <= size_ && tree_[next] <= r) {
                idx = next;
                r -= tree_[next];
            }
        }
        return idx;
    }

private:
    std::vector<std::int64_t> tree_;  // 1-based implicit binary indexed tree
    std::size_t size_ = 0;
    std::size_t top_mask_ = 0;  // largest power of two ≤ size_
    std::int64_t total_ = 0;
};

}  // namespace ppsc
