// Fenwick (binary indexed) tree, templated over the weight type.
//
// The simulation hot path needs three operations on a weight vector: point
// update (a transition moves agents between states, or changes the weight of
// an ordered state pair), total weight, and inverse-CDF sampling ("which
// slot holds rank r?").  A Fenwick tree does all three in O(log n) — and its
// flat array layout keeps the whole structure in a handful of cache lines
// for the sizes this library works with.
//
// Two instantiations are used:
//   * FenwickTree    — int64 weights, the per-state agent counts;
//   * FenwickTree128 — __int128 weights, the ordered non-silent *pair*
//     weights of the simulator (2·c_p·c_q can exceed int64 as soon as the
//     population passes 2³¹ agents, so the pair tree is 128-bit throughout).
//
// Weights must stay non-negative for sample() to be meaningful; add() does
// not enforce this (the simulator's count arithmetic already does).  All
// operations are well-defined on an empty tree (size 0, total 0); sample()
// additionally requires total() > 0.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace ppsc {

/// Signed 128-bit weights for quantities quadratic in the population
/// (ordered pair counts n·(n−1) overflow int64 beyond 2³¹ agents).
using Int128 = __int128;

template <typename Weight>
class BasicFenwickTree {
public:
    BasicFenwickTree() = default;
    explicit BasicFenwickTree(std::span<const Weight> weights) { assign(weights); }

    /// Rebuilds the tree over `weights` in O(n).  An empty span yields the
    /// empty tree (size 0, total 0) and is always safe.
    void assign(std::span<const Weight> weights) {
        size_ = weights.size();
        top_mask_ = size_ == 0 ? 0 : std::bit_floor(size_);
        tree_.assign(size_ + 1, 0);
        total_ = 0;
        // O(n) build: seed each node with its weight, then push partial sums
        // to the parent in index order.
        for (std::size_t i = 1; i <= size_; ++i) {
            tree_[i] += weights[i - 1];
            total_ += weights[i - 1];
            const std::size_t parent = i + (i & (~i + 1));
            if (parent <= size_) tree_[parent] += tree_[i];
        }
    }

    std::size_t size() const noexcept { return size_; }

    /// Sum of all weights, maintained incrementally — O(1).
    Weight total() const noexcept { return total_; }

    /// weights[i] += delta — O(log n).
    void add(std::size_t i, Weight delta) {
        PPSC_DASSERT(i < size_);
        total_ += delta;
        for (std::size_t j = i + 1; j <= size_; j += j & (~j + 1)) tree_[j] += delta;
    }

    /// Sum of weights[0..i) — O(log n).
    Weight prefix_sum(std::size_t i) const {
        PPSC_DASSERT(i <= size_);
        Weight sum = 0;
        for (std::size_t j = i; j > 0; j -= j & (~j + 1)) sum += tree_[j];
        return sum;
    }

    /// weights[i] — O(log n).
    Weight value(std::size_t i) const {
        PPSC_DASSERT(i < size_);
        return prefix_sum(i + 1) - prefix_sum(i);
    }

    /// Distributes `count` independent weight-proportional categorical draws
    /// over the slots in one pass: a top-down conditional-binomial walk of
    /// the index range (split the range, draw Binomial(k, W_left/W) for the
    /// left half, recurse into both halves, prune zero-draw and zero-weight
    /// subtrees).  Marginally each slot receives Binomial(count, w_i/W) and
    /// jointly the vector is exactly Multinomial(count, w/W) — identical in
    /// distribution to `count` sequential sample() calls, in
    /// O(A·log²n + count_splits) instead of O(count·log n), where A is the
    /// number of weight-bearing slots.  Conditional probabilities are formed
    /// in double precision.  Calls emit(slot, c) once per slot with c > 0.
    /// Requires total() > 0 when count > 0.
    template <typename RngT, typename Emit>
    void multinomial(std::uint64_t count, RngT& rng, Emit&& emit) const {
        if (count == 0 || size_ == 0) return;
        PPSC_CHECK(total_ > 0);
        multinomial_split(0, size_, count, total_, rng, emit);
    }

    /// The smallest index i with prefix_sum(i+1) > r, i.e. the slot holding
    /// rank `r`.  Requires 0 ≤ r < total().  O(log n).
    std::size_t sample(Weight r) const {
        PPSC_DASSERT(r >= 0 && r < total_);
        std::size_t idx = 0;
        for (std::size_t mask = top_mask_; mask != 0; mask >>= 1) {
            const std::size_t next = idx + mask;
            if (next <= size_ && tree_[next] <= r) {
                idx = next;
                r -= tree_[next];
            }
        }
        return idx;
    }

private:
    template <typename RngT, typename Emit>
    void multinomial_split(std::size_t lo, std::size_t hi, std::uint64_t count, Weight weight,
                           RngT& rng, Emit& emit) const {
        while (hi - lo > 1) {
            const std::size_t mid = lo + (hi - lo) / 2;
            const Weight left = prefix_sum(mid) - prefix_sum(lo);
            if (left == weight) {  // right half weightless: all draws go left
                hi = mid;
                continue;
            }
            if (left == 0) {  // left half weightless: all draws go right
                lo = mid;
                continue;
            }
            const std::uint64_t count_left =
                rng.binomial(count, static_cast<double>(left) / static_cast<double>(weight));
            if (count_left > 0) multinomial_split(lo, mid, count_left, left, rng, emit);
            count -= count_left;
            if (count == 0) return;
            lo = mid;
            weight -= left;
        }
        emit(lo, count);
    }

    std::vector<Weight> tree_;  // 1-based implicit binary indexed tree
    std::size_t size_ = 0;
    std::size_t top_mask_ = 0;  // largest power of two ≤ size_
    Weight total_ = 0;
};

extern template class BasicFenwickTree<std::int64_t>;
extern template class BasicFenwickTree<Int128>;

/// Agent-count tree (weights bounded by the population, fits int64).
using FenwickTree = BasicFenwickTree<std::int64_t>;
/// Ordered-pair-weight tree (weights quadratic in the population).
using FenwickTree128 = BasicFenwickTree<Int128>;

}  // namespace ppsc
