// Lightweight invariant checking for the ppsc library.
//
// PPSC_CHECK is used for *internal* invariants: a failure indicates a bug in
// this library, and throws std::logic_error (never undefined behaviour).
// API misuse by callers is reported with std::invalid_argument at the
// public-interface boundary instead; see the individual headers.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ppsc {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& message) {
    std::ostringstream os;
    os << "ppsc internal check failed: " << expr << " at " << file << ':' << line;
    if (!message.empty()) os << " — " << message;
    throw std::logic_error(os.str());
}

}  // namespace ppsc

#define PPSC_CHECK(expr)                                              \
    do {                                                              \
        if (!(expr)) ::ppsc::check_failed(#expr, __FILE__, __LINE__, {}); \
    } while (false)

#define PPSC_CHECK_MSG(expr, msg)                                     \
    do {                                                              \
        if (!(expr)) {                                                \
            std::ostringstream ppsc_check_os;                         \
            ppsc_check_os << msg;                                     \
            ::ppsc::check_failed(#expr, __FILE__, __LINE__, ppsc_check_os.str()); \
        }                                                             \
    } while (false)

// Debug-only invariant check for hot paths: full PPSC_CHECK in debug builds,
// free in release builds (NDEBUG).  Use where a bounds or range check would
// cost measurable throughput per simulation step.
#ifdef NDEBUG
#define PPSC_DASSERT(expr) ((void)0)
#else
#define PPSC_DASSERT(expr) PPSC_CHECK(expr)
#endif
