// Lightweight invariant checking for the ppsc library.
//
// PPSC_CHECK is used for *internal* invariants: a failure indicates a bug in
// this library, and throws std::logic_error (never undefined behaviour).
// API misuse by callers is reported with std::invalid_argument at the
// public-interface boundary instead; see the individual headers.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ppsc {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& message) {
    std::ostringstream os;
    os << "ppsc internal check failed: " << expr << " at " << file << ':' << line;
    if (!message.empty()) os << " — " << message;
    throw std::logic_error(os.str());
}

/// Checked narrowing conversion: static_cast plus a round-trip + sign
/// check, throwing (via PPSC_CHECK) when the value does not fit the target
/// type.  The ppsc-lint rule R4 requires every narrowing cast out of the
/// __int128 weight lanes to go through this helper (or carry a suppression
/// arguing the range bound): silent truncation there corrupts sampling
/// distributions without failing any functional test.  Works for any pair
/// of integer types including __int128, which has no std::is_signed under
/// -std=c++20 (no GNU extensions), hence the homegrown signedness probes.
template <typename To, typename From>
constexpr To checked_narrow(From value) {
    constexpr bool from_signed = static_cast<From>(-1) < static_cast<From>(0);
    constexpr bool to_signed = static_cast<To>(-1) < static_cast<To>(0);
    const To narrowed = static_cast<To>(value);
    bool fits = static_cast<From>(narrowed) == value;
    if constexpr (from_signed && !to_signed) {
        fits = fits && value >= static_cast<From>(0);
    } else if constexpr (!from_signed && to_signed) {
        fits = fits && narrowed >= static_cast<To>(0);
    }
    if (!fits) check_failed("checked_narrow: value fits target type", __FILE__, __LINE__, {});
    return narrowed;
}

}  // namespace ppsc

#define PPSC_CHECK(expr)                                              \
    do {                                                              \
        if (!(expr)) ::ppsc::check_failed(#expr, __FILE__, __LINE__, {}); \
    } while (false)

// Marks code that an exhaustive switch (or equivalent) proves dead.  The
// check_failed call reports corruption if it is ever reached anyway; the
// trailing __builtin_unreachable() keeps -Wreturn-type quiet even under
// -fsanitize=thread, whose instrumentation defeats GCC's [[noreturn]]
// propagation at the call site.
#define PPSC_UNREACHABLE()                                                           \
    do {                                                                             \
        ::ppsc::check_failed("unreachable code reached", __FILE__, __LINE__, {});    \
        __builtin_unreachable();                                                     \
    } while (false)

#define PPSC_CHECK_MSG(expr, msg)                                     \
    do {                                                              \
        if (!(expr)) {                                                \
            std::ostringstream ppsc_check_os;                         \
            ppsc_check_os << msg;                                     \
            ::ppsc::check_failed(#expr, __FILE__, __LINE__, ppsc_check_os.str()); \
        }                                                             \
    } while (false)

// Debug-only invariant check for hot paths: full PPSC_CHECK in debug builds,
// free in release builds (NDEBUG).  Use where a bounds or range check would
// cost measurable throughput per simulation step.
#ifdef NDEBUG
#define PPSC_DASSERT(expr) ((void)0)
#else
#define PPSC_DASSERT(expr) PPSC_CHECK(expr)
#endif
