// Statistical-equivalence test harness.
//
// Epoch-batched stepping (sim/simulator.hpp, StepMode::epoch) is
// *distribution*-identical to the per-step reference rather than
// trajectory-identical, so its correctness argument is statistical: fixed
// seeds, explicit significance levels, and tests that compare realized
// samples against either a known law (chi-squared goodness-of-fit) or a
// reference sample (two-sample mean/variance/Kolmogorov-Smirnov tests).
// This header is that shared vocabulary — used by tests/support_stats/,
// the migrated pair-selection chi-squared test, and the CI
// `bench_simulation --epoch-smoke` leg.
//
// Design rules, so CI stays flake-free:
//   * Every test is deterministic: seeds derive from a fixed base via
//     derive_seed(), never from time or global state.
//   * Significance levels are explicit and conservative (default α = 10⁻³)
//     and multi-test suites divide α through bonferroni() — a suite of m
//     tests at family level α runs each test at α/m.
//   * Critical values come from a pinned table (the classic chi-squared
//     quantiles, doubling as a regression anchor for the analytic path)
//     with an analytic fallback — the regularized incomplete gamma
//     function, inverted by bisection — for any (df, α) off the table.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "support/check.hpp"

namespace ppsc::stat {

// ---------------------------------------------------------------------------
// Deterministic seeding

/// Derives a per-case seed from a base seed and a label, SplitMix64-style:
/// stable across platforms and runs, so every statistical test names its
/// stream explicitly instead of slicing a shared one.
inline std::uint64_t derive_seed(std::uint64_t base, std::string_view label) noexcept {
    std::uint64_t h = base ^ 0x9e3779b97f4a7c15ull;
    for (const char ch : label) {
        h ^= static_cast<std::uint8_t>(ch);
        h *= 0x100000001b3ull;  // FNV-1a fold, then a SplitMix64 finalizer
    }
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
}

/// Per-test significance for m tests at family-wise level `family_alpha`
/// (Bonferroni correction).
constexpr double bonferroni(double family_alpha, int tests) noexcept {
    return tests <= 1 ? family_alpha : family_alpha / tests;
}

// ---------------------------------------------------------------------------
// Distribution functions

/// Quantile of the standard normal (Acklam's rational approximation,
/// |relative error| < 1.2e-9 over (0, 1)).
inline double normal_quantile(double p) {
    PPSC_CHECK(p > 0.0 && p < 1.0);
    static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                   -2.759285104469687e+02, 1.383577518672690e+02,
                                   -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                   -1.556989798598866e+02, 6.680131188771972e+01,
                                   -1.328068155288572e+01};
    static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                   -2.400758277161838e+00, -2.549732539343734e+00,
                                   4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                   2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double p_low = 0.02425;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > 1.0 - p_low) return -normal_quantile(1.0 - p);
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

/// Regularized lower incomplete gamma P(a, x) (series for x < a+1,
/// continued fraction beyond — the Numerical-Recipes split).
inline double regularized_gamma_p(double a, double x) {
    PPSC_CHECK(a > 0.0 && x >= 0.0);
    if (x == 0.0) return 0.0;
    const double log_prefix = a * std::log(x) - x - std::lgamma(a);
    if (x < a + 1.0) {
        // Series: P(a,x) = e^{-x} x^a / Γ(a) · Σ x^n / (a(a+1)...(a+n)).
        double term = 1.0 / a;
        double sum = term;
        for (int n = 1; n < 10000; ++n) {
            term *= x / (a + n);
            sum += term;
            if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
        }
        return std::exp(log_prefix) * sum;
    }
    // Lentz continued fraction for Q(a,x); P = 1 − Q.
    constexpr double tiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i < 10000; ++i) {
        const double an = -i * (i - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < tiny) d = tiny;
        c = b + an / c;
        if (std::fabs(c) < tiny) c = tiny;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::fabs(delta - 1.0) < 1e-15) break;
    }
    return 1.0 - std::exp(log_prefix) * h;
}

/// Right-tail probability of the chi-squared distribution:
/// P[X ≥ x] for X ~ χ²(df).
inline double chi_squared_sf(int df, double x) {
    PPSC_CHECK(df >= 1);
    if (x <= 0.0) return 1.0;
    return 1.0 - regularized_gamma_p(0.5 * df, 0.5 * x);
}

namespace detail {
/// Pinned upper critical values of χ²(df) at the suite's canonical levels —
/// the classic table rows, kept both as the fast path and as a regression
/// anchor the analytic inversion is tested against.
struct ChiSquaredRow {
    double q050;  // α = 0.05
    double q010;  // α = 0.01
    double q001;  // α = 0.001
};
inline constexpr ChiSquaredRow kChiSquaredTable[] = {
    /* df=1  */ {3.841, 6.635, 10.828},
    /* df=2  */ {5.991, 9.210, 13.816},
    /* df=3  */ {7.815, 11.345, 16.266},
    /* df=4  */ {9.488, 13.277, 18.467},
    /* df=5  */ {11.070, 15.086, 20.515},
    /* df=6  */ {12.592, 16.812, 22.458},
    /* df=7  */ {14.067, 18.475, 24.322},
    /* df=8  */ {15.507, 20.090, 26.124},
    /* df=9  */ {16.919, 21.666, 27.877},
    /* df=10 */ {18.307, 23.209, 29.588},
    /* df=11 */ {19.675, 24.725, 31.264},
    /* df=12 */ {21.026, 26.217, 32.909},
    /* df=13 */ {22.362, 27.688, 34.528},
    /* df=14 */ {23.685, 29.141, 36.123},
    /* df=15 */ {24.996, 30.578, 37.697},
};
}  // namespace detail

/// Upper critical value of χ²(df) at significance `alpha`: the x with
/// P[X ≥ x] = alpha.  Table-backed at the canonical levels for df ≤ 15,
/// inverted from the survival function (bisection) elsewhere.
inline double chi_squared_critical(int df, double alpha = 1e-3) {
    PPSC_CHECK(df >= 1 && alpha > 0.0 && alpha < 1.0);
    constexpr auto near = [](double x, double y) { return std::fabs(x - y) < 1e-12; };
    const auto table_rows =
        static_cast<int>(sizeof(detail::kChiSquaredTable) / sizeof(detail::ChiSquaredRow));
    if (df <= table_rows) {
        const auto& row = detail::kChiSquaredTable[df - 1];
        if (near(alpha, 0.05)) return row.q050;
        if (near(alpha, 0.01)) return row.q010;
        if (near(alpha, 0.001)) return row.q001;
    }
    // Bisection on the (monotone) survival function; the Wilson-Hilferty
    // normal approximation brackets the root.
    const double z = normal_quantile(1.0 - alpha);
    const double wh_core = 1.0 - 2.0 / (9.0 * df) + z * std::sqrt(2.0 / (9.0 * df));
    double guess = df * wh_core * wh_core * wh_core;
    if (!(guess > 0.0)) guess = 1.0;
    double lo = guess;
    double hi = guess;
    while (chi_squared_sf(df, lo) < alpha) lo *= 0.5;
    while (chi_squared_sf(df, hi) > alpha) hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (chi_squared_sf(df, mid) > alpha) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo < 1e-10 * (1.0 + hi)) break;
    }
    return 0.5 * (lo + hi);
}

// ---------------------------------------------------------------------------
// Chi-squared goodness-of-fit

struct GofResult {
    double statistic = 0.0;  ///< Pearson X² over the (pooled) cells
    int df = 0;              ///< pooled cells − 1
    double critical = 0.0;   ///< χ²(df) upper critical value at alpha
    double p_value = 1.0;    ///< right-tail probability of the statistic
    std::size_t cells = 0;   ///< cells after pooling
    bool pass = false;       ///< statistic ≤ critical
};

/// Pearson chi-squared goodness-of-fit of observed counts against expected
/// cell weights (any positive scale — normalized internally).  Cells whose
/// expected count falls under `min_expected` are pooled into one, keeping
/// the asymptotic χ² approximation honest for sparse tails.  Requires at
/// least two effective cells.
inline GofResult chi_squared_gof(std::span<const std::uint64_t> observed,
                                 std::span<const double> weights, double alpha = 1e-3,
                                 double min_expected = 5.0) {
    PPSC_CHECK(observed.size() == weights.size() && !observed.empty());
    std::uint64_t total_count = 0;
    double total_weight = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        PPSC_CHECK(weights[i] >= 0.0);
        total_count += observed[i];
        total_weight += weights[i];
    }
    PPSC_CHECK(total_count > 0 && total_weight > 0.0);
    const double scale = static_cast<double>(total_count) / total_weight;

    GofResult result;
    double pooled_observed = 0.0;
    double pooled_expected = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        const double expected = weights[i] * scale;
        if (expected < min_expected) {
            pooled_observed += static_cast<double>(observed[i]);
            pooled_expected += expected;
            continue;
        }
        const double diff = static_cast<double>(observed[i]) - expected;
        result.statistic += diff * diff / expected;
        ++result.cells;
    }
    if (pooled_expected > 0.0) {
        const double diff = pooled_observed - pooled_expected;
        result.statistic += diff * diff / pooled_expected;
        ++result.cells;
    }
    PPSC_CHECK_MSG(result.cells >= 2, "chi-squared needs at least two effective cells");
    result.df = static_cast<int>(result.cells) - 1;
    result.critical = chi_squared_critical(result.df, alpha);
    result.p_value = chi_squared_sf(result.df, result.statistic);
    result.pass = result.statistic <= result.critical;
    return result;
}

// ---------------------------------------------------------------------------
// Two-sample tests

struct SampleMoments {
    std::size_t n = 0;
    double mean = 0.0;
    double variance = 0.0;  ///< unbiased (n−1 denominator)
    double m4 = 0.0;        ///< fourth central moment (for the variance test)
};

/// One pass of central moments up to order four.
inline SampleMoments sample_moments(std::span<const double> xs) {
    PPSC_CHECK(xs.size() >= 2);
    SampleMoments m;
    m.n = xs.size();
    double sum = 0.0;
    for (const double x : xs) sum += x;
    m.mean = sum / static_cast<double>(m.n);
    double s2 = 0.0;
    double s4 = 0.0;
    for (const double x : xs) {
        const double d = x - m.mean;
        s2 += d * d;
        s4 += d * d * d * d;
    }
    m.variance = s2 / static_cast<double>(m.n - 1);
    m.m4 = s4 / static_cast<double>(m.n);
    return m;
}

struct TwoSampleResult {
    double statistic = 0.0;  ///< |z| (moment tests) or the KS statistic
    double critical = 0.0;
    bool pass = false;  ///< statistic ≤ critical, i.e. "no detectable difference"
};

/// Large-sample two-sided test of equal means (Welch's z: no equal-variance
/// or normality assumption — the standard error comes from the data).
inline TwoSampleResult mean_equivalence_test(const SampleMoments& a, const SampleMoments& b,
                                             double alpha = 1e-3) {
    TwoSampleResult r;
    const double se2 = a.variance / static_cast<double>(a.n) +  //
                       b.variance / static_cast<double>(b.n);
    PPSC_CHECK(se2 > 0.0);
    r.statistic = std::fabs(a.mean - b.mean) / std::sqrt(se2);
    r.critical = normal_quantile(1.0 - 0.5 * alpha);
    r.pass = r.statistic <= r.critical;
    return r;
}

/// Large-sample two-sided test of equal variances.  Var[s²] ≈ (μ₄ − σ⁴)/n
/// — estimated from each sample's own fourth moment, so heavy-tailed
/// convergence-time distributions are handled without normality
/// assumptions (an F-test would not be).
inline TwoSampleResult variance_equivalence_test(const SampleMoments& a, const SampleMoments& b,
                                                 double alpha = 1e-3) {
    TwoSampleResult r;
    const double va = std::max(a.m4 - a.variance * a.variance, 0.0) / static_cast<double>(a.n);
    const double vb = std::max(b.m4 - b.variance * b.variance, 0.0) / static_cast<double>(b.n);
    const double se2 = va + vb;
    PPSC_CHECK(se2 > 0.0);
    r.statistic = std::fabs(a.variance - b.variance) / std::sqrt(se2);
    r.critical = normal_quantile(1.0 - 0.5 * alpha);
    r.pass = r.statistic <= r.critical;
    return r;
}

/// Two-sample Kolmogorov-Smirnov test (asymptotic critical value
/// c(α)·√((n+m)/(n·m)) with c(α) = √(−ln(α/2)/2)) — sensitive to any
/// distributional difference, not just the first two moments.  Sorts
/// copies; samples of a few hundred to a few thousand are the intended
/// scale.
inline TwoSampleResult ks_two_sample(std::vector<double> a, std::vector<double> b,
                                     double alpha = 1e-3) {
    PPSC_CHECK(!a.empty() && !b.empty());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    const double na = static_cast<double>(a.size());
    const double nb = static_cast<double>(b.size());
    double d = 0.0;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        const double x = std::min(a[i], b[j]);
        while (i < a.size() && a[i] <= x) ++i;
        while (j < b.size() && b[j] <= x) ++j;
        d = std::max(d, std::fabs(static_cast<double>(i) / na - static_cast<double>(j) / nb));
    }
    TwoSampleResult r;
    r.statistic = d;
    const double c_alpha = std::sqrt(-0.5 * std::log(0.5 * alpha));
    r.critical = c_alpha * std::sqrt((na + nb) / (na * nb));
    r.pass = r.statistic <= r.critical;
    return r;
}

}  // namespace ppsc::stat
