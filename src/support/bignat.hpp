// Arbitrary-precision natural numbers.
//
// The paper's bounds (β = 2^(2(2n+1)!+1), Theorem 5.9's 2^((2n+2)!), the
// fast-growing hierarchy of Theorem 4.5) overflow every machine word almost
// immediately.  BigNat provides exact arithmetic for the range where exact
// values are still representable (millions of bits); beyond that, callers
// switch to the log-domain LogNum type (lognum.hpp).
//
// Representation: little-endian vector of 32-bit limbs, no leading zero limb
// (canonical form); the empty vector is zero.  Value semantics throughout
// (regular type: default/copy/move/==).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ppsc {

class BigNat {
public:
    /// Zero.
    BigNat() = default;

    /// From a machine integer.
    BigNat(std::uint64_t value);  // NOLINT(google-explicit-constructor): numeric literal convenience

    /// Parses a base-10 string of digits. Throws std::invalid_argument on
    /// empty input or non-digit characters.
    static BigNat from_decimal(std::string_view text);

    /// 2^exponent.
    static BigNat power_of_two(std::uint64_t exponent);

    /// n! computed exactly. Throws std::overflow_error if the result would
    /// exceed `max_bits` bits (guard against runaway growth).
    static BigNat factorial(std::uint64_t n, std::uint64_t max_bits = 1u << 26);

    bool is_zero() const noexcept { return limbs_.empty(); }

    /// Number of bits in the binary representation; 0 for zero.
    std::uint64_t bit_length() const noexcept;

    /// True iff the value fits in a std::uint64_t.
    bool fits_u64() const noexcept { return bit_length() <= 64; }

    /// Value as std::uint64_t. Throws std::overflow_error if it does not fit.
    std::uint64_t to_u64() const;

    /// log2 of the value as a double (for plotting / log-domain handoff).
    /// Returns -inf for zero.
    double log2_approx() const noexcept;

    BigNat& operator+=(const BigNat& rhs);
    BigNat& operator-=(const BigNat& rhs);  ///< Throws std::underflow_error if rhs > *this.
    BigNat& operator*=(const BigNat& rhs);
    BigNat& operator<<=(std::uint64_t bits);
    BigNat& operator>>=(std::uint64_t bits);

    friend BigNat operator+(BigNat lhs, const BigNat& rhs) { return lhs += rhs; }
    friend BigNat operator-(BigNat lhs, const BigNat& rhs) { return lhs -= rhs; }
    friend BigNat operator*(BigNat lhs, const BigNat& rhs) { return lhs *= rhs; }
    friend BigNat operator<<(BigNat lhs, std::uint64_t bits) { return lhs <<= bits; }
    friend BigNat operator>>(BigNat lhs, std::uint64_t bits) { return lhs >>= bits; }

    /// this^exponent (0^0 == 1). Throws std::overflow_error if the result
    /// would exceed `max_bits` bits.
    BigNat pow(std::uint64_t exponent, std::uint64_t max_bits = 1u << 26) const;

    /// Division by a machine word; returns quotient, sets `remainder`.
    /// Throws std::invalid_argument when divisor == 0.
    BigNat div_u32(std::uint32_t divisor, std::uint32_t& remainder) const;

    std::strong_ordering operator<=>(const BigNat& rhs) const noexcept;
    bool operator==(const BigNat& rhs) const noexcept = default;

    /// Base-10 rendering.
    std::string to_string() const;

    /// Compact scientific-style rendering: exact decimal when short,
    /// otherwise "≈10^k" style based on log2.
    std::string to_display_string(std::size_t max_digits = 24) const;

    const std::vector<std::uint32_t>& limbs() const noexcept { return limbs_; }

private:
    void trim() noexcept;

    std::vector<std::uint32_t> limbs_;
};

}  // namespace ppsc
