// Hashing utilities shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ppsc {

/// Mixes `value` into `seed` (boost::hash_combine style, 64-bit constants).
inline void hash_combine(std::size_t& seed, std::size_t value) noexcept {
    seed ^= value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

/// Hash of a vector of integers (FNV-ish via hash_combine).
template <typename Int>
std::size_t hash_int_vector(const std::vector<Int>& values) noexcept {
    std::size_t seed = 0x243f6a8885a308d3ull ^ values.size();
    for (const Int v : values) hash_combine(seed, static_cast<std::size_t>(v));
    return seed;
}

}  // namespace ppsc
