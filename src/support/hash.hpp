// Hashing utilities shared across the library.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace ppsc {

/// Mixes `value` into `seed` (boost::hash_combine style, 64-bit constants).
inline void hash_combine(std::size_t& seed, std::size_t value) noexcept {
    seed ^= value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

/// splitmix64 finalizer: a full-avalanche 64→64 mix, so nearby keys (packed
/// state pairs are dense in both halves) spread over the whole table.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/// Open-addressed hash map from 64-bit keys to dense 32-bit indices: key
/// `keys[i]` maps to `i`.  Built once, then read-only — the sparse rule-table
/// lookup of Protocol (packed state pair → PairId), sized by the number of
/// *non-silent* pairs instead of the Θ(|Q|²) triangular table.
///
/// Linear probing over a power-of-two table at load factor ≤ 0.5, so a
/// lookup is one mix + a short probe run in two parallel flat arrays.  Keys
/// must be distinct and must not use the top bit (the all-ones word marks an
/// empty slot); packed state pairs never do.
class DenseIndexMap {
public:
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};
    static constexpr std::uint32_t kMissing = ~std::uint32_t{0};

    DenseIndexMap() = default;

    /// Rebuilds the table so that find(keys[i]) == i.  O(n).
    void assign(std::span<const std::uint64_t> keys) {
        std::size_t capacity = 8;
        while (capacity < keys.size() * 2) capacity <<= 1;
        mask_ = capacity - 1;
        keys_.assign(capacity, kEmptyKey);
        values_.assign(capacity, kMissing);
        for (std::size_t i = 0; i < keys.size(); ++i) {
            PPSC_DASSERT(keys[i] != kEmptyKey);
            std::size_t slot = static_cast<std::size_t>(mix64(keys[i])) & mask_;
            while (keys_[slot] != kEmptyKey) {
                PPSC_DASSERT(keys_[slot] != keys[i]);  // keys are distinct
                slot = (slot + 1) & mask_;
            }
            keys_[slot] = keys[i];
            values_[slot] = static_cast<std::uint32_t>(i);
        }
    }

    /// The index assigned to `key`, or kMissing.  O(1) expected.
    std::uint32_t find(std::uint64_t key) const noexcept {
        if (keys_.empty()) return kMissing;
        std::size_t slot = static_cast<std::size_t>(mix64(key)) & mask_;
        while (true) {
            const std::uint64_t stored = keys_[slot];
            if (stored == key) return values_[slot];
            if (stored == kEmptyKey) return kMissing;
            slot = (slot + 1) & mask_;
        }
    }

    bool empty() const noexcept { return keys_.empty(); }

    /// Heap footprint of the table arrays, for memory accounting.
    std::size_t memory_bytes() const noexcept {
        return keys_.capacity() * sizeof(std::uint64_t) +
               values_.capacity() * sizeof(std::uint32_t);
    }

private:
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint32_t> values_;
    std::size_t mask_ = 0;
};

/// Hash of a vector of integers (FNV-ish via hash_combine).
template <typename Int>
std::size_t hash_int_vector(const std::vector<Int>& values) noexcept {
    std::size_t seed = 0x243f6a8885a308d3ull ^ values.size();
    for (const Int v : values) hash_combine(seed, static_cast<std::size_t>(v));
    return seed;
}

}  // namespace ppsc
