#include "support/fenwick.hpp"

namespace ppsc {

// The two instantiations the library uses; keeping them here spares every
// including translation unit the template expansion.
template class BasicFenwickTree<std::int64_t>;
template class BasicFenwickTree<Int128>;

}  // namespace ppsc
