#include "support/fenwick.hpp"

namespace ppsc {

void FenwickTree::assign(std::span<const std::int64_t> weights) {
    size_ = weights.size();
    top_mask_ = size_ == 0 ? 0 : std::bit_floor(size_);
    tree_.assign(size_ + 1, 0);
    total_ = 0;
    // O(n) build: seed each node with its weight, then push partial sums to
    // the parent in index order.
    for (std::size_t i = 1; i <= size_; ++i) {
        tree_[i] += weights[i - 1];
        total_ += weights[i - 1];
        const std::size_t parent = i + (i & (~i + 1));
        if (parent <= size_) tree_[parent] += tree_[i];
    }
}

std::int64_t FenwickTree::prefix_sum(std::size_t i) const {
    PPSC_DASSERT(i <= size_);
    std::int64_t sum = 0;
    for (std::size_t j = i; j > 0; j -= j & (~j + 1)) sum += tree_[j];
    return sum;
}

std::int64_t FenwickTree::value(std::size_t i) const {
    PPSC_DASSERT(i < size_);
    return prefix_sum(i + 1) - prefix_sum(i);
}

}  // namespace ppsc
