#include "support/bignat.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "support/check.hpp"

namespace ppsc {

namespace {
constexpr std::uint64_t kLimbBase = 1ull << 32;
}  // namespace

BigNat::BigNat(std::uint64_t value) {
    if (value != 0) {
        limbs_.push_back(static_cast<std::uint32_t>(value & 0xffffffffu));
        if (value >= kLimbBase) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
    }
}

void BigNat::trim() noexcept {
    while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNat BigNat::from_decimal(std::string_view text) {
    if (text.empty()) throw std::invalid_argument("BigNat::from_decimal: empty string");
    BigNat result;
    for (char c : text) {
        if (c < '0' || c > '9')
            throw std::invalid_argument("BigNat::from_decimal: non-digit character");
        // result = result*10 + digit, done limb-wise to avoid a full multiply.
        std::uint64_t carry = static_cast<std::uint64_t>(c - '0');
        for (auto& limb : result.limbs_) {
            std::uint64_t v = static_cast<std::uint64_t>(limb) * 10 + carry;
            limb = static_cast<std::uint32_t>(v & 0xffffffffu);
            carry = v >> 32;
        }
        if (carry != 0) result.limbs_.push_back(static_cast<std::uint32_t>(carry));
    }
    return result;
}

BigNat BigNat::power_of_two(std::uint64_t exponent) {
    BigNat one(1);
    return one <<= exponent;
}

BigNat BigNat::factorial(std::uint64_t n, std::uint64_t max_bits) {
    BigNat result(1);
    for (std::uint64_t i = 2; i <= n; ++i) {
        result *= BigNat(i);
        if (result.bit_length() > max_bits)
            throw std::overflow_error("BigNat::factorial: result exceeds max_bits");
    }
    return result;
}

std::uint64_t BigNat::bit_length() const noexcept {
    if (limbs_.empty()) return 0;
    std::uint32_t top = limbs_.back();
    std::uint64_t bits = (limbs_.size() - 1) * 32ull;
    while (top != 0) {
        ++bits;
        top >>= 1;
    }
    return bits;
}

std::uint64_t BigNat::to_u64() const {
    if (bit_length() > 64) throw std::overflow_error("BigNat::to_u64: value exceeds 64 bits");
    std::uint64_t value = 0;
    if (limbs_.size() >= 1) value = limbs_[0];
    if (limbs_.size() >= 2) value |= static_cast<std::uint64_t>(limbs_[1]) << 32;
    return value;
}

double BigNat::log2_approx() const noexcept {
    if (limbs_.empty()) return -std::numeric_limits<double>::infinity();
    // Use the top (up to) 96 bits for the mantissa.
    const std::size_t n = limbs_.size();
    double mantissa = 0.0;
    const std::size_t take = std::min<std::size_t>(3, n);
    for (std::size_t i = 0; i < take; ++i)
        mantissa = mantissa * 4294967296.0 + static_cast<double>(limbs_[n - 1 - i]);
    const double shift = static_cast<double>((n - take) * 32);
    return std::log2(mantissa) + shift;
}

BigNat& BigNat::operator+=(const BigNat& rhs) {
    const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
    limbs_.resize(n, 0);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = carry + limbs_[i];
        if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
        limbs_[i] = static_cast<std::uint32_t>(sum & 0xffffffffu);
        carry = sum >> 32;
    }
    if (carry != 0) limbs_.push_back(static_cast<std::uint32_t>(carry));
    return *this;
}

BigNat& BigNat::operator-=(const BigNat& rhs) {
    if (*this < rhs) throw std::underflow_error("BigNat::operator-=: result would be negative");
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
        if (i < rhs.limbs_.size()) diff -= rhs.limbs_[i];
        if (diff < 0) {
            diff += static_cast<std::int64_t>(kLimbBase);
            borrow = 1;
        } else {
            borrow = 0;
        }
        limbs_[i] = static_cast<std::uint32_t>(diff);
    }
    PPSC_CHECK(borrow == 0);
    trim();
    return *this;
}

BigNat& BigNat::operator*=(const BigNat& rhs) {
    if (is_zero() || rhs.is_zero()) {
        limbs_.clear();
        return *this;
    }
    std::vector<std::uint32_t> out(limbs_.size() + rhs.limbs_.size(), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        std::uint64_t carry = 0;
        const std::uint64_t a = limbs_[i];
        for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
            std::uint64_t v = a * rhs.limbs_[j] + out[i + j] + carry;
            out[i + j] = static_cast<std::uint32_t>(v & 0xffffffffu);
            carry = v >> 32;
        }
        std::size_t k = i + rhs.limbs_.size();
        while (carry != 0) {
            std::uint64_t v = out[k] + carry;
            out[k] = static_cast<std::uint32_t>(v & 0xffffffffu);
            carry = v >> 32;
            ++k;
        }
    }
    limbs_ = std::move(out);
    trim();
    return *this;
}

BigNat& BigNat::operator<<=(std::uint64_t bits) {
    if (is_zero() || bits == 0) return *this;
    const std::uint64_t limb_shift = bits / 32;
    const std::uint32_t bit_shift = static_cast<std::uint32_t>(bits % 32);
    std::vector<std::uint32_t> out(limbs_.size() + limb_shift + (bit_shift != 0 ? 1 : 0), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
        out[i + limb_shift] |= static_cast<std::uint32_t>(v & 0xffffffffu);
        if (bit_shift != 0) out[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
    }
    limbs_ = std::move(out);
    trim();
    return *this;
}

BigNat& BigNat::operator>>=(std::uint64_t bits) {
    if (is_zero()) return *this;
    const std::uint64_t limb_shift = bits / 32;
    if (limb_shift >= limbs_.size()) {
        limbs_.clear();
        return *this;
    }
    const std::uint32_t bit_shift = static_cast<std::uint32_t>(bits % 32);
    const std::size_t n = limbs_.size() - limb_shift;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
        if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size())
            v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
        limbs_[i] = static_cast<std::uint32_t>(v);
    }
    limbs_.resize(n);
    trim();
    return *this;
}

BigNat BigNat::pow(std::uint64_t exponent, std::uint64_t max_bits) const {
    BigNat base = *this;
    BigNat result(1);
    while (exponent != 0) {
        if (exponent & 1) {
            result *= base;
            if (result.bit_length() > max_bits)
                throw std::overflow_error("BigNat::pow: result exceeds max_bits");
        }
        exponent >>= 1;
        if (exponent != 0) {
            base *= base;
            if (base.bit_length() > max_bits)
                throw std::overflow_error("BigNat::pow: intermediate exceeds max_bits");
        }
    }
    return result;
}

BigNat BigNat::div_u32(std::uint32_t divisor, std::uint32_t& remainder) const {
    if (divisor == 0) throw std::invalid_argument("BigNat::div_u32: division by zero");
    BigNat quotient;
    quotient.limbs_.resize(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        std::uint64_t cur = (rem << 32) | limbs_[i];
        quotient.limbs_[i] = static_cast<std::uint32_t>(cur / divisor);
        rem = cur % divisor;
    }
    quotient.trim();
    remainder = static_cast<std::uint32_t>(rem);
    return quotient;
}

std::strong_ordering BigNat::operator<=>(const BigNat& rhs) const noexcept {
    if (limbs_.size() != rhs.limbs_.size())
        return limbs_.size() <=> rhs.limbs_.size();
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] <=> rhs.limbs_[i];
    }
    return std::strong_ordering::equal;
}

std::string BigNat::to_string() const {
    if (is_zero()) return "0";
    // Peel off 9 decimal digits at a time.
    constexpr std::uint32_t kChunk = 1000000000u;
    std::vector<std::uint32_t> chunks;
    BigNat value = *this;
    while (!value.is_zero()) {
        std::uint32_t rem = 0;
        value = value.div_u32(kChunk, rem);
        chunks.push_back(rem);
    }
    std::string out = std::to_string(chunks.back());
    for (std::size_t i = chunks.size() - 1; i-- > 0;) {
        std::string part = std::to_string(chunks[i]);
        out += std::string(9 - part.size(), '0') + part;
    }
    return out;
}

std::string BigNat::to_display_string(std::size_t max_digits) const {
    const double log10_value = log2_approx() * 0.30102999566398119521;
    if (is_zero() || log10_value < static_cast<double>(max_digits)) return to_string();
    const double exponent = std::floor(log10_value);
    const double mantissa = std::pow(10.0, log10_value - exponent);
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "~%.3fe%.0f", mantissa, exponent);
    return buffer;
}

}  // namespace ppsc
