// CRC-64/XZ (reflected ECMA-182 polynomial) — the integrity check guarding
// checkpoint files (sim/checkpoint.hpp).
//
// A 64-bit CRC detects every burst error up to 64 bits and any single bit
// flip anywhere in the payload, which is exactly the corruption model the
// fault-injected loader tests sweep (truncations change the length, flips
// change the checksum).  The table is built at compile time; the kernel is
// the standard byte-at-a-time reflected form — checkpoint writes are
// dominated by the serialisation memcpy and the fsync, not the CRC.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ppsc {

namespace detail {

/// Reflected form of the ECMA-182 polynomial (the CRC-64/XZ parameters,
/// also used by xz/liblzma — a well-studied choice with published test
/// vectors).
inline constexpr std::uint64_t kCrc64ReflectedPoly = 0xC96C5795D7870F42ull;

inline constexpr std::array<std::uint64_t, 256> make_crc64_table() {
    std::array<std::uint64_t, 256> table{};
    for (std::uint32_t byte = 0; byte < 256; ++byte) {
        std::uint64_t crc = byte;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ (crc & 1 ? kCrc64ReflectedPoly : 0);
        table[byte] = crc;
    }
    return table;
}

inline constexpr std::array<std::uint64_t, 256> kCrc64Table = make_crc64_table();

}  // namespace detail

/// CRC-64/XZ of `size` bytes, continuing from `crc` (pass the previous
/// return value to checksum data in chunks; start from the default).
/// crc64("123456789") == 0x995DC9BBDF1939FA (the standard check value).
inline std::uint64_t crc64(const void* data, std::size_t size, std::uint64_t crc = 0) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ detail::kCrc64Table[(crc ^ bytes[i]) & 0xFF];
    return ~crc;
}

}  // namespace ppsc
