#include "verify/reachability.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "support/check.hpp"

namespace ppsc {

namespace {

/// Enumerates all multisets of `population` agents over `num_states`
/// states, invoking `emit` for each.
template <typename Emit>
void enumerate_slice(std::size_t num_states, AgentCount population, Emit&& emit) {
    std::vector<AgentCount> counts(num_states, 0);
    // Recursive distribution of `population` agents over the states.
    auto recurse = [&](auto&& self, std::size_t state, AgentCount remaining) -> void {
        if (state + 1 == num_states) {
            counts[state] = remaining;
            emit(counts);
            return;
        }
        for (AgentCount c = remaining; c >= 0; --c) {
            counts[state] = c;
            self(self, state + 1, remaining - c);
        }
    };
    if (num_states > 0) recurse(recurse, 0, population);
}

}  // namespace

NodeId ReachabilityGraph::intern(const Config& config, const ReachabilityOptions& options,
                                 std::vector<NodeId>& frontier) {
    auto [it, inserted] = index_.try_emplace(config, static_cast<NodeId>(configs_.size()));
    if (inserted) {
        if (configs_.size() >= options.max_nodes)
            throw std::length_error(
                "ReachabilityGraph: node budget exhausted (raise max_nodes)");
        configs_.push_back(config);
        adjacency_.emplace_back();
        frontier.push_back(it->second);
    }
    return it->second;
}

void ReachabilityGraph::close(const ReachabilityOptions& options, std::vector<NodeId> frontier) {
    // Standard interning BFS; `frontier` holds nodes whose successors are
    // not yet computed.
    std::size_t processed = 0;
    std::vector<NodeId> out;  // reused buffer; adjacency_ grows inside intern()
    const auto fire_rule = [&](const Config& current, NodeId node, TransitionId rule,
                               std::vector<NodeId>& frontier_ref) {
        const Transition& t = protocol_->transitions()[static_cast<std::size_t>(rule)];
        const NodeId target = intern(protocol_->fire(current, t), options, frontier_ref);
        if (target != node) out.push_back(target);
    };
    while (processed < frontier.size()) {
        const NodeId node = frontier[processed++];
        const Config current = configs_[static_cast<std::size_t>(node)];  // copy: configs_ may grow
        out.clear();
        const std::vector<StateId> support = current.support();
        if (options.compute == ClosureCompute::sparse) {
            // Walk the non-silent-pair CSR restricted to the support: every
            // enabled pair with at least one rule is reached through the
            // neighbour lists of its (occupied) endpoints, each unordered
            // pair exactly once (self pairs via self_pair, non-self pairs
            // from their lower endpoint).  Silent support pairs are never
            // touched, so the cost is Σ_{q ∈ supp} deg(q) + rules fired,
            // independent of the rule-table kind.
            for (const StateId q : support) {
                if (current[q] >= 2) {
                    const Protocol::PairId self = protocol_->self_pair(q);
                    if (self != Protocol::kNoPair) {
                        for (const TransitionId rule : protocol_->rules_for_pair_id(self))
                            fire_rule(current, node, rule, frontier);
                    }
                }
                for (const Protocol::PairNeighbor& neighbor : protocol_->pair_neighbors(q)) {
                    if (neighbor.partner < q || current[neighbor.partner] == 0) continue;
                    for (const TransitionId rule : protocol_->rules_for_pair_id(neighbor.pair))
                        fire_rule(current, node, rule, frontier);
                }
            }
        } else {
            // Reference: probe every support × support pair through the rule
            // table (the seed formulation).
            for (std::size_t i = 0; i < support.size(); ++i) {
                for (std::size_t j = i; j < support.size(); ++j) {
                    if (i == j && current[support[i]] < 2) continue;
                    for (const TransitionId rule :
                         protocol_->rules_for_pair(support[i], support[j]))
                        fire_rule(current, node, rule, frontier);
                }
            }
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        adjacency_[static_cast<std::size_t>(node)] = out;
    }
}

ReachabilityGraph ReachabilityGraph::explore(const Protocol& protocol,
                                             std::span<const Config> roots,
                                             const ReachabilityOptions& options) {
    if (roots.empty())
        throw std::invalid_argument("ReachabilityGraph::explore: no root configurations");
    const AgentCount population = roots.front().size();
    for (const Config& root : roots) {
        if (root.num_states() != protocol.num_states())
            throw std::invalid_argument("ReachabilityGraph::explore: root dimension mismatch");
        if (root.size() != population)
            throw std::invalid_argument(
                "ReachabilityGraph::explore: roots have different population sizes");
        if (population < 2)
            throw std::invalid_argument(
                "ReachabilityGraph::explore: configurations need at least two agents");
    }

    ReachabilityGraph graph;
    graph.protocol_ = &protocol;
    std::vector<NodeId> frontier;
    for (const Config& root : roots) graph.roots_.push_back(graph.intern(root, options, frontier));
    graph.close(options, std::move(frontier));
    return graph;
}

ReachabilityGraph ReachabilityGraph::full_slice(const Protocol& protocol, AgentCount population,
                                                const ReachabilityOptions& options) {
    if (population < 2)
        throw std::invalid_argument(
            "ReachabilityGraph::full_slice: configurations need at least two agents");
    ReachabilityGraph graph;
    graph.protocol_ = &protocol;
    std::vector<NodeId> frontier;
    enumerate_slice(protocol.num_states(), population, [&](const std::vector<AgentCount>& counts) {
        graph.intern(Config::from_counts(counts), options, frontier);
    });
    graph.close(options, std::move(frontier));
    return graph;
}

std::size_t ReachabilityGraph::num_edges() const noexcept {
    std::size_t edges = 0;
    for (const auto& out : adjacency_) edges += out.size();
    return edges;
}

std::optional<NodeId> ReachabilityGraph::find(const Config& config) const {
    auto it = index_.find(config);
    if (it == index_.end()) return std::nullopt;
    return it->second;
}

std::span<const NodeId> ReachabilityGraph::successors(NodeId node) const {
    return adjacency_.at(static_cast<std::size_t>(node));
}

ReachabilityGraph::SccResult ReachabilityGraph::compute_sccs() const {
    // Iterative Tarjan.  Components are numbered in completion order, so
    // every inter-component edge goes from a larger to a smaller id.
    const std::size_t n = configs_.size();
    SccResult result;
    result.component_of.assign(n, -1);

    constexpr std::int32_t kUnvisited = -1;
    std::vector<std::int32_t> index(n, kUnvisited);
    std::vector<std::int32_t> lowlink(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<NodeId> stack;
    std::int32_t next_index = 0;

    struct Frame {
        NodeId node;
        std::size_t child = 0;
    };
    std::vector<Frame> call_stack;

    for (std::size_t start = 0; start < n; ++start) {
        if (index[start] != kUnvisited) continue;
        call_stack.push_back({static_cast<NodeId>(start)});
        while (!call_stack.empty()) {
            Frame& frame = call_stack.back();
            const auto node = static_cast<std::size_t>(frame.node);
            if (frame.child == 0) {
                index[node] = lowlink[node] = next_index++;
                stack.push_back(frame.node);
                on_stack[node] = true;
            }
            const auto& out = adjacency_[node];
            bool descended = false;
            while (frame.child < out.size()) {
                const auto next = static_cast<std::size_t>(out[frame.child]);
                ++frame.child;
                if (index[next] == kUnvisited) {
                    call_stack.push_back({static_cast<NodeId>(next)});
                    descended = true;
                    break;
                }
                if (on_stack[next]) lowlink[node] = std::min(lowlink[node], index[next]);
            }
            if (descended) continue;
            if (lowlink[node] == index[node]) {
                // node is a component root; pop its members.
                while (true) {
                    const NodeId member = stack.back();
                    stack.pop_back();
                    on_stack[static_cast<std::size_t>(member)] = false;
                    result.component_of[static_cast<std::size_t>(member)] =
                        result.num_components;
                    if (member == frame.node) break;
                }
                ++result.num_components;
            }
            call_stack.pop_back();
            if (!call_stack.empty()) {
                Frame& parent = call_stack.back();
                const auto parent_node = static_cast<std::size_t>(parent.node);
                lowlink[parent_node] = std::min(lowlink[parent_node], lowlink[node]);
            }
        }
    }

    result.is_bottom.assign(static_cast<std::size_t>(result.num_components), true);
    for (std::size_t node = 0; node < n; ++node) {
        for (const NodeId target : adjacency_[node]) {
            if (result.component_of[node] !=
                result.component_of[static_cast<std::size_t>(target)])
                result.is_bottom[static_cast<std::size_t>(result.component_of[node])] = false;
        }
    }
    return result;
}

std::vector<bool> ReachabilityGraph::forward_closure(NodeId start) const {
    std::vector<bool> visited(configs_.size(), false);
    std::deque<NodeId> queue{start};
    visited[static_cast<std::size_t>(start)] = true;
    while (!queue.empty()) {
        const NodeId node = queue.front();
        queue.pop_front();
        for (const NodeId next : adjacency_[static_cast<std::size_t>(node)]) {
            if (!visited[static_cast<std::size_t>(next)]) {
                visited[static_cast<std::size_t>(next)] = true;
                queue.push_back(next);
            }
        }
    }
    return visited;
}

void ReachabilityGraph::build_reverse_edges() const {
    if (!reverse_adjacency_.empty() || configs_.empty()) return;
    reverse_adjacency_.resize(configs_.size());
    for (std::size_t node = 0; node < configs_.size(); ++node) {
        for (const NodeId target : adjacency_[node])
            reverse_adjacency_[static_cast<std::size_t>(target)].push_back(
                static_cast<NodeId>(node));
    }
}

void ReachabilityGraph::build_reverse_csr() const {
    if (!reverse_offsets_.empty() || configs_.empty()) return;
    // Counting sort of the edge list by target: two passes over the forward
    // adjacency, two contiguous arrays, no per-node vectors.
    reverse_offsets_.assign(configs_.size() + 1, 0);
    for (const auto& out : adjacency_)
        for (const NodeId target : out) ++reverse_offsets_[static_cast<std::size_t>(target) + 1];
    for (std::size_t i = 1; i < reverse_offsets_.size(); ++i)
        reverse_offsets_[i] += reverse_offsets_[i - 1];
    reverse_targets_.resize(reverse_offsets_.back());
    std::vector<std::uint32_t> cursor(reverse_offsets_.begin(), reverse_offsets_.end() - 1);
    for (std::size_t node = 0; node < configs_.size(); ++node) {
        for (const NodeId target : adjacency_[node])
            reverse_targets_[cursor[static_cast<std::size_t>(target)]++] =
                static_cast<NodeId>(node);
    }
}

std::vector<bool> ReachabilityGraph::backward_closure(const std::vector<bool>& targets,
                                                      ClosureCompute compute) const {
    if (targets.size() != configs_.size())
        throw std::invalid_argument("ReachabilityGraph::backward_closure: size mismatch");

    if (compute == ClosureCompute::reference) {
        build_reverse_edges();
        std::vector<bool> visited = targets;
        std::deque<NodeId> queue;
        for (std::size_t node = 0; node < targets.size(); ++node) {
            if (targets[node]) queue.push_back(static_cast<NodeId>(node));
        }
        while (!queue.empty()) {
            const NodeId node = queue.front();
            queue.pop_front();
            for (const NodeId prev : reverse_adjacency_[static_cast<std::size_t>(node)]) {
                if (!visited[static_cast<std::size_t>(prev)]) {
                    visited[static_cast<std::size_t>(prev)] = true;
                    queue.push_back(prev);
                }
            }
        }
        return visited;
    }

    // Sparse: round-structured worklist over the flat reverse CSR, seeded
    // from the target set (in stable-set use, Bad_b — itself seeded from
    // sparse support scans).  Rounds are BFS levels; the closure is a set,
    // so the result is identical to the reference BFS.
    build_reverse_csr();
    std::vector<bool> visited = targets;
    std::vector<NodeId> round;
    for (std::size_t node = 0; node < targets.size(); ++node) {
        if (targets[node]) round.push_back(static_cast<NodeId>(node));
    }
    std::vector<NodeId> next_round;
    while (!round.empty()) {
        next_round.clear();
        for (const NodeId node : round) {
            const auto i = static_cast<std::size_t>(node);
            const std::uint32_t begin = reverse_offsets_[i];
            const std::uint32_t end = reverse_offsets_[i + 1];
            for (std::uint32_t e = begin; e < end; ++e) {
                const NodeId prev = reverse_targets_[e];
                if (!visited[static_cast<std::size_t>(prev)]) {
                    visited[static_cast<std::size_t>(prev)] = true;
                    next_round.push_back(prev);
                }
            }
        }
        std::swap(round, next_round);
    }
    return visited;
}

}  // namespace ppsc
