// Exhaustive verification of population protocols on bounded populations.
//
// Semantics: a fair execution of a finite system eventually enters a bottom
// SCC of the reachability graph and then visits every configuration of that
// SCC infinitely often.  Hence (Section 2.2):
//
//   * the executions from IC(v) *converge* to output b  ⇔  every bottom SCC
//     reachable from IC(v) consists solely of b-consensus configurations;
//   * the protocol is *well-specified at v* ⇔ that holds for some b;
//   * the protocol computes φ on a set of inputs ⇔ for every input v in the
//     set it converges to φ(v).
//
// This is exact for each checked input; it cannot by itself prove a
// statement for *all* (infinitely many) inputs — callers choose the input
// range and the reports say exactly what was checked.
//
// Two-phase mode (PR 6): before paying for exact reachability graphs, a
// candidate can be *screened* on the simulation fast path.  A converged
// simulation run is a sound witness — the engine's convergence conditions
// (silence, output traps; sim/simulator.hpp) prove the reached
// configuration is stable, and it is reachable from IC(i), so some fair
// execution from IC(i) stabilises to that output.  Hence observing
// converged output 1 at input i and converged output 0 at input j ≥ i
// refutes "computes a threshold x ≥ η" outright (the exact verdicts could
// not form the monotone 0…0 1…1 pattern), a converged output 0 at the
// largest checked input refutes on its own (the pattern could not end in an
// acceptance), and a converged run with no consensus output (a silent mixed
// configuration) proves the input ill-specified.  Screening therefore
// rejects only candidates whose exact
// infer_threshold would return nullopt — it is falsification, never
// approximation — and exact verification runs only on the survivors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/predicate.hpp"
#include "core/protocol.hpp"
#include "verify/reachability.hpp"

namespace ppsc {

struct InputVerdict {
    std::vector<AgentCount> input;       ///< the checked input valuation
    bool well_specified = false;         ///< all reachable bottom SCCs agree
    std::optional<int> computed;         ///< the agreed output, if any
    std::size_t explored_nodes = 0;
    std::size_t bottom_scc_count = 0;
    /// A configuration in a non-consensus / disagreeing bottom SCC
    /// (diagnosis aid; empty when well-specified).
    std::optional<Config> counterexample;
};

struct PredicateCheck {
    bool holds = true;                    ///< all checked inputs correct
    std::vector<InputVerdict> failures;   ///< wrong or ill-specified inputs
    std::size_t inputs_checked = 0;
    std::size_t total_nodes = 0;
};

/// Phase-1 budget of the two-phase mode (see the module comment).  The
/// defaults are tuned for busy-beaver candidates: populations ≤ max_input
/// agents converge (or provably fail to) within a few thousand interactions
/// when they converge at all.
struct ScreeningOptions {
    /// Simulated runs per input; 0 disables screening entirely.
    int runs = 2;
    /// Interaction budget per run (runs hitting it are inconclusive and
    /// never reject anything).
    std::uint64_t max_interactions = 20'000;
    /// Base seed; the per-(input, run) generator is derived
    /// deterministically, so screening verdicts are reproducible.
    std::uint64_t seed = 0x5c3ee11aU;
    /// Give up after this many consecutive inputs on which *every* run hit
    /// the interaction budget without converging (0 = never give up).
    /// Oscillating candidates never produce converged witnesses, so each
    /// further input would burn runs × max_interactions steps and learn
    /// nothing; giving up just defers them to exact verification, which
    /// keeps screening sound.
    int max_inconclusive_inputs = 3;
};

class Verifier {
public:
    explicit Verifier(const Protocol& protocol, ReachabilityOptions options = {})
        : protocol_(protocol), options_(options) {}

    /// Exact verdict for one input valuation.
    InputVerdict verify_input(std::span<const AgentCount> input) const;

    /// Single-variable convenience.
    InputVerdict verify_input(AgentCount input) const;

    /// Checks `predicate` on every single-variable input in [min_input,
    /// max_input] (single-input protocols).
    PredicateCheck check_predicate(const Predicate& predicate, AgentCount min_input,
                                   AgentCount max_input) const;

    /// Checks `predicate` on every input tuple whose total population lies
    /// in [2, max_population] (protocols with any number of variables).
    PredicateCheck check_predicate_all_tuples(const Predicate& predicate,
                                              AgentCount max_population) const;

    /// For single-input protocols: if the verdicts on [2, max_input] form
    /// the pattern 0…0 1…1, returns the threshold η (first accepted input;
    /// η = 2 if everything accepted).  Returns nullopt if some input is
    /// ill-specified, the pattern is broken, or everything is rejected.
    /// This is the workhorse of the busy-beaver search (Definition 1).
    std::optional<AgentCount> infer_threshold(AgentCount max_input) const;

    /// Phase 1 of the two-phase mode: randomized falsification on the
    /// simulation fast path.  Returns true iff simulation *refuted*
    /// threshold behaviour on [start, max_input] — a converged run with no
    /// consensus, converged output 0 at max_input, or converged output 1 at
    /// some input i with converged output 0 at some j ≥ i.  Inputs are
    /// checked from max_input downward so the second condition can fire on
    /// the very first run.  Sound: whenever this returns true,
    /// infer_threshold(max_input) returns nullopt (asserted on exhaustive
    /// sweeps in tests/analysis_sparse_test.cpp); false is inconclusive.
    bool screening_refutes_threshold(AgentCount max_input,
                                     const ScreeningOptions& screening) const;

    /// Two-phase infer_threshold: screen first, run the exact verdict only
    /// on survivors.  Result-identical to infer_threshold(max_input); the
    /// saving is that refuted candidates never build reachability graphs.
    std::optional<AgentCount> infer_threshold(AgentCount max_input,
                                              const ScreeningOptions& screening) const;

private:
    // Owned copy: the verifier may outlive a temporary the caller built
    // from (protocols are cheap values next to reachability graphs).
    Protocol protocol_;
    ReachabilityOptions options_;
};

}  // namespace ppsc
