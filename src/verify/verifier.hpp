// Exhaustive verification of population protocols on bounded populations.
//
// Semantics: a fair execution of a finite system eventually enters a bottom
// SCC of the reachability graph and then visits every configuration of that
// SCC infinitely often.  Hence (Section 2.2):
//
//   * the executions from IC(v) *converge* to output b  ⇔  every bottom SCC
//     reachable from IC(v) consists solely of b-consensus configurations;
//   * the protocol is *well-specified at v* ⇔ that holds for some b;
//   * the protocol computes φ on a set of inputs ⇔ for every input v in the
//     set it converges to φ(v).
//
// This is exact for each checked input; it cannot by itself prove a
// statement for *all* (infinitely many) inputs — callers choose the input
// range and the reports say exactly what was checked.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/predicate.hpp"
#include "core/protocol.hpp"
#include "verify/reachability.hpp"

namespace ppsc {

struct InputVerdict {
    std::vector<AgentCount> input;       ///< the checked input valuation
    bool well_specified = false;         ///< all reachable bottom SCCs agree
    std::optional<int> computed;         ///< the agreed output, if any
    std::size_t explored_nodes = 0;
    std::size_t bottom_scc_count = 0;
    /// A configuration in a non-consensus / disagreeing bottom SCC
    /// (diagnosis aid; empty when well-specified).
    std::optional<Config> counterexample;
};

struct PredicateCheck {
    bool holds = true;                    ///< all checked inputs correct
    std::vector<InputVerdict> failures;   ///< wrong or ill-specified inputs
    std::size_t inputs_checked = 0;
    std::size_t total_nodes = 0;
};

class Verifier {
public:
    explicit Verifier(const Protocol& protocol, ReachabilityOptions options = {})
        : protocol_(protocol), options_(options) {}

    /// Exact verdict for one input valuation.
    InputVerdict verify_input(std::span<const AgentCount> input) const;

    /// Single-variable convenience.
    InputVerdict verify_input(AgentCount input) const;

    /// Checks `predicate` on every single-variable input in [min_input,
    /// max_input] (single-input protocols).
    PredicateCheck check_predicate(const Predicate& predicate, AgentCount min_input,
                                   AgentCount max_input) const;

    /// Checks `predicate` on every input tuple whose total population lies
    /// in [2, max_population] (protocols with any number of variables).
    PredicateCheck check_predicate_all_tuples(const Predicate& predicate,
                                              AgentCount max_population) const;

    /// For single-input protocols: if the verdicts on [2, max_input] form
    /// the pattern 0…0 1…1, returns the threshold η (first accepted input;
    /// η = 2 if everything accepted).  Returns nullopt if some input is
    /// ill-specified, the pattern is broken, or everything is rejected.
    /// This is the workhorse of the busy-beaver search (Definition 1).
    std::optional<AgentCount> infer_threshold(AgentCount max_input) const;

private:
    // Owned copy: the verifier may outlive a temporary the caller built
    // from (protocols are cheap values next to reachability graphs).
    Protocol protocol_;
    ReachabilityOptions options_;
};

}  // namespace ppsc
