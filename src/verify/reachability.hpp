// Bounded-population reachability graphs.
//
// Transitions preserve the number of agents, so for a fixed population size
// N the configuration space is finite: C(N + |Q| - 1, |Q| - 1) multisets.
// This module materialises the reachability graph either from a given set
// of roots (forward exploration) or over the *entire* size-N slice (needed
// by stable-set computations, which quantify over all configurations).
//
// The graph is the semantic ground truth for everything else: fair
// executions of a finite system end up trapped in — and then visit all of —
// a bottom SCC, so "every fair execution from C stabilises to output b" is
// exactly "every bottom SCC reachable from C is a b-consensus SCC".
//
// Sparse-native since PR 6: successor enumeration walks the protocol's
// non-silent-pair CSR (`pair_neighbors`/`self_pair` restricted to the
// configuration's support) instead of probing every support × support pair
// through the rule table, and the backward closure runs a round-structured
// worklist over a flat reverse-CSR of the graph instead of a
// vector-of-vectors BFS.  Both ports keep the seed-era dense formulation as
// a swappable reference (`ClosureCompute::reference`, mirroring
// sim/traps.hpp's TrapCompute) and are asserted result-identical on
// exhaustive small-protocol sweeps in tests/analysis_sparse_test.cpp —
// closures are sets, so unlike the trap fixpoint no order-replay discipline
// is needed, but the identity is asserted rather than argued all the same.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/protocol.hpp"

namespace ppsc {

using NodeId = std::int32_t;

/// Which formulation computes graph closures (successor enumeration and
/// backward closure).  Both produce identical graphs and closure sets;
/// `reference` is the seed-era dense formulation kept for equivalence tests,
/// CI legs and benchmarks, `sparse` (the default) iterates the protocol/
/// graph CSR structures only.
enum class ClosureCompute { sparse, reference };

struct ReachabilityOptions {
    /// Hard cap on the number of distinct configurations explored; larger
    /// graphs throw std::length_error (verification must never silently
    /// truncate — a wrong verdict is worse than no verdict).
    std::size_t max_nodes = 2'000'000;
    /// How successors are enumerated while the graph is built: `sparse`
    /// walks the non-silent neighbour CSR of each support state, `reference`
    /// probes every support × support pair through the rule table.
    ClosureCompute compute = ClosureCompute::sparse;
};

class ReachabilityGraph {
public:
    /// Forward exploration from the given root configurations (all must
    /// have the same population size).
    static ReachabilityGraph explore(const Protocol& protocol, std::span<const Config> roots,
                                     const ReachabilityOptions& options = {});

    /// The full size-N slice: every configuration of `population` agents.
    static ReachabilityGraph full_slice(const Protocol& protocol, AgentCount population,
                                        const ReachabilityOptions& options = {});

    const Protocol& protocol() const noexcept { return *protocol_; }
    std::size_t num_nodes() const noexcept { return configs_.size(); }
    std::size_t num_edges() const noexcept;

    const Config& config(NodeId node) const { return configs_.at(static_cast<std::size_t>(node)); }

    /// Node of a configuration, if it was explored.
    std::optional<NodeId> find(const Config& config) const;

    /// Outgoing successor nodes (deduplicated; silent self-loops omitted).
    std::span<const NodeId> successors(NodeId node) const;

    /// Nodes of the roots passed to explore() (empty for full_slice).
    std::span<const NodeId> roots() const noexcept { return roots_; }

    /// Strongly connected components in reverse topological order
    /// (component 0 has no successors outside itself ⇒ components are
    /// numbered so that edges go from higher to lower component ids).
    struct SccResult {
        std::vector<std::int32_t> component_of;  // node -> component id
        std::int32_t num_components = 0;
        std::vector<bool> is_bottom;  // component id -> bottom SCC?
    };
    SccResult compute_sccs() const;

    /// All nodes reachable from `start` (forward BFS over the graph).
    std::vector<bool> forward_closure(NodeId start) const;

    /// All nodes that can reach some node in `targets`.  `sparse` runs a
    /// round-structured worklist over a lazily built flat reverse CSR
    /// (offsets + one contiguous predecessor array); `reference` is the
    /// seed-era vector-of-vectors reverse adjacency + deque BFS.  The
    /// closure is a set, so both are exactly identical (asserted in
    /// tests/analysis_sparse_test.cpp).
    std::vector<bool> backward_closure(const std::vector<bool>& targets,
                                       ClosureCompute compute = ClosureCompute::sparse) const;

private:
    ReachabilityGraph() = default;

    NodeId intern(const Config& config, const ReachabilityOptions& options,
                  std::vector<NodeId>& frontier);
    void close(const ReachabilityOptions& options, std::vector<NodeId> frontier);
    void build_reverse_edges() const;
    void build_reverse_csr() const;

    const Protocol* protocol_ = nullptr;
    std::vector<Config> configs_;
    std::unordered_map<Config, NodeId, ConfigHash> index_;
    std::vector<std::vector<NodeId>> adjacency_;  // per-node successor lists
    std::vector<NodeId> roots_;

    // Lazily built reverse edges, one per formulation: the reference keeps
    // the seed-era vector-of-vectors, the sparse path a flat CSR
    // (Θ(nodes + edges) in two contiguous arrays, no per-node allocation).
    mutable std::vector<std::vector<NodeId>> reverse_adjacency_;  // reference
    mutable std::vector<std::uint32_t> reverse_offsets_;          // sparse CSR
    mutable std::vector<NodeId> reverse_targets_;                 // sparse CSR
};

}  // namespace ppsc
