#include "verify/verifier.hpp"

#include <algorithm>

#include "sim/simulator.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ppsc {

InputVerdict Verifier::verify_input(std::span<const AgentCount> input) const {
    InputVerdict verdict;
    verdict.input.assign(input.begin(), input.end());

    const Config root = protocol_.initial_config(input);
    const Config roots[] = {root};
    const ReachabilityGraph graph = ReachabilityGraph::explore(protocol_, roots, options_);
    verdict.explored_nodes = graph.num_nodes();

    const auto scc = graph.compute_sccs();

    // Consensus value of each bottom SCC: 0, 1, or -1 (none).
    std::vector<std::int8_t> scc_value(static_cast<std::size_t>(scc.num_components), 2);
    for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
        const auto component = static_cast<std::size_t>(scc.component_of[node]);
        if (!scc.is_bottom[component]) continue;
        const std::optional<int> value = protocol_.consensus_output(graph.config(
            static_cast<NodeId>(node)));
        const std::int8_t v = value ? static_cast<std::int8_t>(*value) : std::int8_t{-1};
        if (scc_value[component] == 2) {
            scc_value[component] = v;
        } else if (scc_value[component] != v) {
            scc_value[component] = -1;
        }
    }

    // Aggregate across bottom SCCs (all nodes in `graph` are reachable from
    // the root by construction).
    std::optional<int> agreed;
    bool consistent = true;
    for (std::size_t component = 0; component < scc_value.size(); ++component) {
        if (!scc.is_bottom[component]) continue;
        ++verdict.bottom_scc_count;
        const std::int8_t v = scc_value[component];
        if (v < 0) {
            consistent = false;
        } else if (!agreed) {
            agreed = v;
        } else if (*agreed != v) {
            consistent = false;
        }
        if (!consistent && !verdict.counterexample) {
            for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
                if (static_cast<std::size_t>(scc.component_of[node]) == component) {
                    verdict.counterexample = graph.config(static_cast<NodeId>(node));
                    break;
                }
            }
        }
    }
    PPSC_CHECK(verdict.bottom_scc_count > 0);

    verdict.well_specified = consistent && agreed.has_value();
    if (verdict.well_specified) verdict.computed = agreed;
    return verdict;
}

InputVerdict Verifier::verify_input(AgentCount input) const {
    const AgentCount values[] = {input};
    return verify_input(values);
}

PredicateCheck Verifier::check_predicate(const Predicate& predicate, AgentCount min_input,
                                         AgentCount max_input) const {
    if (protocol_.input_variables().size() != 1)
        throw std::invalid_argument(
            "Verifier::check_predicate: protocol must have one input variable; use "
            "check_predicate_all_tuples");
    PredicateCheck check;
    for (AgentCount i = std::max<AgentCount>(min_input, protocol_.is_leaderless() ? 2 : 0);
         i <= max_input; ++i) {
        if (protocol_.leaders().size() + i < 2) continue;
        InputVerdict verdict = verify_input(i);
        ++check.inputs_checked;
        check.total_nodes += verdict.explored_nodes;
        const bool expected = predicate.evaluate(i);
        if (!verdict.well_specified || *verdict.computed != static_cast<int>(expected)) {
            check.holds = false;
            check.failures.push_back(std::move(verdict));
        }
    }
    return check;
}

PredicateCheck Verifier::check_predicate_all_tuples(const Predicate& predicate,
                                                    AgentCount max_population) const {
    const std::size_t arity = protocol_.input_variables().size();
    PredicateCheck check;
    std::vector<AgentCount> tuple(arity, 0);
    // Enumerate all tuples with component sum ≤ max_population.
    auto recurse = [&](auto&& self, std::size_t var, AgentCount remaining) -> void {
        if (var + 1 == arity) {
            for (AgentCount c = 0; c <= remaining; ++c) {
                tuple[var] = c;
                AgentCount total = protocol_.leaders().size();
                for (const AgentCount v : tuple) total += v;
                if (total < 2) continue;
                InputVerdict verdict = verify_input(tuple);
                ++check.inputs_checked;
                check.total_nodes += verdict.explored_nodes;
                const bool expected = predicate.evaluate(tuple);
                if (!verdict.well_specified ||
                    *verdict.computed != static_cast<int>(expected)) {
                    check.holds = false;
                    check.failures.push_back(std::move(verdict));
                }
            }
            return;
        }
        for (AgentCount c = 0; c <= remaining; ++c) {
            tuple[var] = c;
            self(self, var + 1, remaining - c);
        }
    };
    if (arity > 0) recurse(recurse, 0, max_population);
    return check;
}

std::optional<AgentCount> Verifier::infer_threshold(AgentCount max_input) const {
    if (protocol_.input_variables().size() != 1) return std::nullopt;
    std::optional<AgentCount> first_accept;
    const AgentCount start = protocol_.is_leaderless() ? 2 : std::max<AgentCount>(
        0, 2 - protocol_.leaders().size());
    for (AgentCount i = std::max<AgentCount>(start, 0); i <= max_input; ++i) {
        if (protocol_.leaders().size() + i < 2) continue;
        const InputVerdict verdict = verify_input(i);
        if (!verdict.well_specified) return std::nullopt;
        if (*verdict.computed == 1) {
            if (!first_accept) first_accept = i;
        } else if (first_accept) {
            return std::nullopt;  // 1 followed by 0: not a threshold pattern
        }
    }
    return first_accept;
}

bool Verifier::screening_refutes_threshold(AgentCount max_input,
                                           const ScreeningOptions& screening) const {
    if (protocol_.input_variables().size() != 1) return false;
    if (screening.runs <= 0 || screening.max_interactions == 0) return false;

    // One simulator per candidate: trap setup is the O(|T| + evictions·deg)
    // worklist fixpoint, negligible next to a single reachability graph.
    const Simulator simulator(protocol_);
    SimulationOptions run_options;
    run_options.max_interactions = screening.max_interactions;

    // Converged verdicts collected so far: the smallest input seen
    // accepting and the largest seen rejecting.  Threshold behaviour needs
    // every accepting input to lie strictly above every rejecting one.
    std::optional<AgentCount> min_one, max_zero;
    int inconclusive_streak = 0;

    const AgentCount start = protocol_.is_leaderless() ? 2 : std::max<AgentCount>(
        0, 2 - protocol_.leaders().size());
    const AgentCount first = std::max<AgentCount>(start, 0);
    if (max_input < first) return false;
    // Descending order: a converged 0 at max_input refutes on its own (see
    // below), and the commonest non-threshold candidates — always-rejecting
    // tables — converge to 0 everywhere, so starting at the top ends their
    // screening after a single run.
    for (AgentCount i = max_input; i >= first; --i) {
        if (protocol_.leaders().size() + i < 2) continue;
        bool any_converged = false;
        for (int run = 0; run < screening.runs; ++run) {
            // Deterministic per-(input, run) stream: SplitMix64 decorrelates
            // consecutive seeds, so a plain mix suffices.
            Rng rng(screening.seed ^
                    (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1) +
                     static_cast<std::uint64_t>(run)));
            const SimulationResult result = simulator.run_input(i, rng, run_options);
            if (!result.converged) continue;  // inconclusive run
            any_converged = true;
            if (!result.output) return true;  // stable but no consensus: ill-specified
            if (*result.output == 1) {
                if (!min_one || i < *min_one) min_one = i;
            } else {
                // A stable 0-consensus reachable from IC(max_input) means
                // the exact verdict there is 0 or ill-specified; either way
                // the pattern cannot end in an accepting run, so no
                // threshold exists.
                if (i == max_input) return true;
                if (!max_zero || i > *max_zero) max_zero = i;
            }
            if (min_one && max_zero && *min_one <= *max_zero) return true;
        }
        // Oscillator cut-off: candidates that never converge cannot be
        // refuted here, only drained of budget.  Hand them to phase 2.
        inconclusive_streak = any_converged ? 0 : inconclusive_streak + 1;
        if (screening.max_inconclusive_inputs > 0 &&
            inconclusive_streak >= screening.max_inconclusive_inputs)
            return false;
    }
    return false;
}

std::optional<AgentCount> Verifier::infer_threshold(AgentCount max_input,
                                                    const ScreeningOptions& screening) const {
    if (screening_refutes_threshold(max_input, screening)) return std::nullopt;
    return infer_threshold(max_input);
}

}  // namespace ppsc
