#include "diophantine/realisable.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/check.hpp"

namespace ppsc {

BigNat pottier_constant(const Protocol& protocol) {
    // ξ := 2(2|T| + 1)^|Q|.
    return BigNat(2) * BigNat(2 * protocol.num_transitions() + 1).pow(protocol.num_states());
}

RealisableBasis realisable_multiset_basis(const Protocol& protocol,
                                          const HilbertOptions& options) {
    if (!protocol.is_leaderless())
        throw std::invalid_argument("realisable_multiset_basis: protocol must be leaderless");
    if (protocol.input_variables().size() != 1)
        throw std::invalid_argument(
            "realisable_multiset_basis: protocol must have exactly one input variable");

    const StateId input = protocol.input_state(0);
    HomogeneousSystem system;
    system.num_vars = protocol.num_transitions();
    if (options.compute == HilbertCompute::sparse) {
        // Scatter assembly: one O(|T|) pass over transition endpoints fills
        // every row at once, instead of the reference's |Q|·|T| scan that
        // interrogates all four endpoints of every transition once per
        // state.  Row order (states ascending, input skipped) matches the
        // reference exactly, so downstream bases are identical.
        std::vector<std::vector<std::int64_t>> delta(
            protocol.num_states(), std::vector<std::int64_t>(system.num_vars, 0));
        for (std::size_t t = 0; t < system.num_vars; ++t) {
            const Transition& transition = protocol.transitions()[t];
            ++delta[static_cast<std::size_t>(transition.post1)][t];
            ++delta[static_cast<std::size_t>(transition.post2)][t];
            --delta[static_cast<std::size_t>(transition.pre1)][t];
            --delta[static_cast<std::size_t>(transition.pre2)][t];
        }
        for (std::size_t q = 0; q < protocol.num_states(); ++q) {
            if (static_cast<StateId>(q) == input) continue;
            system.rows.push_back(std::move(delta[q]));
        }
    } else {
        for (std::size_t q = 0; q < protocol.num_states(); ++q) {
            if (static_cast<StateId>(q) == input) continue;
            std::vector<std::int64_t> row(system.num_vars, 0);
            for (std::size_t t = 0; t < system.num_vars; ++t) {
                const Transition& transition = protocol.transitions()[t];
                std::int64_t delta = 0;
                if (static_cast<std::size_t>(transition.post1) == q) ++delta;
                if (static_cast<std::size_t>(transition.post2) == q) ++delta;
                if (static_cast<std::size_t>(transition.pre1) == q) --delta;
                if (static_cast<std::size_t>(transition.pre2) == q) --delta;
                row[t] = delta;
            }
            system.rows.push_back(std::move(row));
        }
    }

    RealisableBasis basis;
    basis.xi = pottier_constant(protocol);
    basis.elements = generating_basis_inequalities(system, options);
    for (const ParikhImage& element : basis.elements) {
        PPSC_CHECK(is_potentially_realisable(protocol, element));
        const AgentCount i = minimal_realising_input(protocol, element);
        basis.inputs.push_back(i);
        basis.results.push_back(
            apply_parikh(Config::single(protocol.num_states(), input, i), protocol, element));
        basis.max_size = std::max(basis.max_size, parikh_size(element));
    }
    return basis;
}

std::optional<std::size_t> zero_concentrated_element(const RealisableBasis& basis,
                                                     const Protocol& protocol,
                                                     std::span<const StateId> inside) {
    std::vector<bool> in_s(protocol.num_states(), false);
    for (const StateId q : inside) in_s.at(static_cast<std::size_t>(q)) = true;
    for (std::size_t j = 0; j < basis.elements.size(); ++j) {
        const auto& result = basis.results[j];
        bool concentrated = true;
        for (std::size_t q = 0; q < result.size(); ++q) {
            if (!in_s[q] && result[q] != 0) {
                concentrated = false;
                break;
            }
        }
        if (concentrated) return j;
    }
    return std::nullopt;
}

}  // namespace ppsc
