// Potentially realisable multiset bases (Definition 4 / Corollary 5.7).
//
// For a leaderless single-input protocol the potentially realisable
// multisets π — those with IC(i) =π⇒ C for some input i and configuration
// C ∈ N^Q — are exactly the solutions of the homogeneous system
//
//     Σ_t π(t)·Δt(q) ≥ 0        for every q ∈ Q ∖ {x},
//
// over the variables {π(t)}.  Corollary 5.7 applies Pottier's theorem to
// obtain a basis whose elements satisfy |π| ≤ ξ/2 where
// ξ = 2(2|T|+1)^{|Q|} is the Pottier constant (Definition 6).  This module
// computes that basis exactly and exposes the Lemma 5.8 search for a basis
// element whose reached configuration lies entirely inside a given S ⊆ Q.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/parikh.hpp"
#include "core/protocol.hpp"
#include "diophantine/pottier.hpp"
#include "support/bignat.hpp"

namespace ppsc {

struct RealisableBasis {
    /// Basis multisets: every potentially realisable π is an N-sum of these.
    std::vector<ParikhImage> elements;
    /// Minimal realising input i_j for each element (Definition 4 witness).
    std::vector<AgentCount> inputs;
    /// The configuration C_j = IC(i_j) + Δπ_j reached by each element.
    std::vector<std::vector<std::int64_t>> results;
    /// ξ = 2(2|T|+1)^|Q| (Definition 6).
    BigNat xi;
    /// Largest |π_j| in the basis — Corollary 5.7 promises ≤ ξ/2.
    std::int64_t max_size = 0;
};

/// The Pottier constant ξ of a protocol (Definition 6).
BigNat pottier_constant(const Protocol& protocol);

/// Computes the realisable-multiset basis.  Throws std::invalid_argument
/// for protocols with leaders or with more than one input variable (the
/// system is only homogeneous in the leaderless single-input case).
/// `options.compute` selects both the row-assembly strategy here (sparse:
/// one O(|T|) endpoint scatter; reference: the seed-era |Q|·|T| scan) and
/// the completion backend in pottier.hpp; both choices are result-identical.
RealisableBasis realisable_multiset_basis(const Protocol& protocol,
                                          const HilbertOptions& options = {});

/// Lemma 5.8, constructive step: index of a basis element whose reached
/// configuration lies entirely inside S (no agents outside S), if any.
std::optional<std::size_t> zero_concentrated_element(const RealisableBasis& basis,
                                                     const Protocol& protocol,
                                                     std::span<const StateId> inside);

}  // namespace ppsc
