// Minimal solutions of homogeneous linear Diophantine systems.
//
// Theorem 5.6 of the paper (Pottier [25]): a system A·y ≥ 0 of e equations
// over v variables has a basis of solutions B — every solution is an
// N-combination of elements of B — whose elements satisfy
// ∥m∥₁ ≤ (1 + max_i Σ_j |a_ij|)^e.
//
// This module computes such bases exactly:
//   * for A·y = 0, the Hilbert basis (the set of ≤-minimal non-zero
//     solutions) via the Contejean–Devie completion procedure;
//   * for A·y ≥ 0, a generating basis obtained by adding slack variables
//     (A·y − s = 0), computing the Hilbert basis of the slack system, and
//     projecting onto y.  The projection is a *generating* set by
//     construction; it may contain ≤-comparable elements, because
//     componentwise order on y alone does not imply decomposability.
//
// The Pottier bound itself is computed as an exact BigNat so experiments
// can quote the slack between theory and practice.
//
// Two completion backends (PR 6, mirroring sim/traps.hpp's TrapCompute):
// the seed-era `reference` recomputes the full residual A·t of every
// frontier vector from scratch — Θ(e·v) per examination — while `sparse`
// carries each frontier vector's residual along and derives a child's
// residual incrementally as r + A·e_j (one column add, Θ(e)).  Both walk
// the identical frontier in the identical order over exact integer
// arithmetic, so the computed bases are identical — asserted, not argued,
// on exhaustive small-protocol sweeps in tests/analysis_sparse_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bignat.hpp"

namespace ppsc {

/// A homogeneous system: `rows[i]` holds the coefficients of constraint i
/// over `num_vars` variables.
struct HomogeneousSystem {
    std::size_t num_vars = 0;
    std::vector<std::vector<std::int64_t>> rows;

    /// Throws std::invalid_argument on inconsistent row widths.
    void validate() const;
};

/// Theorem 5.6 right-hand side: (1 + max_i Σ_j |a_ij|)^e.
BigNat pottier_bound(const HomogeneousSystem& system);

/// Which formulation runs the Contejean–Devie completion (and, in
/// diophantine/realisable.hpp, how the constraint rows are assembled).
/// Both produce identical bases; `reference` is the seed-era
/// recompute-everything formulation kept for equivalence tests and
/// benchmarks, `sparse` (the default) carries residuals incrementally.
enum class HilbertCompute { sparse, reference };

struct HilbertOptions {
    /// Abort (std::length_error) if a candidate's 1-norm exceeds this; the
    /// Pottier bound guarantees termination below it for sane systems.
    std::int64_t max_norm1 = 1 << 20;
    /// Abort if the frontier grows beyond this many vectors.
    std::size_t max_frontier = 4'000'000;
    /// Completion backend (see HilbertCompute).
    HilbertCompute compute = HilbertCompute::sparse;
};

/// Hilbert basis of {y ∈ N^v ∖ {0} : A·y = 0}: all ≤-minimal solutions.
/// Contejean–Devie completion with the scalar-product descent rule.
std::vector<std::vector<std::int64_t>> hilbert_basis_equalities(
    const HomogeneousSystem& system, const HilbertOptions& options = {});

/// Generating basis of {y ∈ N^v ∖ {0} : A·y ≥ 0} via slack variables:
/// every solution is a finite N-sum of returned vectors.
std::vector<std::vector<std::int64_t>> generating_basis_inequalities(
    const HomogeneousSystem& system, const HilbertOptions& options = {});

/// Oracle for tests: all ≤-minimal non-zero solutions of A·y = 0 with
/// ∥y∥∞ ≤ cap, by brute-force enumeration.
std::vector<std::vector<std::int64_t>> brute_force_minimal_equalities(
    const HomogeneousSystem& system, std::int64_t cap);

/// Solutions of the *inhomogeneous* system A·y ≥ b: the solution set is
/// P + M where P is a finite set of ≤-minimal particular solutions and M
/// the generating basis of the homogeneous part (A·y ≥ 0).  Computed by
/// the classic homogenisation: lift to A·y − b·t ≥ 0 over (y, t), take
/// the Hilbert basis of the lifted equality system, and split by t = 1
/// (particulars) / t = 0 (homogeneous directions).  This extends the
/// paper's Definition 4 machinery to protocols *with leaders*, whose
/// realisability system has the constant offset L.
struct InhomogeneousBasis {
    std::vector<std::vector<std::int64_t>> particular;   ///< minimal solutions of A·y ≥ b
    std::vector<std::vector<std::int64_t>> homogeneous;  ///< generators of A·y ≥ 0
};
InhomogeneousBasis solve_inhomogeneous(const HomogeneousSystem& system,
                                       const std::vector<std::int64_t>& offsets,
                                       const HilbertOptions& options = {});

}  // namespace ppsc
