#include "diophantine/pottier.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "support/check.hpp"
#include "support/hash.hpp"

namespace ppsc {

void HomogeneousSystem::validate() const {
    for (const auto& row : rows) {
        if (row.size() != num_vars)
            throw std::invalid_argument("HomogeneousSystem: row width != num_vars");
    }
}

BigNat pottier_bound(const HomogeneousSystem& system) {
    system.validate();
    std::uint64_t max_row_sum = 0;
    for (const auto& row : system.rows) {
        std::uint64_t sum = 0;
        for (const std::int64_t a : row) sum += static_cast<std::uint64_t>(a < 0 ? -a : a);
        max_row_sum = std::max(max_row_sum, sum);
    }
    return BigNat(1 + max_row_sum).pow(system.rows.size());
}

namespace {

using Vec = std::vector<std::int64_t>;

struct VecHash {
    std::size_t operator()(const Vec& v) const noexcept { return hash_int_vector(v); }
};

bool leq(const Vec& a, const Vec& b) {
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] > b[i]) return false;
    }
    return true;
}

Vec residual(const HomogeneousSystem& system, const Vec& y) {
    Vec r(system.rows.size(), 0);
    for (std::size_t i = 0; i < system.rows.size(); ++i) {
        const auto& row = system.rows[i];
        std::int64_t sum = 0;
        for (std::size_t j = 0; j < row.size(); ++j) sum += row[j] * y[j];
        r[i] = sum;
    }
    return r;
}

bool is_zero(const Vec& v) {
    return std::all_of(v.begin(), v.end(), [](std::int64_t x) { return x == 0; });
}

std::int64_t dot(const Vec& a, const Vec& b) {
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
    return sum;
}

std::int64_t norm1(const Vec& v) {
    std::int64_t sum = 0;
    for (const std::int64_t x : v) sum += x;
    return sum;
}

}  // namespace

std::vector<Vec> hilbert_basis_equalities(const HomogeneousSystem& system,
                                          const HilbertOptions& options) {
    system.validate();
    const std::size_t v = system.num_vars;
    if (v == 0) return {};

    // Column images A·e_j, used by the Contejean–Devie descent rule.
    std::vector<Vec> column(v);
    for (std::size_t j = 0; j < v; ++j) {
        Vec unit(v, 0);
        unit[j] = 1;
        column[j] = residual(system, unit);
    }

    const bool incremental = options.compute == HilbertCompute::sparse;

    std::vector<Vec> basis;
    std::vector<Vec> frontier;
    // Sparse backend: residuals[k] = A·frontier[k], carried along instead of
    // recomputed.  A unit vector's residual is its column image, and a
    // child's residual is r + A·e_j — one Θ(e) column add per candidate
    // instead of the reference's Θ(e·v) recomputation per examination.  The
    // arithmetic is exact either way, so the frontier — and the basis — are
    // identical.
    std::vector<Vec> residuals;
    std::unordered_set<Vec, VecHash> seen;
    for (std::size_t j = 0; j < v; ++j) {
        Vec unit(v, 0);
        unit[j] = 1;
        frontier.push_back(unit);
        if (incremental) residuals.push_back(column[j]);
        seen.insert(std::move(unit));
    }

    Vec recomputed;
    while (!frontier.empty()) {
        std::vector<Vec> next;
        std::vector<Vec> next_residuals;
        for (std::size_t k = 0; k < frontier.size(); ++k) {
            const Vec& t = frontier[k];
            if (!incremental) recomputed = residual(system, t);
            const Vec& r = incremental ? residuals[k] : recomputed;
            if (is_zero(r)) {
                // Minimal by construction: any smaller solution would have
                // pruned t before it entered the frontier.
                basis.push_back(t);
                continue;
            }
            for (std::size_t j = 0; j < v; ++j) {
                // Contejean–Devie: only grow along coordinates that move the
                // residual towards the origin.
                if (dot(r, column[j]) >= 0) continue;
                Vec candidate = t;
                candidate[j] += 1;
                if (norm1(candidate) > options.max_norm1)
                    throw std::length_error(
                        "hilbert_basis_equalities: candidate exceeds max_norm1");
                bool dominated = false;
                for (const Vec& b : basis) {
                    if (leq(b, candidate)) {
                        dominated = true;
                        break;
                    }
                }
                if (dominated) continue;
                if (seen.insert(candidate).second) {
                    if (incremental) {
                        Vec child_residual = r;
                        for (std::size_t i = 0; i < child_residual.size(); ++i)
                            child_residual[i] += column[j][i];
                        next_residuals.push_back(std::move(child_residual));
                    }
                    next.push_back(std::move(candidate));
                }
            }
        }
        if (seen.size() > options.max_frontier)
            throw std::length_error("hilbert_basis_equalities: frontier budget exhausted");
        frontier = std::move(next);
        residuals = std::move(next_residuals);
    }

    // The breadth-first order guarantees minimal solutions are found before
    // any solution dominating them, but two incomparable solutions may both
    // be emitted; filter dominated ones defensively.
    std::vector<Vec> minimal;
    for (const Vec& candidate : basis) {
        bool dominated = false;
        for (const Vec& other : basis) {
            if (&other != &candidate && leq(other, candidate) && other != candidate) {
                dominated = true;
                break;
            }
        }
        if (!dominated) minimal.push_back(candidate);
    }
    return minimal;
}

std::vector<Vec> generating_basis_inequalities(const HomogeneousSystem& system,
                                               const HilbertOptions& options) {
    system.validate();
    // Slack form: A·y − s = 0 with s ≥ 0, one slack per row.
    HomogeneousSystem slack;
    slack.num_vars = system.num_vars + system.rows.size();
    for (std::size_t i = 0; i < system.rows.size(); ++i) {
        Vec row = system.rows[i];
        row.resize(slack.num_vars, 0);
        row[system.num_vars + i] = -1;
        slack.rows.push_back(std::move(row));
    }

    const std::vector<Vec> slack_basis = hilbert_basis_equalities(slack, options);
    std::vector<Vec> projected;
    std::unordered_set<Vec, VecHash> seen;
    for (const Vec& solution : slack_basis) {
        Vec y(solution.begin(), solution.begin() + static_cast<std::ptrdiff_t>(system.num_vars));
        if (is_zero(y)) continue;  // cannot happen: s is determined by y
        if (seen.insert(y).second) projected.push_back(std::move(y));
    }
    return projected;
}

InhomogeneousBasis solve_inhomogeneous(const HomogeneousSystem& system,
                                       const std::vector<std::int64_t>& offsets,
                                       const HilbertOptions& options) {
    system.validate();
    if (offsets.size() != system.rows.size())
        throw std::invalid_argument("solve_inhomogeneous: offsets size != number of rows");

    // Homogenise: A·y − b·t ≥ 0 over (y, t), then slack to equalities.
    HomogeneousSystem lifted;
    lifted.num_vars = system.num_vars + 1;
    for (std::size_t i = 0; i < system.rows.size(); ++i) {
        Vec row = system.rows[i];
        row.push_back(-offsets[i]);
        lifted.rows.push_back(std::move(row));
    }

    InhomogeneousBasis result;
    std::unordered_set<Vec, VecHash> seen_particular, seen_homogeneous;
    for (const Vec& solution : generating_basis_inequalities(lifted, options)) {
        Vec y(solution.begin(), solution.end() - 1);
        const std::int64_t t = solution.back();
        if (t == 0) {
            if (!is_zero(y) && seen_homogeneous.insert(y).second)
                result.homogeneous.push_back(std::move(y));
        } else if (t == 1) {
            if (seen_particular.insert(y).second) result.particular.push_back(std::move(y));
        }
        // t >= 2 elements are sums of smaller ones; not needed for the
        // particular + homogeneous decomposition.
    }

    // Keep only ≤-minimal particular solutions.
    std::vector<Vec> minimal;
    for (const Vec& candidate : result.particular) {
        bool dominated = false;
        for (const Vec& other : result.particular) {
            if (other != candidate && leq(other, candidate)) {
                dominated = true;
                break;
            }
        }
        if (!dominated) minimal.push_back(candidate);
    }
    result.particular = std::move(minimal);
    return result;
}

std::vector<Vec> brute_force_minimal_equalities(const HomogeneousSystem& system,
                                                std::int64_t cap) {
    system.validate();
    std::vector<Vec> solutions;
    Vec y(system.num_vars, 0);
    auto recurse = [&](auto&& self, std::size_t j) -> void {
        if (j == system.num_vars) {
            if (!is_zero(y) && is_zero(residual(system, y))) solutions.push_back(y);
            return;
        }
        for (std::int64_t c = 0; c <= cap; ++c) {
            y[j] = c;
            self(self, j + 1);
        }
        y[j] = 0;
    };
    recurse(recurse, 0);

    std::vector<Vec> minimal;
    for (const Vec& candidate : solutions) {
        bool dominated = false;
        for (const Vec& other : solutions) {
            if (other != candidate && leq(other, candidate)) {
                dominated = true;
                break;
            }
        }
        if (!dominated) minimal.push_back(candidate);
    }
    return minimal;
}

}  // namespace ppsc
