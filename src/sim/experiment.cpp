#include "sim/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <filesystem>
#include <functional>
#include <optional>
#include <thread>

#include "protocols/double_exp_threshold.hpp"
#include "sim/checkpoint.hpp"
#include "sim/stats.hpp"

namespace ppsc {

namespace {

struct TrialResult {
    bool converged = false;
    double parallel_time = 0.0;
    std::optional<int> output;
};

}  // namespace

std::vector<ConvergenceRow> convergence_sweep(const Protocol& protocol,
                                              const std::vector<AgentCount>& populations,
                                              const std::function<int(AgentCount)>& expected,
                                              const ConvergenceSweepOptions& options) {
    const Simulator simulator(protocol, PairSelect::automatic, options.trap_compute);
    const std::uint64_t runs = options.runs_per_size;
    const std::size_t total_trials = populations.size() * static_cast<std::size_t>(runs);

    const bool checkpointing = !options.checkpoint_dir.empty() && options.checkpoint_every != 0;
    const std::uint64_t fingerprint = checkpointing ? protocol_fingerprint(protocol) : 0;
    const auto stop_requested = [&options] {
        return options.stop != nullptr && options.stop->load(std::memory_order_relaxed);
    };

    // Every trial is fully determined by its (population, repetition) seed,
    // so trials can run in any order on any thread; results land in a
    // per-trial slot and are aggregated serially afterwards, keeping the
    // rows (including floating-point accumulation order) identical to the
    // serial sweep.
    std::vector<TrialResult> trials(total_trials);
    const auto run_trial = [&](std::size_t index) {
        const AgentCount population = populations[index / runs];
        const std::uint64_t r = index % runs;
        // One independent stream per (size, repetition) pair.
        Rng rng(options.seed ^ (static_cast<std::uint64_t>(population) << 20) ^ r);
        Config start = protocol.initial_config(population);
        SimulationOptions simulation = options.simulation;
        std::optional<CheckpointDir> dir;
        if (checkpointing) {
            // One rotation directory per trial; the trial's identity is in
            // the directory name, so re-sweeping with different populations
            // or repetition counts can never cross-resume trials.
            const std::string slot =
                "p" + std::to_string(population) + "-r" + std::to_string(r);
            dir.emplace((std::filesystem::path(options.checkpoint_dir) / slot).string(),
                        options.checkpoint_keep_last);
            const CheckpointDir::Latest latest = dir->load_latest(fingerprint);
            if (latest.checkpoint && latest.checkpoint->config.size() == start.size() &&
                latest.checkpoint->config.num_states() == start.num_states()) {
                start = latest.checkpoint->config;
                rng.set_state(latest.checkpoint->rng_state);
                simulation.initial_interactions = latest.checkpoint->interactions;
                // Resume the fired counter too, so the snapshots this trial
                // writes carry the same absolute totals the uninterrupted
                // trial's would (checkpoint_test pins the golden format).
                simulation.initial_fired = latest.checkpoint->fired;
            }
            simulation.checkpoint.every = options.checkpoint_every;
            simulation.checkpoint.callback = [&](const CheckpointTick& tick) {
                Checkpoint snapshot;
                snapshot.fingerprint = fingerprint;
                snapshot.config = tick.config;
                snapshot.rng_state = tick.rng_state;
                snapshot.interactions = tick.interactions;
                snapshot.fired = tick.fired;
                dir->write(snapshot);
                return !stop_requested();
            };
        }
        const SimulationResult result = simulator.run(std::move(start), rng, simulation);
        if (checkpointing) {
            // Final snapshot: a later sweep restores the trial here — a
            // finished trial re-reports its result without re-simulating,
            // an interrupted one continues from this exact point.
            Checkpoint snapshot;
            snapshot.fingerprint = fingerprint;
            snapshot.config = result.final_config;
            snapshot.rng_state = rng.state();
            snapshot.interactions = result.interactions;
            snapshot.fired = result.fired;
            dir->write(snapshot);
        }
        trials[index] = {result.converged, result.parallel_time, result.output};
    };

    unsigned workers = options.parallelism != 0
                           ? options.parallelism
                           : std::max(1u, std::thread::hardware_concurrency());
    workers = static_cast<unsigned>(
        std::min<std::size_t>(workers, std::max<std::size_t>(total_trials, 1)));

    if (workers <= 1) {
        for (std::size_t i = 0; i < total_trials && !stop_requested(); ++i) run_trial(i);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::exception_ptr> errors(workers);
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            pool.emplace_back([&, w] {
                try {
                    for (std::size_t i = next.fetch_add(1);
                         i < total_trials && !stop_requested(); i = next.fetch_add(1))
                        run_trial(i);
                } catch (...) {
                    errors[w] = std::current_exception();
                }
            });
        }
        for (std::thread& t : pool) t.join();
        for (const std::exception_ptr& e : errors) {
            if (e) std::rethrow_exception(e);
        }
    }

    std::vector<ConvergenceRow> rows;
    rows.reserve(populations.size());
    for (std::size_t pi = 0; pi < populations.size(); ++pi) {
        const AgentCount population = populations[pi];
        RunningStats time_stats;
        std::uint64_t converged = 0, correct = 0;
        for (std::uint64_t r = 0; r < runs; ++r) {
            const TrialResult& trial = trials[pi * runs + r];
            if (trial.converged) {
                ++converged;
                time_stats.add(trial.parallel_time);
            }
            if (trial.output && *trial.output == expected(population)) ++correct;
        }
        ConvergenceRow row;
        row.population = population;
        row.runs = runs;
        row.converged_runs = converged;
        row.mean_parallel_time = time_stats.mean();
        row.stddev_parallel_time = time_stats.stddev();
        row.max_parallel_time = time_stats.max();
        row.correct_fraction =
            runs == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(runs);
        rows.push_back(row);
    }
    return rows;
}

std::vector<ThroughputRow> e11_throughput_sweep(const E11Options& options) {
    std::vector<ThroughputRow> rows;
    std::uint64_t row_index = 0;
    for (const int n : options.tower_ns) {
        struct Variant {
            std::string label;
            Protocol protocol;
        };
        std::vector<Variant> variants;
        variants.push_back(
            {"double_exp(" + std::to_string(n) + ")", protocols::double_exp_threshold(n)});
        if (options.include_dense && n >= 1 && n <= options.max_dense_n) {
            variants.push_back({"double_exp_dense(" + std::to_string(n) + ")",
                                protocols::double_exp_threshold_dense(n)});
        }
        if (options.rule_table != RuleTable::automatic) {
            for (Variant& variant : variants)
                variant.protocol = variant.protocol.with_rule_table(options.rule_table);
        }
        for (const Variant& variant : variants) {
            const Simulator simulator(variant.protocol, options.selection,
                                      options.trap_compute);
            for (const AgentCount population : options.populations) {
                Rng rng(options.seed ^ (row_index++ << 32));
                Config config = variant.protocol.initial_config(population);
                const auto start = std::chrono::steady_clock::now();
                std::uint64_t done = 0;
                std::uint64_t fired = 0;
                while (done < options.interactions_per_row) {
                    const std::uint64_t want = options.interactions_per_row - done;
                    // The fired out-param is per-call (overwritten, never
                    // accumulated by run_batch), so summing it here counts
                    // each restart's firings exactly once.
                    std::uint64_t fired_call = 0;
                    const std::uint64_t got =
                        simulator.run_batch(config, rng, want, false, nullptr, &fired_call,
                                            options.step_mode, options.epoch);
                    done += got;
                    fired += fired_call;
                    if (got < want) {
                        // A config that executes nothing is silent from the
                        // start (or degenerate) — restarting would spin.
                        if (got == 0) break;
                        // Sub-threshold trajectories end silent (≤ 1 token
                        // per level); restart from IC to keep measuring.
                        config = variant.protocol.initial_config(population);
                    }
                }
                const std::chrono::duration<double> elapsed =
                    std::chrono::steady_clock::now() - start;
                ThroughputRow row;
                row.protocol = variant.label;
                row.num_states = variant.protocol.num_states();
                row.nonsilent_pairs = variant.protocol.nonsilent_pairs().size();
                row.rule_table =
                    variant.protocol.rule_table() == RuleTable::dense ? "dense" : "sparse";
                row.rule_table_bytes = variant.protocol.rule_table_bytes();
                row.trap_setup_seconds = simulator.trap_setup_seconds();
                row.population = population;
                row.interactions = done;
                row.fired = fired;
                row.seconds = elapsed.count();
                row.interactions_per_sec =
                    row.seconds > 0.0 ? static_cast<double>(done) / row.seconds : 0.0;
                row.fired_per_sec =
                    row.seconds > 0.0 ? static_cast<double>(fired) / row.seconds : 0.0;
                rows.push_back(row);
            }
        }
    }
    return rows;
}

}  // namespace ppsc
