#include "sim/experiment.hpp"

#include <functional>

#include "sim/stats.hpp"

namespace ppsc {

std::vector<ConvergenceRow> convergence_sweep(const Protocol& protocol,
                                              const std::vector<AgentCount>& populations,
                                              const std::function<int(AgentCount)>& expected,
                                              const ConvergenceSweepOptions& options) {
    const Simulator simulator(protocol);
    std::vector<ConvergenceRow> rows;
    rows.reserve(populations.size());
    for (const AgentCount population : populations) {
        RunningStats time_stats;
        std::uint64_t converged = 0, correct = 0;
        for (std::uint64_t r = 0; r < options.runs_per_size; ++r) {
            // One independent stream per (size, repetition) pair.
            Rng rng(options.seed ^ (static_cast<std::uint64_t>(population) << 20) ^ r);
            const SimulationResult result =
                simulator.run_input(population, rng, options.simulation);
            if (result.converged) {
                ++converged;
                time_stats.add(result.parallel_time);
            }
            if (result.output && *result.output == expected(population)) ++correct;
        }
        ConvergenceRow row;
        row.population = population;
        row.runs = options.runs_per_size;
        row.converged_runs = converged;
        row.mean_parallel_time = time_stats.mean();
        row.stddev_parallel_time = time_stats.stddev();
        row.max_parallel_time = time_stats.max();
        row.correct_fraction = options.runs_per_size == 0
                                   ? 0.0
                                   : static_cast<double>(correct) /
                                         static_cast<double>(options.runs_per_size);
        rows.push_back(row);
    }
    return rows;
}

}  // namespace ppsc
