// Random-scheduler simulation of population protocols.
//
// The standard stochastic model (Section 1 of the paper): at each step a
// pair of distinct agents is chosen uniformly at random and interacts.
// Parallel time = interactions / number of agents.
//
// Engine.  The hot path is built around three ideas:
//
//   1. Fenwick sampling: agent ranks map to states through a Fenwick tree
//      over the count vector (O(log |Q|) per sample, O(log |Q|) to keep in
//      sync when a transition fires) instead of an O(|Q|) prefix scan.
//   2. Incremental silence detection: the engine maintains W = the number
//      of *ordered agent pairs* whose state pair enables a non-silent
//      transition.  W = 0 ⟺ the configuration is silent, so silence is
//      detected exactly and in O(1) instead of by an O(|support|²) rescan
//      every `population` steps.
//   3. Rejection-free batching: when W is small relative to the n(n−1)
//      ordered pairs, the number of consecutive silent encounters is
//      geometrically distributed — run()/run_batch() sample it in one shot
//      and advance the interaction counter without executing the silent
//      encounters one by one.  The resulting trajectory distribution is
//      exactly that of the naive per-encounter chain.
//
// Convergence detection.  True stabilisation ("no reachable configuration
// changes the output") is undecidable to detect locally, so the simulator
// uses two *sound* sufficient conditions:
//
//   1. Silent configurations: every enabled pair is silent — no transition
//      can ever fire again, so the configuration is trivially stable.
//   2. Output traps: a set W_b ⊆ O⁻¹(b) of states closed under interaction
//      (every transition whose both pre-states lie in W_b has both
//      post-states in W_b).  If all agents are inside W_b, every reachable
//      configuration stays inside, so the output is stably b.  We compute a
//      greatest-fixpoint under-approximation of the largest such trap.
//
// Both checks are sound: `converged == true` really means the execution has
// stabilised.  They are not complete; runs that stabilise in a form the
// checks cannot see terminate at `max_interactions` with converged == false.
//
// Thread safety: run()/run_input() are const and keep all mutable state on
// the stack, so one Simulator may serve concurrent runs (this is what the
// parallel convergence sweeps do).  step()/run_batch()/sample_pair() share
// a per-simulator sampler cache and must not be called concurrently.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/protocol.hpp"
#include "support/fenwick.hpp"
#include "support/rng.hpp"

namespace ppsc {

struct SimulationOptions {
    /// Hard cap on interactions before giving up.
    std::uint64_t max_interactions = 50'000'000;

    /// Legacy knob.  Silence is now detected incrementally and exactly, so
    /// this only governs the periodic O(|support|²) fallback check used for
    /// populations too large for pair-weight tracking (> 2³¹ agents);
    /// 0 means "population size".
    std::uint64_t silent_check_interval = 0;
};

struct SimulationResult {
    Config final_config;
    std::uint64_t interactions = 0;   ///< total interactions executed
    bool converged = false;           ///< a sound stability condition fired
    std::optional<int> output;        ///< consensus output of the final config
    double parallel_time = 0.0;       ///< interactions / population
};

/// Reusable simulator for one protocol (precomputes output traps and the
/// non-silent pair structure).
class Simulator {
public:
    explicit Simulator(const Protocol& protocol);

    /// Runs from `config` until a sound stability condition holds or the
    /// interaction budget is exhausted.  Thread-safe.
    SimulationResult run(Config config, Rng& rng, const SimulationOptions& options = {}) const;

    /// Runs from IC(input) (single-input protocols).  Thread-safe.
    SimulationResult run_input(AgentCount input, Rng& rng,
                               const SimulationOptions& options = {}) const;

    /// Executes exactly one interaction step on `config`; returns the
    /// transition fired (nullopt for a silent encounter).  Not thread-safe
    /// (uses the sampler cache).
    std::optional<TransitionId> step(Config& config, Rng& rng) const;

    /// Executes up to `max_interactions` interactions on `config` (silent
    /// encounters are counted and, when profitable, skipped in bulk without
    /// changing the trajectory distribution).  Returns the number executed;
    /// the return value is < max_interactions only when the configuration
    /// became silent (no transition can ever fire again).  Not thread-safe.
    std::uint64_t run_batch(Config& config, Rng& rng, std::uint64_t max_interactions) const;

    /// Samples the states of a uniform ordered pair of distinct agents
    /// without mutating `config` — the scheduler's encounter distribution.
    /// Exposed for statistical tests.  Not thread-safe.
    std::pair<StateId, StateId> sample_pair(const Config& config, Rng& rng) const;

    /// The output trap W_b used for convergence detection (exposed for
    /// tests and for the stable-set experiments).
    const std::vector<bool>& output_trap(int b) const { return traps_[b]; }

    /// True iff the configuration is silent: every enabled pair of states
    /// has only the implicit silent transition.  O(|support|²) rescan.
    bool is_silent(const Config& config) const;

    /// True iff one of the two sound stability conditions holds.
    bool is_provably_stable(const Config& config) const;

private:
    /// Incremental per-configuration sampler state.  Everything here is a
    /// function of (protocol, current counts); run() keeps one on the
    /// stack, step()/run_batch() share the cached one keyed on
    /// (config address, config version).
    struct StepContext {
        FenwickTree agents;  ///< Fenwick tree over the count vector
        /// partner_weight[q] = Σ counts[p] over non-self non-silent
        /// partners p of q; maintains active_weight in O(deg) per update.
        std::vector<AgentCount> partner_weight;
        /// Number of ordered agent pairs enabling a non-silent transition;
        /// 0 ⟺ silent.  Valid only when track_pairs.
        std::int64_t active_weight = 0;
        /// Pair-weight tracking needs n(n−1) < 2⁶³; populations beyond
        /// 2³¹ agents fall back to per-encounter stepping + periodic
        /// silence rescans.
        bool track_pairs = false;
        const Config* owner = nullptr;
        std::uint64_t version = 0;
    };

    void compute_output_traps();
    void build_pair_structure();

    void init_context(StepContext& ctx, const Config& config) const;
    StepContext& cached_context(const Config& config) const;

    /// Adds `delta` agents to state q, keeping the Fenwick tree, the
    /// partner weights, and active_weight in sync.
    void apply_count_delta(StepContext& ctx, Config& config, StateId q, AgentCount delta) const;
    void fire_in_context(StepContext& ctx, Config& config, const Transition& t) const;

    std::pair<StateId, StateId> sample_pair_in_context(const StepContext& ctx, Rng& rng) const;
    std::optional<TransitionId> step_in_context(StepContext& ctx, Config& config, Rng& rng) const;

    /// Advances the interaction chain by up to `budget` interactions:
    /// consumes the (geometrically distributed) run of silent encounters,
    /// then fires one non-silent transition.  Sets *consumed to the number
    /// of interactions executed (silent run + the firing one).  Returns
    /// nullopt with *consumed == 0 iff the configuration is silent, and
    /// nullopt with *consumed == budget when the budget ran out first.
    /// Requires ctx.track_pairs.
    std::optional<TransitionId> advance(StepContext& ctx, Config& config, Rng& rng,
                                        std::uint64_t budget, std::uint64_t* consumed) const;

    // Owned copy: simulators are long-lived; never dangle on a temporary.
    Protocol protocol_;
    std::vector<bool> traps_[2];  // traps_[b][q]: q belongs to the b-trap

    // Non-silent pair structure (CSR adjacency of the "has a rule with"
    // relation, self-pairs split out), precomputed from the protocol.
    std::vector<std::pair<StateId, StateId>> nonsilent_pairs_;  // p ≤ q, deduped
    std::vector<std::uint32_t> partner_offsets_;  // CSR offsets, size |Q|+1
    std::vector<StateId> partners_;               // non-self partners, flat
    std::vector<std::uint8_t> self_rule_;         // {q,q} has a rule

    mutable StepContext cache_;
};

}  // namespace ppsc
