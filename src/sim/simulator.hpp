// Random-scheduler simulation of population protocols.
//
// The standard stochastic model (Section 1 of the paper): at each step a
// pair of distinct agents is chosen uniformly at random and interacts.
// Parallel time = interactions / number of agents.
//
// Convergence detection.  True stabilisation ("no reachable configuration
// changes the output") is undecidable to detect locally, so the simulator
// uses two *sound* sufficient conditions:
//
//   1. Silent configurations: every enabled pair is silent — no transition
//      can ever fire again, so the configuration is trivially stable.
//   2. Output traps: a set W_b ⊆ O⁻¹(b) of states closed under interaction
//      (every transition whose both pre-states lie in W_b has both
//      post-states in W_b).  If all agents are inside W_b, every reachable
//      configuration stays inside, so the output is stably b.  We compute a
//      greatest-fixpoint under-approximation of the largest such trap.
//
// Both checks are sound: `converged == true` really means the execution has
// stabilised.  They are not complete; runs that stabilise in a form the
// checks cannot see terminate at `max_interactions` with converged == false.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/protocol.hpp"
#include "support/rng.hpp"

namespace ppsc {

struct SimulationOptions {
    /// Hard cap on interactions before giving up.
    std::uint64_t max_interactions = 50'000'000;

    /// How often (in interactions) to run the O(|support|²) silent-config
    /// check; 0 means "population size".
    std::uint64_t silent_check_interval = 0;
};

struct SimulationResult {
    Config final_config;
    std::uint64_t interactions = 0;   ///< total interactions executed
    bool converged = false;           ///< a sound stability condition fired
    std::optional<int> output;        ///< consensus output of the final config
    double parallel_time = 0.0;       ///< interactions / population
};

/// Reusable simulator for one protocol (precomputes output traps).
class Simulator {
public:
    explicit Simulator(const Protocol& protocol);

    /// Runs from `config` until a sound stability condition holds or the
    /// interaction budget is exhausted.
    SimulationResult run(Config config, Rng& rng, const SimulationOptions& options = {}) const;

    /// Runs from IC(input) (single-input protocols).
    SimulationResult run_input(AgentCount input, Rng& rng,
                               const SimulationOptions& options = {}) const;

    /// Executes exactly one interaction step on `config`; returns the
    /// transition fired (nullopt for a silent encounter).
    std::optional<TransitionId> step(Config& config, Rng& rng) const;

    /// The output trap W_b used for convergence detection (exposed for
    /// tests and for the stable-set experiments).
    const std::vector<bool>& output_trap(int b) const { return traps_[b]; }

    /// True iff the configuration is silent: every enabled pair of states
    /// has only the implicit silent transition.
    bool is_silent(const Config& config) const;

    /// True iff one of the two sound stability conditions holds.
    bool is_provably_stable(const Config& config) const;

private:
    void compute_output_traps();

    // Owned copy: simulators are long-lived; never dangle on a temporary.
    Protocol protocol_;
    std::vector<bool> traps_[2];  // traps_[b][q]: q belongs to the b-trap
};

}  // namespace ppsc
