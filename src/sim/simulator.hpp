// Random-scheduler simulation of population protocols.
//
// The standard stochastic model (Section 1 of the paper): at each step a
// pair of distinct agents is chosen uniformly at random and interacts.
// Parallel time = interactions / number of agents.
//
// Engine.  The hot path is built around four ideas:
//
//   1. Fenwick agent sampling: agent ranks map to states through a Fenwick
//      tree over the count vector (O(log |Q|) per sample, O(log |Q|) to keep
//      in sync when a transition fires) instead of an O(|Q|) prefix scan.
//   2. Incremental silence detection: the engine maintains W = the number
//      of *ordered agent pairs* whose state pair enables a non-silent
//      transition.  W = 0 ⟺ the configuration is silent, so silence is
//      detected exactly and in O(1).  The weight arithmetic is templated on
//      the population scale: int64 while n(n−1) fits (n ≤ 2³¹ agents),
//      128-bit beyond — populations past 2³¹ take the same fast path as
//      small ones instead of falling back to per-encounter stepping.
//   3. Rejection-free batching: when W is small relative to the n(n−1)
//      ordered pairs, the number of consecutive silent encounters is
//      geometrically distributed — run()/run_batch() sample it in one shot
//      and advance the interaction counter without executing the silent
//      encounters one by one.  The resulting trajectory distribution is
//      exactly that of the naive per-encounter chain.
//   4. Pair-weight Fenwick sampling: the interacting pair of a fired step
//      (weight-proportional over the non-silent pairs) is drawn from a
//      second Fenwick tree over the ordered pair weights, fed by the same
//      delta machinery that maintains W and flushed lazily right before a
//      selection — O(log #pairs) per fired interaction instead of the
//      O(#pairs) scan the engine used before, which dominated protocols
//      with many non-silent pairs (the double-exponential threshold
//      workload has millions), while dense-regime stepping keeps its
//      O(deg) cost.  Protocols with only a handful of non-silent pairs
//      stay on the (there faster) scan automatically.
//   5. Epoch-batched stepping (StepMode::epoch, opt-in): when the
//      pair-weight structure drifts slowly — the dense merge phases of the
//      E11 double-exponential workloads — k fired steps are drawn as ONE
//      multinomial over the pair-weight Fenwick (conditional-binomial
//      descent) and applied as aggregated per-state count deltas in one
//      pass, with the run of silent encounters folded in as a single
//      negative-binomial draw.  Unlike ideas 1-4, which are trajectory-
//      identical per seed, epoch batching freezes the weights across the
//      epoch and is therefore *distribution*-level: the epoch length is
//      capped so no state's expected consumption exceeds a small fraction
//      of its count (EpochOptions::drift), infeasible draws are rejected
//      and retried at half the length, and the engine falls back to the
//      exact per-step reference path whenever an epoch is not profitable.
//      Equivalence is established statistically (chi-squared on firing
//      counts, two-sample tests on convergence times — see
//      tests/support_stats/ and docs/ARCHITECTURE.md).
//
// All encounter resolution goes through Protocol::pair_id — PairIds over
// the non-silent pairs only — so the engine is agnostic to the protocol's
// rule-table representation (dense triangular array vs. the sparse hash
// table that unlocks |Q| ≥ 10⁵; see RuleTable in core/protocol.hpp) and
// produces identical per-seed trajectories under either.
//
// Convergence detection.  True stabilisation ("no reachable configuration
// changes the output") is undecidable to detect locally, so the simulator
// uses two *sound* sufficient conditions:
//
//   1. Silent configurations: every enabled pair is silent — no transition
//      can ever fire again, so the configuration is trivially stable.
//   2. Output traps: a set W_b ⊆ O⁻¹(b) of states closed under interaction
//      (every transition whose both pre-states lie in W_b has both
//      post-states in W_b).  If all agents are inside W_b, every reachable
//      configuration stays inside, so the output is stably b.  We compute a
//      greatest-fixpoint under-approximation of the largest such trap
//      (sim/traps.hpp: a worklist fixpoint over the protocol's
//      transition-incidence index, O(|T| + evictions · deg) instead of the
//      O(passes · |T|) reference pass structure it is asserted identical
//      to — trap setup at |Q| ≥ 10⁵ in milliseconds instead of minutes).
//
// Both checks are sound: `converged == true` really means the execution has
// stabilised.  They are not complete; runs that stabilise in a form the
// checks cannot see terminate at `max_interactions` with converged == false.
//
// Stability probes are O(1) along a trajectory: every step context carries
// per-trap outside-support counters (agents sitting outside W_b) maintained
// by the same count-delta machinery that maintains the silence weight W, so
// is_provably_stable on the configuration the cached context owns — and the
// early-stop checks inside run()/run_batch() — read two counters instead of
// rescanning the support (previously O(|support|) + an O(|support|²)
// silence re-scan per probe).
//
// Thread safety: run()/run_input() are const and keep all mutable state on
// the stack, so one Simulator may serve concurrent runs (this is what the
// parallel convergence sweeps do).  step()/run_batch()/fired_step()/
// sample_pair() share a per-simulator sampler cache and must not be called
// concurrently — and is_silent()/is_provably_stable() *read* that cache
// (the O(1) probe path), so they must not race with the cache-writing calls
// either; concurrently with run()/run_input() they are fine.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/protocol.hpp"
#include "sim/traps.hpp"
#include "support/fenwick.hpp"
#include "support/rng.hpp"

namespace ppsc {

/// One checkpointable moment of a trajectory, handed to CheckpointHook
/// callbacks.  Everything a snapshot needs (sim/checkpoint.hpp): the
/// current counts, the full Rng state, and the counters accumulated within
/// the hook-bearing call (the caller adds its own resumed-from base).
struct CheckpointTick {
    const Config& config;
    std::uint64_t rng_state = 0;
    /// Interactions executed in this call — run() adds the resumed-from base
    /// (SimulationOptions::initial_interactions), run_batch callers add
    /// their own.
    std::uint64_t interactions = 0;
    /// Non-silent interactions, same accounting as `interactions`
    /// (run() adds SimulationOptions::initial_fired).
    std::uint64_t fired = 0;
};

/// Checkpoint-every-N-interactions hook for run()/run_batch().  The
/// callback fires at the first *fired-step boundary* at or past each
/// cadence mark — never mid-advance — so it neither consumes randomness
/// nor cuts a geometric silent-skip short: trajectories are byte-identical
/// per seed with the hook present, absent, or resumed from any snapshot
/// the hook wrote.  Returning false stops the run after the current step
/// (graceful shutdown); the interactions executed so far are reported as
/// usual.
struct CheckpointHook {
    /// Minimum interactions between callbacks (0 disables the hook).
    std::uint64_t every = 0;
    std::function<bool(const CheckpointTick&)> callback;

    bool active() const noexcept { return every != 0 && callback != nullptr; }
};

/// How run()/run_batch() advance the chain between stability checks.
/// `per_step` is the exact reference: one weight-proportional draw per
/// fired interaction (with the geometric silent-skip), trajectory-identical
/// per seed across all other engine options.  `epoch` batches fired steps
/// into multinomial epochs whenever the weight structure is drifting slowly
/// enough (see EpochOptions) and falls back to the per-step path otherwise —
/// distribution-identical rather than trajectory-identical, and validated by
/// the statistical-equivalence suite.
enum class StepMode { per_step, epoch };

/// Tuning knobs of the epoch-batched path.  An epoch of k fired steps is
/// taken only when k — capped so that no state's *expected* consumption
/// across the epoch exceeds `drift` of its current count, and so the
/// expected interactions stay within half the remaining budget — reaches
/// `min_firings`; otherwise the engine serves the step from the exact
/// per-step reference path.  Draws whose realized consumption exceeds some
/// count (possible in the binomial tail) are rejected wholesale and retried
/// at half the length, so counts never go negative and every epoch applied
/// is a realizable firing sequence.
struct EpochOptions {
    /// Max expected fraction of any state's count consumed per epoch.
    double drift = 0.125;
    /// Floor below which an epoch is not worth its fixed costs.
    std::uint64_t min_firings = 32;
    /// Hard per-epoch cap — bounds the scratch work between stability and
    /// checkpoint probes (which run at epoch boundaries only).
    std::uint64_t max_firings = std::uint64_t{1} << 22;
};

/// Counters describing how the epoch path engaged (per Simulator,
/// accumulated across calls; see Simulator::epoch_stats).  Tests use them
/// to assert the multinomial path actually ran; benchmarks to report the
/// epoch/fallback mix.
struct EpochStats {
    std::uint64_t epochs = 0;          ///< multinomial epochs applied
    std::uint64_t epoch_fired = 0;     ///< fired interactions drawn in epochs
    std::uint64_t fallback_fired = 0;  ///< fired on the per-step path in epoch mode
    std::uint64_t rejected_draws = 0;  ///< infeasible epoch draws retried/abandoned
};

struct SimulationOptions {
    /// Hard cap on interactions before giving up.
    std::uint64_t max_interactions = 50'000'000;
    /// Resume support: interactions already executed before this call (a
    /// restored checkpoint).  Counted against max_interactions and included
    /// in the reported totals, so resuming a run at its checkpoint replays
    /// the uninterrupted run's tail byte-identically.
    std::uint64_t initial_interactions = 0;
    /// Resume support for the fired counter: non-silent interactions
    /// executed before this call.  Included in SimulationResult::fired and
    /// in checkpoint ticks, so snapshots written by a resumed run carry the
    /// same totals the uninterrupted run would have written.
    std::uint64_t initial_fired = 0;
    /// Periodic checkpointing along the run (tick interactions are absolute,
    /// i.e. include initial_interactions; tick fired counts include
    /// initial_fired).
    CheckpointHook checkpoint;
    /// Exact per-step reference vs. epoch-batched stepping (see StepMode).
    StepMode step_mode = StepMode::per_step;
    /// Epoch tuning, read only when step_mode == StepMode::epoch.
    EpochOptions epoch;
};

struct SimulationResult {
    Config final_config;
    std::uint64_t interactions = 0;   ///< total interactions executed
    std::uint64_t fired = 0;          ///< non-silent interactions executed
    bool converged = false;           ///< a sound stability condition fired
    std::optional<int> output;        ///< consensus output of the final config
    double parallel_time = 0.0;       ///< interactions / population
};

/// How the interacting pair of a fired step is selected.  `fenwick` draws
/// from the pair-weight Fenwick tree (O(log #pairs)); `scan` is the
/// reference O(#pairs) cumulative scan, kept for equivalence tests and
/// benchmarks — and genuinely faster on protocols with only a handful of
/// non-silent pairs, which is what `automatic` (the default) picks it for.
/// All modes consume the same random draw and select over the same weights
/// in the same order, so trajectories are identical per seed.
enum class PairSelect { automatic, fenwick, scan };

/// Reusable simulator for one protocol (precomputes output traps; the
/// non-silent pair structure comes from the protocol's CSR tables).
class Simulator {
public:
    explicit Simulator(const Protocol& protocol,
                       PairSelect pair_select = PairSelect::automatic,
                       TrapCompute trap_compute = TrapCompute::worklist);

    /// The selection mode actually in use (`automatic` resolved).
    PairSelect pair_selection() const noexcept { return pair_select_; }

    /// The trap-computation algorithm this simulator was seeded with (both
    /// produce identical traps; see sim/traps.hpp).
    TrapCompute trap_compute() const noexcept { return trap_compute_; }

    /// Wall-clock seconds the constructor spent computing the output traps
    /// — the quantity the worklist fixpoint collapses at |Q| ≥ 10⁵
    /// (surfaced as the E11 `trap_setup_seconds` column).
    double trap_setup_seconds() const noexcept { return trap_setup_seconds_; }

    /// Runs from `config` until a sound stability condition holds or the
    /// interaction budget is exhausted.  Thread-safe.
    SimulationResult run(Config config, Rng& rng, const SimulationOptions& options = {}) const;

    /// Runs from IC(input) (single-input protocols).  Thread-safe.
    SimulationResult run_input(AgentCount input, Rng& rng,
                               const SimulationOptions& options = {}) const;

    /// Executes exactly one interaction step on `config`; returns the
    /// transition fired (nullopt for a silent encounter).  Not thread-safe
    /// (uses the sampler cache).
    std::optional<TransitionId> step(Config& config, Rng& rng) const;

    /// Executes up to `max_interactions` interactions on `config` (silent
    /// encounters are counted and, when profitable, skipped in bulk without
    /// changing the trajectory distribution).  Returns the number executed —
    /// never more than `max_interactions`; less only when the configuration
    /// became silent (no transition can ever fire again) or, with
    /// `stop_when_stable`, provably stable (is_provably_stable — an O(1)
    /// counter read per fired interaction; the trajectory up to the stop is
    /// unchanged) or a checkpoint callback requested a stop.  Populations of
    /// 0 or 1 agents have no pairs and return 0 cleanly.  `hook`, when
    /// active, is invoked at fired-step boundaries every ≥ hook->every
    /// interactions (see CheckpointHook — the trajectory is unchanged by
    /// it); `fired_count`, when non-null, receives the number of non-silent
    /// interactions executed by this call — per call, not accumulated across
    /// calls: restart loops must sum the out-param themselves.  With
    /// `step_mode == StepMode::epoch` (and Fenwick pair selection) fired
    /// steps are served in multinomial epochs where profitable — hooks and
    /// stability probes then run at epoch boundaries; the interaction/fired
    /// accounting is unchanged.  Not thread-safe.
    std::uint64_t run_batch(Config& config, Rng& rng, std::uint64_t max_interactions,
                            bool stop_when_stable = false,
                            const CheckpointHook* hook = nullptr,
                            std::uint64_t* fired_count = nullptr,
                            StepMode step_mode = StepMode::per_step,
                            const EpochOptions& epoch = {}) const;

    /// Snapshot of the epoch-path counters accumulated by this simulator
    /// (across run/run_batch calls in epoch mode; all zero otherwise).
    /// Reads are thread-safe; concurrent epoch-mode runs accumulate
    /// atomically.
    EpochStats epoch_stats() const noexcept {
        return {epoch_epochs_.load(std::memory_order_relaxed),
                epoch_fired_.load(std::memory_order_relaxed),
                epoch_fallback_fired_.load(std::memory_order_relaxed),
                epoch_rejected_.load(std::memory_order_relaxed)};
    }

    /// Zeroes the epoch counters (test scaffolding).
    void reset_epoch_stats() const noexcept {
        epoch_epochs_.store(0, std::memory_order_relaxed);
        epoch_fired_.store(0, std::memory_order_relaxed);
        epoch_fallback_fired_.store(0, std::memory_order_relaxed);
        epoch_rejected_.store(0, std::memory_order_relaxed);
    }

    /// Advances the chain to its next *fired* interaction: consumes the
    /// (geometrically distributed) run of silent encounters, then fires one
    /// non-silent transition and returns it.  Sets *consumed (if non-null)
    /// to the interactions executed, silent run included.  Returns nullopt
    /// with *consumed == 0 when the configuration is silent (or has < 2
    /// agents), and nullopt with *consumed == budget when the budget ran
    /// out inside the silent run.  Not thread-safe.
    std::optional<TransitionId> fired_step(Config& config, Rng& rng, std::uint64_t budget,
                                           std::uint64_t* consumed = nullptr) const;

    /// Samples the states of a uniform ordered pair of distinct agents
    /// without mutating `config` — the scheduler's encounter distribution.
    /// Exposed for statistical tests.  Not thread-safe.
    std::pair<StateId, StateId> sample_pair(const Config& config, Rng& rng) const;

    /// The output trap W_b used for convergence detection (exposed for
    /// tests and for the stable-set experiments).
    const std::vector<bool>& output_trap(int b) const { return traps_[b]; }

    /// True iff the configuration is silent: every enabled pair of states
    /// has only the implicit silent transition.  O(1) when `config` owns the
    /// cached step context (the W == 0 identity); otherwise a counts-based
    /// rescan over min(#non-silent pairs, |support|²) candidates.
    bool is_silent(const Config& config) const;

    /// True iff one of the two sound stability conditions holds.  O(1) when
    /// `config` owns the cached step context (the per-trap outside-support
    /// counters maintained along step/run_batch/fired_step trajectories);
    /// otherwise a support scan plus a silence rescan.
    bool is_provably_stable(const Config& config) const;

private:
    /// Incremental per-configuration sampler state, templated on the pair
    /// weight type: int64 while every ordered pair weight fits (populations
    /// ≤ 2³¹ agents), Int128 beyond.  Everything here is a function of
    /// (protocol, current counts); run() keeps one on the stack,
    /// step()/run_batch()/fired_step() share the cached one (per width)
    /// keyed on (config address, config version).
    ///
    /// The ordered pair weights (c(c−1) for self pairs, 2·c_p·c_q
    /// otherwise, by PairId) live in two layers: `pair_weights` and
    /// `active_weight` are exact after every count change at O(deg) array
    /// cost, while the Fenwick `pair_tree` used for O(log #pairs)
    /// fired-pair selection is a *lazy mirror*, flushed (or rebuilt, when
    /// cheaper) only when a sparse-regime selection actually needs it —
    /// dense-regime stepping never pays tree maintenance.
    template <typename Weight>
    struct StepContextT {
        FenwickTree agents;  ///< Fenwick tree over the count vector
        std::vector<Weight> pair_weights;  ///< exact weights, by PairId
        Weight active_weight = 0;          ///< Σ pair_weights = W; 0 ⟺ silent
        BasicFenwickTree<Weight> pair_tree;  ///< lazy mirror of pair_weights
        std::vector<Weight> tree_mirror;     ///< what pair_tree currently holds
        /// PairIds whose mirror entry may be stale (duplicates allowed).
        /// Once it passes the rebuild threshold the next flush rebuilds the
        /// whole tree instead, so the queue — and per-update work — stays
        /// bounded through arbitrarily long dense phases.
        std::vector<Protocol::PairId> dirty;
        /// Scan mode only: partner_weight[q] = Σ counts[p] over non-self
        /// non-silent partners p of q, which maintains active_weight with a
        /// single multiply per count change instead of per-pair products
        /// (scan selection recomputes per-pair weights from the counts).
        std::vector<AgentCount> partner_weight;
        /// Agents currently outside each output trap W_b — 0 ⟺ the trap
        /// captured the whole population, i.e. the output is stably b.
        /// Maintained in apply_count_delta, so stability probes along a
        /// trajectory are O(1) counter reads.
        AgentCount outside_trap[2] = {0, 0};
        /// Epoch-mode scratch, lazily sized to |Q| and kept all-zero between
        /// epochs via the touched lists (clearing is O(|touched|), so the
        /// per-epoch cost never scales with |Q|): per-state expected
        /// consumption rate (in units of W), realized consumption of the
        /// current draw, net count delta of the current draw.
        std::vector<double> epoch_rate;
        std::vector<AgentCount> epoch_cons;
        std::vector<AgentCount> epoch_delta;
        std::vector<StateId> epoch_rate_touched;
        std::vector<StateId> epoch_touched;
        const Config* owner = nullptr;
        std::uint64_t version = 0;

        /// The O(1) stable-consensus probe: a trap holds the whole
        /// population, or the configuration is silent (W == 0).
        bool provably_stable() const noexcept {
            return outside_trap[0] == 0 || outside_trap[1] == 0 || active_weight == 0;
        }
    };

    /// Pair weights fit int64 exactly when n(n−1) does: n ≤ 2³¹ agents.
    static bool pairs_fit_int64(AgentCount population) noexcept {
        return population <= (AgentCount{1} << 31);
    }

    void compute_output_traps();

    template <typename W>
    void init_context(StepContextT<W>& ctx, const Config& config) const;
    template <typename W>
    StepContextT<W>& cached_context(const Config& config) const;

    /// The cached context of `config` iff it is current (same object, same
    /// version — i.e. the incremental counters describe exactly this
    /// value); nullptr otherwise.  Read-only: never (re)initialises.
    template <typename W>
    const StepContextT<W>* current_cached_context(const Config& config) const;

    /// Adds `delta` agents to state q, keeping the agent tree and the exact
    /// pair-weight layer in sync (O(deg(q)) via the protocol's per-pair
    /// delta table; the pair tree is only marked stale).
    template <typename W>
    void apply_count_delta(StepContextT<W>& ctx, Config& config, StateId q,
                           AgentCount delta) const;
    template <typename W>
    void fire_in_context(StepContextT<W>& ctx, Config& config, const Transition& t) const;

    /// Brings the pair tree up to date with pair_weights: applies the queued
    /// deltas, or rebuilds outright once that is cheaper.
    template <typename W>
    void flush_pair_tree(StepContextT<W>& ctx) const;

    std::pair<StateId, StateId> sample_pair_in_agents(const FenwickTree& agents, Rng& rng) const;
    template <typename W>
    std::optional<TransitionId> step_in_context(StepContextT<W>& ctx, Config& config,
                                                Rng& rng) const;

    /// Advances the interaction chain by up to `budget` interactions:
    /// consumes the (geometrically distributed) run of silent encounters,
    /// then fires one non-silent transition.  Sets *consumed to the number
    /// of interactions executed (silent run + the firing one), never more
    /// than `budget`.  Returns nullopt with *consumed == 0 iff the
    /// configuration is silent, and nullopt with *consumed == budget when
    /// the budget ran out first.
    template <typename W>
    std::optional<TransitionId> advance(StepContextT<W>& ctx, Config& config, Rng& rng,
                                        std::uint64_t budget, std::uint64_t* consumed) const;

    /// Serves up to one epoch of fired steps as a single multinomial draw
    /// over the pair-weight Fenwick, applied as aggregated per-state count
    /// deltas in one pass, plus one negative-binomial draw for the silent
    /// encounters interleaved among them.  Returns false when no profitable
    /// epoch exists at the current weights (the caller takes the exact
    /// per-step path); returns true with *consumed == 0 iff the
    /// configuration is silent.  Requires Fenwick pair selection.
    /// `stats` accumulates the local counters (merged into the atomics once
    /// per run_batch/run call).
    template <typename W>
    bool advance_epoch(StepContextT<W>& ctx, Config& config, Rng& rng, std::uint64_t budget,
                       const EpochOptions& epoch, std::uint64_t* consumed, std::uint64_t* fired,
                       EpochStats& stats) const;

    void merge_epoch_stats(const EpochStats& stats) const noexcept;

    template <typename W>
    SimulationResult run_impl(Config&& config, Rng& rng, const SimulationOptions& options) const;
    template <typename W>
    std::uint64_t run_batch_impl(Config& config, Rng& rng, std::uint64_t max_interactions,
                                 bool stop_when_stable, const CheckpointHook* hook,
                                 std::uint64_t* fired_count, StepMode step_mode,
                                 const EpochOptions& epoch) const;

    // Owned copy: simulators are long-lived; never dangle on a temporary.
    Protocol protocol_;
    PairSelect pair_select_;
    TrapCompute trap_compute_;
    double trap_setup_seconds_ = 0.0;
    std::vector<bool> traps_[2];  // traps_[b][q]: q belongs to the b-trap
    /// outside_mask_[q]: bit b set ⟺ q lies *outside* trap b — one byte
    /// load resolves both per-trap counter updates on the count-delta path.
    std::vector<std::uint8_t> outside_mask_;

    // Epoch-path counters (EpochStats), relaxed atomics so thread-safe
    // run() calls in epoch mode can accumulate concurrently.
    mutable std::atomic<std::uint64_t> epoch_epochs_{0};
    mutable std::atomic<std::uint64_t> epoch_fired_{0};
    mutable std::atomic<std::uint64_t> epoch_fallback_fired_{0};
    mutable std::atomic<std::uint64_t> epoch_rejected_{0};

    mutable StepContextT<std::int64_t> cache64_;
    mutable StepContextT<Int128> cache128_;

    template <typename W>
    StepContextT<W>& cache_slot() const noexcept;
};

}  // namespace ppsc
