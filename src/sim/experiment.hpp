// Repeatable simulation experiments: convergence-time sweeps over
// population sizes (experiment E10) and the large-state-space throughput
// sweep over the double-exponential threshold family (experiment E11),
// used by bench_simulation and the examples.
//
// Trials are independent and seeded per (population, repetition) pair, so
// the sweep parallelises across worker threads without changing any
// per-trial result: the rows produced are bit-identical for every
// `parallelism` setting, including the serial path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "sim/simulator.hpp"

namespace ppsc {

struct ConvergenceRow {
    AgentCount population = 0;
    std::uint64_t runs = 0;
    std::uint64_t converged_runs = 0;
    double mean_parallel_time = 0.0;
    double stddev_parallel_time = 0.0;
    double max_parallel_time = 0.0;
    double correct_fraction = 0.0;  ///< runs whose output matched `expected`
};

struct ConvergenceSweepOptions {
    std::uint64_t runs_per_size = 20;
    std::uint64_t seed = 0x5eed;
    SimulationOptions simulation;
    /// Worker threads running trials: 1 = serial, 0 = one per hardware
    /// thread.  The produced rows do not depend on this setting.
    unsigned parallelism = 0;
    /// Trap-computation algorithm of the sweep's simulator.  Both produce
    /// identical traps and therefore identical rows; `reference` exists for
    /// the CI leg that asserts exactly that.  The worklist is what makes
    /// convergence (not just throughput) sweeps feasible at |Q| ≥ 10⁵.
    TrapCompute trap_compute = TrapCompute::worklist;
    /// Per-trial crash-safe checkpointing (sim/checkpoint.hpp): when
    /// `checkpoint_dir` is set and `checkpoint_every` > 0, every trial
    /// writes rotated snapshots into
    /// `<checkpoint_dir>/p<population>-r<repetition>/` every ≥
    /// checkpoint_every interactions, and a later sweep with the same
    /// protocol and options resumes each trial from its newest valid
    /// snapshot instead of replaying it — finished trials restore their
    /// final state and complete immediately.  Per-trial results (and
    /// therefore the rows) are identical to an uninterrupted sweep.
    std::string checkpoint_dir;
    std::uint64_t checkpoint_every = 0;
    std::size_t checkpoint_keep_last = 3;
    /// Graceful shutdown: when *stop becomes true (e.g. from a
    /// SIGTERM/SIGINT handler — std::atomic<bool> is async-signal-safe to
    /// store to), workers stop claiming new trials and in-flight trials
    /// stop at their next checkpoint boundary, each writing a final
    /// snapshot.  The sweep then returns normally; interrupted trials
    /// count as unconverged in the rows and resume on the next sweep.
    const std::atomic<bool>* stop = nullptr;
};

/// Runs `runs_per_size` seeded simulations of IC(i) for each population
/// size i in `populations`; `expected(i)` gives the ground-truth output.
/// Single-input protocols only.
std::vector<ConvergenceRow> convergence_sweep(
    const Protocol& protocol, const std::vector<AgentCount>& populations,
    const std::function<int(AgentCount)>& expected, const ConvergenceSweepOptions& options = {});

// --- Experiment E11: double-exponential threshold workload -----------------
//
// Sustained engine throughput on the succinct-counter family across |Q| and
// population.  Each row drives run_batch along the exact scheduler-chain
// distribution; when a trajectory reaches silence it restarts from IC, so
// the row measures full-trajectory throughput (merge phase + silent-skip
// steady state) on state spaces with |Q| ≫ 10³.

struct ThroughputRow {
    std::string protocol;             ///< family instance, e.g. "double_exp(8)"
    std::size_t num_states = 0;
    std::size_t nonsilent_pairs = 0;
    std::string rule_table;           ///< "dense" or "sparse" (resolved kind)
    std::size_t rule_table_bytes = 0; ///< Protocol::rule_table_bytes()
    /// Seconds the row's Simulator spent computing its output traps — the
    /// stable-consensus setup cost the worklist fixpoint collapses from
    /// O(passes · |T|) to O(|T| + evictions · deg) at |Q| ≥ 10⁵.
    double trap_setup_seconds = 0.0;
    AgentCount population = 0;
    std::uint64_t interactions = 0;   ///< interactions executed for the row
    /// Fired (non-silent) interactions among them — summed over the row's
    /// run_batch calls, so IC restarts are never double-counted.  Epoch
    /// rows report their sustained rate in fired interactions per second:
    /// the silent majority is skipped analytically either way, so
    /// interactions_per_sec alone would hide what the batching buys.
    std::uint64_t fired = 0;
    double seconds = 0.0;             ///< wall-clock time for the row
    double interactions_per_sec = 0.0;
    double fired_per_sec = 0.0;
};

struct E11Options {
    /// Tower parameters n: each contributes double_exp_threshold(n)
    /// (η = 2^(2^n), |Q| = 2^n + 3) and, when include_dense is set and
    /// n ≤ max_dense_n, double_exp_threshold_dense(n) (η = 2^(2^n) − 1,
    /// |Q| ≈ 2^(n+1) with Θ(4^n) non-silent pairs).
    std::vector<int> tower_ns = {6, 8, 10};
    std::vector<AgentCount> populations = {1 << 12, 1 << 16};
    std::uint64_t interactions_per_row = 1 << 22;
    std::uint64_t seed = 0xE11;
    bool include_dense = true;
    /// Dense variants stop here: their Θ(4^n) construction is what makes
    /// the flagship-only n ≥ 13 rows (sparse rule table, |Q| > 8000)
    /// worth sweeping separately.
    int max_dense_n = 10;
    /// Fired-step pair selection of the simulators driven by the sweep —
    /// sweeping both values benchmarks the pair-weight Fenwick against the
    /// reference scan on identical trajectories.
    PairSelect selection = PairSelect::fenwick;
    /// Rule-table representation of the swept protocols: `automatic` (the
    /// default) resolves per instance; forcing `sparse` runs every row —
    /// small instances included — through the hash-table lookup, which is
    /// how the CI smoke covers the sparse path end to end.
    RuleTable rule_table = RuleTable::automatic;
    /// Trap-computation algorithm of the swept simulators (identical traps
    /// either way; the forced-`reference` CI smoke leg mirrors the
    /// forced-sparse one).  `trap_setup_seconds` makes the difference
    /// visible as a column.
    TrapCompute trap_compute = TrapCompute::worklist;
    /// Stepping mode of the swept simulators: `epoch` batches the fired
    /// interactions of the merge frontier into multinomial draws
    /// (sim/simulator.hpp, engine idea 5), which is what pushes the n ≥ 2⁴⁰
    /// flagship rows past 10⁹ fired interactions per second.  Requires
    /// `selection == fenwick` to engage; otherwise it degrades to per_step.
    StepMode step_mode = StepMode::per_step;
    EpochOptions epoch;
};

std::vector<ThroughputRow> e11_throughput_sweep(const E11Options& options = {});

}  // namespace ppsc
