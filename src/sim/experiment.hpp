// Repeatable simulation experiments: convergence-time sweeps over
// population sizes, used by bench_simulation (experiment E10) and the
// examples.
//
// Trials are independent and seeded per (population, repetition) pair, so
// the sweep parallelises across worker threads without changing any
// per-trial result: the rows produced are bit-identical for every
// `parallelism` setting, including the serial path.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/protocol.hpp"
#include "sim/simulator.hpp"

namespace ppsc {

struct ConvergenceRow {
    AgentCount population = 0;
    std::uint64_t runs = 0;
    std::uint64_t converged_runs = 0;
    double mean_parallel_time = 0.0;
    double stddev_parallel_time = 0.0;
    double max_parallel_time = 0.0;
    double correct_fraction = 0.0;  ///< runs whose output matched `expected`
};

struct ConvergenceSweepOptions {
    std::uint64_t runs_per_size = 20;
    std::uint64_t seed = 0x5eed;
    SimulationOptions simulation;
    /// Worker threads running trials: 1 = serial, 0 = one per hardware
    /// thread.  The produced rows do not depend on this setting.
    unsigned parallelism = 0;
};

/// Runs `runs_per_size` seeded simulations of IC(i) for each population
/// size i in `populations`; `expected(i)` gives the ground-truth output.
/// Single-input protocols only.
std::vector<ConvergenceRow> convergence_sweep(
    const Protocol& protocol, const std::vector<AgentCount>& populations,
    const std::function<int(AgentCount)>& expected, const ConvergenceSweepOptions& options = {});

}  // namespace ppsc
