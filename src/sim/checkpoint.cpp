#include "sim/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <system_error>

#include "support/crc64.hpp"
#include "support/hash.hpp"

namespace ppsc {

namespace {

namespace fs = std::filesystem;

constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8;     // magic, version, reserved, fingerprint
constexpr std::size_t kTrailerBytes = 8;                // CRC64
constexpr std::size_t kFixedPayloadBytes = 8 + 8        // num_states, support size
                                           + 8 * 4      // rng, interactions, fired, restarts
                                           + 8 * 5;     // stats accumulator
constexpr std::size_t kMinFileBytes = kHeaderBytes + kFixedPayloadBytes + kTrailerBytes;
constexpr std::size_t kSupportEntryBytes = 4 + 8;       // state u32, count u64

constexpr const char* kSlotPrefix = "ckpt-";
constexpr const char* kSlotSuffix = ".ppc";

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(out, bits);
}

/// Bounds-checked little-endian reader; every overrun is reported, never
/// executed (the fault-injection sweep feeds this arbitrary prefixes).
struct Cursor {
    std::span<const std::uint8_t> bytes;
    std::size_t pos = 0;
    bool overrun = false;

    std::uint32_t u32() {
        if (bytes.size() - pos < 4) {
            overrun = true;
            return 0;
        }
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t u64() {
        if (bytes.size() - pos < 8) {
            overrun = true;
            return 0;
        }
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    double f64() {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }
};

CheckpointParse reject(CheckpointError error, std::string detail) {
    CheckpointParse parse;
    parse.error = error;
    parse.detail = std::move(detail);
    return parse;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
    // SplitMix64 finalizer over a running accumulator: cheap, well mixed,
    // and stable across platforms (no size_t/hash_combine dependence).
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
}

std::uint64_t mix_string(std::uint64_t h, std::string_view s) noexcept {
    h = mix(h, s.size());
    for (const char c : s) h = mix(h, static_cast<std::uint8_t>(c));
    return h;
}

/// POSIX write loop + fsync; returns errno (0 on success).
int write_all_synced(const std::string& path, std::span<const std::uint8_t> bytes) {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return errno;
    std::size_t written = 0;
    while (written < bytes.size()) {
        const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
        if (n < 0) {
            if (errno == EINTR) continue;
            const int err = errno;
            ::close(fd);
            return err;
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        const int err = errno;
        ::close(fd);
        return err;
    }
    return ::close(fd) == 0 ? 0 : errno;
}

/// fsync on a directory so a completed rename survives power loss.  Best
/// effort: some filesystems refuse directory fsync; the rename itself is
/// already atomic.
void sync_directory(const std::string& dir) {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return;
    ::fsync(fd);
    ::close(fd);
}

}  // namespace

const char* checkpoint_error_name(CheckpointError error) noexcept {
    switch (error) {
        case CheckpointError::none: return "none";
        case CheckpointError::io: return "io";
        case CheckpointError::truncated: return "truncated";
        case CheckpointError::bad_magic: return "bad_magic";
        case CheckpointError::bad_version: return "bad_version";
        case CheckpointError::crc_mismatch: return "crc_mismatch";
        case CheckpointError::malformed: return "malformed";
        case CheckpointError::wrong_protocol: return "wrong_protocol";
    }
    return "unknown";
}

std::uint64_t protocol_fingerprint(const Protocol& protocol) {
    std::uint64_t h = mix(0, 0x50505343ull);  // "PPSC"
    h = mix(h, protocol.num_states());
    for (std::size_t q = 0; q < protocol.num_states(); ++q) {
        h = mix_string(h, protocol.state_name(static_cast<StateId>(q)));
        h = mix(h, static_cast<std::uint64_t>(protocol.output(static_cast<StateId>(q))));
    }
    h = mix(h, protocol.num_transitions());
    for (const Transition& t : protocol.transitions()) {
        h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.pre1)) << 32 |
                       static_cast<std::uint32_t>(t.pre2));
        h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.post1)) << 32 |
                       static_cast<std::uint32_t>(t.post2));
    }
    h = mix(h, protocol.input_variables().size());
    for (std::size_t x = 0; x < protocol.input_variables().size(); ++x) {
        h = mix_string(h, protocol.input_variables()[x]);
        h = mix(h, static_cast<std::uint64_t>(protocol.input_state(x)));
    }
    for (std::size_t q = 0; q < protocol.num_states(); ++q)
        h = mix(h, static_cast<std::uint64_t>(protocol.leaders()[static_cast<StateId>(q)]));
    h = mix(h, static_cast<std::uint64_t>(protocol.rule_table()));
    return h;
}

std::uint64_t config_digest(const Config& config) {
    std::vector<std::uint8_t> bytes;
    put_u64(bytes, config.num_states());
    for (std::size_t q = 0; q < config.num_states(); ++q) {
        const AgentCount c = config[static_cast<StateId>(q)];
        if (c == 0) continue;
        put_u32(bytes, static_cast<std::uint32_t>(q));
        put_u64(bytes, static_cast<std::uint64_t>(c));
    }
    return crc64(bytes.data(), bytes.size());
}

std::vector<std::uint8_t> serialize_checkpoint(const Checkpoint& checkpoint) {
    std::vector<std::uint8_t> out;
    const std::vector<StateId> support = checkpoint.config.support();
    out.reserve(kMinFileBytes + kSupportEntryBytes * support.size());

    out.insert(out.end(), std::begin(kCheckpointMagic), std::end(kCheckpointMagic));
    put_u32(out, kCheckpointFormatVersion);
    put_u32(out, 0);  // reserved
    put_u64(out, checkpoint.fingerprint);

    put_u64(out, checkpoint.config.num_states());
    put_u64(out, support.size());
    for (const StateId q : support) {  // support() is ascending: deterministic bytes
        put_u32(out, static_cast<std::uint32_t>(q));
        put_u64(out, static_cast<std::uint64_t>(checkpoint.config[q]));
    }

    put_u64(out, checkpoint.rng_state);
    put_u64(out, checkpoint.interactions);
    put_u64(out, checkpoint.fired);
    put_u64(out, checkpoint.restarts);
    put_u64(out, checkpoint.stats.count());
    put_f64(out, checkpoint.stats.mean());
    put_f64(out, checkpoint.stats.m2());
    put_f64(out, checkpoint.stats.raw_min());
    put_f64(out, checkpoint.stats.raw_max());

    put_u64(out, crc64(out.data(), out.size()));
    return out;
}

CheckpointParse parse_checkpoint(std::span<const std::uint8_t> bytes,
                                 std::optional<std::uint64_t> expected_fingerprint) {
    // Header checks first so a wrong-kind or future-format file gets the
    // specific error, not a generic CRC complaint.
    if (bytes.size() < kHeaderBytes + kTrailerBytes)
        return reject(CheckpointError::truncated,
                      "file holds " + std::to_string(bytes.size()) + " bytes, header needs " +
                          std::to_string(kHeaderBytes + kTrailerBytes));
    if (std::memcmp(bytes.data(), kCheckpointMagic, sizeof kCheckpointMagic) != 0)
        return reject(CheckpointError::bad_magic, "not a ppsc checkpoint file");

    Cursor cursor{bytes, sizeof kCheckpointMagic};
    const std::uint32_t version = cursor.u32();
    if (version != kCheckpointFormatVersion)
        return reject(CheckpointError::bad_version,
                      "format version " + std::to_string(version) + ", reader speaks " +
                          std::to_string(kCheckpointFormatVersion));
    cursor.u32();  // reserved

    // Integrity before content: a CRC-valid file is byte-for-byte what the
    // writer produced, so every later check only guards against a buggy or
    // hostile *writer*, not bit rot.
    if (bytes.size() < kMinFileBytes)
        return reject(CheckpointError::crc_mismatch,
                      "file shorter than the fixed payload (truncation)");
    Cursor trailer{bytes, bytes.size() - kTrailerBytes};
    const std::uint64_t stored_crc = trailer.u64();
    const std::uint64_t actual_crc = crc64(bytes.data(), bytes.size() - kTrailerBytes);
    if (stored_crc != actual_crc)
        return reject(CheckpointError::crc_mismatch, "CRC64 trailer mismatch");

    Checkpoint out;
    out.fingerprint = cursor.u64();
    const std::uint64_t num_states = cursor.u64();
    const std::uint64_t support_size = cursor.u64();
    if (num_states > (std::uint64_t{1} << 31))
        return reject(CheckpointError::malformed, "num_states out of range");
    if (support_size > num_states)
        return reject(CheckpointError::malformed, "support larger than the state space");
    const std::size_t payload_rest = kFixedPayloadBytes - 16 + kTrailerBytes;
    if (bytes.size() - cursor.pos != support_size * kSupportEntryBytes + payload_rest)
        return reject(CheckpointError::malformed, "payload size does not match support size");

    std::vector<AgentCount> counts(static_cast<std::size_t>(num_states), 0);
    std::int64_t previous_state = -1;
    std::uint64_t total = 0;
    for (std::uint64_t i = 0; i < support_size; ++i) {
        const std::uint32_t state = cursor.u32();
        const std::uint64_t count = cursor.u64();
        if (state >= num_states || static_cast<std::int64_t>(state) <= previous_state)
            return reject(CheckpointError::malformed, "support entries not ascending");
        if (count == 0 || count > static_cast<std::uint64_t>(std::numeric_limits<AgentCount>::max()))
            return reject(CheckpointError::malformed, "state count out of range");
        total += count;
        if (total > static_cast<std::uint64_t>(std::numeric_limits<AgentCount>::max()))
            return reject(CheckpointError::malformed, "population overflows int64");
        previous_state = static_cast<std::int64_t>(state);
        counts[state] = static_cast<AgentCount>(count);
    }

    out.rng_state = cursor.u64();
    out.interactions = cursor.u64();
    out.fired = cursor.u64();
    out.restarts = cursor.u64();
    const std::uint64_t stats_count = cursor.u64();
    const double stats_mean = cursor.f64();
    const double stats_m2 = cursor.f64();
    const double stats_min = cursor.f64();
    const double stats_max = cursor.f64();
    if (cursor.overrun || cursor.pos != bytes.size() - kTrailerBytes)
        return reject(CheckpointError::malformed, "payload cursor out of step");
    out.stats = RunningStats::restore(stats_count, stats_mean, stats_m2, stats_min, stats_max);
    out.config = Config::from_counts(std::move(counts));

    if (expected_fingerprint && out.fingerprint != *expected_fingerprint)
        return reject(CheckpointError::wrong_protocol,
                      "checkpoint was written for a different protocol");

    CheckpointParse parse;
    parse.error = CheckpointError::none;
    parse.checkpoint = std::move(out);
    return parse;
}

CheckpointParse load_checkpoint_file(const std::string& path,
                                     std::optional<std::uint64_t> expected_fingerprint) {
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (ec) return reject(CheckpointError::io, path + ": " + ec.message());
    // Anything vastly larger than a plausible checkpoint is rejected before
    // allocation — a corrupt filesystem entry must not OOM the loader.
    constexpr std::uintmax_t kMaxFileBytes = std::uintmax_t{1} << 32;
    if (size > kMaxFileBytes) return reject(CheckpointError::malformed, "file implausibly large");

    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return reject(CheckpointError::io, path + ": " + std::strerror(errno));
    const std::size_t read = std::fread(bytes.data(), 1, bytes.size(), file);
    std::fclose(file);
    if (read != bytes.size())
        return reject(CheckpointError::io, path + ": short read");
    return parse_checkpoint(bytes, expected_fingerprint);
}

CheckpointError write_checkpoint_file(const std::string& path, const Checkpoint& checkpoint,
                                      std::string* detail) {
    const std::vector<std::uint8_t> bytes = serialize_checkpoint(checkpoint);
    const std::string tmp = path + ".tmp";
    if (const int err = write_all_synced(tmp, bytes); err != 0) {
        if (detail) *detail = tmp + ": " + std::strerror(err);
        return CheckpointError::io;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (detail) *detail = path + ": " + std::strerror(errno);
        std::remove(tmp.c_str());
        return CheckpointError::io;
    }
    sync_directory(fs::path(path).parent_path().string());
    return CheckpointError::none;
}

CheckpointDir::CheckpointDir(std::string dir, std::size_t keep_last)
    : dir_(std::move(dir)), keep_last_(std::max<std::size_t>(keep_last, 1)) {}

std::vector<std::pair<std::uint64_t, std::string>> CheckpointDir::slots() const {
    std::vector<std::pair<std::uint64_t, std::string>> found;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
        if (!entry.is_regular_file(ec)) continue;
        const std::string name = entry.path().filename().string();
        if (!name.starts_with(kSlotPrefix) || !name.ends_with(kSlotSuffix)) continue;
        const std::string digits =
            name.substr(std::strlen(kSlotPrefix),
                        name.size() - std::strlen(kSlotPrefix) - std::strlen(kSlotSuffix));
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos)
            continue;
        errno = 0;
        // ppsc-lint: allow(R5) digits pre-validated as pure ASCII decimal above; ERANGE checked below
        const std::uint64_t seq = std::strtoull(digits.c_str(), nullptr, 10);
        if (errno != 0) continue;
        found.emplace_back(seq, name);
    }
    std::sort(found.begin(), found.end());
    return found;
}

CheckpointError CheckpointDir::write(const Checkpoint& checkpoint, std::string* written_path,
                                     std::string* detail) {
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        if (detail) *detail = dir_ + ": " + ec.message();
        return CheckpointError::io;
    }

    const auto existing = slots();
    const std::uint64_t seq = existing.empty() ? 1 : existing.back().first + 1;
    char name[64];
    std::snprintf(name, sizeof name, "%s%010llu%s", kSlotPrefix,
                  static_cast<unsigned long long>(seq), kSlotSuffix);
    const std::string path = (fs::path(dir_) / name).string();
    if (const CheckpointError err = write_checkpoint_file(path, checkpoint, detail);
        err != CheckpointError::none)
        return err;
    if (written_path) *written_path = path;

    // Prune: keep the newest keep_last_ slots (the one just written
    // included), and clear any stale .tmp left by a crashed writer.
    auto all = slots();
    while (all.size() > keep_last_) {
        fs::remove(fs::path(dir_) / all.front().second, ec);
        all.erase(all.begin());
    }
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
        if (entry.path().extension() == ".tmp") fs::remove(entry.path(), ec);
    }
    return CheckpointError::none;
}

CheckpointDir::Latest CheckpointDir::load_latest(
    std::optional<std::uint64_t> expected_fingerprint) const {
    Latest latest;
    const auto all = slots();
    for (auto it = all.rbegin(); it != all.rend(); ++it) {
        const std::string path = (fs::path(dir_) / it->second).string();
        CheckpointParse parse = load_checkpoint_file(path, expected_fingerprint);
        if (parse.ok()) {
            latest.checkpoint = std::move(parse.checkpoint);
            latest.path = path;
            return latest;
        }
        latest.rejected.push_back(it->second + ": " + checkpoint_error_name(parse.error) +
                                  (parse.detail.empty() ? "" : " (" + parse.detail + ")"));
    }
    return latest;
}

}  // namespace ppsc
