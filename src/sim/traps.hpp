// Output traps: the stable-consensus detector of the simulation layer.
//
// An output trap W_b is a subset of O⁻¹(b) closed under interaction: every
// transition whose both pre-states lie in W_b keeps both post-states in W_b.
// If all agents sit inside W_b, every reachable configuration stays inside,
// so the output is stably b — the core sufficient condition for stable
// consensus in randomized simulation (Esparza's verification survey,
// arXiv:2108.13449, calls this the layered/trap argument).
//
// Both algorithms here compute the same greatest-fixpoint
// under-approximation: seed with all b-output states, and while some
// transition has both pre-states inside but a post-state outside, evict
// *both* pre-states.  Evicting both is conservative (any subset of a trap
// seeded this way remains sound) and — crucially — makes the fixpoint
// depend on the order in which violating transitions are processed:
//
//   reference — the original formulation: full passes over the transition
//     list in ascending TransitionId order, repeated until a pass changes
//     nothing.  O(passes · |T|) with up to Θ(|Q|) passes (eviction chains
//     advance one level per pass on the threshold families), which is the
//     practical wall for *simulating* |Q| ≥ 10⁵ protocols: the sparse rule
//     tables build double_exp_threshold(17) in ~20 MB, but seeding a
//     Simulator on it used to cost Θ(|Q| · |T|) ≈ 5·10¹⁰ transition checks.
//
//   worklist — the same eviction sequence from a round-structured worklist:
//     round 1 examines every transition in ascending id order; evicting a
//     state re-queues only the transitions *producing* it (the protocol's
//     transition-incidence index) — into the current round when their id is
//     still ahead of the scan, into the next round otherwise.  Each round
//     drains in ascending id order, so every transition is (re)examined at
//     exactly the positions the reference pass structure would examine it
//     at, and the evictions — hence the trap — are identical, not merely
//     equally sound.  Total work O(|T| + Σ_evictions deg_producing), with
//     a log factor only on the (few) re-queued ids — the seed scan is a
//     linear cursor over a sorted vector, never a heap — i.e. O(|T|) for
//     the threshold families: trap setup at |Q| = 131075 drops from
//     minutes to milliseconds.
//
// The determinism contract (worklist ≡ reference, exactly) is asserted on
// exhaustive small-protocol sweeps in tests/sim_trap_test.cpp and on the
// E11 smoke instances in CI.
#pragma once

#include <vector>

#include "core/protocol.hpp"

namespace ppsc {

/// Which algorithm computes the output traps.  Both produce identical trap
/// sets; `reference` is O(passes · |T|) and survives for tests, CI legs and
/// benchmarks, `worklist` (the default) is O(|T| + evictions · deg).
enum class TrapCompute { worklist, reference };

/// The output trap W_b ⊆ O⁻¹(b) (indexed by state), computed by `kind`.
std::vector<bool> compute_output_trap(const Protocol& protocol, int b, TrapCompute kind);

}  // namespace ppsc
