#include "sim/traps.hpp"

#include <functional>
#include <queue>
#include <stdexcept>

#include "support/check.hpp"

namespace ppsc {

namespace {

std::vector<bool> seed_trap(const Protocol& protocol, int b) {
    const std::size_t n = protocol.num_states();
    std::vector<bool> trap(n, false);
    for (std::size_t q = 0; q < n; ++q)
        trap[q] = (protocol.output(static_cast<StateId>(q)) == b);
    return trap;
}

/// True iff `t` currently triggers an eviction: both pre-states inside the
/// trap, some post-state outside.
bool violating(const std::vector<bool>& trap, const Transition& t) {
    return trap[static_cast<std::size_t>(t.pre1)] && trap[static_cast<std::size_t>(t.pre2)] &&
           !(trap[static_cast<std::size_t>(t.post1)] && trap[static_cast<std::size_t>(t.post2)]);
}

/// The original fixpoint: full ascending passes until nothing changes.
std::vector<bool> reference_trap(const Protocol& protocol, int b) {
    std::vector<bool> trap = seed_trap(protocol, b);
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Transition& t : protocol.transitions()) {
            if (violating(trap, t)) {
                trap[static_cast<std::size_t>(t.pre1)] = false;
                trap[static_cast<std::size_t>(t.pre2)] = false;
                changed = true;
            }
        }
    }
    return trap;
}

/// Round-structured worklist replaying the reference's eviction sequence.
///
/// The reference examines every transition at every pass; only transitions
/// whose post-set lost a state since their last examination can newly
/// violate (evictions are permanent, so a pre-state leaving the trap
/// disables a transition forever).  The worklist therefore re-queues, on
/// evicting state q, exactly the transitions producing q — into the current
/// round's heap when their id is still ahead of the scan position (the
/// reference pass would reach them later this pass), into the next round
/// otherwise (the reference re-checks them one pass later).  Draining each
/// round in ascending id order then visits every potentially-violating
/// transition at the reference's exact relative position, so the eviction
/// sequences — and the scan-order-dependent fixpoints — coincide.
std::vector<bool> worklist_trap(const Protocol& protocol, int b) {
    std::vector<bool> trap = seed_trap(protocol, b);
    const std::span<const Transition> transitions = protocol.transitions();
    const auto num_transitions = static_cast<TransitionId>(transitions.size());

    // Each round's schedule is a sorted vector consumed by a cursor — round 1
    // is simply every id, so the dominant O(|T|) seed scan pays no heap
    // traffic — merged against a min-heap holding only the eviction-triggered
    // re-queues that land ahead of the cursor mid-round.  Only the (few)
    // re-queued ids ever touch a log-cost structure.
    std::vector<TransitionId> round(static_cast<std::size_t>(num_transitions));
    for (TransitionId t = 0; t < num_transitions; ++t) round[static_cast<std::size_t>(t)] = t;
    std::size_t cursor = 0;
    std::priority_queue<TransitionId, std::vector<TransitionId>, std::greater<TransitionId>>
        ahead;
    std::vector<TransitionId> next_round;
    // Membership flags keep each transition scheduled at most once per round
    // (a re-examination would be a no-op anyway: its pre-states are out).
    std::vector<bool> in_round(static_cast<std::size_t>(num_transitions), true);
    std::vector<bool> in_next(static_cast<std::size_t>(num_transitions), false);

    const auto evict = [&](StateId q, TransitionId position) {
        trap[static_cast<std::size_t>(q)] = false;
        for (const TransitionId incident : protocol.transitions_producing(q)) {
            if (incident > position) {
                if (!in_round[static_cast<std::size_t>(incident)]) {
                    in_round[static_cast<std::size_t>(incident)] = true;
                    ahead.push(incident);
                }
            } else if (!in_next[static_cast<std::size_t>(incident)]) {
                in_next[static_cast<std::size_t>(incident)] = true;
                next_round.push_back(incident);
            }
        }
    };

    while (true) {
        TransitionId id;
        if (!ahead.empty() && (cursor == round.size() || ahead.top() < round[cursor])) {
            id = ahead.top();
            ahead.pop();
        } else if (cursor < round.size()) {
            id = round[cursor++];
        } else if (!next_round.empty()) {
            // Start the next pass: the ids collected during this one, in
            // ascending order (they arrive grouped by eviction, not sorted).
            std::sort(next_round.begin(), next_round.end());
            round = std::move(next_round);
            next_round.clear();
            cursor = 0;
            for (const TransitionId t : round) {
                in_next[static_cast<std::size_t>(t)] = false;
                in_round[static_cast<std::size_t>(t)] = true;
            }
            continue;
        } else {
            break;
        }
        PPSC_DASSERT(in_round[static_cast<std::size_t>(id)]);
        in_round[static_cast<std::size_t>(id)] = false;
        const Transition& t = transitions[static_cast<std::size_t>(id)];
        if (!violating(trap, t)) continue;
        evict(t.pre1, id);
        if (t.pre2 != t.pre1) evict(t.pre2, id);
    }
    return trap;
}

}  // namespace

std::vector<bool> compute_output_trap(const Protocol& protocol, int b, TrapCompute kind) {
    if (b != 0 && b != 1)
        throw std::invalid_argument("compute_output_trap: b must be 0 or 1");
    return kind == TrapCompute::reference ? reference_trap(protocol, b)
                                          : worklist_trap(protocol, b);
}

}  // namespace ppsc
