#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "support/check.hpp"

namespace ppsc {

namespace {

/// The scheduler resolves transition nondeterminism uniformly.
TransitionId choose_rule(std::span<const TransitionId> rules, Rng& rng) {
    return rules.size() == 1 ? rules[0]
                             : rules[static_cast<std::size_t>(rng.below(rules.size()))];
}

}  // namespace

Simulator::Simulator(const Protocol& protocol) : protocol_(protocol) {
    compute_output_traps();
    build_pair_structure();
}

void Simulator::compute_output_traps() {
    // Greatest-fixpoint under-approximation of the largest interaction-closed
    // subset of O⁻¹(b): start from all b-output states; while some transition
    // has both pre-states inside but a post-state outside, evict both
    // pre-states.  Evicting both is conservative (a smaller trap is still
    // sound) and makes the iteration deterministic.
    const std::size_t n = protocol_.num_states();
    for (int b = 0; b < 2; ++b) {
        std::vector<bool>& trap = traps_[b];
        trap.assign(n, false);
        for (std::size_t q = 0; q < n; ++q)
            trap[q] = (protocol_.output(static_cast<StateId>(q)) == b);
        bool changed = true;
        while (changed) {
            changed = false;
            for (const Transition& t : protocol_.transitions()) {
                const auto p1 = static_cast<std::size_t>(t.pre1);
                const auto p2 = static_cast<std::size_t>(t.pre2);
                if (!trap[p1] || !trap[p2]) continue;
                const bool posts_inside = trap[static_cast<std::size_t>(t.post1)] &&
                                          trap[static_cast<std::size_t>(t.post2)];
                if (!posts_inside) {
                    trap[p1] = false;
                    trap[p2] = false;
                    changed = true;
                }
            }
        }
    }
}

void Simulator::build_pair_structure() {
    // The distinct non-silent pre-pairs, as both a flat list (for
    // weight-proportional pair sampling on fired steps) and a CSR adjacency
    // of the non-self "has a rule with" relation (for incremental
    // partner-weight maintenance).
    const std::size_t n = protocol_.num_states();
    self_rule_.assign(n, 0);
    nonsilent_pairs_.clear();
    std::unordered_set<std::uint64_t> seen;
    std::vector<std::uint32_t> degree(n, 0);
    for (const Transition& t : protocol_.transitions()) {
        const StateId p = t.pre1, q = t.pre2;  // canonical: p ≤ q
        const std::uint64_t key =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p)) << 32) |
            static_cast<std::uint32_t>(q);
        if (!seen.insert(key).second) continue;
        nonsilent_pairs_.emplace_back(p, q);
        if (p == q) {
            self_rule_[static_cast<std::size_t>(p)] = 1;
        } else {
            ++degree[static_cast<std::size_t>(p)];
            ++degree[static_cast<std::size_t>(q)];
        }
    }
    partner_offsets_.assign(n + 1, 0);
    for (std::size_t q = 0; q < n; ++q)
        partner_offsets_[q + 1] = partner_offsets_[q] + degree[q];
    partners_.resize(partner_offsets_[n]);
    std::vector<std::uint32_t> cursor(partner_offsets_.begin(), partner_offsets_.end() - 1);
    for (const auto& [p, q] : nonsilent_pairs_) {
        if (p == q) continue;
        partners_[cursor[static_cast<std::size_t>(p)]++] = q;
        partners_[cursor[static_cast<std::size_t>(q)]++] = p;
    }
}

bool Simulator::is_silent(const Config& config) const {
    const std::vector<StateId> support = config.support();
    for (std::size_t i = 0; i < support.size(); ++i) {
        for (std::size_t j = i; j < support.size(); ++j) {
            if (i == j && config[support[i]] < 2) continue;  // pair needs two agents
            if (!protocol_.pair_is_silent(support[i], support[j])) return false;
        }
    }
    return true;
}

bool Simulator::is_provably_stable(const Config& config) const {
    for (int b = 0; b < 2; ++b) {
        bool inside = true;
        for (const StateId q : config.support()) {
            if (!traps_[b][static_cast<std::size_t>(q)]) {
                inside = false;
                break;
            }
        }
        if (inside) return true;
    }
    return is_silent(config);
}

void Simulator::init_context(StepContext& ctx, const Config& config) const {
    PPSC_CHECK_MSG(config.num_states() == protocol_.num_states(),
                   "configuration does not match the simulator's protocol");
    ctx.agents.assign(config.counts());
    const AgentCount n = config.size();
    // n(n−1) must fit in int64 for ordered-pair weights.
    ctx.track_pairs = n <= (AgentCount{1} << 31);
    ctx.active_weight = 0;
    ctx.partner_weight.assign(protocol_.num_states(), 0);
    if (ctx.track_pairs) {
        const auto& counts = config.counts();
        for (std::size_t q = 0; q < counts.size(); ++q) {
            AgentCount w = 0;
            for (std::uint32_t i = partner_offsets_[q]; i < partner_offsets_[q + 1]; ++i)
                w += counts[static_cast<std::size_t>(partners_[i])];
            ctx.partner_weight[q] = w;
            // Σ_q c_q · partner_weight[q] counts every unordered pair twice,
            // i.e. exactly the 2·c_p·c_q ordered-pair weight.
            ctx.active_weight += counts[q] * w;
            if (self_rule_[q]) ctx.active_weight += counts[q] * (counts[q] - 1);
        }
    }
    ctx.owner = nullptr;
    ctx.version = 0;
}

Simulator::StepContext& Simulator::cached_context(const Config& config) const {
    if (cache_.owner != &config || cache_.version != config.version()) {
        init_context(cache_, config);
        cache_.owner = &config;
        cache_.version = config.version();
    }
    return cache_;
}

void Simulator::apply_count_delta(StepContext& ctx, Config& config, StateId q,
                                  AgentCount delta) const {
    const AgentCount before = config[q];
    config.add(q, delta);
    ctx.agents.add(static_cast<std::size_t>(q), delta);
    if (!ctx.track_pairs) return;
    // Δ of c(c−1) for the self pair, 2·Δc·Σ partner counts for the rest.
    if (self_rule_[static_cast<std::size_t>(q)])
        ctx.active_weight += delta * (2 * before + delta - 1);
    ctx.active_weight += 2 * delta * ctx.partner_weight[static_cast<std::size_t>(q)];
    const std::uint32_t begin = partner_offsets_[static_cast<std::size_t>(q)];
    const std::uint32_t end = partner_offsets_[static_cast<std::size_t>(q) + 1];
    for (std::uint32_t i = begin; i < end; ++i)
        ctx.partner_weight[static_cast<std::size_t>(partners_[i])] += delta;
}

void Simulator::fire_in_context(StepContext& ctx, Config& config, const Transition& t) const {
    apply_count_delta(ctx, config, t.pre1, -1);
    apply_count_delta(ctx, config, t.pre2, -1);
    apply_count_delta(ctx, config, t.post1, 1);
    apply_count_delta(ctx, config, t.post2, 1);
}

std::pair<StateId, StateId> Simulator::sample_pair_in_context(const StepContext& ctx,
                                                              Rng& rng) const {
    // Sample an ordered pair of distinct agent ranks, then map ranks to
    // states through the Fenwick tree (O(log |Q|) instead of a prefix scan).
    const std::int64_t n = ctx.agents.total();
    PPSC_DASSERT(n >= 2);
    const auto r1 = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(n)));
    auto r2 = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(n - 1)));
    if (r2 >= r1) ++r2;
    return {static_cast<StateId>(ctx.agents.sample(r1)),
            static_cast<StateId>(ctx.agents.sample(r2))};
}

std::optional<TransitionId> Simulator::step_in_context(StepContext& ctx, Config& config,
                                                       Rng& rng) const {
    const auto [s1, s2] = sample_pair_in_context(ctx, rng);
    const auto rules = protocol_.rules_for_pair(s1, s2);
    if (rules.empty()) return std::nullopt;  // silent encounter

    const TransitionId chosen = choose_rule(rules, rng);
    fire_in_context(ctx, config, protocol_.transitions()[static_cast<std::size_t>(chosen)]);
    return chosen;
}

std::optional<TransitionId> Simulator::advance(StepContext& ctx, Config& config, Rng& rng,
                                               std::uint64_t budget,
                                               std::uint64_t* consumed) const {
    PPSC_DASSERT(ctx.track_pairs);
    *consumed = 0;
    if (budget == 0) return std::nullopt;
    const std::int64_t weight = ctx.active_weight;
    if (weight == 0) return std::nullopt;  // silent: nothing fires, ever

    const AgentCount n = config.size();
    const std::int64_t pairs = n * (n - 1);
    std::uint64_t silent_steps = 0;
    if (weight > pairs / 8) {
        // Dense regime: most encounters fire, per-encounter sampling is
        // cheaper than drawing the geometric skip.
        while (true) {
            if (silent_steps == budget) {
                *consumed = budget;
                return std::nullopt;
            }
            const auto [s1, s2] = sample_pair_in_context(ctx, rng);
            const auto rules = protocol_.rules_for_pair(s1, s2);
            if (!rules.empty()) {
                const TransitionId chosen = choose_rule(rules, rng);
                fire_in_context(ctx, config,
                                protocol_.transitions()[static_cast<std::size_t>(chosen)]);
                *consumed = silent_steps + 1;
                return chosen;
            }
            ++silent_steps;
        }
    }

    // Sparse regime: the number of consecutive silent encounters is
    // geometric with success probability p = weight/pairs — sample it in
    // one shot instead of executing the silent encounters one by one.
    const double p = static_cast<double>(weight) / static_cast<double>(pairs);
    const double u = 1.0 - rng.uniform();  // (0, 1]
    const double skip = std::floor(std::log(u) / std::log1p(-p));
    if (skip >= static_cast<double>(budget)) {
        *consumed = budget;
        return std::nullopt;
    }
    silent_steps = static_cast<std::uint64_t>(skip);

    // The interacting state pair, conditioned on the encounter being
    // non-silent, is weight-proportional over the non-silent pairs.
    std::int64_t r = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(weight)));
    for (const auto& [a, b] : nonsilent_pairs_) {
        const std::int64_t w = a == b ? config[a] * (config[a] - 1) : 2 * config[a] * config[b];
        if (r < w) {
            const auto rules = protocol_.rules_for_pair(a, b);
            PPSC_DASSERT(!rules.empty());
            const TransitionId chosen = choose_rule(rules, rng);
            fire_in_context(ctx, config,
                            protocol_.transitions()[static_cast<std::size_t>(chosen)]);
            *consumed = silent_steps + 1;
            return chosen;
        }
        r -= w;
    }
    PPSC_CHECK_MSG(false, "active pair weight out of sync with counts");
    return std::nullopt;  // unreachable
}

std::optional<TransitionId> Simulator::step(Config& config, Rng& rng) const {
    PPSC_CHECK_MSG(config.size() >= 2, "simulation needs at least two agents");
    StepContext& ctx = cached_context(config);
    const auto fired = step_in_context(ctx, config, rng);
    ctx.version = config.version();
    return fired;
}

std::pair<StateId, StateId> Simulator::sample_pair(const Config& config, Rng& rng) const {
    PPSC_CHECK_MSG(config.size() >= 2, "sampling needs at least two agents");
    return sample_pair_in_context(cached_context(config), rng);
}

std::uint64_t Simulator::run_batch(Config& config, Rng& rng,
                                   std::uint64_t max_interactions) const {
    if (config.size() < 2)
        throw std::invalid_argument(
            "Simulator::run_batch: configurations need at least two agents");
    StepContext& ctx = cached_context(config);
    std::uint64_t done = 0;
    if (ctx.track_pairs) {
        while (done < max_interactions) {
            std::uint64_t consumed = 0;
            const auto fired = advance(ctx, config, rng, max_interactions - done, &consumed);
            done += consumed;
            if (!fired && consumed == 0) break;  // silent: no interaction can fire again
        }
    } else {
        const auto interval = static_cast<std::uint64_t>(config.size());
        while (done < max_interactions) {
            step_in_context(ctx, config, rng);
            ++done;
            if (done % interval == 0 && is_silent(config)) break;
        }
    }
    ctx.version = config.version();
    return done;
}

SimulationResult Simulator::run(Config config, Rng& rng,
                                const SimulationOptions& options) const {
    const AgentCount population = config.size();
    if (population < 2)
        throw std::invalid_argument("Simulator::run: configurations need at least two agents");

    // Per-run context on the stack: run() stays thread-safe.
    StepContext ctx;
    init_context(ctx, config);

    // Track, incrementally, how many agents sit outside each output trap;
    // when a counter hits zero the configuration is provably stable.
    AgentCount outside[2] = {0, 0};
    for (std::size_t q = 0; q < protocol_.num_states(); ++q) {
        for (int b = 0; b < 2; ++b) {
            if (!traps_[b][q]) outside[b] += config[static_cast<StateId>(q)];
        }
    }

    std::uint64_t interactions = 0;
    bool converged = outside[0] == 0 || outside[1] == 0 ||
                     (ctx.track_pairs ? ctx.active_weight == 0 : is_silent(config));

    // Moves the fired transition's agents between the outside-the-trap
    // counters; returns true when one trap captured the whole population.
    const auto trap_counters_hit_zero = [&](TransitionId fired) {
        const Transition& t = protocol_.transitions()[static_cast<std::size_t>(fired)];
        for (int b = 0; b < 2; ++b) {
            const auto& trap = traps_[b];
            outside[b] += static_cast<AgentCount>(!trap[static_cast<std::size_t>(t.post1)]) +
                          static_cast<AgentCount>(!trap[static_cast<std::size_t>(t.post2)]) -
                          static_cast<AgentCount>(!trap[static_cast<std::size_t>(t.pre1)]) -
                          static_cast<AgentCount>(!trap[static_cast<std::size_t>(t.pre2)]);
        }
        return outside[0] == 0 || outside[1] == 0;
    };

    if (ctx.track_pairs) {
        while (!converged && interactions < options.max_interactions) {
            std::uint64_t consumed = 0;
            const auto fired =
                advance(ctx, config, rng, options.max_interactions - interactions, &consumed);
            interactions += consumed;
            if (!fired) {
                if (consumed == 0) converged = true;  // silent
                continue;  // else: budget exhausted, loop condition exits
            }
            if (trap_counters_hit_zero(*fired) || ctx.active_weight == 0) converged = true;
        }
    } else {
        // Populations beyond pair-weight range: per-encounter stepping with
        // the legacy periodic silence rescan.
        const std::uint64_t silent_interval =
            options.silent_check_interval != 0
                ? options.silent_check_interval
                : static_cast<std::uint64_t>(population);
        while (!converged && interactions < options.max_interactions) {
            const std::optional<TransitionId> fired = step_in_context(ctx, config, rng);
            ++interactions;
            if (fired && trap_counters_hit_zero(*fired)) {
                converged = true;
                break;
            }
            if (interactions % silent_interval == 0 && is_silent(config)) converged = true;
        }
    }

    SimulationResult result{std::move(config), interactions, converged, std::nullopt, 0.0};
    result.output = protocol_.consensus_output(result.final_config);
    result.parallel_time =
        static_cast<double>(interactions) / static_cast<double>(population);
    return result;
}

SimulationResult Simulator::run_input(AgentCount input, Rng& rng,
                                      const SimulationOptions& options) const {
    return run(protocol_.initial_config(input), rng, options);
}

}  // namespace ppsc
