#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <type_traits>

#include "support/check.hpp"

namespace ppsc {

namespace {

/// The scheduler resolves transition nondeterminism uniformly.
TransitionId choose_rule(std::span<const TransitionId> rules, Rng& rng) {
    return rules.size() == 1 ? rules[0]
                             : rules[static_cast<std::size_t>(rng.below(rules.size()))];
}

/// Ordered weight of one non-silent pair at the current counts.  All
/// intermediates are bounded by n(n−1), so the caller's weight type is wide
/// enough for the arithmetic as well.
template <typename W>
W pair_weight(const Config& config, StateId a, StateId b) {
    const auto ca = static_cast<W>(config[a]);
    return a == b ? ca * (ca - 1) : 2 * ca * static_cast<W>(config[b]);
}

/// Below this many non-silent pairs the cumulative scan beats the Fenwick
/// tree (no flush, no mirror, near-sequential memory) — measured on the
/// E10 collector workloads; the break-even sits well under a thousand.
constexpr std::size_t kFenwickPairThreshold = 256;

}  // namespace

Simulator::Simulator(const Protocol& protocol, PairSelect pair_select, TrapCompute trap_compute)
    : protocol_(protocol), pair_select_(pair_select), trap_compute_(trap_compute) {
    if (pair_select_ == PairSelect::automatic) {
        // The heuristic is keyed on the PairId universe (#non-silent pairs),
        // not on |Q|² — so it resolves identically under the dense and the
        // sparse rule table, and a sparse-table protocol with |Q| ≥ 10⁵ but
        // a handful of rule-bearing pairs still gets the cheaper scan.
        pair_select_ = protocol_.nonsilent_pairs().size() >= kFenwickPairThreshold
                           ? PairSelect::fenwick
                           : PairSelect::scan;
    }
    compute_output_traps();
}

void Simulator::compute_output_traps() {
    // The fixpoint itself lives in sim/traps.cpp (worklist by default, with
    // the original pass structure as TrapCompute::reference — identical trap
    // sets).  The constructor additionally folds the two trap bitmaps into
    // the per-state outside mask the count-delta hot path reads.
    const auto start = std::chrono::steady_clock::now();
    for (int b = 0; b < 2; ++b) traps_[b] = compute_output_trap(protocol_, b, trap_compute_);
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    trap_setup_seconds_ = elapsed.count();

    const std::size_t n = protocol_.num_states();
    outside_mask_.assign(n, 0);
    for (std::size_t q = 0; q < n; ++q) {
        outside_mask_[q] = static_cast<std::uint8_t>((traps_[0][q] ? 0u : 1u) |
                                                     (traps_[1][q] ? 0u : 2u));
    }
}

bool Simulator::is_silent(const Config& config) const {
    // O(1) along a trajectory: the cached step context maintains W (the
    // ordered non-silent pair weight) exactly, and W == 0 ⟺ silent.
    if (const auto* ctx = current_cached_context<std::int64_t>(config))
        return ctx->active_weight == 0;
    if (const auto* ctx = current_cached_context<Int128>(config))
        return ctx->active_weight == 0;
    // Counts-based rescan over whichever candidate set is smaller: the
    // protocol's non-silent pairs (Θ(#pairs), independent of how the
    // population spreads) or the support-pair square.  Wide-support
    // configurations on |Q| ≥ 10⁵ protocols used to pay O(|support|²) hash
    // probes here; the flagship family has only Θ(|Q|) non-silent pairs.
    const std::vector<StateId> support = config.support();
    if (protocol_.nonsilent_pairs().size() < support.size() * support.size()) {
        for (const auto& [p, q] : protocol_.nonsilent_pairs()) {
            const bool enabled = p == q ? config[p] >= 2 : config[p] >= 1 && config[q] >= 1;
            if (enabled) return false;
        }
        return true;
    }
    for (std::size_t i = 0; i < support.size(); ++i) {
        for (std::size_t j = i; j < support.size(); ++j) {
            if (i == j && config[support[i]] < 2) continue;  // pair needs two agents
            if (!protocol_.pair_is_silent(support[i], support[j])) return false;
        }
    }
    return true;
}

bool Simulator::is_provably_stable(const Config& config) const {
    // O(1) along a trajectory: the cached step context carries the per-trap
    // outside-support counters and the silence weight.
    if (const auto* ctx = current_cached_context<std::int64_t>(config))
        return ctx->provably_stable();
    if (const auto* ctx = current_cached_context<Int128>(config))
        return ctx->provably_stable();
    for (int b = 0; b < 2; ++b) {
        bool inside = true;
        for (const StateId q : config.support()) {
            if (!traps_[b][static_cast<std::size_t>(q)]) {
                inside = false;
                break;
            }
        }
        if (inside) return true;
    }
    return is_silent(config);
}

template <typename W>
Simulator::StepContextT<W>& Simulator::cache_slot() const noexcept {
    if constexpr (std::is_same_v<W, Int128>) {
        return cache128_;
    } else {
        return cache64_;
    }
}

template <typename W>
void Simulator::init_context(StepContextT<W>& ctx, const Config& config) const {
    PPSC_CHECK_MSG(config.num_states() == protocol_.num_states(),
                   "configuration does not match the simulator's protocol");
    ctx.agents.assign(config.counts());
    const auto pairs = protocol_.nonsilent_pairs();
    ctx.active_weight = 0;
    if (pair_select_ == PairSelect::fenwick) {
        ctx.pair_weights.resize(pairs.size());
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            ctx.pair_weights[i] = pair_weight<W>(config, pairs[i].first, pairs[i].second);
            ctx.active_weight += ctx.pair_weights[i];
        }
        ctx.pair_tree.assign(ctx.pair_weights);
        ctx.tree_mirror = ctx.pair_weights;
    } else {
        // Scan mode recomputes pair weights from the counts on selection;
        // only the total W is kept incrementally, through the partner-sum
        // identity Σ_q c_q · partner_weight[q] + Σ_self c(c−1), which counts
        // every ordered non-silent pair exactly once.
        const auto& counts = config.counts();
        ctx.partner_weight.assign(counts.size(), 0);
        for (std::size_t q = 0; q < counts.size(); ++q) {
            AgentCount w = 0;
            for (const Protocol::PairNeighbor& nb : protocol_.pair_neighbors(static_cast<StateId>(q)))
                w += counts[static_cast<std::size_t>(nb.partner)];
            ctx.partner_weight[q] = w;
            ctx.active_weight += static_cast<W>(counts[q]) * static_cast<W>(w);
            if (protocol_.self_pair(static_cast<StateId>(q)) != Protocol::kNoPair)
                ctx.active_weight += static_cast<W>(counts[q]) * (static_cast<W>(counts[q]) - 1);
        }
    }
    // Per-trap outside-support counters: how many agents sit outside each
    // W_b right now (0 ⟺ the output is stably b).  Maintained incrementally
    // from here on by apply_count_delta.
    ctx.outside_trap[0] = 0;
    ctx.outside_trap[1] = 0;
    const auto& counts = config.counts();
    for (std::size_t q = 0; q < counts.size(); ++q) {
        if (counts[q] == 0) continue;
        const std::uint8_t outside = outside_mask_[q];
        if (outside & 1u) ctx.outside_trap[0] += counts[q];
        if (outside & 2u) ctx.outside_trap[1] += counts[q];
    }
    ctx.dirty.clear();
    ctx.owner = nullptr;
    ctx.version = 0;
}

template <typename W>
const Simulator::StepContextT<W>* Simulator::current_cached_context(const Config& config) const {
    const StepContextT<W>& cache = cache_slot<W>();
    if (cache.owner == &config && cache.version == config.version()) return &cache;
    return nullptr;
}

template <typename W>
Simulator::StepContextT<W>& Simulator::cached_context(const Config& config) const {
    StepContextT<W>& cache = cache_slot<W>();
    if (cache.owner != &config || cache.version != config.version()) {
        init_context(cache, config);
        cache.owner = &config;
        cache.version = config.version();
    }
    return cache;
}

template <typename W>
void Simulator::flush_pair_tree(StepContextT<W>& ctx) const {
    if (ctx.dirty.empty()) return;
    // Past the threshold an O(n) rebuild beats replaying the queue (and the
    // queue stopped growing there, so this also bounds its memory).
    if (ctx.dirty.size() >= ctx.pair_weights.size() / 8 + 16) {
        ctx.pair_tree.assign(ctx.pair_weights);
        ctx.tree_mirror = ctx.pair_weights;
    } else {
        for (const Protocol::PairId id : ctx.dirty) {
            const W delta = ctx.pair_weights[id] - ctx.tree_mirror[id];
            if (delta != 0) {
                ctx.pair_tree.add(id, delta);
                ctx.tree_mirror[id] = ctx.pair_weights[id];
            }
        }
    }
    ctx.dirty.clear();
}

template <typename W>
void Simulator::apply_count_delta(StepContextT<W>& ctx, Config& config, StateId q,
                                  AgentCount delta) const {
    const AgentCount before = config[q];
    config.add(q, delta);
    ctx.agents.add(static_cast<std::size_t>(q), delta);
    // Outside-trap counters: one byte load resolves both traps.
    if (const std::uint8_t outside = outside_mask_[static_cast<std::size_t>(q)]; outside != 0) {
        if (outside & 1u) ctx.outside_trap[0] += delta;
        if (outside & 2u) ctx.outside_trap[1] += delta;
    }
    // Δ of c(c−1) for the self pair, 2·Δc·count(p) for each cross pair; the
    // protocol's delta table lists exactly the affected PairIds.
    if (pair_select_ == PairSelect::fenwick) {
        // Exact per-pair weights; the tree mirror is only marked stale —
        // see flush_pair_tree.
        const std::size_t queue_cap = ctx.pair_weights.size() / 8 + 16;
        const auto touch = [&ctx, queue_cap](Protocol::PairId id, W weight_delta) {
            ctx.active_weight += weight_delta;
            ctx.pair_weights[id] += weight_delta;
            if (ctx.dirty.size() < queue_cap) ctx.dirty.push_back(id);
        };
        if (const Protocol::PairId self = protocol_.self_pair(q); self != Protocol::kNoPair)
            touch(self, static_cast<W>(delta) * (2 * static_cast<W>(before) + delta - 1));
        for (const Protocol::PairNeighbor& nb : protocol_.pair_neighbors(q))
            touch(nb.pair, 2 * static_cast<W>(delta) * static_cast<W>(config[nb.partner]));
    } else {
        // Scan mode: total W only, via the partner sums (one multiply per
        // count change + O(deg) array adds).
        if (protocol_.self_pair(q) != Protocol::kNoPair)
            ctx.active_weight +=
                static_cast<W>(delta) * (2 * static_cast<W>(before) + delta - 1);
        ctx.active_weight += 2 * static_cast<W>(delta) *
                             static_cast<W>(ctx.partner_weight[static_cast<std::size_t>(q)]);
        for (const Protocol::PairNeighbor& nb : protocol_.pair_neighbors(q))
            ctx.partner_weight[static_cast<std::size_t>(nb.partner)] += delta;
    }
}

template <typename W>
void Simulator::fire_in_context(StepContextT<W>& ctx, Config& config,
                                const Transition& t) const {
    apply_count_delta(ctx, config, t.pre1, -1);
    apply_count_delta(ctx, config, t.pre2, -1);
    apply_count_delta(ctx, config, t.post1, 1);
    apply_count_delta(ctx, config, t.post2, 1);
}

std::pair<StateId, StateId> Simulator::sample_pair_in_agents(const FenwickTree& agents,
                                                             Rng& rng) const {
    // Sample an ordered pair of distinct agent ranks, then map ranks to
    // states through the Fenwick tree (O(log |Q|) instead of a prefix scan).
    const std::int64_t n = agents.total();
    PPSC_DASSERT(n >= 2);
    const auto r1 = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(n)));
    auto r2 = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(n - 1)));
    if (r2 >= r1) ++r2;
    return {static_cast<StateId>(agents.sample(r1)), static_cast<StateId>(agents.sample(r2))};
}

template <typename W>
std::optional<TransitionId> Simulator::step_in_context(StepContextT<W>& ctx, Config& config,
                                                       Rng& rng) const {
    const auto [s1, s2] = sample_pair_in_agents(ctx.agents, rng);
    const Protocol::PairId pair = protocol_.pair_id(s1, s2);
    if (pair == Protocol::kNoPair) return std::nullopt;  // silent encounter

    const TransitionId chosen = choose_rule(protocol_.rules_for_pair_id(pair), rng);
    fire_in_context(ctx, config, protocol_.transitions()[static_cast<std::size_t>(chosen)]);
    return chosen;
}

template <typename W>
std::optional<TransitionId> Simulator::advance(StepContextT<W>& ctx, Config& config, Rng& rng,
                                               std::uint64_t budget,
                                               std::uint64_t* consumed) const {
    *consumed = 0;
    if (budget == 0) return std::nullopt;
    const W weight = ctx.active_weight;
    if (weight == 0) return std::nullopt;  // silent: nothing fires, ever

    const auto n = static_cast<W>(config.size());
    const W pairs = n * (n - 1);
    std::uint64_t silent_steps = 0;
    if (weight > pairs / 8) {
        // Dense regime: most encounters fire, per-encounter sampling is
        // cheaper than drawing the geometric skip.
        while (true) {
            if (silent_steps == budget) {
                *consumed = budget;
                return std::nullopt;
            }
            const auto [s1, s2] = sample_pair_in_agents(ctx.agents, rng);
            const Protocol::PairId pair = protocol_.pair_id(s1, s2);
            if (pair != Protocol::kNoPair) {
                const TransitionId chosen =
                    choose_rule(protocol_.rules_for_pair_id(pair), rng);
                fire_in_context(ctx, config,
                                protocol_.transitions()[static_cast<std::size_t>(chosen)]);
                *consumed = silent_steps + 1;
                return chosen;
            }
            ++silent_steps;
        }
    }

    // Sparse regime: the number of consecutive silent encounters is
    // geometric with success probability p = weight/pairs — sample it in
    // one shot instead of executing the silent encounters one by one.
    const double p = static_cast<double>(weight) / static_cast<double>(pairs);
    const double u = 1.0 - rng.uniform();  // (0, 1]
    const double skip = std::floor(std::log(u) / std::log1p(-p));
    // Clamp before any integer conversion: beyond 2⁵³ the double no longer
    // holds an exact count (and a cast to uint64 could overflow outright),
    // so treat any such skip as "at least the whole budget is silent" —
    // `consumed` must never over-count past `budget`.
    if (!(skip < 0x1p53) || static_cast<std::uint64_t>(skip) >= budget) {
        *consumed = budget;
        return std::nullopt;
    }
    silent_steps = static_cast<std::uint64_t>(skip);

    // The interacting state pair, conditioned on the encounter being
    // non-silent, is weight-proportional over the non-silent pairs.  Both
    // selection modes resolve the same rank draw over the same weights in
    // the same order, so they fire identical transitions per seed.
    // ppsc-lint: allow(R4) below128(b) < b by contract and weight is a W value, so the rank fits W
    const auto r = static_cast<W>(rng.below128(static_cast<unsigned __int128>(weight)));
    Protocol::PairId chosen_pair = Protocol::kNoPair;
    if (pair_select_ == PairSelect::fenwick) {
        flush_pair_tree(ctx);
        PPSC_DASSERT(ctx.pair_tree.total() == ctx.active_weight);
        chosen_pair = static_cast<Protocol::PairId>(ctx.pair_tree.sample(r));
    } else {
        // Reference O(#pairs) cumulative scan, recomputed from the counts —
        // independently cross-checks the incremental weight accounting.
        W rest = r;
        const auto nonsilent = protocol_.nonsilent_pairs();
        for (std::size_t i = 0; i < nonsilent.size(); ++i) {
            const W w = pair_weight<W>(config, nonsilent[i].first, nonsilent[i].second);
            if (rest < w) {
                chosen_pair = static_cast<Protocol::PairId>(i);
                break;
            }
            rest -= w;
        }
        PPSC_CHECK_MSG(chosen_pair != Protocol::kNoPair,
                       "active pair weight out of sync with counts");
    }
    // The PairId indexes the compact CSR directly — no pair lookup (dense
    // array or sparse hash probe) on the fired-step path at all.
    const auto rules = protocol_.rules_for_pair_id(chosen_pair);
    PPSC_DASSERT(!rules.empty());
    const TransitionId chosen = choose_rule(rules, rng);
    fire_in_context(ctx, config, protocol_.transitions()[static_cast<std::size_t>(chosen)]);
    *consumed = silent_steps + 1;
    return chosen;
}

template <typename W>
bool Simulator::advance_epoch(StepContextT<W>& ctx, Config& config, Rng& rng,
                              std::uint64_t budget, const EpochOptions& epoch,
                              std::uint64_t* consumed, std::uint64_t* fired,
                              EpochStats& stats) const {
    PPSC_DASSERT(pair_select_ == PairSelect::fenwick);
    *consumed = 0;
    *fired = 0;
    const W weight = ctx.active_weight;
    if (weight == 0) return true;  // silent: nothing fires, ever
    if (budget == 0 || epoch.drift <= 0.0) return false;

    const std::size_t num_states = protocol_.num_states();
    if (ctx.epoch_rate.size() != num_states) {
        ctx.epoch_rate.assign(num_states, 0.0);
        ctx.epoch_cons.assign(num_states, 0);
        ctx.epoch_delta.assign(num_states, 0);
    }

    // Epoch detection = epoch sizing.  Freezing the weights is sound only
    // while the weight structure barely moves, and the structure is a
    // function of the counts — so cap the epoch length k such that every
    // state's EXPECTED consumption over k firings stays within
    // drift·count[q].  The per-firing consumption rate of state q is
    // (Σ_{active pairs touching q} mult·w_i)/W with mult = 2 on the self
    // pair: exactly the multinomial's expected draw pattern.  A global
    // min-count cap would be useless here (E11's merge frontier always has
    // a count-2 level, but its weight — hence its rate — is tiny); the
    // rate-relative cap keeps k at 10⁵-10⁶ through exactly those phases.
    const double weight_d = static_cast<double>(weight);
    const auto pairs = protocol_.nonsilent_pairs();
    auto& rate = ctx.epoch_rate;
    auto& rate_touched = ctx.epoch_rate_touched;
    rate_touched.clear();
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const W w = ctx.pair_weights[i];
        if (w == 0) continue;
        const double wd = static_cast<double>(w);
        const auto [p, q] = pairs[i];
        const auto pi = static_cast<std::size_t>(p);
        const auto qi = static_cast<std::size_t>(q);
        if (p == q) {
            if (rate[pi] == 0.0) rate_touched.push_back(p);
            rate[pi] += 2.0 * wd;
        } else {
            if (rate[pi] == 0.0) rate_touched.push_back(p);
            rate[pi] += wd;
            if (rate[qi] == 0.0) rate_touched.push_back(q);
            rate[qi] += wd;
        }
    }
    double k_cap = static_cast<double>(epoch.max_firings);
    for (const StateId s : rate_touched) {
        const auto si = static_cast<std::size_t>(s);
        const double cap = epoch.drift * static_cast<double>(config[s]) * weight_d / rate[si];
        if (cap < k_cap) k_cap = cap;
        rate[si] = 0.0;  // leave the scratch all-zero for the next epoch
    }
    // Keep the epoch's EXPECTED interaction total (fired + silent, k/p in
    // expectation) within half the remaining budget, so budget-capped calls
    // overshoot at most in the tail of the final epoch.
    const auto n = static_cast<W>(config.size());
    const W pairs_total = n * (n - 1);
    const double p_fire = weight_d / static_cast<double>(pairs_total);
    if (const double budget_cap = 0.5 * static_cast<double>(budget) * p_fire; budget_cap < k_cap)
        k_cap = budget_cap;

    auto k = static_cast<std::uint64_t>(k_cap);
    if (k < epoch.min_firings) return false;  // not profitable: per-step path

    // Draw the per-pair firing counts as one multinomial over the frozen
    // weights (conditional-binomial descent of the pair tree), resolve rule
    // nondeterminism by uniform binomial splits, and accumulate per-state
    // consumption and net deltas.  A draw whose realized consumption
    // exceeds some count (possible in the binomial tail — the cap above
    // only bounds the expectation) is rejected wholesale and retried at
    // half the length: every epoch actually applied is realizable as a
    // firing sequence, and counts can never go negative.
    flush_pair_tree(ctx);
    PPSC_DASSERT(ctx.pair_tree.total() == ctx.active_weight);
    const auto transitions = protocol_.transitions();
    auto& cons = ctx.epoch_cons;
    auto& delta = ctx.epoch_delta;
    auto& touched = ctx.epoch_touched;
    for (int attempt = 0;; ++attempt) {
        touched.clear();
        const auto bump = [&](StateId s, AgentCount used, AgentCount moved) {
            const auto si = static_cast<std::size_t>(s);
            // (cons, delta) == (0, 0) ⟺ untouched: cons only grows, and a
            // state first touched as a post-state has delta > 0 from then on
            // unless it also becomes a pre-state (then cons > 0).
            if (cons[si] == 0 && delta[si] == 0) touched.push_back(s);
            cons[si] += used;
            delta[si] += moved;
        };
        ctx.pair_tree.multinomial(k, rng, [&](std::size_t pair, std::uint64_t c) {
            const auto rules = protocol_.rules_for_pair_id(static_cast<Protocol::PairId>(pair));
            std::uint64_t remaining = c;
            const std::size_t num_rules = rules.size();
            for (std::size_t j = 0; j < num_rules; ++j) {
                // Uniform rule choice, aggregated: sequential binomial
                // splits give each rule Multinomial(c, 1/r) marginals.
                const std::uint64_t cj =
                    j + 1 == num_rules
                        ? remaining
                        : rng.binomial(remaining, 1.0 / static_cast<double>(num_rules - j));
                remaining -= cj;
                if (cj == 0) continue;
                const auto& t = transitions[static_cast<std::size_t>(rules[j])];
                const auto cnt = static_cast<AgentCount>(cj);
                bump(t.pre1, cnt, -cnt);
                bump(t.pre2, cnt, -cnt);
                bump(t.post1, 0, cnt);
                bump(t.post2, 0, cnt);
            }
        });
        bool feasible = true;
        for (const StateId s : touched) {
            const auto si = static_cast<std::size_t>(s);
            if (cons[si] > config[s]) {
                feasible = false;
                break;
            }
        }
        if (feasible) break;
        for (const StateId s : touched) {
            const auto si = static_cast<std::size_t>(s);
            cons[si] = 0;
            delta[si] = 0;
        }
        ++stats.rejected_draws;
        k /= 2;
        if (attempt >= 2 || k < epoch.min_firings) return false;
    }

    // Apply the aggregated deltas in one pass — one apply_count_delta per
    // touched state instead of four per firing.  Application order does not
    // matter: the incremental pair-weight formulas are exact for arbitrary
    // deltas, so the final weights equal the weights of the final counts.
    // Sorting keeps the Fenwick updates cache-local and the pass
    // deterministic.
    std::sort(touched.begin(), touched.end());
    for (const StateId s : touched) {
        const auto si = static_cast<std::size_t>(s);
        if (delta[si] != 0) apply_count_delta(ctx, config, s, delta[si]);
        cons[si] = 0;
        delta[si] = 0;
    }

    // The silent encounters interleaved among k firings at frozen weights:
    // NegativeBinomial(k, p) in one draw, the batched analogue of the
    // per-step geometric silent-skip.  Clamped to the budget (the k ≤
    // budget/2·p cap above makes clamping a tail event).
    std::uint64_t total = k;
    if (weight < pairs_total) {
        const std::uint64_t silent = rng.negative_binomial(k, p_fire);
        total = silent >= budget - k ? budget : k + silent;
    }
    ++stats.epochs;
    stats.epoch_fired += k;
    *consumed = total;
    *fired = k;
    return true;
}

void Simulator::merge_epoch_stats(const EpochStats& stats) const noexcept {
    if (stats.epochs == 0 && stats.fallback_fired == 0 && stats.rejected_draws == 0) return;
    epoch_epochs_.fetch_add(stats.epochs, std::memory_order_relaxed);
    epoch_fired_.fetch_add(stats.epoch_fired, std::memory_order_relaxed);
    epoch_fallback_fired_.fetch_add(stats.fallback_fired, std::memory_order_relaxed);
    epoch_rejected_.fetch_add(stats.rejected_draws, std::memory_order_relaxed);
}

std::optional<TransitionId> Simulator::step(Config& config, Rng& rng) const {
    PPSC_CHECK_MSG(config.size() >= 2, "simulation needs at least two agents");
    if (pairs_fit_int64(config.size())) {
        StepContextT<std::int64_t>& ctx = cached_context<std::int64_t>(config);
        const auto fired = step_in_context(ctx, config, rng);
        ctx.version = config.version();
        return fired;
    }
    StepContextT<Int128>& ctx = cached_context<Int128>(config);
    const auto fired = step_in_context(ctx, config, rng);
    ctx.version = config.version();
    return fired;
}

std::pair<StateId, StateId> Simulator::sample_pair(const Config& config, Rng& rng) const {
    PPSC_CHECK_MSG(config.size() >= 2, "sampling needs at least two agents");
    if (pairs_fit_int64(config.size()))
        return sample_pair_in_agents(cached_context<std::int64_t>(config).agents, rng);
    return sample_pair_in_agents(cached_context<Int128>(config).agents, rng);
}

template <typename W>
std::uint64_t Simulator::run_batch_impl(Config& config, Rng& rng, std::uint64_t max_interactions,
                                        bool stop_when_stable, const CheckpointHook* hook,
                                        std::uint64_t* fired_count, StepMode step_mode,
                                        const EpochOptions& epoch) const {
    StepContextT<W>& ctx = cached_context<W>(config);
    std::uint64_t done = 0;
    std::uint64_t fired_total = 0;
    // Epoch batching needs the exact per-pair weight array, which only the
    // Fenwick selection mode maintains; under scan selection epoch mode
    // degrades to the per-step reference path (epoch_stats shows 0 epochs).
    const bool epoch_capable =
        step_mode == StepMode::epoch && pair_select_ == PairSelect::fenwick;
    EpochStats stats;
    // Hook cadence: the callback runs at the first fired-step (or epoch)
    // boundary at or past each mark, never inside advance()/advance_epoch()
    // — checkpointing cannot split a silent-skip or multinomial draw, so
    // the rng stream (and hence the trajectory) is the same with or without
    // the hook, and a resumed run realigns on the same boundaries (next
    // mark = snapshot interactions + every).
    const bool hooked = hook != nullptr && hook->active();
    std::uint64_t next_hook = hooked ? hook->every : 0;
    bool stop = false;
    while (!stop && done < max_interactions) {
        // The O(1) stability probe (two counters + W); the silent case alone
        // is also caught by the advance paths below, budget-accounted.
        if (stop_when_stable && ctx.provably_stable()) break;
        std::uint64_t consumed = 0;
        std::uint64_t fired_now = 0;
        if (epoch_capable && advance_epoch(ctx, config, rng, max_interactions - done, epoch,
                                           &consumed, &fired_now, stats)) {
            done += consumed;
            if (consumed == 0) break;  // silent: no interaction can fire again
        } else {
            const auto fired = advance(ctx, config, rng, max_interactions - done, &consumed);
            done += consumed;
            if (!fired && consumed == 0) break;  // silent
            if (fired) {
                fired_now = 1;
                if (epoch_capable) ++stats.fallback_fired;
            }
        }
        fired_total += fired_now;
        if (hooked && fired_now > 0 && done >= next_hook) {
            // Publish the context before the callback: is_silent /
            // is_provably_stable on `config` stay O(1) inside it.
            ctx.version = config.version();
            if (!hook->callback({config, rng.state(), done, fired_total})) stop = true;
            next_hook = done + hook->every;
        }
    }
    ctx.version = config.version();
    merge_epoch_stats(stats);
    // Per-call out-param, overwritten (not accumulated): restart loops sum
    // it themselves, so restarts are never double-counted.
    if (fired_count != nullptr) *fired_count = fired_total;
    return done;
}

std::uint64_t Simulator::run_batch(Config& config, Rng& rng, std::uint64_t max_interactions,
                                   bool stop_when_stable, const CheckpointHook* hook,
                                   std::uint64_t* fired_count, StepMode step_mode,
                                   const EpochOptions& epoch) const {
    // Populations of 0 or 1 agents have no ordered pairs (n(n−1) == 0):
    // no encounter can ever happen, so the batch is trivially complete.
    if (config.size() < 2) {
        if (fired_count != nullptr) *fired_count = 0;
        return 0;
    }
    if (pairs_fit_int64(config.size()))
        return run_batch_impl<std::int64_t>(config, rng, max_interactions, stop_when_stable,
                                            hook, fired_count, step_mode, epoch);
    return run_batch_impl<Int128>(config, rng, max_interactions, stop_when_stable, hook,
                                  fired_count, step_mode, epoch);
}

std::optional<TransitionId> Simulator::fired_step(Config& config, Rng& rng, std::uint64_t budget,
                                                  std::uint64_t* consumed) const {
    std::uint64_t local = 0;
    std::uint64_t* out = consumed != nullptr ? consumed : &local;
    *out = 0;
    if (config.size() < 2) return std::nullopt;  // no pairs, trivially silent
    if (pairs_fit_int64(config.size())) {
        StepContextT<std::int64_t>& ctx = cached_context<std::int64_t>(config);
        const auto fired = advance(ctx, config, rng, budget, out);
        ctx.version = config.version();
        return fired;
    }
    StepContextT<Int128>& ctx = cached_context<Int128>(config);
    const auto fired = advance(ctx, config, rng, budget, out);
    ctx.version = config.version();
    return fired;
}

template <typename W>
SimulationResult Simulator::run_impl(Config&& config, Rng& rng,
                                     const SimulationOptions& options) const {
    const AgentCount population = config.size();

    // Per-run context on the stack: run() stays thread-safe.  The context
    // carries the per-trap outside-support counters, so every stability
    // probe below is an O(1) counter read.
    StepContextT<W> ctx;
    init_context(ctx, config);

    // Resume support: a run restored from a checkpoint starts its counters
    // where the snapshot left off, so (config, rng state, interactions,
    // fired) evolves exactly as the uninterrupted run's tail — and the
    // snapshots a resumed run writes carry the same totals the
    // uninterrupted run would have written (no double- or under-counting
    // across restarts).
    std::uint64_t interactions = options.initial_interactions;
    std::uint64_t fired_total = options.initial_fired;
    bool converged = ctx.provably_stable();

    const bool epoch_capable =
        options.step_mode == StepMode::epoch && pair_select_ == PairSelect::fenwick;
    EpochStats stats;
    const bool hooked = options.checkpoint.active();
    std::uint64_t next_hook = hooked ? interactions + options.checkpoint.every : 0;
    while (!converged && interactions < options.max_interactions) {
        std::uint64_t consumed = 0;
        std::uint64_t fired_now = 0;
        if (epoch_capable &&
            advance_epoch(ctx, config, rng, options.max_interactions - interactions,
                          options.epoch, &consumed, &fired_now, stats)) {
            interactions += consumed;
            if (consumed == 0) {
                converged = true;  // silent
                continue;
            }
        } else {
            const auto fired =
                advance(ctx, config, rng, options.max_interactions - interactions, &consumed);
            interactions += consumed;
            if (!fired) {
                if (consumed == 0) converged = true;  // silent
                continue;  // else: budget exhausted, loop condition exits
            }
            fired_now = 1;
            if (epoch_capable) ++stats.fallback_fired;
        }
        fired_total += fired_now;
        converged = ctx.provably_stable();
        // Fired-step/epoch-boundary checkpointing (see CheckpointHook): the
        // callback neither consumes randomness nor alters the trajectory.
        // Skipped once converged — the final state is the caller's result.
        if (hooked && !converged && interactions >= next_hook) {
            if (!options.checkpoint.callback({config, rng.state(), interactions, fired_total}))
                break;  // graceful stop: report the partial run as-is
            next_hook = interactions + options.checkpoint.every;
        }
    }
    merge_epoch_stats(stats);

    SimulationResult result{std::move(config), interactions, fired_total, converged,
                            std::nullopt, 0.0};
    result.output = protocol_.consensus_output(result.final_config);
    result.parallel_time =
        static_cast<double>(interactions) / static_cast<double>(population);
    return result;
}

SimulationResult Simulator::run(Config config, Rng& rng,
                                const SimulationOptions& options) const {
    if (config.size() < 2)
        throw std::invalid_argument("Simulator::run: configurations need at least two agents");
    if (pairs_fit_int64(config.size()))
        return run_impl<std::int64_t>(std::move(config), rng, options);
    return run_impl<Int128>(std::move(config), rng, options);
}

SimulationResult Simulator::run_input(AgentCount input, Rng& rng,
                                      const SimulationOptions& options) const {
    return run(protocol_.initial_config(input), rng, options);
}

}  // namespace ppsc
