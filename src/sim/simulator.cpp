#include "sim/simulator.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ppsc {

Simulator::Simulator(const Protocol& protocol) : protocol_(protocol) {
    compute_output_traps();
}

void Simulator::compute_output_traps() {
    // Greatest-fixpoint under-approximation of the largest interaction-closed
    // subset of O⁻¹(b): start from all b-output states; while some transition
    // has both pre-states inside but a post-state outside, evict both
    // pre-states.  Evicting both is conservative (a smaller trap is still
    // sound) and makes the iteration deterministic.
    const std::size_t n = protocol_.num_states();
    for (int b = 0; b < 2; ++b) {
        std::vector<bool>& trap = traps_[b];
        trap.assign(n, false);
        for (std::size_t q = 0; q < n; ++q)
            trap[q] = (protocol_.output(static_cast<StateId>(q)) == b);
        bool changed = true;
        while (changed) {
            changed = false;
            for (const Transition& t : protocol_.transitions()) {
                const auto p1 = static_cast<std::size_t>(t.pre1);
                const auto p2 = static_cast<std::size_t>(t.pre2);
                if (!trap[p1] || !trap[p2]) continue;
                const bool posts_inside = trap[static_cast<std::size_t>(t.post1)] &&
                                          trap[static_cast<std::size_t>(t.post2)];
                if (!posts_inside) {
                    trap[p1] = false;
                    trap[p2] = false;
                    changed = true;
                }
            }
        }
    }
}

bool Simulator::is_silent(const Config& config) const {
    const std::vector<StateId> support = config.support();
    for (std::size_t i = 0; i < support.size(); ++i) {
        for (std::size_t j = i; j < support.size(); ++j) {
            if (i == j && config[support[i]] < 2) continue;  // pair needs two agents
            if (!protocol_.pair_is_silent(support[i], support[j])) return false;
        }
    }
    return true;
}

bool Simulator::is_provably_stable(const Config& config) const {
    for (int b = 0; b < 2; ++b) {
        bool inside = true;
        for (const StateId q : config.support()) {
            if (!traps_[b][static_cast<std::size_t>(q)]) {
                inside = false;
                break;
            }
        }
        if (inside) return true;
    }
    return is_silent(config);
}

std::optional<TransitionId> Simulator::step(Config& config, Rng& rng) const {
    const AgentCount population = config.size();
    PPSC_CHECK_MSG(population >= 2, "simulation needs at least two agents");

    // Sample an ordered pair of distinct agent ranks, then map ranks to
    // states by scanning the (small) count vector.
    const auto r1 = static_cast<AgentCount>(rng.below(static_cast<std::uint64_t>(population)));
    auto r2 = static_cast<AgentCount>(rng.below(static_cast<std::uint64_t>(population - 1)));
    if (r2 >= r1) ++r2;

    StateId s1 = -1, s2 = -1;
    AgentCount cumulative = 0;
    const auto& counts = config.counts();
    for (std::size_t q = 0; q < counts.size() && (s1 < 0 || s2 < 0); ++q) {
        cumulative += counts[q];
        if (s1 < 0 && r1 < cumulative) s1 = static_cast<StateId>(q);
        if (s2 < 0 && r2 < cumulative) s2 = static_cast<StateId>(q);
    }
    PPSC_CHECK(s1 >= 0 && s2 >= 0);

    const auto rules = protocol_.rules_for_pair(s1, s2);
    if (rules.empty()) return std::nullopt;  // silent encounter

    // The scheduler resolves transition nondeterminism uniformly.
    const TransitionId chosen =
        rules.size() == 1 ? rules[0] : rules[rng.below(rules.size())];
    const Transition& t = protocol_.transitions()[static_cast<std::size_t>(chosen)];
    config.add(t.pre1, -1);
    config.add(t.pre2, -1);
    config.add(t.post1, 1);
    config.add(t.post2, 1);
    return chosen;
}

SimulationResult Simulator::run(Config config, Rng& rng,
                                const SimulationOptions& options) const {
    const AgentCount population = config.size();
    if (population < 2)
        throw std::invalid_argument("Simulator::run: configurations need at least two agents");

    // Track, incrementally, how many agents sit outside each output trap;
    // when a counter hits zero the configuration is provably stable.
    AgentCount outside[2] = {0, 0};
    for (std::size_t q = 0; q < protocol_.num_states(); ++q) {
        for (int b = 0; b < 2; ++b) {
            if (!traps_[b][q]) outside[b] += config[static_cast<StateId>(q)];
        }
    }

    const std::uint64_t silent_interval =
        options.silent_check_interval != 0
            ? options.silent_check_interval
            : static_cast<std::uint64_t>(population);

    std::uint64_t interactions = 0;
    bool converged = (outside[0] == 0 || outside[1] == 0) || is_silent(config);
    while (!converged && interactions < options.max_interactions) {
        const std::optional<TransitionId> fired = step(config, rng);
        ++interactions;
        if (fired) {
            const Transition& t = protocol_.transitions()[static_cast<std::size_t>(*fired)];
            for (int b = 0; b < 2; ++b) {
                const auto& trap = traps_[b];
                outside[b] += static_cast<AgentCount>(!trap[static_cast<std::size_t>(t.post1)]) +
                              static_cast<AgentCount>(!trap[static_cast<std::size_t>(t.post2)]) -
                              static_cast<AgentCount>(!trap[static_cast<std::size_t>(t.pre1)]) -
                              static_cast<AgentCount>(!trap[static_cast<std::size_t>(t.pre2)]);
            }
            if (outside[0] == 0 || outside[1] == 0) {
                converged = true;
                break;
            }
        }
        if (interactions % silent_interval == 0 && is_silent(config)) {
            converged = true;
            break;
        }
    }

    SimulationResult result{std::move(config), interactions, converged, std::nullopt, 0.0};
    result.output = protocol_.consensus_output(result.final_config);
    result.parallel_time =
        static_cast<double>(interactions) / static_cast<double>(population);
    return result;
}

SimulationResult Simulator::run_input(AgentCount input, Rng& rng,
                                      const SimulationOptions& options) const {
    return run(protocol_.initial_config(input), rng, options);
}

}  // namespace ppsc
