// Crash-safe checkpoint/restore of simulation state.
//
// A checkpoint carries everything a trajectory needs to continue
// byte-identically after a crash, OOM-kill, or preemption: the Config
// counts, the Rng state (SplitMix64 — one word restores the stream
// exactly), the interaction/fired/restart counters, and a RunningStats
// accumulator for harness-level aggregates.  Everything else the engine
// keeps per trajectory — Fenwick trees, step contexts, trap
// outside-support counters — is a pure function of (protocol, counts) and
// is *rebuilt* on load by the simulator's context machinery, never
// serialized; the round-trip tests assert the rebuilt state agrees with
// counts-based recomputation.
//
// On-disk format (version 1, little-endian):
//
//   offset  size  field
//        0     8  magic "PPSCCKPT"
//        8     4  format version (u32)
//       12     4  reserved (0)
//       16     8  protocol fingerprint (u64) — hash of states, outputs,
//                 transitions, inputs, leaders, and rule-table kind, so a
//                 checkpoint cannot silently load against the wrong
//                 protocol
//       24     8  num_states (u64)
//       32     8  support size S (u64)
//       40   12S  sparse counts: (state u32, count u64) per supported
//                 state, strictly ascending — Θ(|support|) bytes even at
//                 |Q| ≥ 10⁵
//        …    48  rng_state, interactions, fired, restarts (u64 each),
//                 then the RunningStats accumulator (count u64 + four
//                 f64 bit patterns: mean, m2, raw min, raw max)
//     end−8     8  CRC-64/XZ over every preceding byte
//
// Durability: write_checkpoint_file serializes to <path>.tmp, fsyncs,
// and atomically renames over <path> (then fsyncs the directory), so a
// crash mid-write never damages the previous snapshot.  CheckpointDir
// adds keep-last-K rotation (ckpt-<seq>.ppc) and a loader that walks the
// rotation newest-first, rejecting corrupt or truncated files with a
// typed error and falling back to the newest valid sibling.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/protocol.hpp"
#include "sim/stats.hpp"

namespace ppsc {

inline constexpr std::uint32_t kCheckpointFormatVersion = 1;
inline constexpr char kCheckpointMagic[8] = {'P', 'P', 'S', 'C', 'C', 'K', 'P', 'T'};

/// Why a load was rejected.  Every failure mode of a corrupt, truncated,
/// foreign, or future-format file maps to one of these — the loader never
/// crashes and never returns a partially parsed snapshot.
enum class CheckpointError {
    none = 0,        ///< success
    io,              ///< open/read/write/rename failed (detail has errno text)
    truncated,       ///< too short to hold even the fixed header + trailer
    bad_magic,       ///< not a checkpoint file
    bad_version,     ///< format version this reader does not speak
    crc_mismatch,    ///< trailer CRC does not cover the bytes (corruption/truncation)
    malformed,       ///< CRC-valid but semantically inconsistent payload
    wrong_protocol,  ///< fingerprint does not match the expected protocol
};

const char* checkpoint_error_name(CheckpointError error) noexcept;

/// The resumable state of one trajectory (plus harness counters).
/// R3-scoped: every field must round-trip bit-exactly through the on-disk
/// format — integral counters and the sparse counts do trivially; the only
/// floating state (inside RunningStats) travels as IEEE-754 bit images.
// ppsc-lint: serialized-state
struct Checkpoint {
    std::uint64_t fingerprint = 0;    ///< protocol_fingerprint() of the owner
    Config config{0};                 ///< the counts; everything else is rebuilt
    std::uint64_t rng_state = 0;      ///< Rng::state() at the snapshot point
    std::uint64_t interactions = 0;   ///< interactions executed so far
    std::uint64_t fired = 0;          ///< non-silent interactions so far
    std::uint64_t restarts = 0;       ///< harness-level trajectory restarts
    RunningStats stats;               ///< harness-defined accumulator
};

/// Structural hash of a protocol: state names and outputs, transitions,
/// input mapping, leaders, and the resolved rule-table kind.  Two protocols
/// drive identical trajectories from identical seeds iff this matches, so a
/// checkpoint is only resumed into a simulator with the same fingerprint.
std::uint64_t protocol_fingerprint(const Protocol& protocol);

/// Order-independent-of-nothing digest of a configuration's counts (CRC-64
/// over the sparse serialisation) — the quantity the kill-and-resume
/// equivalence suite and the CI crash-resume smoke compare.
std::uint64_t config_digest(const Config& config);

/// Serialises a checkpoint to the on-disk byte layout (CRC trailer
/// included).  Deterministic: equal checkpoints produce equal bytes.
std::vector<std::uint8_t> serialize_checkpoint(const Checkpoint& checkpoint);

struct CheckpointParse {
    CheckpointError error = CheckpointError::io;
    std::string detail;                     ///< human-readable rejection reason
    std::optional<Checkpoint> checkpoint;   ///< engaged iff error == none
    bool ok() const noexcept { return error == CheckpointError::none; }
};

/// Parses checkpoint bytes, validating magic, version, CRC, payload shape
/// (bounds-checked cursor, ascending support, counts and totals within
/// int64), and — when given — the protocol fingerprint.  Total: every
/// input, corrupt or hostile, yields a typed error, never a crash.
CheckpointParse parse_checkpoint(std::span<const std::uint8_t> bytes,
                                 std::optional<std::uint64_t> expected_fingerprint = std::nullopt);

/// Reads and parses one checkpoint file.
CheckpointParse load_checkpoint_file(const std::string& path,
                                     std::optional<std::uint64_t> expected_fingerprint = std::nullopt);

/// Crash-safe single-file write: <path>.tmp + fsync + atomic rename (+
/// directory fsync).  Returns CheckpointError::io with errno detail on
/// failure; the previous file at <path>, if any, survives intact.
CheckpointError write_checkpoint_file(const std::string& path, const Checkpoint& checkpoint,
                                      std::string* detail = nullptr);

/// A rotation directory of checkpoints: ckpt-<seq>.ppc slots written
/// atomically, pruned to the newest keep_last, and loaded newest-first
/// with per-file typed rejection (fallback to the newest valid sibling).
/// Single-writer: one process owns a rotation directory at a time.
class CheckpointDir {
public:
    explicit CheckpointDir(std::string dir, std::size_t keep_last = 3);

    const std::string& dir() const noexcept { return dir_; }
    std::size_t keep_last() const noexcept { return keep_last_; }

    /// Writes the next rotation slot (creating the directory if needed),
    /// prunes old slots and stale .tmp files.  On success *written_path
    /// (if non-null) names the new file.
    CheckpointError write(const Checkpoint& checkpoint, std::string* written_path = nullptr,
                          std::string* detail = nullptr);

    struct Latest {
        std::optional<Checkpoint> checkpoint;  ///< newest valid snapshot, if any
        std::string path;                      ///< file it came from
        std::vector<std::string> rejected;     ///< "file: reason" per skipped newer file
    };

    /// Walks the rotation newest-first and returns the first checkpoint
    /// that parses and (when expected) fingerprint-matches; every newer
    /// file that had to be skipped is reported in `rejected`.  A missing
    /// or empty directory yields an empty result, not an error.
    Latest load_latest(std::optional<std::uint64_t> expected_fingerprint = std::nullopt) const;

private:
    /// Existing rotation slots as (sequence, filename), ascending.
    std::vector<std::pair<std::uint64_t, std::string>> slots() const;

    std::string dir_;
    std::size_t keep_last_;
};

}  // namespace ppsc
