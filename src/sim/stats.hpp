// Small statistics helpers for simulation experiments.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/check.hpp"

namespace ppsc {

/// Welford online mean/variance plus min/max.
///
/// Serialized by sim/checkpoint.cpp (the five raw fields travel in the
/// snapshot payload), so the persisted layout is R3-scoped: the double
/// members are permitted only because they are encoded as IEEE-754 bit
/// images in a u64 (memcpy both ways, no text round-trip, no rounding) —
/// restore() is bit-exact by construction and the golden-file test pins it.
// ppsc-lint: serialized-state
class RunningStats {
public:
    void add(double x) noexcept {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    std::uint64_t count() const noexcept { return count_; }
    double mean() const noexcept { return mean_; }
    double variance() const noexcept { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
    double stddev() const noexcept { return std::sqrt(variance()); }
    double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
    double max() const noexcept { return count_ > 0 ? max_ : 0.0; }

    /// Welford's second moment — exposed (with the raw min/max, sentinel
    /// infinities included) so a checkpoint can carry the accumulator and
    /// restore() can resume it exactly (sim/checkpoint.hpp).
    double m2() const noexcept { return m2_; }
    double raw_min() const noexcept { return min_; }
    double raw_max() const noexcept { return max_; }

    /// Rebuilds an accumulator from the five raw fields; the restored
    /// object continues the original add() sequence bit-identically.
    static RunningStats restore(std::uint64_t count, double mean, double m2, double raw_min,
                                double raw_max) noexcept {
        RunningStats stats;
        stats.count_ = count;
        stats.mean_ = mean;
        stats.m2_ = m2;
        stats.min_ = raw_min;
        stats.max_ = raw_max;
        return stats;
    }

private:
    std::uint64_t count_ = 0;
    // ppsc-lint: allow(R3) serialized as IEEE-754 bit images in u64 (checkpoint.cpp put_f64/f64) — bit-exact
    double mean_ = 0.0;
    // ppsc-lint: allow(R3) serialized as IEEE-754 bit images in u64 — bit-exact round trip
    double m2_ = 0.0;
    // ppsc-lint: allow(R3) serialized as IEEE-754 bit images in u64 — sentinel infinities included
    double min_ = std::numeric_limits<double>::infinity();
    // ppsc-lint: allow(R3) serialized as IEEE-754 bit images in u64 — sentinel infinities included
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample container with quantiles (destructive nth_element on demand).
class Samples {
public:
    void add(double x) { values_.push_back(x); }
    std::size_t size() const noexcept { return values_.size(); }

    /// q ∈ [0,1]; nearest-rank quantile.
    double quantile(double q) {
        PPSC_CHECK(!values_.empty());
        const double clamped = std::clamp(q, 0.0, 1.0);
        const auto rank = static_cast<std::size_t>(
            clamped * static_cast<double>(values_.size() - 1) + 0.5);
        std::nth_element(values_.begin(), values_.begin() + static_cast<std::ptrdiff_t>(rank),
                         values_.end());
        return values_[rank];
    }

    double median() { return quantile(0.5); }

private:
    std::vector<double> values_;
};

}  // namespace ppsc
