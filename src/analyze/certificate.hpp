// Machine-checkable certificates for protocol-level static analysis.
//
// Every claim the analyzer (analyze/analyze.hpp) makes about a protocol is
// backed by a certificate: a small, self-contained piece of evidence that an
// *independent* checker (analyze/checker.hpp) re-verifies from scratch by
// direct arithmetic over the protocol — never by re-running the inference
// that produced it.  Four kinds:
//
//   invariant  — a vector v ∈ N^Q with v·Δt ≤ 0 for every transition t and
//                v = 0 on every input state, so v·IC(m) = v·L for every
//                input m.  Since v·C is non-increasing along every step,
//                v·C ≤ v·L on every reachable configuration, and every
//                state q with v(q) > v·L is unreachable from every input —
//                a *counting* argument: on leader protocols it can refute
//                states the structural closure pass admits (e.g. a state
//                producible only by two copies of a unique leader).
//   closure    — a set R ⊆ Q containing all input states and the leader
//                support, closed under interaction: if both pre-states of a
//                transition lie in R, both post-states do too.  By induction
//                over firing sequences, every occupied state of every
//                reachable configuration lies in R; the complement Q ∖ R is
//                a siphon that starts empty and can never be entered, so
//                every state outside R is unreachable.
//   dead       — a transition t plus a reference to an invariant/closure
//                certificate proving one of t's pre-states unreachable;
//                t can then never be enabled, let alone fire.
//   consensus  — an output b plus references covering *every* state with
//                output b by an unreachability certificate.  No reachable
//                configuration then contains an agent with output b, so no
//                reachable configuration has consensus b and "stabilizes to
//                b" is refuted outright for every input.
//
// Certificates cross-reference each other by index into the list they were
// emitted in; the checker validates the whole list, so a dangling or
// non-proving reference is a checker error, not undefined behaviour.  The
// text serialisation (format_certificates / parse_certificates) round-trips
// so emitted artifacts can be re-checked by a later process
// (`protocol_tool analyze --check`).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/protocol.hpp"

namespace ppsc::analyze {

enum class CertificateKind {
    invariant,  ///< non-increasing, initially-zero linear invariant
    closure,    ///< interaction-closed reachable-support overapproximation
    dead,       ///< transition with an unreachable pre-state
    consensus,  ///< output b with all b-output states proven unreachable
};

struct Certificate {
    CertificateKind kind = CertificateKind::invariant;

    /// invariant: the coefficients v, indexed by state (size |Q|, all ≥ 0).
    std::vector<std::int64_t> coefficients;

    /// closure: membership of R, indexed by state (size |Q|).
    std::vector<bool> inside;

    /// dead: the transition claimed dead and the unreachable pre-state the
    /// proof hangs on.
    TransitionId transition = -1;
    StateId state = -1;

    /// consensus: the refuted output b ∈ {0, 1}.
    int output = -1;

    /// dead / consensus: indices (into the containing certificate list) of
    /// the invariant/closure certificates the claim rests on.
    std::vector<std::size_t> refs;

    bool operator==(const Certificate&) const = default;
};

/// The states a base certificate proves unreachable: {q : v(q) > v·L} for
/// an invariant (L the protocol's leader multiset), Q ∖ R for a closure,
/// empty for the derived kinds.  Helper shared by the analyzer, the
/// checker, and the tests.
std::vector<bool> claimed_unreachable(const Certificate& certificate, const Protocol& protocol);

/// Line-oriented text serialisation (one `certificate <kind> … end` block
/// per certificate); round-trips through parse_certificates.
std::string format_certificates(std::span<const Certificate> certificates);

/// Parses the serialisation above.  Throws std::invalid_argument with a
/// line-numbered message on any syntax error; semantic validity against a
/// protocol is the checker's job, not the parser's.
std::vector<Certificate> parse_certificates(std::string_view text);

}  // namespace ppsc::analyze
