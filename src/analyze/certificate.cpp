#include "analyze/certificate.hpp"

#include <sstream>
#include <stdexcept>

namespace ppsc::analyze {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
    throw std::invalid_argument("certificate parse error, line " + std::to_string(line) + ": " +
                                message);
}

const char* kind_name(CertificateKind kind) {
    switch (kind) {
        case CertificateKind::invariant: return "invariant";
        case CertificateKind::closure: return "closure";
        case CertificateKind::dead: return "dead";
        case CertificateKind::consensus: return "consensus";
    }
    PPSC_UNREACHABLE();
}

/// Full-token integer parse (ppsc-lint R5: a trailing-garbage token like
/// "12x" must be a typed error, never silently read as 12).
std::int64_t parse_int(const std::string& token, std::size_t line) {
    try {
        std::size_t used = 0;
        // ppsc-lint: allow(R5) full-token check directly below; a typed fail() on any violation
        const std::int64_t value = std::stoll(token, &used);
        if (used != token.size()) fail(line, "expected an integer, got '" + token + "'");
        return value;
    } catch (const std::invalid_argument&) {
        fail(line, "expected an integer, got '" + token + "'");
    } catch (const std::out_of_range&) {
        fail(line, "integer out of range: '" + token + "'");
    }
}

}  // namespace

std::vector<bool> claimed_unreachable(const Certificate& certificate, const Protocol& protocol) {
    const std::size_t num_states = protocol.num_states();
    std::vector<bool> unreachable(num_states, false);
    if (certificate.kind == CertificateKind::invariant) {
        // v·C ≤ v·IC(m) = v·L on every reachable configuration (v vanishes
        // on the input states), so v(q) > v·L pins state q empty forever.
        // __int128 keeps the leader dot product exact for any int64 data.
        __int128 initial = 0;
        for (std::size_t q = 0; q < num_states && q < certificate.coefficients.size(); ++q)
            initial += static_cast<__int128>(certificate.coefficients[q]) *
                       static_cast<__int128>(protocol.leaders()[static_cast<StateId>(q)]);
        for (std::size_t q = 0; q < num_states && q < certificate.coefficients.size(); ++q)
            unreachable[q] = static_cast<__int128>(certificate.coefficients[q]) > initial;
    } else if (certificate.kind == CertificateKind::closure) {
        for (std::size_t q = 0; q < num_states && q < certificate.inside.size(); ++q)
            unreachable[q] = !certificate.inside[q];
    }
    return unreachable;
}

std::string format_certificates(std::span<const Certificate> certificates) {
    std::ostringstream os;
    for (const Certificate& c : certificates) {
        os << "certificate " << kind_name(c.kind) << '\n';
        switch (c.kind) {
            case CertificateKind::invariant: {
                os << "coeffs";
                for (const std::int64_t v : c.coefficients) os << ' ' << v;
                os << '\n';
                break;
            }
            case CertificateKind::closure: {
                os << "inside";
                for (const bool in : c.inside) os << ' ' << (in ? 1 : 0);
                os << '\n';
                break;
            }
            case CertificateKind::dead: {
                os << "transition " << c.transition << '\n';
                os << "state " << c.state << '\n';
                break;
            }
            case CertificateKind::consensus: {
                os << "output " << c.output << '\n';
                break;
            }
        }
        if (!c.refs.empty()) {
            os << "refs";
            for (const std::size_t r : c.refs) os << ' ' << r;
            os << '\n';
        }
        os << "end\n";
    }
    return os.str();
}

std::vector<Certificate> parse_certificates(std::string_view text) {
    std::vector<Certificate> certificates;
    std::istringstream input{std::string(text)};
    std::string line;
    std::size_t line_number = 0;
    bool open = false;  // inside a certificate block?
    Certificate current;
    while (std::getline(input, line)) {
        ++line_number;
        std::istringstream is(line);
        std::vector<std::string> tokens;
        std::string token;
        while (is >> token) {
            if (token.front() == '#') break;
            tokens.push_back(token);
        }
        if (tokens.empty()) continue;
        const std::string& keyword = tokens[0];
        if (keyword == "certificate") {
            if (open) fail(line_number, "nested certificate block (missing 'end'?)");
            if (tokens.size() != 2) fail(line_number, "expected: certificate <kind>");
            current = Certificate{};
            if (tokens[1] == "invariant") current.kind = CertificateKind::invariant;
            else if (tokens[1] == "closure") current.kind = CertificateKind::closure;
            else if (tokens[1] == "dead") current.kind = CertificateKind::dead;
            else if (tokens[1] == "consensus") current.kind = CertificateKind::consensus;
            else fail(line_number, "unknown certificate kind '" + tokens[1] + "'");
            open = true;
        } else if (!open) {
            fail(line_number, "expected 'certificate <kind>', got '" + keyword + "'");
        } else if (keyword == "end") {
            if (tokens.size() != 1) fail(line_number, "expected: end");
            certificates.push_back(std::move(current));
            current = Certificate{};
            open = false;
        } else if (keyword == "coeffs") {
            for (std::size_t i = 1; i < tokens.size(); ++i)
                current.coefficients.push_back(parse_int(tokens[i], line_number));
        } else if (keyword == "inside") {
            for (std::size_t i = 1; i < tokens.size(); ++i) {
                const std::int64_t bit = parse_int(tokens[i], line_number);
                if (bit != 0 && bit != 1) fail(line_number, "inside bits must be 0 or 1");
                current.inside.push_back(bit == 1);
            }
        } else if (keyword == "transition") {
            if (tokens.size() != 2) fail(line_number, "expected: transition <id>");
            current.transition = static_cast<TransitionId>(parse_int(tokens[1], line_number));
        } else if (keyword == "state") {
            if (tokens.size() != 2) fail(line_number, "expected: state <id>");
            current.state = static_cast<StateId>(parse_int(tokens[1], line_number));
        } else if (keyword == "output") {
            if (tokens.size() != 2) fail(line_number, "expected: output <0|1>");
            const std::int64_t b = parse_int(tokens[1], line_number);
            if (b != 0 && b != 1) fail(line_number, "output must be 0 or 1");
            current.output = static_cast<int>(b);
        } else if (keyword == "refs") {
            for (std::size_t i = 1; i < tokens.size(); ++i) {
                const std::int64_t r = parse_int(tokens[i], line_number);
                if (r < 0) fail(line_number, "refs must be non-negative");
                current.refs.push_back(static_cast<std::size_t>(r));
            }
        } else {
            fail(line_number, "unknown keyword '" + keyword + "'");
        }
    }
    if (open) fail(line_number, "unterminated certificate block (missing 'end')");
    return certificates;
}

}  // namespace ppsc::analyze
