// Protocol-level static analysis (ppsc-analyze).
//
// Everything the rest of the library establishes about a protocol is
// established by *running* it — randomized simulation (sim/) or exact
// bounded-population reachability (verify/).  This module is the static
// story: a multi-pass analyzer that proves facts about a protocol without
// exploring a single configuration, and backs every claim with a
// machine-checkable certificate (analyze/certificate.hpp) that the
// independent checker (analyze/checker.hpp) re-verifies from scratch.
//
// Passes, in order:
//
//   1. Linear invariant inference.  A vector v ∈ N^Q with v·Δt ≤ 0 for all
//      transitions t is non-increasing along every step; if it additionally
//      vanishes on every input state, v·IC(m) = v·L for every input m, so
//      every state q with v(q) > v·L is unreachable from every initial
//      configuration.  The leader threshold is a *counting* argument the
//      structural closure of pass 2 cannot make (e.g. a state producible
//      only by two copies of a unique leader).  The cone {v ≥ 0 : Δᵀ·v ≤ 0} is
//      computed exactly by the Contejean–Devie completion
//      (diophantine/pottier.hpp, generating_basis_inequalities) on small
//      protocols; above `cone_state_cap` states the pass falls back to the
//      O(|T|) singleton scan (v = e_q is in the cone iff no transition
//      produces q more often than it consumes it), which is what scales to
//      the |Q| = 131075 flagship family.
//   2. Interaction-closure reachable-support overapproximation.  The least
//      R ⊆ Q containing all input states and the leader support and closed
//      under "both pre-states in R ⇒ both post-states in R", computed by a
//      worklist over the protocol's non-silent-pair CSR
//      (pair_neighbors/self_pair).  Every occupied state of every reachable
//      configuration lies in R; equivalently Q ∖ R is an initially-empty
//      siphon.  Unreachable states from passes 1 + 2 are combined, and a
//      transition with an unreachable pre-state is dead: it can never fire.
//   3. Consensus refutation.  If every output-b state is covered by an
//      unreachability certificate, no reachable configuration has consensus
//      b — "stabilizes to b" is statically refuted for every input.  The
//      output traps of the simulation layer (sim/traps.hpp) feed the
//      adjacent lint: an empty trap W_b means the engine's trap-based
//      stable-consensus detector can never certify output b.
//   4. Well-formedness lints: unreachable states and dead transitions as
//      notes, one-sided output (the protocol can never produce the other
//      consensus), empty output traps, nondeterministic pre-pairs
//      (duplicate/conflicting rules), and inert leaders (a leader state
//      whose every non-silent interaction partner is unreachable).
//
// Soundness contract, asserted exhaustively in tests/analyze_test.cpp: no
// state flagged unreachable is exactly-reachable, no transition flagged
// dead is ever enabled, and every emitted certificate passes
// check_certificates.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analyze/certificate.hpp"
#include "core/protocol.hpp"
#include "diophantine/pottier.hpp"

namespace ppsc::analyze {

enum class Severity { error, warning, note };

/// One machine-readable finding.  `state` / `transition` identify the
/// subject when the finding is about one (−1 otherwise); callers with
/// access to the source text (protocol_tool) map them back to file:line.
struct Diagnostic {
    Severity severity = Severity::note;
    std::string code;     ///< stable identifier, e.g. "unreachable-state"
    std::string message;  ///< human-readable explanation
    StateId state = -1;
    TransitionId transition = -1;
};

struct AnalysisOptions {
    /// Budgets for the Contejean–Devie completion of pass 1; blowing them
    /// downgrades the pass to the singleton scan (with a note), it never
    /// fails the analysis.  The defaults are far tighter than the library
    /// HilbertOptions defaults: the analyzer is a screening/linting pass
    /// and must stay interactive, not exact-at-any-cost.
    HilbertOptions hilbert{.max_norm1 = 1 << 10, .max_frontier = 50'000};
    /// Full cone inference only below this many states; above it pass 1
    /// runs the O(|T|) singleton scan.  The default keeps exhaustive
    /// sweeps and busy-beaver screening on the exact cone while the
    /// |Q| ≥ 10⁵ families stay linear-time.
    std::size_t cone_state_cap = 24;
    /// Cap on emitted invariant certificates (deterministic prefix of the
    /// generating basis); a note reports truncation.
    std::size_t max_invariants = 64;
};

struct Analysis {
    /// Every claim below, as independently checkable evidence.  Base
    /// certificates (invariant/closure) come first; dead/consensus
    /// certificates reference them by index into this vector.
    std::vector<Certificate> certificates;
    /// Per state: proven unreachable from every initial configuration.
    std::vector<bool> unreachable;
    /// Per transition: proven never to fire (an unreachable pre-state).
    std::vector<bool> dead;
    /// Per output b: proven that no reachable configuration has consensus b.
    std::array<bool, 2> consensus_refuted{false, false};
    std::vector<Diagnostic> diagnostics;
    /// True when pass 1 ran the exact cone completion (false: singleton
    /// scan only, by state cap or blown Hilbert budget).
    bool cone_inference_ran = false;
};

/// Runs all passes.  Never throws on analysis content; budget exhaustion
/// degrades to weaker (still sound) results with a diagnostic note.
Analysis analyze_protocol(const Protocol& protocol, const AnalysisOptions& options = {});

}  // namespace ppsc::analyze
