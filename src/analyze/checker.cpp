#include "analyze/checker.hpp"

#include <sstream>

namespace ppsc::analyze {

namespace {

/// One certificate's verdict: empty string = sound, otherwise the reason.
std::string check_invariant(const Protocol& protocol, const Certificate& c) {
    if (c.coefficients.size() != protocol.num_states())
        return "invariant has " + std::to_string(c.coefficients.size()) +
               " coefficients for a protocol with " + std::to_string(protocol.num_states()) +
               " states";
    for (std::size_t q = 0; q < c.coefficients.size(); ++q) {
        if (c.coefficients[q] < 0)
            return "invariant coefficient of state " + std::to_string(q) + " is negative";
    }
    // Non-increasing along every step: v·Δt ≤ 0, recomputed from the raw
    // transition endpoints (never via the inference's system assembly).
    // __int128 keeps the four-term sum exact for any int64 coefficients.
    for (std::size_t t = 0; t < protocol.num_transitions(); ++t) {
        const Transition& tr = protocol.transitions()[t];
        const __int128 delta =
            static_cast<__int128>(c.coefficients[static_cast<std::size_t>(tr.post1)]) +
            static_cast<__int128>(c.coefficients[static_cast<std::size_t>(tr.post2)]) -
            static_cast<__int128>(c.coefficients[static_cast<std::size_t>(tr.pre1)]) -
            static_cast<__int128>(c.coefficients[static_cast<std::size_t>(tr.pre2)]);
        if (delta > 0)
            return "invariant increases along transition " + std::to_string(t);
    }
    // Initially bounded: v vanishes on every input state, so v·IC(m) = v·L
    // for every input m — the threshold claimed_unreachable compares
    // against.  (Nonzero leader coefficients are fine; they raise the
    // threshold, they don't break the bound.)
    for (std::size_t x = 0; x < protocol.input_variables().size(); ++x) {
        const StateId q = protocol.input_state(x);
        if (c.coefficients[static_cast<std::size_t>(q)] != 0)
            return "invariant is nonzero on input state " + std::to_string(q);
    }
    return {};
}

std::string check_closure(const Protocol& protocol, const Certificate& c) {
    if (c.inside.size() != protocol.num_states())
        return "closure has " + std::to_string(c.inside.size()) +
               " membership bits for a protocol with " + std::to_string(protocol.num_states()) +
               " states";
    // R must contain every possibly-initial state …
    for (std::size_t x = 0; x < protocol.input_variables().size(); ++x) {
        const StateId q = protocol.input_state(x);
        if (!c.inside[static_cast<std::size_t>(q)])
            return "closure excludes input state " + std::to_string(q);
    }
    for (std::size_t q = 0; q < protocol.num_states(); ++q) {
        if (protocol.leaders()[static_cast<StateId>(q)] > 0 && !c.inside[q])
            return "closure excludes leader state " + std::to_string(q);
    }
    // … and be closed under interaction.
    for (std::size_t t = 0; t < protocol.num_transitions(); ++t) {
        const Transition& tr = protocol.transitions()[t];
        if (c.inside[static_cast<std::size_t>(tr.pre1)] &&
            c.inside[static_cast<std::size_t>(tr.pre2)] &&
            (!c.inside[static_cast<std::size_t>(tr.post1)] ||
             !c.inside[static_cast<std::size_t>(tr.post2)]))
            return "closure is not closed under transition " + std::to_string(t);
    }
    return {};
}

/// Resolves one reference of a derived certificate: it must land on a base
/// (invariant/closure) certificate.  Returns nullptr plus a reason if not.
const Certificate* resolve_base(std::span<const Certificate> certificates, std::size_t ref,
                                std::string& error) {
    if (ref >= certificates.size()) {
        error = "reference " + std::to_string(ref) + " is out of range";
        return nullptr;
    }
    const Certificate& base = certificates[ref];
    if (base.kind != CertificateKind::invariant && base.kind != CertificateKind::closure) {
        error = "reference " + std::to_string(ref) + " is not a base certificate";
        return nullptr;
    }
    return &base;
}

std::string check_dead(const Protocol& protocol, std::span<const Certificate> certificates,
                       const Certificate& c) {
    if (c.transition < 0 ||
        static_cast<std::size_t>(c.transition) >= protocol.num_transitions())
        return "dead certificate names transition " + std::to_string(c.transition) +
               " of a protocol with " + std::to_string(protocol.num_transitions()) +
               " transitions";
    const Transition& tr = protocol.transitions()[static_cast<std::size_t>(c.transition)];
    if (c.state != tr.pre1 && c.state != tr.pre2)
        return "state " + std::to_string(c.state) + " is not a pre-state of transition " +
               std::to_string(c.transition);
    for (const std::size_t ref : c.refs) {
        std::string error;
        const Certificate* base = resolve_base(certificates, ref, error);
        if (base == nullptr) return error;
        const std::vector<bool> unreachable =
            claimed_unreachable(*base, protocol);
        if (unreachable[static_cast<std::size_t>(c.state)]) return {};
    }
    return "no referenced certificate proves state " + std::to_string(c.state) +
           " unreachable";
}

std::string check_consensus(const Protocol& protocol, std::span<const Certificate> certificates,
                            const Certificate& c) {
    if (c.output != 0 && c.output != 1) return "consensus output must be 0 or 1";
    // Union of what the referenced base certificates prove unreachable;
    // every output-b state must be covered.
    std::vector<bool> covered(protocol.num_states(), false);
    for (const std::size_t ref : c.refs) {
        std::string error;
        const Certificate* base = resolve_base(certificates, ref, error);
        if (base == nullptr) return error;
        const std::vector<bool> unreachable =
            claimed_unreachable(*base, protocol);
        for (std::size_t q = 0; q < covered.size(); ++q)
            if (unreachable[q]) covered[q] = true;
    }
    for (std::size_t q = 0; q < protocol.num_states(); ++q) {
        if (protocol.output(static_cast<StateId>(q)) == c.output && !covered[q])
            return "output-" + std::to_string(c.output) + " state " + std::to_string(q) +
                   " is not proven unreachable";
    }
    return {};
}

}  // namespace

CheckReport check_certificates(const Protocol& protocol,
                               std::span<const Certificate> certificates) {
    CheckReport report;
    for (std::size_t i = 0; i < certificates.size(); ++i) {
        const Certificate& c = certificates[i];
        std::string error;
        switch (c.kind) {
            case CertificateKind::invariant: error = check_invariant(protocol, c); break;
            case CertificateKind::closure: error = check_closure(protocol, c); break;
            case CertificateKind::dead: error = check_dead(protocol, certificates, c); break;
            case CertificateKind::consensus:
                error = check_consensus(protocol, certificates, c);
                break;
        }
        if (!error.empty()) {
            report.ok = false;
            report.failed_index = i;
            report.error = "certificate " + std::to_string(i) + ": " + error;
            return report;
        }
    }
    return report;
}

}  // namespace ppsc::analyze
