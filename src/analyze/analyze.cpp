#include "analyze/analyze.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/traps.hpp"
#include "support/check.hpp"

namespace ppsc::analyze {

namespace {

/// Pass 2: least interaction-closed superset of the possibly-initial
/// states, via a worklist over the non-silent-pair CSR.  Adding q examines
/// the self pair {q,q} and every pair {q,r} whose partner r is already
/// inside; the pair {q,r} with r joining later is examined from r's side
/// then, so every non-silent pair is examined at most twice.
std::vector<bool> reachable_support_closure(const Protocol& protocol) {
    std::vector<bool> inside(protocol.num_states(), false);
    std::vector<StateId> worklist;
    auto add = [&](StateId q) {
        if (!inside[static_cast<std::size_t>(q)]) {
            inside[static_cast<std::size_t>(q)] = true;
            worklist.push_back(q);
        }
    };
    for (std::size_t x = 0; x < protocol.input_variables().size(); ++x)
        add(protocol.input_state(x));
    for (std::size_t q = 0; q < protocol.num_states(); ++q)
        if (protocol.leaders()[static_cast<StateId>(q)] > 0) add(static_cast<StateId>(q));

    auto fire_pair = [&](Protocol::PairId pair) {
        for (const TransitionId t : protocol.rules_for_pair_id(pair)) {
            const Transition& tr = protocol.transitions()[static_cast<std::size_t>(t)];
            add(tr.post1);
            add(tr.post2);
        }
    };
    while (!worklist.empty()) {
        const StateId q = worklist.back();
        worklist.pop_back();
        if (const Protocol::PairId self = protocol.self_pair(q); self != Protocol::kNoPair)
            fire_pair(self);
        for (const Protocol::PairNeighbor& nb : protocol.pair_neighbors(q))
            if (inside[static_cast<std::size_t>(nb.partner)]) fire_pair(nb.pair);
    }
    return inside;
}

/// True iff v = e_q is a sound invariant basis for unreachability of q:
/// no transition increases the count of q, and q is not possibly initial.
/// Computed for all states in one O(|T|) pass.
std::vector<bool> singleton_invariant_states(const Protocol& protocol) {
    std::vector<bool> eligible(protocol.num_states(), true);
    for (const Transition& tr : protocol.transitions()) {
        // Δt(q) > 0 for exactly the states appearing more often among the
        // posts than among the pres; tally the ≤ 4 involved states.
        const StateId involved[4] = {tr.pre1, tr.pre2, tr.post1, tr.post2};
        for (const StateId q : involved) {
            int delta = 0;
            if (tr.post1 == q) ++delta;
            if (tr.post2 == q) ++delta;
            if (tr.pre1 == q) --delta;
            if (tr.pre2 == q) --delta;
            if (delta > 0) eligible[static_cast<std::size_t>(q)] = false;
        }
    }
    for (std::size_t x = 0; x < protocol.input_variables().size(); ++x)
        eligible[static_cast<std::size_t>(protocol.input_state(x))] = false;
    for (std::size_t q = 0; q < protocol.num_states(); ++q)
        if (protocol.leaders()[static_cast<StateId>(q)] > 0) eligible[q] = false;
    return eligible;
}

/// Pass 1 (exact): generators of the cone {v ∈ N^Q : v·Δt ≤ 0 ∀t},
/// filtered to the input-vanishing, claim-bearing ones.  Row t of the
/// system is −Δt, so A·v ≥ 0 ⇔ v·Δt ≤ 0.
std::vector<std::vector<std::int64_t>> cone_invariants(const Protocol& protocol,
                                                       const HilbertOptions& hilbert) {
    HomogeneousSystem system;
    system.num_vars = protocol.num_states();
    system.rows.reserve(protocol.num_transitions());
    for (const Transition& tr : protocol.transitions()) {
        std::vector<std::int64_t> row(system.num_vars, 0);
        ++row[static_cast<std::size_t>(tr.pre1)];
        ++row[static_cast<std::size_t>(tr.pre2)];
        --row[static_cast<std::size_t>(tr.post1)];
        --row[static_cast<std::size_t>(tr.post2)];
        system.rows.push_back(std::move(row));
    }
    std::vector<std::vector<std::int64_t>> generators =
        generating_basis_inequalities(system, hilbert);
    // Keep the generators that vanish on every input state (so v·IC(m) is
    // the constant v·L) *and* claim at least one state unreachable
    // (∃q: v(q) > v·L) — the rest are conservation laws with no
    // unreachability content.
    std::vector<std::vector<std::int64_t>> claiming;
    for (auto& v : generators) {
        bool input_zero = true;
        for (std::size_t x = 0; x < protocol.input_variables().size() && input_zero; ++x)
            input_zero = v[static_cast<std::size_t>(protocol.input_state(x))] == 0;
        if (!input_zero) continue;
        __int128 initial = 0;
        for (std::size_t q = 0; q < protocol.num_states(); ++q)
            initial += static_cast<__int128>(v[q]) *
                       static_cast<__int128>(protocol.leaders()[static_cast<StateId>(q)]);
        bool claims = false;
        for (std::size_t q = 0; q < protocol.num_states() && !claims; ++q)
            claims = static_cast<__int128>(v[q]) > initial;
        if (claims) claiming.push_back(std::move(v));
    }
    return claiming;
}

}  // namespace

Analysis analyze_protocol(const Protocol& protocol, const AnalysisOptions& options) {
    Analysis analysis;
    const std::size_t num_states = protocol.num_states();
    analysis.unreachable.assign(num_states, false);
    analysis.dead.assign(protocol.num_transitions(), false);

    auto note = [&](Severity severity, const char* code, std::string message, StateId state = -1,
                    TransitionId transition = -1) {
        analysis.diagnostics.push_back(
            Diagnostic{severity, code, std::move(message), state, transition});
    };

    // --- pass 2 first: the closure certificate is the canonical base
    // certificate (index 0), so dead/consensus references stay stable.
    {
        Certificate closure;
        closure.kind = CertificateKind::closure;
        closure.inside = reachable_support_closure(protocol);
        analysis.certificates.push_back(std::move(closure));
    }

    // --- pass 1: invariant certificates.
    std::vector<std::vector<std::int64_t>> invariants;
    if (num_states <= options.cone_state_cap) {
        try {
            invariants = cone_invariants(protocol, options.hilbert);
            analysis.cone_inference_ran = true;
        } catch (const std::length_error&) {
            note(Severity::note, "invariant-budget",
                 "cone inference exceeded its Hilbert budget; falling back to singleton "
                 "invariants (results stay sound, just weaker)");
        }
    }
    if (!analysis.cone_inference_ran) {
        const std::vector<bool> singles = singleton_invariant_states(protocol);
        for (std::size_t q = 0; q < num_states; ++q) {
            if (!singles[q]) continue;
            std::vector<std::int64_t> v(num_states, 0);
            v[q] = 1;
            invariants.push_back(std::move(v));
        }
    }
    if (invariants.size() > options.max_invariants) {
        note(Severity::note, "invariant-truncated",
             "emitting " + std::to_string(options.max_invariants) + " of " +
                 std::to_string(invariants.size()) + " inferred invariants");
        invariants.resize(options.max_invariants);
    }
    for (auto& v : invariants) {
        Certificate invariant;
        invariant.kind = CertificateKind::invariant;
        invariant.coefficients = std::move(v);
        analysis.certificates.push_back(std::move(invariant));
    }

    // Combined unreachability, plus for each state the first certificate
    // proving it (the reference dead/consensus certificates cite).
    std::vector<std::size_t> proof_of(num_states, 0);
    std::vector<bool> proven(num_states, false);
    for (std::size_t c = 0; c < analysis.certificates.size(); ++c) {
        const std::vector<bool> claims =
            claimed_unreachable(analysis.certificates[c], protocol);
        for (std::size_t q = 0; q < num_states; ++q) {
            if (claims[q] && !proven[q]) {
                proven[q] = true;
                proof_of[q] = c;
            }
        }
    }
    analysis.unreachable = proven;

    // --- dead transitions: an unreachable pre-state can never be occupied.
    for (std::size_t t = 0; t < protocol.num_transitions(); ++t) {
        const Transition& tr = protocol.transitions()[t];
        const StateId pre = analysis.unreachable[static_cast<std::size_t>(tr.pre1)] ? tr.pre1
                            : analysis.unreachable[static_cast<std::size_t>(tr.pre2)]
                                ? tr.pre2
                                : StateId{-1};
        if (pre < 0) continue;
        analysis.dead[t] = true;
        Certificate dead;
        dead.kind = CertificateKind::dead;
        dead.transition = static_cast<TransitionId>(t);
        dead.state = pre;
        dead.refs.push_back(proof_of[static_cast<std::size_t>(pre)]);
        analysis.certificates.push_back(std::move(dead));
    }

    // --- pass 3: consensus refutation.
    for (int b = 0; b <= 1; ++b) {
        bool covered = true;
        std::vector<std::size_t> refs;
        for (std::size_t q = 0; q < num_states && covered; ++q) {
            if (protocol.output(static_cast<StateId>(q)) != b) continue;
            if (!analysis.unreachable[q]) {
                covered = false;
                break;
            }
            refs.push_back(proof_of[q]);
        }
        if (!covered) continue;
        std::sort(refs.begin(), refs.end());
        refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
        analysis.consensus_refuted[static_cast<std::size_t>(b)] = true;
        Certificate consensus;
        consensus.kind = CertificateKind::consensus;
        consensus.output = b;
        consensus.refs = std::move(refs);
        analysis.certificates.push_back(std::move(consensus));
    }

    // --- pass 4: lints.
    for (std::size_t q = 0; q < num_states; ++q) {
        if (analysis.unreachable[q])
            note(Severity::note, "unreachable-state",
                 "state '" + protocol.state_name(static_cast<StateId>(q)) +
                     "' is unreachable from every initial configuration",
                 static_cast<StateId>(q));
    }
    for (std::size_t t = 0; t < protocol.num_transitions(); ++t) {
        if (!analysis.dead[t]) continue;
        const Transition& tr = protocol.transitions()[t];
        const StateId pre =
            analysis.unreachable[static_cast<std::size_t>(tr.pre1)] ? tr.pre1 : tr.pre2;
        note(Severity::note, "dead-transition",
             "transition " + std::to_string(t) + " can never fire (pre-state '" +
                 protocol.state_name(pre) + "' is unreachable)",
             -1, static_cast<TransitionId>(t));
    }
    for (int b = 0; b <= 1; ++b) {
        if (analysis.consensus_refuted[static_cast<std::size_t>(b)])
            note(Severity::warning, "output-unreachable",
                 "no reachable configuration can have consensus " + std::to_string(b) +
                     " — every input converges to " + std::to_string(1 - b) +
                     " if it converges at all");
    }
    // Trap lint (sim/traps.hpp): an empty output trap W_b means the
    // simulation engine's trap-based stable-consensus detector can never
    // certify output b; only silence can then witness stabilization.
    for (int b = 0; b <= 1; ++b) {
        if (analysis.consensus_refuted[static_cast<std::size_t>(b)]) continue;
        const std::vector<bool> trap = compute_output_trap(protocol, b, TrapCompute::worklist);
        if (std::find(trap.begin(), trap.end(), true) == trap.end())
            note(Severity::warning, "trap-empty",
                 "the output trap W_" + std::to_string(b) +
                     " is empty: trap-based stable-consensus detection can never certify "
                     "output " +
                     std::to_string(b));
    }
    for (std::size_t pair = 0; pair < protocol.nonsilent_pairs().size(); ++pair) {
        const auto rules = protocol.rules_for_pair_id(static_cast<Protocol::PairId>(pair));
        if (rules.size() > 1) {
            const auto [p, q] = protocol.nonsilent_pairs()[pair];
            note(Severity::note, "nondeterministic-pair",
                 "pair {" + protocol.state_name(p) + ", " + protocol.state_name(q) + "} has " +
                     std::to_string(rules.size()) + " rules (nondeterministic)",
                 p);
        }
    }
    for (std::size_t q = 0; q < num_states; ++q) {
        if (protocol.leaders()[static_cast<StateId>(q)] <= 0) continue;
        if (protocol.self_pair(static_cast<StateId>(q)) != Protocol::kNoPair) continue;
        bool inert = true;
        for (const Protocol::PairNeighbor& nb :
             protocol.pair_neighbors(static_cast<StateId>(q))) {
            if (!analysis.unreachable[static_cast<std::size_t>(nb.partner)]) {
                inert = false;
                break;
            }
        }
        if (inert)
            note(Severity::warning, "inert-leader",
                 "leader state '" + protocol.state_name(static_cast<StateId>(q)) +
                     "' can never participate in a non-silent interaction",
                 static_cast<StateId>(q));
    }

    return analysis;
}

}  // namespace ppsc::analyze
