// Independent re-verification of analysis certificates.
//
// The checker shares *no* code with the inference in analyze/analyze.cpp:
// it validates each certificate by direct arithmetic over the protocol —
// dotting invariants against transition displacements recomputed from the
// raw transition endpoints, walking every transition against a claimed
// closure, resolving cross-references and re-deriving what each referenced
// certificate actually proves.  A certificate list is accepted only if
// every certificate in it is individually sound and every reference lands
// on a base certificate that proves exactly the claim it is cited for.
// This is the trusted half of the analyzer's soundness story: the inference
// may use arbitrarily clever machinery, but nothing it emits is believed
// until this file has re-checked it from scratch.
#pragma once

#include <span>
#include <string>

#include "analyze/certificate.hpp"
#include "core/protocol.hpp"

namespace ppsc::analyze {

struct CheckReport {
    bool ok = true;
    /// Index of the first failing certificate (meaningless when ok).
    std::size_t failed_index = 0;
    /// Human-readable reason for the first failure (empty when ok).
    std::string error;
};

/// Re-verifies every certificate in `certificates` against `protocol` from
/// scratch.  References (`refs`) are resolved within the same list; a
/// reference to an out-of-range index, to a non-base certificate, or to a
/// base certificate that does not prove the cited claim fails the check.
CheckReport check_certificates(const Protocol& protocol,
                               std::span<const Certificate> certificates);

}  // namespace ppsc::analyze
