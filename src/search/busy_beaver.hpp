// Empirical busy-beaver search (Definition 1 of the paper).
//
// BB(n) is the largest η such that some leaderless n-state protocol
// computes x ≥ η.  The paper brackets BB(n) between Ω(2^n) (Theorem 2.2)
// and 2^((2n+2)!) (Theorem 5.9); neither side is constructive for small n,
// so this module *measures*: it enumerates every deterministic n-state
// single-input protocol (up to state renaming), verifies each candidate
// exhaustively on all inputs up to a cutoff, and reports the largest
// threshold realised.
//
// Honest scope: the verifier checks inputs 2..max_input, so a reported
// threshold η means "behaves exactly like x ≥ η on every checked input".
// The enumeration covers deterministic protocols with the input mapped to
// state 0 — every protocol is isomorphic to one of that form, and
// determinism only shrinks the search space (a nondeterministic busy
// beaver may in principle beat the deterministic record).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "verify/verifier.hpp"

namespace ppsc::search {

struct SearchOptions {
    /// Verify candidate thresholds on inputs 2..max_input.
    AgentCount max_input = 12;
    /// Per-input reachability node budget; exceeding it skips the protocol
    /// (counted in budget_skipped, never silently mis-reported).
    std::size_t max_nodes_per_graph = 100'000;
    /// 0 = exhaustive enumeration; otherwise test this many random
    /// candidates (needed from n = 4 up, where the space has 10^10 tables).
    std::uint64_t sample_limit = 0;
    std::uint64_t seed = 0xbeefcafe;
    /// Two-phase mode (PR 6): screen each canonical candidate on the
    /// simulation fast path first and build reachability graphs only for
    /// survivors.  Screening is sound falsification (see verify/verifier.hpp)
    /// so the reported thresholds, histogram, and witness are identical to a
    /// screen-free run; only the cost profile changes.  This is what makes
    /// sampled sweeps feasible at state counts whose dense per-candidate
    /// verification was the bottleneck.
    bool screen = false;
    ScreeningOptions screening;
    /// Zero-simulation pre-screen (the StaticScreen stage): run the static
    /// analyzer (analyze/analyze.hpp) on each canonical candidate before
    /// any simulation or reachability work, and drop candidates whose
    /// acceptance is statically refuted — every output-1 state proven
    /// unreachable by a linear-invariant or interaction-closure
    /// certificate.  Sound: such a candidate's every reachable
    /// configuration has consensus 0, so its exact infer_threshold is
    /// guaranteed nullopt and verdicts/histogram/witness are identical to
    /// an unscreened run (asserted in tests/analyze_test.cpp).
    bool static_screen = false;
};

struct SearchOutcome {
    std::size_t n = 0;
    std::uint64_t enumerated = 0;          ///< candidate encodings generated
    std::uint64_t canonical = 0;           ///< survivors of symmetry reduction
    std::uint64_t threshold_protocols = 0; ///< verified threshold behaviours
    std::uint64_t budget_skipped = 0;      ///< skipped on verification budget
    std::uint64_t static_refuted = 0;      ///< refuted by static analysis (no simulation)
    std::uint64_t screened_out = 0;        ///< refuted by simulation screening
    AgentCount best_eta = 0;               ///< empirical BB(n)
    std::string best_protocol_text;        ///< description of a witness
    /// histogram[η] = number of canonical protocols computing x ≥ η.
    std::vector<std::pair<AgentCount, std::uint64_t>> eta_histogram;
    bool exhaustive = true;                ///< false when sampling
};

/// Runs the search for n-state protocols.  Throws std::invalid_argument if
/// n < 2, or if n > 3 with sample_limit == 0 (exhaustive enumeration above
/// n = 3 is astronomically infeasible and surely a caller mistake).
SearchOutcome busy_beaver_search(std::size_t n, const SearchOptions& options = {});

}  // namespace ppsc::search
