#include "search/busy_beaver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>

#include "analyze/analyze.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ppsc::search {

namespace {

/// A candidate encoding: deterministic total transition table over
/// unordered pairs plus an output bitmask.  Input variable at state 0.
struct Encoding {
    std::size_t n = 0;
    std::vector<std::uint16_t> table;  // pair index -> successor pair index
    std::uint32_t outputs = 0;         // bit q = output of state q

    bool operator==(const Encoding&) const = default;
};

std::size_t pair_index(std::size_t p, std::size_t q) {
    // p <= q.
    return q * (q + 1) / 2 + p;
}

/// Decodes a pair index back to (p, q) with p <= q.  Closed-form inverse of
/// the triangular layout k = q(q+1)/2 + p: q = ⌊(√(8k+1) − 1)/2⌋, computed
/// in floating point and corrected by at most one step either way (the
/// sqrt can land a hair off for k near a triangular number; the index
/// range here — uint16 table entries — is far inside double's exact-integer
/// window, so one correction step suffices).  The seed-era decoder scanned
/// rows linearly, an O(n) cost paid inside every permutation of every
/// candidate's canonicity check.
std::pair<std::size_t, std::size_t> pair_of_index(std::size_t index, std::size_t n) {
    std::size_t q = static_cast<std::size_t>(
        (std::sqrt(8.0 * static_cast<double>(index) + 1.0) - 1.0) / 2.0);
    while (q * (q + 1) / 2 > index) --q;
    while ((q + 1) * (q + 2) / 2 <= index) ++q;
    const std::size_t p = index - q * (q + 1) / 2;
    PPSC_DASSERT(p <= q);
    PPSC_DASSERT(q < n);
    (void)n;
    return {p, q};
}

/// Applies a state permutation to an encoding (perm[q] = new name of q).
Encoding permuted(const Encoding& encoding, const std::vector<std::size_t>& perm) {
    const std::size_t n = encoding.n;
    Encoding result;
    result.n = n;
    result.table.assign(encoding.table.size(), 0);
    for (std::size_t q = 0; q < n; ++q) {
        if ((encoding.outputs >> q) & 1u) result.outputs |= 1u << perm[q];
    }
    for (std::size_t q = 0; q < n; ++q) {
        for (std::size_t p = 0; p <= q; ++p) {
            const auto [r, s] = pair_of_index(encoding.table[pair_index(p, q)], n);
            const std::size_t new_p = std::min(perm[p], perm[q]);
            const std::size_t new_q = std::max(perm[p], perm[q]);
            const std::size_t new_r = std::min(perm[r], perm[s]);
            const std::size_t new_s = std::max(perm[r], perm[s]);
            result.table[pair_index(new_p, new_q)] =
                static_cast<std::uint16_t>(pair_index(new_r, new_s));
        }
    }
    return result;
}

/// Canonical = lexicographically minimal among renamings fixing state 0
/// (the input state).
bool is_canonical(const Encoding& encoding) {
    std::vector<std::size_t> perm(encoding.n);
    std::iota(perm.begin(), perm.end(), 0);
    // Permute states 1..n-1 only.
    std::vector<std::size_t> rest(perm.begin() + 1, perm.end());
    do {
        std::copy(rest.begin(), rest.end(), perm.begin() + 1);
        const Encoding other = permuted(encoding, perm);
        if (std::tie(other.outputs, other.table) < std::tie(encoding.outputs, encoding.table))
            return false;
    } while (std::next_permutation(rest.begin(), rest.end()));
    return true;
}

Protocol build_protocol(const Encoding& encoding) {
    ProtocolBuilder b;
    for (std::size_t q = 0; q < encoding.n; ++q)
        b.add_state("q" + std::to_string(q), (encoding.outputs >> q) & 1u);
    b.set_input("x", 0);
    for (std::size_t q = 0; q < encoding.n; ++q) {
        for (std::size_t p = 0; p <= q; ++p) {
            const auto [r, s] = pair_of_index(encoding.table[pair_index(p, q)], encoding.n);
            b.add_transition(static_cast<StateId>(p), static_cast<StateId>(q),
                             static_cast<StateId>(r), static_cast<StateId>(s));
        }
    }
    return std::move(b).build();
}

}  // namespace

SearchOutcome busy_beaver_search(std::size_t n, const SearchOptions& options) {
    if (n < 2) throw std::invalid_argument("busy_beaver_search: n must be >= 2");
    const std::size_t num_pairs = n * (n + 1) / 2;
    // Encoding capacity guards: the output mask is a uint32 bitmask indexed
    // by state (enumeration shifts 1u << n), and table entries are uint16
    // pair indices.  Both hold with astronomic slack for any enumerable n,
    // but the limits are structural, so enforce rather than assume them.
    PPSC_CHECK_MSG(n < 32, "busy_beaver_search: output bitmask is 32 bits wide");
    PPSC_CHECK(num_pairs <= std::numeric_limits<std::uint16_t>::max());
    if (n > 3 && options.sample_limit == 0)
        throw std::invalid_argument(
            "busy_beaver_search: exhaustive search beyond n = 3 is infeasible; set "
            "sample_limit");

    SearchOutcome outcome;
    outcome.n = n;
    outcome.exhaustive = options.sample_limit == 0;

    ReachabilityOptions reach;
    reach.max_nodes = options.max_nodes_per_graph;

    std::map<AgentCount, std::uint64_t> histogram;

    auto consider = [&](const Encoding& encoding) {
        ++outcome.enumerated;
        if (!is_canonical(encoding)) return;
        ++outcome.canonical;
        const Protocol protocol = build_protocol(encoding);
        // Phase 0 (optional): the StaticScreen stage — zero-simulation
        // refutation by certificate.  If every output-1 state is proven
        // unreachable, every reachable configuration has consensus 0, so
        // the exact infer_threshold below would return nullopt; dropping
        // the candidate here changes cost, never verdicts.
        if (options.static_screen) {
            // Linear-time analysis only (no cone completion): the candidates
            // are leaderless, where every invariant claim is subsumed by the
            // closure certificate anyway — the cone would add per-candidate
            // Hilbert cost and zero extra refutations.
            analyze::AnalysisOptions screen_options;
            screen_options.cone_state_cap = 0;
            const analyze::Analysis analysis =
                analyze::analyze_protocol(protocol, screen_options);
            if (analysis.consensus_refuted[1]) {
                ++outcome.static_refuted;
                return;
            }
        }
        const Verifier verifier(protocol, reach);
        // Phase 1 (optional): cheap randomized falsification.  Sound — a
        // refuted candidate's exact infer_threshold is guaranteed nullopt
        // (verify/verifier.hpp), so skipping it changes nothing but cost.
        if (options.screen &&
            verifier.screening_refutes_threshold(options.max_input, options.screening)) {
            ++outcome.screened_out;
            return;
        }
        std::optional<AgentCount> eta;
        try {
            eta = verifier.infer_threshold(options.max_input);
        } catch (const std::length_error&) {
            ++outcome.budget_skipped;
            return;
        }
        if (!eta) return;
        // x >= eta must stay accepted up to the horizon, which
        // infer_threshold guarantees; thresholds at the very horizon are
        // indistinguishable from "accept nothing below max_input+1", so
        // only count eta strictly below the horizon.
        if (*eta >= options.max_input) return;
        ++outcome.threshold_protocols;
        ++histogram[*eta];
        if (*eta > outcome.best_eta) {
            outcome.best_eta = *eta;
            outcome.best_protocol_text = protocol.to_text();
        }
    };

    if (outcome.exhaustive) {
        // All output masks except all-0 / all-1 (those accept or reject
        // everything and cannot realise a threshold >= 2 anyway... all-1
        // realises "x >= 2" trivially: keep it, drop only all-0).
        std::uint64_t total_tables = 1;
        for (std::size_t i = 0; i < num_pairs; ++i) total_tables *= num_pairs;
        for (std::uint32_t outputs = 1; outputs < (1u << n); ++outputs) {
            Encoding encoding;
            encoding.n = n;
            encoding.outputs = outputs;
            encoding.table.assign(num_pairs, 0);
            for (std::uint64_t code = 0; code < total_tables; ++code) {
                std::uint64_t rest = code;
                for (std::size_t i = 0; i < num_pairs; ++i) {
                    encoding.table[i] = static_cast<std::uint16_t>(rest % num_pairs);
                    rest /= num_pairs;
                }
                consider(encoding);
            }
        }
    } else {
        Rng rng(options.seed);
        for (std::uint64_t trial = 0; trial < options.sample_limit; ++trial) {
            Encoding encoding;
            encoding.n = n;
            encoding.outputs =
                static_cast<std::uint32_t>(1 + rng.below((1u << n) - 1));  // not all-0
            encoding.table.resize(num_pairs);
            for (std::size_t i = 0; i < num_pairs; ++i)
                encoding.table[i] = static_cast<std::uint16_t>(rng.below(num_pairs));
            consider(encoding);
        }
    }

    outcome.eta_histogram.assign(histogram.begin(), histogram.end());
    return outcome;
}

}  // namespace ppsc::search
