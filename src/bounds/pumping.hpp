// The Theorem 4.5 proof pipeline, executable (Lemmas 4.1 and 4.2).
//
// The paper's argument for the Ackermannian bound:
//   1. Lemma 4.2 — from every input i a stable configuration C_i ∈ SC is
//      reachable, and the C_i can be chosen coherently (C_i + j·x →* C_{i+j}).
//   2. Dickson's lemma — the sequence C_2, C_3, … contains an ordered pair
//      C_i ≤ C_j (i < j).
//   3. Lemma 4.1 — such a pair yields a *pumping certificate*: IC(i + λ(j−i))
//      stabilises to the same verdict for all λ, so the protocol's
//      threshold η satisfies η ≤ i.
//
// This module runs the pipeline on a concrete protocol: it computes the
// stable configurations C_i exactly (bottom-SCC consensus members), finds
// the first Dickson pair, checks the certificate's pumping claim on a few
// λ, and reports the bound η ≤ i it certifies — the proof of Theorem 4.5
// acting on real protocols instead of in the abstract.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/protocol.hpp"
#include "verify/reachability.hpp"

namespace ppsc::bounds {

struct PumpingCertificate {
    AgentCount a = 0;                ///< Lemma 4.1's a: certified η ≤ a
    AgentCount b = 0;                ///< pumping period (j − i)
    Config stable_low{0};            ///< C_a  (≤ C_{a+b})
    Config stable_high{0};           ///< C_{a+b}
    int verdict = 0;                 ///< the consensus both stabilise to
    /// Ordered pairs that failed the semantic pumping re-check before this
    /// one: such pairs satisfy C_i ≤ C_j but not Lemma 4.1's shared-basis-
    /// element side condition — the reason the lemma needs it.
    std::size_t candidates_rejected = 0;
};

struct PumpingOptions {
    AgentCount max_input = 16;       ///< horizon for the C_i sequence
    int check_lambdas = 2;           ///< how many pumped inputs to re-verify
    ReachabilityOptions reachability;
    /// Backend for the stable-configuration selection (and, via
    /// `reachability.compute`, the graph construction itself): `sparse`
    /// aggregates per-component consensus and least member in one pass over
    /// the nodes; `reference` is the seed-era per-component rescan.  Both
    /// are result-identical (asserted in tests/analysis_sparse_test.cpp).
    ClosureCompute compute = ClosureCompute::sparse;
};

/// Runs the pipeline.  Returns nullopt if no ordered pair of stable
/// configurations appears below the horizon (then the horizon was too
/// small — Dickson guarantees one eventually).  Throws
/// std::invalid_argument for protocols without exactly one input variable,
/// and std::length_error if a reachability budget is exhausted.
std::optional<PumpingCertificate> find_pumping_certificate(const Protocol& protocol,
                                                           const PumpingOptions& options = {});

/// The stable configuration C_i the pipeline selects for one input:
/// the lexicographically least configuration of the least-index consensus
/// bottom SCC reachable from IC(i); nullopt if no bottom SCC is a
/// consensus (ill-specified input).
std::optional<Config> stable_configuration_for_input(const Protocol& protocol, AgentCount input,
                                                     const ReachabilityOptions& options = {},
                                                     ClosureCompute compute = ClosureCompute::sparse);

}  // namespace ppsc::bounds
