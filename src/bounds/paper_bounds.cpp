#include "bounds/paper_bounds.hpp"

#include <algorithm>
#include <sstream>

#include "protocols/threshold.hpp"

namespace ppsc::bounds {

BigNat small_basis_exponent(std::size_t n) {
    return BigNat(2) * BigNat::factorial(2 * n + 1) + BigNat(1);
}

LogNum small_basis_beta(std::size_t n) {
    return LogNum::power_of_two(small_basis_exponent(n));
}

std::optional<BigNat> small_basis_beta_exact(std::size_t n, std::uint64_t max_bits) {
    const BigNat exponent = small_basis_exponent(n);
    if (exponent > BigNat(max_bits)) return std::nullopt;
    return BigNat::power_of_two(exponent.to_u64());
}

LogNum theta(std::size_t n) {
    return LogNum::power_of_two(BigNat::factorial(2 * n + 2));
}

BigNat max_transitions(std::size_t n) {
    // n(n+1)/2 pre-pairs, each with n(n+1)/2 − 1 non-silent successors.
    const BigNat p = BigNat(static_cast<std::uint64_t>(n) * (n + 1) / 2);
    return p * (p - BigNat(1));
}

LogNum worst_case_xi(std::size_t n) {
    // ξ ≤ 2(2n⁴+1)^n, the estimate used in the proof of Theorem 5.9.
    const std::uint64_t n4 = static_cast<std::uint64_t>(n) * n * n * n;
    return LogNum::from_u64(2) * LogNum::from_u64(2 * n4 + 1).pow(static_cast<long double>(n));
}

Theorem59Chain theorem59_chain(std::size_t n) {
    Theorem59Chain chain;
    chain.n = n;
    chain.xi = worst_case_xi(n);
    chain.beta = small_basis_beta(n);
    const LogNum three_to_n = LogNum::from_u64(3).pow(static_cast<long double>(n));
    chain.lhs = chain.xi * LogNum::from_u64(n) * chain.beta * three_to_n;
    chain.rhs = theta(n);
    chain.holds = chain.rhs.is_infinite() || !(chain.lhs > chain.rhs);
    return chain;
}

Theorem59Chain theorem59_chain_for(const Protocol& protocol) {
    const std::size_t n = protocol.num_states();
    Theorem59Chain chain;
    chain.n = n;
    // Actual ξ of the protocol: 2(2|T|+1)^|Q|.
    chain.xi = LogNum::from_u64(2) *
               LogNum::from_u64(2 * protocol.num_transitions() + 1)
                   .pow(static_cast<long double>(n));
    chain.beta = small_basis_beta(n);
    const LogNum three_to_n = LogNum::from_u64(3).pow(static_cast<long double>(n));
    chain.lhs = chain.xi * LogNum::from_u64(n) * chain.beta * three_to_n;
    chain.rhs = theta(n);
    chain.holds = chain.rhs.is_infinite() || !(chain.lhs > chain.rhs);
    return chain;
}

AgentCount BusyBeaverLower::best() const noexcept {
    return std::max({unary_eta, binary_eta, collector_eta});
}

BusyBeaverLower busy_beaver_lower(std::size_t n) {
    if (n < 2) throw std::invalid_argument("busy_beaver_lower: n must be >= 2");
    BusyBeaverLower lower;
    lower.n = n;
    lower.unary_eta = static_cast<AgentCount>(n) - 1;
    lower.binary_eta = n >= 2 && n - 2 < 62 ? (AgentCount{1} << (n - 2)) : 0;
    // Largest η whose collector protocol fits in n states.  The state count
    // is k + popcount(η) + 2 for η ≥ 2 (k = bit length − 1), so for each k
    // the best η packs its allowed popcount into the top bits.
    AgentCount best_collector =
        protocols::collector_threshold_states(1) <= n ? 1 : 0;
    for (std::size_t k = 0; k <= 38; ++k) {
        if (k + 3 > n) break;
        const std::size_t popcount_budget = std::min<std::size_t>(n - 2 - k, k + 1);
        const AgentCount all_ones = (AgentCount{2} << k) - 1;  // 2^(k+1) − 1
        const auto clear = static_cast<AgentCount>(k + 1 - popcount_budget);
        const AgentCount eta = (all_ones >> clear) << clear;
        if (protocols::collector_threshold_states(eta) <= n)
            best_collector = std::max(best_collector, eta);
    }
    lower.collector_eta = best_collector;
    return lower;
}

BusyBeaverBracket busy_beaver_bracket(std::size_t n, AgentCount empirical_eta) {
    BusyBeaverBracket bracket;
    bracket.n = n;
    bracket.empirical_eta = empirical_eta;
    bracket.construction_lower = busy_beaver_lower(n).best();
    bracket.upper = theta(n);
    bracket.reaches_construction = empirical_eta >= bracket.construction_lower;
    bracket.below_upper = bracket.upper.is_infinite() ||
                          !(LogNum::from_u64(empirical_eta) > bracket.upper);
    return bracket;
}

LogNum bbl_lower(std::size_t n) {
    // Ω(2^(2^n)) from [12]; for n ≥ ~60 even the exponent leaves u64.
    return LogNum::power_of_two(BigNat::power_of_two(n));
}

std::string bbl_upper_description(std::size_t n, std::size_t leaders) {
    std::ostringstream os;
    os << "BBL(" << n << ") < F_{" << leaders << ",theta(" << n << ")}(" << n
       << ") at level F_omega of the Fast Growing Hierarchy (Theorem 4.5), "
       << "with theta(" << n << ") = " << theta(n).to_string();
    return os.str();
}

}  // namespace ppsc::bounds
