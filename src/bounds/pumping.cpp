#include "bounds/pumping.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/check.hpp"

namespace ppsc::bounds {

namespace {

/// True iff every configuration of `component` is a b-consensus for a
/// single shared b; returns that b.
std::optional<int> component_consensus(const ReachabilityGraph& graph,
                                       const ReachabilityGraph::SccResult& scc,
                                       std::int32_t component) {
    std::optional<int> verdict;
    for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
        if (scc.component_of[node] != component) continue;
        const auto value = graph.protocol().consensus_output(
            graph.config(static_cast<NodeId>(node)));
        if (!value) return std::nullopt;
        if (!verdict) verdict = value;
        if (*verdict != *value) return std::nullopt;
    }
    return verdict;
}

}  // namespace

std::optional<Config> stable_configuration_for_input(const Protocol& protocol, AgentCount input,
                                                     const ReachabilityOptions& options,
                                                     ClosureCompute compute) {
    const Config roots[] = {protocol.initial_config(input)};
    const ReachabilityGraph graph = ReachabilityGraph::explore(protocol, roots, options);
    const auto scc = graph.compute_sccs();

    // Deterministic choice: the least component id that is a consensus
    // bottom SCC, then the lexicographically least member configuration.
    if (compute == ClosureCompute::sparse) {
        // One pass over the nodes aggregates, per bottom component, both
        // the consensus verdict (2 = no member seen, −1 = mixed or
        // non-consensus, 0/1 = agreed so far) and the lexicographically
        // least member — instead of the reference's per-component rescans,
        // which are Θ(components · nodes) on graphs with many bottom SCCs.
        constexpr NodeId kNoNode = -1;
        std::vector<std::int8_t> value(static_cast<std::size_t>(scc.num_components), 2);
        std::vector<NodeId> least(static_cast<std::size_t>(scc.num_components), kNoNode);
        for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
            const auto component = static_cast<std::size_t>(scc.component_of[node]);
            if (!scc.is_bottom[component]) continue;
            const Config& config = graph.config(static_cast<NodeId>(node));
            const std::optional<int> member = graph.protocol().consensus_output(config);
            const std::int8_t v = member ? static_cast<std::int8_t>(*member) : std::int8_t{-1};
            if (value[component] == 2)
                value[component] = v;
            else if (value[component] != v)
                value[component] = -1;
            if (least[component] == kNoNode ||
                config.counts() < graph.config(least[component]).counts())
                least[component] = static_cast<NodeId>(node);
        }
        for (std::int32_t component = 0; component < scc.num_components; ++component) {
            const auto c = static_cast<std::size_t>(component);
            if (!scc.is_bottom[c] || value[c] < 0 || value[c] == 2) continue;
            return graph.config(least[c]);
        }
        return std::nullopt;
    }

    for (std::int32_t component = 0; component < scc.num_components; ++component) {
        if (!scc.is_bottom[static_cast<std::size_t>(component)]) continue;
        if (!component_consensus(graph, scc, component)) continue;
        std::optional<Config> best;
        for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
            if (scc.component_of[node] != component) continue;
            const Config& config = graph.config(static_cast<NodeId>(node));
            if (!best || config.counts() < best->counts()) best = config;
        }
        return best;
    }
    return std::nullopt;
}

std::optional<PumpingCertificate> find_pumping_certificate(const Protocol& protocol,
                                                           const PumpingOptions& options) {
    if (protocol.input_variables().size() != 1)
        throw std::invalid_argument(
            "find_pumping_certificate: protocol must have one input variable");

    // Lemma 4.2's sequence C_2, C_3, …, materialised exactly.
    std::vector<std::pair<AgentCount, Config>> stable_sequence;
    const AgentCount start = protocol.is_leaderless()
                                 ? 2
                                 : std::max<AgentCount>(0, 2 - protocol.leaders().size());
    for (AgentCount i = start; i <= options.max_input; ++i) {
        const auto stable =
            stable_configuration_for_input(protocol, i, options.reachability, options.compute);
        if (stable) stable_sequence.emplace_back(i, *stable);
    }

    // Dickson scan in index order; accept the first ordered pair whose
    // pumping claim verifies semantically.  Pairs C_i ≤ C_j that fail the
    // re-check are exactly those missing Lemma 4.1's shared-basis-element
    // side condition (e.g. two rejecting configurations below a threshold
    // — pumping past the threshold flips the verdict).
    std::size_t rejected = 0;
    for (std::size_t lo = 0; lo < stable_sequence.size(); ++lo) {
        for (std::size_t hi = lo + 1; hi < stable_sequence.size(); ++hi) {
            const auto& [i, c_low] = stable_sequence[lo];
            const auto& [j, c_high] = stable_sequence[hi];
            if (!c_low.leq(c_high)) continue;
            const auto verdict_low = protocol.consensus_output(c_low);
            const auto verdict_high = protocol.consensus_output(c_high);
            PPSC_CHECK(verdict_low.has_value() && verdict_high.has_value());
            if (*verdict_low != *verdict_high) {
                ++rejected;
                continue;
            }

            // Lemma 4.1's conclusion, re-checked semantically: the pumped
            // inputs a + λb stabilise to the same verdict.  Check at least
            // check_lambdas periods AND past the horizon by one period, so
            // spurious below-threshold pairs (whose verdict flips beyond
            // the pair) cannot slip through.
            const AgentCount period = j - i;
            const AgentCount horizon_lambdas = (options.max_input - i) / period + 1;
            const AgentCount lambdas =
                std::max<AgentCount>(options.check_lambdas, horizon_lambdas);
            bool verified = true;
            for (AgentCount lambda = 1; lambda <= lambdas && verified; ++lambda) {
                const AgentCount pumped = i + lambda * period;
                const auto stable = stable_configuration_for_input(
                    protocol, pumped, options.reachability, options.compute);
                if (!stable || protocol.consensus_output(*stable) != *verdict_low)
                    verified = false;
            }
            if (!verified) {
                ++rejected;
                continue;
            }

            PumpingCertificate certificate;
            certificate.a = i;
            certificate.b = j - i;
            certificate.stable_low = c_low;
            certificate.stable_high = c_high;
            certificate.verdict = *verdict_low;
            certificate.candidates_rejected = rejected;
            return certificate;
        }
    }
    return std::nullopt;
}

}  // namespace ppsc::bounds
