// The paper's quantitative bounds as executable formulas.
//
//   * β(n)  — small-basis constant 2^(2(2n+1)!+1) (Definition 3);
//   * ϑ(n)  — basis-size bound 2^((2n+2)!) (Lemma 3.2);
//   * ξ(P)  — Pottier constant 2(2|T|+1)^|Q| (Definition 6; in
//             diophantine/realisable.hpp for concrete protocols, here in
//             worst-case-over-n form);
//   * Theorem 5.9 — η ≤ ξ·n·β·3^n ≤ 2^((2n+2)!) for leaderless protocols;
//   * Theorem 2.2 — BB(n) ∈ Ω(2^n), BBL(n) ∈ Ω(2^(2^n)) (lower bounds via
//     explicit constructions, cited from [12]);
//   * Theorem 4.5 — BBL(n) < F_{ℓ,ϑ(n)} at level F_ω (symbolic; evaluated
//     with saturation in wqo/fast_growing.hpp).
//
// Everything astronomical is carried in LogNum; exact BigNat variants are
// provided where the bit count is physically materialisable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/protocol.hpp"
#include "support/bignat.hpp"
#include "support/lognum.hpp"

namespace ppsc::bounds {

/// Exponent of β: 2·(2n+1)! + 1, exact.
BigNat small_basis_exponent(std::size_t n);

/// β(n) = 2^(2(2n+1)!+1) in log-domain (saturates to inf around n ≥ 8).
LogNum small_basis_beta(std::size_t n);

/// β(n) exactly, when the result fits in max_bits bits (n ≤ 4 by default).
std::optional<BigNat> small_basis_beta_exact(std::size_t n,
                                             std::uint64_t max_bits = 1u << 23);

/// ϑ(n) = 2^((2n+2)!) — Lemma 3.2's bound on the number of basis elements,
/// which coincides with Theorem 5.9's final bound.
LogNum theta(std::size_t n);

/// Worst-case number of non-silent transitions of an n-state protocol:
/// each of the n(n+1)/2 pre-pairs may map to any of the n(n+1)/2 result
/// pairs (minus the silent one each).
BigNat max_transitions(std::size_t n);

/// Worst-case Pottier constant over n-state protocols, following the
/// paper's estimate ξ ≤ 2(2n⁴+1)^n (it uses |T| ≤ n⁴).
LogNum worst_case_xi(std::size_t n);

/// The two sides of Theorem 5.9 and whether the inequality holds.
struct Theorem59Chain {
    std::size_t n = 0;
    LogNum xi;          ///< worst-case ξ
    LogNum beta;        ///< β(n)
    LogNum lhs;         ///< ξ·n·β·3^n
    LogNum rhs;         ///< 2^((2n+2)!)
    bool holds = false; ///< lhs ≤ rhs (or rhs saturated)
};

/// Evaluates the chain with the paper's worst-case ξ.
Theorem59Chain theorem59_chain(std::size_t n);

/// Evaluates the chain with the given protocol's actual ξ and n.
Theorem59Chain theorem59_chain_for(const Protocol& protocol);

/// Theorem 2.2 lower-bound witnesses (leaderless): the largest η our
/// constructions reach with at most n states.
struct BusyBeaverLower {
    std::size_t n = 0;
    AgentCount unary_eta = 0;      ///< unary family: η = n − 1
    AgentCount binary_eta = 0;     ///< P'_k family: η = 2^(n−2)
    AgentCount collector_eta = 0;  ///< best collector_threshold fit
    AgentCount best() const noexcept;
};

/// Computes the construction-based lower bounds for BB(n).  n ≥ 2.
BusyBeaverLower busy_beaver_lower(std::size_t n);

/// Theorem 2.2 with leaders: BBL(n) ∈ Ω(2^(2^n)) — the cited bound of
/// [12], as a LogNum.
LogNum bbl_lower(std::size_t n);

/// An empirical BB(n) measurement (search/busy_beaver.hpp) placed between
/// the paper's two sides: the constructive lower bound of Theorem 2.2 and
/// the 2^((2n+2)!) upper bound of Theorem 5.9.  Consistency demands
/// construction_lower ≤ empirical_eta ≤ upper whenever the search was
/// exhaustive; `reaches_construction` flags searches that found (at least)
/// the constructive witness, `below_upper` that the measurement respects
/// Theorem 5.9.
struct BusyBeaverBracket {
    std::size_t n = 0;
    AgentCount empirical_eta = 0;      ///< measured best η
    AgentCount construction_lower = 0; ///< busy_beaver_lower(n).best()
    LogNum upper;                      ///< ϑ(n) = 2^((2n+2)!)
    bool reaches_construction = false; ///< empirical_eta ≥ construction_lower
    bool below_upper = false;          ///< empirical_eta ≤ upper
};

/// Brackets a measured busy-beaver value between the paper's bounds. n ≥ 2.
BusyBeaverBracket busy_beaver_bracket(std::size_t n, AgentCount empirical_eta);

/// Human-readable statement of the Theorem 4.5 upper bound for BBL(n).
std::string bbl_upper_description(std::size_t n, std::size_t leaders);

}  // namespace ppsc::bounds
