// Stable configuration sets (Section 3 of the paper).
//
// Definition 2: a configuration C is b-stable if every configuration
// reachable from C has output b (all agents in b-output states).  SC_b is
// the set of b-stable configurations, SC = SC_0 ∪ SC_1.
//
// Computation: transitions preserve population size, so within the size-N
// slice C is b-stable iff C cannot reach Bad_b = { C' : some agent of C'
// outputs ¬b } — one backward reachability from Bad_b per slice, then
// complement.  Bad_b is seeded from the sparse support of each node (an
// agent outside O⁻¹(b) is visible in the support), and the backward
// reachability runs the ClosureCompute machinery of verify/reachability.hpp
// — sparse reverse-CSR worklist by default, the seed-era dense formulation
// as a swappable reference asserted identical in
// tests/analysis_sparse_test.cpp.
//
// Lemma 3.1 says SC_b is downward closed; Lemma 3.2 says it has a basis
// (B,S) — finitely many "seed plus pumpable directions" pieces — of norm at
// most β = 2^(2(2n+1)!+1).  This module computes the bounded part of SC_b
// exactly, checks downward closure, and extracts an *empirical* basis whose
// norms the experiments compare against β (which is astronomically loose).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/protocol.hpp"
#include "verify/reachability.hpp"

namespace ppsc {

enum class Stability : std::uint8_t {
    kNeither,  ///< some reachable configuration breaks both consensuses
    kStable0,  ///< ∈ SC_0
    kStable1,  ///< ∈ SC_1
};

/// A basis element (B, S): the claim B + N^S ⊆ SC_b (Section 3).
struct BasisElement {
    Config base;                  ///< B
    std::vector<StateId> pump;    ///< S — pumpable directions
    AgentCount norm() const noexcept;  ///< ∥B∥∞
};

/// Exact stable sets for all population sizes 2..max_population.
///
/// Slices are computed *lazily*, on the first query that touches their
/// population size (a stability() lookup, stable_configs(), or one of the
/// all-slice reports below).  Memory bound: a materialised size-N slice
/// holds its C(N + |Q| − 1, |Q| − 1) configurations, the successor lists,
/// and one Stability byte per node — the total footprint is Σ over the
/// populations actually touched, not over all of [2, max_population] as
/// the seed-era eager constructor materialised.  stable_counts(),
/// downward_closure_violation() and empirical_basis() quantify over every
/// slice and therefore force them all.
///
/// Not thread-safe: lazy materialisation mutates internal caches even
/// through const queries.
class StableAnalysis {
public:
    /// Validates the inputs; no slice is built until first use.  Queries
    /// throw std::length_error if a slice exceeds the node budget.
    /// `compute` selects the closure machinery for every slice this
    /// analysis builds: successor enumeration and backward closure both run
    /// sparse (CSR) or both run the dense reference.
    StableAnalysis(const Protocol& protocol, AgentCount max_population,
                   ReachabilityOptions options = {},
                   ClosureCompute compute = ClosureCompute::sparse);

    const Protocol& protocol() const noexcept { return protocol_; }
    AgentCount max_population() const noexcept { return max_population_; }
    ClosureCompute compute() const noexcept { return compute_; }

    /// Stability of a configuration with 2 ≤ |C| ≤ max_population.
    /// Throws std::invalid_argument outside that range.
    Stability stability(const Config& config) const;

    bool is_stable(const Config& config, int b) const {
        const Stability s = stability(config);
        return (b == 0 && s == Stability::kStable0) || (b == 1 && s == Stability::kStable1);
    }

    /// All b-stable configurations of one slice.
    std::vector<Config> stable_configs(AgentCount population, int b) const;

    /// Number of b-stable configurations per slice (forces all slices).
    std::vector<std::pair<AgentCount, std::size_t>> stable_counts(int b) const;

    /// Lemma 3.1 check over the computed region: removing one agent from a
    /// b-stable configuration (population permitting) stays b-stable.
    /// Returns a violating configuration if any — expected nullopt.
    /// Forces all slices.
    std::optional<Config> downward_closure_violation() const;

    /// Empirical basis of SC_b over the computed region.  A state q is
    /// accepted as a pumpable direction of C if C + j·q stays b-stable for
    /// every j that keeps the size within max_population (at least
    /// `min_pump_margin` steps must be checkable).  Elements subsumed by
    /// another element are dropped.  This is an under/over-approximation
    /// pair discussed in DESIGN.md — exact bases need unbounded pumping.
    /// Forces all slices.
    std::vector<BasisElement> empirical_basis(int b, AgentCount min_pump_margin = 2) const;

private:
    /// Materialises (or returns the cached) slice of one population size.
    const ReachabilityGraph& slice(AgentCount population) const;
    const std::vector<Stability>& flags(AgentCount population) const;
    void ensure_slice(AgentCount population) const;
    void ensure_all_slices() const;

    // Owned copy: analyses outlive any temporary the caller built from.
    Protocol protocol_;
    AgentCount max_population_;
    ReachabilityOptions options_;
    ClosureCompute compute_;
    // Lazy caches, keyed by population size (see the class comment for the
    // memory bound).
    mutable std::map<AgentCount, ReachabilityGraph> slices_;
    mutable std::map<AgentCount, std::vector<Stability>> flags_;
};

}  // namespace ppsc
