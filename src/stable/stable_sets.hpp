// Stable configuration sets (Section 3 of the paper).
//
// Definition 2: a configuration C is b-stable if every configuration
// reachable from C has output b (all agents in b-output states).  SC_b is
// the set of b-stable configurations, SC = SC_0 ∪ SC_1.
//
// Computation: transitions preserve population size, so within the size-N
// slice C is b-stable iff C cannot reach Bad_b = { C' : some agent of C'
// outputs ¬b } — one backward reachability from Bad_b per slice, then
// complement.
//
// Lemma 3.1 says SC_b is downward closed; Lemma 3.2 says it has a basis
// (B,S) — finitely many "seed plus pumpable directions" pieces — of norm at
// most β = 2^(2(2n+1)!+1).  This module computes the bounded part of SC_b
// exactly, checks downward closure, and extracts an *empirical* basis whose
// norms the experiments compare against β (which is astronomically loose).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/protocol.hpp"
#include "verify/reachability.hpp"

namespace ppsc {

enum class Stability : std::uint8_t {
    kNeither,  ///< some reachable configuration breaks both consensuses
    kStable0,  ///< ∈ SC_0
    kStable1,  ///< ∈ SC_1
};

/// A basis element (B, S): the claim B + N^S ⊆ SC_b (Section 3).
struct BasisElement {
    Config base;                  ///< B
    std::vector<StateId> pump;    ///< S — pumpable directions
    AgentCount norm() const noexcept;  ///< ∥B∥∞
};

/// Exact stable sets for all population sizes 2..max_population.
class StableAnalysis {
public:
    /// Builds all slices up front.  Throws std::length_error if the total
    /// node budget is exceeded.
    StableAnalysis(const Protocol& protocol, AgentCount max_population,
                   ReachabilityOptions options = {});

    const Protocol& protocol() const noexcept { return protocol_; }
    AgentCount max_population() const noexcept { return max_population_; }

    /// Stability of a configuration with 2 ≤ |C| ≤ max_population.
    /// Throws std::invalid_argument outside that range.
    Stability stability(const Config& config) const;

    bool is_stable(const Config& config, int b) const {
        const Stability s = stability(config);
        return (b == 0 && s == Stability::kStable0) || (b == 1 && s == Stability::kStable1);
    }

    /// All b-stable configurations of one slice.
    std::vector<Config> stable_configs(AgentCount population, int b) const;

    /// Number of b-stable configurations per slice (for reporting).
    std::vector<std::pair<AgentCount, std::size_t>> stable_counts(int b) const;

    /// Lemma 3.1 check over the computed region: removing one agent from a
    /// b-stable configuration (population permitting) stays b-stable.
    /// Returns a violating configuration if any — expected nullopt.
    std::optional<Config> downward_closure_violation() const;

    /// Empirical basis of SC_b over the computed region.  A state q is
    /// accepted as a pumpable direction of C if C + j·q stays b-stable for
    /// every j that keeps the size within max_population (at least
    /// `min_pump_margin` steps must be checkable).  Elements subsumed by
    /// another element are dropped.  This is an under/over-approximation
    /// pair discussed in DESIGN.md — exact bases need unbounded pumping.
    std::vector<BasisElement> empirical_basis(int b, AgentCount min_pump_margin = 2) const;

private:
    const ReachabilityGraph& slice(AgentCount population) const;
    const std::vector<Stability>& flags(AgentCount population) const;

    // Owned copy: analyses outlive any temporary the caller built from.
    Protocol protocol_;
    AgentCount max_population_;
    std::map<AgentCount, ReachabilityGraph> slices_;
    std::map<AgentCount, std::vector<Stability>> flags_;
};

}  // namespace ppsc
