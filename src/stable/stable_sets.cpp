#include "stable/stable_sets.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/check.hpp"

namespace ppsc {

AgentCount BasisElement::norm() const noexcept {
    AgentCount norm = 0;
    for (const AgentCount c : base.counts()) norm = std::max(norm, c);
    return norm;
}

StableAnalysis::StableAnalysis(const Protocol& protocol, AgentCount max_population,
                               ReachabilityOptions options, ClosureCompute compute)
    : protocol_(protocol), max_population_(max_population), options_(options),
      compute_(compute) {
    if (max_population < 2)
        throw std::invalid_argument("StableAnalysis: max_population must be >= 2");
    // Successor enumeration inside the slices follows the analysis-wide
    // compute kind, whatever the caller left in `options`.
    options_.compute = compute_;
}

void StableAnalysis::ensure_slice(AgentCount population) const {
    if (population < 2 || population > max_population_)
        throw std::invalid_argument("StableAnalysis: population size out of computed range");
    if (slices_.contains(population)) return;

    // Build against the owned copy so the graphs' protocol pointer stays
    // valid for the analysis' lifetime.
    ReachabilityGraph graph = ReachabilityGraph::full_slice(protocol_, population, options_);

    // Bad_b = configurations with an agent whose output is not b — read off
    // each node's sparse support, never a 0..|Q| scan.
    std::vector<bool> bad[2];
    for (int b = 0; b < 2; ++b) bad[b].assign(graph.num_nodes(), false);
    for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
        const Config& config = graph.config(static_cast<NodeId>(node));
        for (const StateId q : config.support()) {
            bad[1 - protocol_.output(q)][node] = true;
        }
    }

    std::vector<Stability> slice_flags(graph.num_nodes(), Stability::kNeither);
    for (int b = 0; b < 2; ++b) {
        const std::vector<bool> can_reach_bad = graph.backward_closure(bad[b], compute_);
        for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
            if (!can_reach_bad[node]) {
                PPSC_CHECK(slice_flags[node] == Stability::kNeither);
                slice_flags[node] = b == 0 ? Stability::kStable0 : Stability::kStable1;
            }
        }
    }
    flags_.emplace(population, std::move(slice_flags));
    slices_.emplace(population, std::move(graph));
}

void StableAnalysis::ensure_all_slices() const {
    for (AgentCount population = 2; population <= max_population_; ++population)
        ensure_slice(population);
}

const ReachabilityGraph& StableAnalysis::slice(AgentCount population) const {
    ensure_slice(population);
    return slices_.find(population)->second;
}

const std::vector<Stability>& StableAnalysis::flags(AgentCount population) const {
    ensure_slice(population);
    return flags_.find(population)->second;
}

Stability StableAnalysis::stability(const Config& config) const {
    const ReachabilityGraph& graph = slice(config.size());
    const std::optional<NodeId> node = graph.find(config);
    PPSC_CHECK_MSG(node.has_value(), "full slice must contain every configuration of its size");
    return flags(config.size())[static_cast<std::size_t>(*node)];
}

std::vector<Config> StableAnalysis::stable_configs(AgentCount population, int b) const {
    const ReachabilityGraph& graph = slice(population);
    const std::vector<Stability>& slice_flags = flags(population);
    const Stability wanted = b == 0 ? Stability::kStable0 : Stability::kStable1;
    std::vector<Config> result;
    for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
        if (slice_flags[node] == wanted) result.push_back(graph.config(static_cast<NodeId>(node)));
    }
    return result;
}

std::vector<std::pair<AgentCount, std::size_t>> StableAnalysis::stable_counts(int b) const {
    ensure_all_slices();
    std::vector<std::pair<AgentCount, std::size_t>> counts;
    const Stability wanted = b == 0 ? Stability::kStable0 : Stability::kStable1;
    for (const auto& [population, slice_flags] : flags_) {
        counts.emplace_back(
            population,
            static_cast<std::size_t>(std::count(slice_flags.begin(), slice_flags.end(), wanted)));
    }
    return counts;
}

std::optional<Config> StableAnalysis::downward_closure_violation() const {
    ensure_all_slices();
    for (const auto& [population, slice_flags] : flags_) {
        if (population <= 2) continue;
        const ReachabilityGraph& graph = slice(population);
        for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
            const Stability s = slice_flags[node];
            if (s == Stability::kNeither) continue;
            const Config& config = graph.config(static_cast<NodeId>(node));
            for (const StateId q : config.support()) {
                Config smaller = config;
                smaller.add(q, -1);
                if (smaller.size() < 2) continue;
                if (stability(smaller) != s) return config;  // violation witness
            }
        }
    }
    return std::nullopt;
}

std::vector<BasisElement> StableAnalysis::empirical_basis(int b, AgentCount min_pump_margin) const {
    if (b != 0 && b != 1) throw std::invalid_argument("empirical_basis: b must be 0 or 1");
    if (min_pump_margin < 1)
        throw std::invalid_argument("empirical_basis: min_pump_margin must be >= 1");

    // Candidates: stable configurations small enough that pumping each
    // direction by min_pump_margin stays within the computed region.
    std::vector<BasisElement> candidates;
    for (AgentCount population = 2; population + min_pump_margin <= max_population_;
         ++population) {
        for (const Config& config : stable_configs(population, b)) {
            BasisElement element{config, {}};
            for (std::size_t q = 0; q < protocol_.num_states(); ++q) {
                bool pumpable = true;
                Config pumped = config;
                for (AgentCount j = 1; config.size() + j <= max_population_; ++j) {
                    pumped.add(static_cast<StateId>(q), 1);
                    if (!is_stable(pumped, b)) {
                        pumpable = false;
                        break;
                    }
                }
                if (pumpable) element.pump.push_back(static_cast<StateId>(q));
            }
            candidates.push_back(std::move(element));
        }
    }

    // Drop elements subsumed by another: (B,S) is subsumed by (B',S') when
    // B' ≤ B, S ⊆ S', and B − B' is supported on S'.
    auto subsumes = [](const BasisElement& big, const BasisElement& small) {
        if (!big.base.leq(small.base)) return false;
        if (big.base == small.base && big.pump == small.pump) return false;  // self
        if (!std::includes(big.pump.begin(), big.pump.end(), small.pump.begin(),
                           small.pump.end()))
            return false;
        const Config diff = small.base - big.base;
        for (const StateId q : diff.support()) {
            if (!std::binary_search(big.pump.begin(), big.pump.end(), q)) return false;
        }
        return true;
    };

    std::vector<BasisElement> basis;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        bool subsumed = false;
        for (std::size_t j = 0; j < candidates.size() && !subsumed; ++j) {
            if (i != j && subsumes(candidates[j], candidates[i])) subsumed = true;
        }
        if (!subsumed) basis.push_back(candidates[i]);
    }
    return basis;
}

}  // namespace ppsc
