// Downward-closed sets of configurations as unions of basis elements.
//
// Section 3 of the paper represents the (infinite, downward-closed) stable
// sets SC_b as finite unions ⋃ (B + N^S) of basis elements.  This module
// makes that representation a first-class value: membership, inclusion,
// union, normalisation, and the norm of Definition 3 — so the bounded
// empirical bases extracted by StableAnalysis can be manipulated and
// checked as the paper manipulates them on paper.
//
// Convention: an element (B, S) denotes the downward closure of B + N^S,
//   { C : C ≤ B + v for some v ∈ N^S },
// which is itself downward closed; finite unions of these are exactly the
// downward-closed sets of N^Q (the ideal decomposition).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "stable/stable_sets.hpp"

namespace ppsc {

/// A finite union of basis elements denoting a downward-closed set.
class DownwardClosedSet {
public:
    DownwardClosedSet() = default;
    explicit DownwardClosedSet(std::vector<BasisElement> elements);

    /// The set containing exactly the downward closure of one configuration.
    static DownwardClosedSet closure_of(const Config& config);

    bool empty() const noexcept { return elements_.empty(); }
    std::size_t num_elements() const noexcept { return elements_.size(); }
    const std::vector<BasisElement>& elements() const noexcept { return elements_; }

    /// Membership: C ≤ B + v for some element and v ∈ N^S.
    bool contains(const Config& config) const;

    /// Is every configuration of `other` contained here?  Decidable via
    /// element-wise checks: (B', S') ⊆ ⋃ᵢ (Bᵢ, Sᵢ) is checked by testing
    /// the element's dominating corner against each candidate (sound and
    /// complete when S' ⊆ Sᵢ for the covering element — conservative
    /// otherwise; see DESIGN.md).
    bool covers(const DownwardClosedSet& other) const;

    /// Union (concatenate + normalise).
    DownwardClosedSet unified_with(const DownwardClosedSet& other) const;

    /// Removes elements subsumed by other elements.
    void normalise();

    /// max ∥B∥∞ over elements (the norm of Lemma 3.2).
    AgentCount norm() const noexcept;

    std::string to_string(std::span<const std::string> names = {}) const;

private:
    static bool element_contains(const BasisElement& element, const Config& config);
    static bool element_subsumes(const BasisElement& big, const BasisElement& small);

    std::vector<BasisElement> elements_;
};

}  // namespace ppsc
