#include "stable/downward.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace ppsc {

DownwardClosedSet::DownwardClosedSet(std::vector<BasisElement> elements)
    : elements_(std::move(elements)) {
    for (auto& element : elements_) std::sort(element.pump.begin(), element.pump.end());
    normalise();
}

DownwardClosedSet DownwardClosedSet::closure_of(const Config& config) {
    return DownwardClosedSet({BasisElement{config, {}}});
}

bool DownwardClosedSet::element_contains(const BasisElement& element, const Config& config) {
    if (config.num_states() != element.base.num_states()) return false;
    // Containment can only fail on states the configuration occupies, so
    // the check walks its sparse support instead of every state in 0..|Q|
    // (empty states trivially satisfy 0 ≤ base + pump).
    for (const StateId state : config.support()) {
        if (config[state] <= element.base[state]) continue;
        // Excess in a non-pumpable direction breaks containment.
        if (!std::binary_search(element.pump.begin(), element.pump.end(), state)) return false;
    }
    return true;
}

bool DownwardClosedSet::contains(const Config& config) const {
    return std::any_of(elements_.begin(), elements_.end(), [&](const BasisElement& element) {
        return element_contains(element, config);
    });
}

bool DownwardClosedSet::element_subsumes(const BasisElement& big, const BasisElement& small) {
    // (small.base + N^small.pump) ⊆ (big.base + N^big.pump) holds iff the
    // "corner" small.base is contained and every pump direction of small is
    // a pump direction of big.
    if (!element_contains(big, small.base)) return false;
    return std::includes(big.pump.begin(), big.pump.end(), small.pump.begin(),
                         small.pump.end());
}

bool DownwardClosedSet::covers(const DownwardClosedSet& other) const {
    return std::all_of(other.elements_.begin(), other.elements_.end(),
                       [&](const BasisElement& element) {
                           return std::any_of(elements_.begin(), elements_.end(),
                                              [&](const BasisElement& mine) {
                                                  return element_subsumes(mine, element);
                                              });
                       });
}

DownwardClosedSet DownwardClosedSet::unified_with(const DownwardClosedSet& other) const {
    std::vector<BasisElement> all = elements_;
    all.insert(all.end(), other.elements_.begin(), other.elements_.end());
    return DownwardClosedSet(std::move(all));
}

void DownwardClosedSet::normalise() {
    // Drop element i when some j subsumes it; in mutual-subsumption pairs
    // (semantically equal elements with different corners) keep the lower
    // index so exactly one representative survives.
    std::vector<BasisElement> kept;
    for (std::size_t i = 0; i < elements_.size(); ++i) {
        bool subsumed = false;
        for (std::size_t j = 0; j < elements_.size() && !subsumed; ++j) {
            if (i == j || !element_subsumes(elements_[j], elements_[i])) continue;
            if (element_subsumes(elements_[i], elements_[j]) && i < j) continue;
            subsumed = true;
        }
        if (!subsumed) kept.push_back(elements_[i]);
    }
    elements_ = std::move(kept);
}

AgentCount DownwardClosedSet::norm() const noexcept {
    AgentCount norm = 0;
    for (const auto& element : elements_) norm = std::max(norm, element.norm());
    return norm;
}

std::string DownwardClosedSet::to_string(std::span<const std::string> names) const {
    std::ostringstream os;
    bool first = true;
    for (const auto& element : elements_) {
        if (!first) os << " ∪ ";
        first = false;
        os << element.base.to_string(names) << "+N^{";
        for (std::size_t k = 0; k < element.pump.size(); ++k) {
            if (k > 0) os << ',';
            const auto q = static_cast<std::size_t>(element.pump[k]);
            if (q < names.size())
                os << names[q];
            else
                os << 'q' << q;
        }
        os << '}';
    }
    if (first) os << "∅";
    return os.str();
}

}  // namespace ppsc
