#include "wqo/dickson.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "support/check.hpp"

namespace ppsc {

namespace {

bool leq(const NatVec& a, const NatVec& b) {
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] > b[i]) return false;
    }
    return true;
}

}  // namespace

bool is_good_sequence(std::span<const NatVec> sequence) {
    for (std::size_t i = 0; i < sequence.size(); ++i) {
        for (std::size_t j = i + 1; j < sequence.size(); ++j) {
            if (leq(sequence[i], sequence[j])) return true;
        }
    }
    return false;
}

std::vector<NatVec> minimal_elements(std::span<const NatVec> vectors) {
    std::vector<NatVec> minimal;
    for (const NatVec& candidate : vectors) {
        bool dominated = false;
        for (const NatVec& other : vectors) {
            if (&other != &candidate && leq(other, candidate) && other != candidate) {
                dominated = true;
                break;
            }
        }
        if (!dominated &&
            std::find(minimal.begin(), minimal.end(), candidate) == minimal.end())
            minimal.push_back(candidate);
    }
    return minimal;
}

namespace {

/// Memoized search.  A position is (index i, antichain A of minimal chosen
/// vectors): the sequence may continue with any v with ∥v∥∞ ≤ i + δ that is
/// not above an element of A, and only the minimal elements matter for the
/// future.  Dickson's lemma guarantees every play is finite.
struct Search {
    int dimension;
    std::int64_t delta;
    std::uint64_t budget;
    std::uint64_t nodes = 0;
    bool exact = true;

    using Key = std::vector<std::int64_t>;  // [i, sorted antichain flattened]
    std::map<Key, std::size_t> memo{};
    // Best full witness reconstruction: store the chosen vector per state.
    std::map<Key, NatVec> choice{};

    Key encode(std::int64_t index, const std::vector<NatVec>& antichain) const {
        Key key{index};
        std::vector<NatVec> sorted = antichain;
        std::sort(sorted.begin(), sorted.end());
        for (const NatVec& v : sorted) key.insert(key.end(), v.begin(), v.end());
        return key;
    }

    std::size_t best_from(std::int64_t index, const std::vector<NatVec>& antichain) {
        const Key key = encode(index, antichain);
        if (auto it = memo.find(key); it != memo.end()) return it->second;
        if (nodes >= budget) {
            exact = false;
            return 0;
        }
        ++nodes;

        std::size_t best = 0;
        NatVec best_choice;
        const std::int64_t bound = index + delta;
        NatVec candidate(static_cast<std::size_t>(dimension), 0);
        // Enumerate candidates in [0, bound]^d, skipping those above an
        // antichain element.
        auto enumerate = [&](auto&& self, std::size_t coordinate) -> void {
            if (coordinate == candidate.size()) {
                for (const NatVec& earlier : antichain) {
                    if (leq(earlier, candidate)) return;
                }
                std::vector<NatVec> extended;
                extended.reserve(antichain.size() + 1);
                // candidate is not above any element; it may be below some —
                // drop those to keep the antichain minimal.
                for (const NatVec& earlier : antichain) {
                    if (!leq(candidate, earlier)) extended.push_back(earlier);
                }
                extended.push_back(candidate);
                const std::size_t value = 1 + best_from(index + 1, extended);
                if (value > best) {
                    best = value;
                    best_choice = candidate;
                }
                return;
            }
            for (std::int64_t v = 0; v <= bound; ++v) {
                candidate[coordinate] = v;
                self(self, coordinate + 1);
            }
            candidate[coordinate] = 0;
        };
        enumerate(enumerate, 0);

        memo.emplace(key, best);
        if (!best_choice.empty()) choice.emplace(key, best_choice);
        return best;
    }

    /// Replays the memoized optimal choices to reconstruct a witness.
    std::vector<NatVec> witness() {
        std::vector<NatVec> sequence;
        std::int64_t index = 0;
        std::vector<NatVec> antichain;
        while (true) {
            const Key key = encode(index, antichain);
            auto it = choice.find(key);
            if (it == choice.end()) break;
            auto best_it = memo.find(key);
            if (best_it == memo.end() || best_it->second == 0) break;
            const NatVec& chosen = it->second;
            sequence.push_back(chosen);
            std::vector<NatVec> extended;
            for (const NatVec& earlier : antichain) {
                if (!leq(chosen, earlier)) extended.push_back(earlier);
            }
            extended.push_back(chosen);
            antichain = std::move(extended);
            ++index;
        }
        return sequence;
    }
};

}  // namespace

BadSequenceResult longest_controlled_bad_sequence(int dimension, std::int64_t delta,
                                                  const BadSequenceOptions& options) {
    if (dimension < 1)
        throw std::invalid_argument("longest_controlled_bad_sequence: dimension must be >= 1");
    if (delta < 0)
        throw std::invalid_argument("longest_controlled_bad_sequence: delta must be >= 0");

    Search search{dimension, delta, options.max_nodes};
    const std::size_t length = search.best_from(0, {});

    BadSequenceResult result;
    result.length = length;
    result.witness = search.witness();
    result.exact = search.exact;
    result.nodes_explored = search.nodes;
    PPSC_CHECK(!result.exact || result.witness.size() == result.length);
    return result;
}

}  // namespace ppsc
