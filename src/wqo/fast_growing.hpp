// The Fast Growing Hierarchy and Ackermann functions (Theorem 4.5).
//
// Theorem 4.5 bounds BBL(n) by a function at level F_ω of the hierarchy —
// values that explode past any fixed-precision number almost instantly.
// We evaluate with explicit saturation: SatNat carries "overflowed" as a
// first-class state, so experiments can print exact small values and
// honest "≥ cap" markers instead of silently wrapping.
//
//   F_0(x) = x + 1
//   F_{k+1}(x) = F_k^{x+1}(x)     ((x+1)-fold iteration)
//   F_ω(x) = F_x(x)
//
// The two-argument Ackermann–Péter function is provided for the classic
// inverse-Ackermann comparison in the experiments.
#pragma once

#include <cstdint>
#include <string>

namespace ppsc {

/// Saturating natural number: values above kCap become "saturated".
class SatNat {
public:
    static constexpr std::uint64_t kCap = 1ull << 62;

    SatNat() = default;
    explicit SatNat(std::uint64_t value) : value_(value), saturated_(value > kCap) {}
    static SatNat saturated() {
        SatNat s;
        s.saturated_ = true;
        return s;
    }

    bool is_saturated() const noexcept { return saturated_; }

    /// Value; meaningless when saturated (callers must check).
    std::uint64_t value() const noexcept { return value_; }

    SatNat operator+(const SatNat& rhs) const noexcept;
    SatNat operator*(const SatNat& rhs) const noexcept;

    std::string to_string() const;

private:
    std::uint64_t value_ = 0;
    bool saturated_ = false;
};

/// F_level(x) with saturation.  level ≥ 0, x ≥ 0.
SatNat fast_growing(std::uint64_t level, std::uint64_t x);

/// F_ω(x) = F_x(x).
SatNat fast_growing_omega(std::uint64_t x);

/// Ackermann–Péter A(m, n) with saturation.
SatNat ackermann(std::uint64_t m, std::uint64_t n);

/// Inverse Ackermann α(n): least k with A(k, k) ≥ n.  Tiny for any
/// physically meaningful n — the "roughly inverse-Ackermann" growth the
/// paper's Theorem 4.5 lower bound translates to.
int inverse_ackermann(std::uint64_t n);

}  // namespace ppsc
