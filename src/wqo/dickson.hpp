// Dickson's lemma and controlled bad sequences (Section 4 of the paper).
//
// (N^d, ≤) is a well-quasi-order: every infinite sequence contains an
// increasing pair (Lemma 4.3).  Bad sequences — those with no increasing
// pair i < j, v_i ≤ v_j — are therefore finite, and when the sequence is
// *controlled* (∥v_i∥∞ ≤ g(i) for a control function g) their maximal
// length is a concrete, computable number.  Lemma 4.4 cites the
// Figueira–Figueira–Schmitz–Schnoebelen bounds, which live at level F_ω of
// the Fast Growing Hierarchy; this module computes the exact maximal
// lengths for small dimensions and controls so the experiments can exhibit
// the explosive growth the theory predicts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ppsc {

using NatVec = std::vector<std::int64_t>;

/// True iff there exist i < j with v_i ≤ v_j componentwise ("good").
bool is_good_sequence(std::span<const NatVec> sequence);

/// ≤-minimal elements of a set (its canonical antichain).
std::vector<NatVec> minimal_elements(std::span<const NatVec> vectors);

struct BadSequenceResult {
    std::size_t length = 0;        ///< longest bad sequence found
    std::vector<NatVec> witness;   ///< a sequence attaining it
    bool exact = false;            ///< search completed without budget cuts
    std::uint64_t nodes_explored = 0;
};

struct BadSequenceOptions {
    std::uint64_t max_nodes = 50'000'000;  ///< DFS budget
};

/// Longest bad sequence v_0, v_1, … in N^dimension with ∥v_i∥∞ ≤ i + delta
/// (the linear control of Lemma 4.4 with g(i) = i + δ).  Exhaustive DFS;
/// `exact` is false if the node budget was exhausted (the length is then a
/// lower bound).  Throws std::invalid_argument if dimension < 1 or
/// delta < 0.
BadSequenceResult longest_controlled_bad_sequence(int dimension, std::int64_t delta,
                                                  const BadSequenceOptions& options = {});

}  // namespace ppsc
