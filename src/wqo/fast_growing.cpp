#include "wqo/fast_growing.hpp"

namespace ppsc {

SatNat SatNat::operator+(const SatNat& rhs) const noexcept {
    if (saturated_ || rhs.saturated_) return saturated();
    const std::uint64_t sum = value_ + rhs.value_;
    if (sum < value_ || sum > kCap) return saturated();
    return SatNat(sum);
}

SatNat SatNat::operator*(const SatNat& rhs) const noexcept {
    if (saturated_ || rhs.saturated_) return saturated();
    if (value_ == 0 || rhs.value_ == 0) return SatNat(0);
    if (value_ > kCap / rhs.value_) return saturated();
    return SatNat(value_ * rhs.value_);
}

std::string SatNat::to_string() const {
    if (saturated_) return ">=2^62";
    return std::to_string(value_);
}

SatNat fast_growing(std::uint64_t level, std::uint64_t x) {
    // Closed forms for the low levels — literal iteration of F_0 would take
    // Θ(x) steps, i.e. forever once values reach 2^40.
    switch (level) {
        case 0:  // F_0(x) = x + 1
            return SatNat(x) + SatNat(1);
        case 1:  // F_1(x) = 2x + 1
            return SatNat(2) * SatNat(x) + SatNat(1);
        case 2: {  // F_2(x) = 2^(x+1)·(x+1) − 1
            if (x + 1 >= 62) return SatNat::saturated();
            const SatNat value = SatNat(1ull << (x + 1)) * SatNat(x + 1);
            return value.is_saturated() ? value : SatNat(value.value() - 1);
        }
        default: {
            // F_{k+1}(x) = F_k^{x+1}(x); saturation cuts the iteration off
            // after at most a couple of steps for k ≥ 2.
            SatNat value(x);
            for (std::uint64_t i = 0; i <= x; ++i) {
                if (value.is_saturated()) return SatNat::saturated();
                value = fast_growing(level - 1, value.value());
            }
            return value;
        }
    }
}

SatNat fast_growing_omega(std::uint64_t x) {
    return fast_growing(x, x);
}

SatNat ackermann(std::uint64_t m, std::uint64_t n) {
    // Closed forms for the small rows keep the recursion shallow.
    switch (m) {
        case 0:
            return SatNat(n) + SatNat(1);
        case 1:
            return SatNat(n) + SatNat(2);
        case 2:
            return SatNat(2) * SatNat(n) + SatNat(3);
        case 3: {
            // A(3, n) = 2^{n+3} − 3.
            if (n + 3 >= 62) return SatNat::saturated();
            return SatNat((1ull << (n + 3)) - 3);
        }
        default: {
            // A(m, n) = A(m−1, A(m, n−1)).
            SatNat inner = n == 0 ? SatNat(1) : ackermann(m, n - 1);
            if (inner.is_saturated()) return SatNat::saturated();
            return ackermann(m - 1, inner.value());
        }
    }
}

int inverse_ackermann(std::uint64_t n) {
    for (int k = 0;; ++k) {
        const SatNat value = ackermann(static_cast<std::uint64_t>(k),
                                       static_cast<std::uint64_t>(k));
        if (value.is_saturated() || value.value() >= n) return k;
    }
}

}  // namespace ppsc
