#include "protocols/presburger.hpp"

#include <algorithm>
#include <stdexcept>

#include "protocols/compose.hpp"
#include "protocols/linear_threshold.hpp"
#include "protocols/modulo.hpp"
#include "support/check.hpp"

namespace ppsc::protocols {

namespace {

std::vector<std::int64_t> padded(const std::vector<std::int64_t>& coeffs, std::size_t arity) {
    std::vector<std::int64_t> result = coeffs;
    result.resize(arity, 0);
    return result;
}

Protocol compile_node(const Predicate& predicate, std::size_t arity) {
    switch (predicate.kind()) {
        case Predicate::Kind::kThreshold:
            return linear_threshold(padded(predicate.coefficients(), arity),
                                    predicate.constant());
        case Predicate::Kind::kModulo:
            return modulo_linear(padded(predicate.coefficients(), arity), predicate.modulus(),
                                 predicate.constant());
        case Predicate::Kind::kNot:
            return negate(compile_node(predicate.left(), arity));
        case Predicate::Kind::kAnd:
            return product(compile_node(predicate.left(), arity),
                           compile_node(predicate.right(), arity), combine_and());
        case Predicate::Kind::kOr:
            return product(compile_node(predicate.left(), arity),
                           compile_node(predicate.right(), arity), combine_or());
    }
    PPSC_UNREACHABLE();
}

std::size_t count_states(const Predicate& predicate, std::size_t arity) {
    switch (predicate.kind()) {
        case Predicate::Kind::kThreshold: {
            std::int64_t max_abs = 1;
            for (const std::int64_t a : predicate.coefficients())
                max_abs = std::max(max_abs, a < 0 ? -a : a);
            const std::int64_t c = predicate.constant();
            const std::int64_t big_a = std::max(max_abs, c < 0 ? -c : c);
            return static_cast<std::size_t>(2 * (2 * big_a + 1) + 2);
        }
        case Predicate::Kind::kModulo:
            return static_cast<std::size_t>(2 * predicate.modulus());
        case Predicate::Kind::kNot:
            return count_states(predicate.left(), arity);
        case Predicate::Kind::kAnd:
        case Predicate::Kind::kOr:
            return count_states(predicate.left(), arity) *
                   count_states(predicate.right(), arity);
    }
    PPSC_UNREACHABLE();
}

}  // namespace

Protocol compile_presburger(const Predicate& predicate) {
    const std::size_t arity = predicate.arity();
    if (arity == 0)
        throw std::invalid_argument("compile_presburger: predicate has no variables");
    return compile_node(predicate, arity);
}

std::size_t compiled_state_count(const Predicate& predicate) {
    return count_states(predicate, predicate.arity());
}

}  // namespace ppsc::protocols
