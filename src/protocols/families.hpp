// Registry of the named protocol families.
//
// One table drives everything that needs "all families by name": the
// `protocol_tool family` / `protocol_tool help` surface, its error
// messages, and the parser round-trip tests — so a family added here is
// automatically listed, buildable from the command line, and covered by
// the round-trip suite.  Adding a family to src/protocols/ without
// registering it here is the bug this file exists to prevent.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "core/protocol.hpp"

namespace ppsc::protocols {

/// One registered family: the registry name, its parameter list with the
/// accepted ranges, a one-line summary, and example parameters cheap
/// enough for tests and documentation to build.
struct ProtocolFamily {
    const char* name;          ///< registry name, e.g. "double_exp"
    int arity;                 ///< number of parameters build_family expects
    const char* params;        ///< parameter list for display, e.g. "<n>"
    const char* range;         ///< accepted ranges, e.g. "0 <= n <= 17"
    const char* summary;       ///< one-line description
    const char* example_args;  ///< space-separated cheap example, e.g. "2"
};

/// All registered families, in stable (documentation) order.
std::span<const ProtocolFamily> protocol_families();

/// Builds the family `name` from string parameters (as they arrive from a
/// command line).  Throws std::invalid_argument on an unknown name, a
/// missing/extra/non-numeric parameter, or a parameter outside the
/// family's documented range.
Protocol build_family(std::string_view name, std::span<const std::string> args);

/// Multi-line usage text: one line per family with parameters, ranges, and
/// summary (the body of `protocol_tool help`).
std::string family_usage();

}  // namespace ppsc::protocols
