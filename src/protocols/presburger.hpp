// Compiler from Presburger predicates to population protocols.
//
// Population protocols compute exactly the Presburger predicates (Angluin
// et al., [8] in the paper).  The constructive direction is realised here:
// every Predicate — a boolean combination of linear threshold and linear
// modulo atoms — compiles to a leaderless protocol via
//
//   threshold atom  →  linear_threshold        (cancellation protocol)
//   modulo atom     →  modulo_linear           (accumulator protocol)
//   ¬φ              →  negate(compile(φ))      (flip outputs)
//   φ ∧ ψ, φ ∨ ψ    →  product(compile(φ), compile(ψ), ∧/∨)
//
// The product multiplies state counts, making compiled protocols a prime
// source of the state-complexity question the paper studies: the compiler
// is *correct* but nowhere near *succinct* (cf. the O(polylog) bounds of
// [11, 12] that dedicated constructions achieve).
#pragma once

#include "core/predicate.hpp"
#include "core/protocol.hpp"

namespace ppsc::protocols {

/// Compiles `predicate` to a leaderless protocol over input variables
/// "x0".."x{arity-1}".  Throws std::invalid_argument if the predicate has
/// arity 0 or an atom exceeds the linear_threshold coefficient limits.
Protocol compile_presburger(const Predicate& predicate);

/// Number of states compile_presburger(predicate) will produce (products
/// multiply), without building it.
std::size_t compiled_state_count(const Predicate& predicate);

}  // namespace ppsc::protocols
