#include "protocols/majority.hpp"

namespace ppsc::protocols {

Protocol majority() {
    ProtocolBuilder b;
    const StateId A = b.add_state("A", 1);
    const StateId B = b.add_state("B", 0);
    const StateId a = b.add_state("a", 1);
    const StateId p = b.add_state("b", 0);
    b.set_input("A", A);
    b.set_input("B", B);
    b.add_transition(A, B, a, p);
    b.add_transition(A, p, A, a);
    b.add_transition(B, a, B, p);
    b.add_transition(a, p, p, p);
    return std::move(b).build();
}

}  // namespace ppsc::protocols
