// Double-exponential thresholds: the large-state-space workload (E11).
//
// Czerner's follow-up to the source paper ("Leaderless Population Protocols
// Decide Double-exponential Thresholds", arXiv:2204.02115) shows that the
// lower bound of the paper is tight: x ≥ 2^(2^n) is decidable with O(n)
// states.  This module provides the simulation workload that regime opens:
// *succinct counter agents* — every agent carries a power-of-two token that
// merges pairwise, and a collector walks down the set bits of η — deciding
// thresholds up to 2^(2^n), with |Q| = Θ(2^n) = Θ(log η) states.
//
// Honesty note (mirroring leader.hpp): this is the collector construction
// of collector_threshold lifted from int64 thresholds to arbitrary-precision
// η, i.e. the O(log η) succinctness of Blondin–Esparza–Jaax at thresholds
// double-exponential in n.  Czerner's O(n) = O(log log η) construction
// additionally needs phase clocks and restart machinery; what the engine
// needs from the family is the state-space blow-up itself: |Q| ≫ 10³ and —
// in the dense variant — millions of non-silent pairs, exactly the regime
// the pair-weight Fenwick sampler exists for.
//
// All protocols here are leaderless and single-input ("x"); small instances
// are exhaustively verified in the test suite against collector_threshold.
#pragma once

#include <cstdint>

#include "core/protocol.hpp"
#include "support/bignat.hpp"

namespace ppsc::protocols {

/// Hard cap on η's binary size.  The sparse rule table (RuleTable::sparse,
/// picked automatically past ~4k states) removed the Θ(|Q|²) memory wall
/// that used to cap this at ~8k bits; what remains is construction cost —
/// the builder emits Θ(k · #collectors) transitions, which for bit-dense η
/// is quadratic in the bit length.  2¹⁷ + 1 bits admits the flagship
/// double_exp_threshold(17) with |Q| = 2¹⁷ + 3 > 10⁵ states (exact powers
/// have no collectors, so those build in Θ(|Q|) transitions).
inline constexpr std::uint64_t kSuccinctThresholdMaxBits = (std::uint64_t{1} << 17) + 1;

/// Leaderless threshold protocol for arbitrary-precision η ≥ 1 with
/// Θ(log η) states (tokens t_0..t_k of value 2^i, collectors per set bit,
/// accepting epidemic).  Agrees with collector_threshold(η) for η in int64
/// range.  Throws std::invalid_argument on η < 1 or
/// η.bit_length() > kSuccinctThresholdMaxBits.
Protocol succinct_threshold(const BigNat& eta);

/// Number of states succinct_threshold(η) uses (without building it).
std::size_t succinct_threshold_states(const BigNat& eta);

/// η(n) = 2^(2^n), the double-exponential threshold family.
BigNat double_exp_eta(int n);

/// Decides x ≥ 2^(2^n) with 2^n + 3 states (the token chain reaches level
/// 2^n; any level-2^n token witnesses the threshold).  Builds in Θ(2^n)
/// transitions, so the sparse rule table carries it to n = 17
/// (|Q| = 131075).  Throws std::invalid_argument unless 0 ≤ n ≤ 17.
Protocol double_exp_threshold(int n);

/// Decides x ≥ 2^(2^n) − 1, the all-bits-set threshold: every bit of η
/// spawns a collector, giving ~2^(n+1) states and Θ(4^n) non-silent pairs —
/// the many-pair stress case for fired-step sampling.  The Θ(4^n)
/// *construction* keeps this variant capped below the flagship: throws
/// std::invalid_argument unless 1 ≤ n ≤ 13.
Protocol double_exp_threshold_dense(int n);

}  // namespace ppsc::protocols
