#include "protocols/leader.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace ppsc::protocols {

Protocol leader_threshold(AgentCount eta) {
    if (eta < 1) throw std::invalid_argument("leader_threshold: eta must be >= 1");

    ProtocolBuilder b;
    const StateId x = b.add_state("x", 0);
    const StateId z = b.add_state("z", 0);
    const StateId top = b.add_state("T", 1);
    std::vector<StateId> counter(static_cast<std::size_t>(eta));
    for (AgentCount j = 0; j < eta; ++j)
        counter[static_cast<std::size_t>(j)] = b.add_state("l" + std::to_string(j), 0);
    b.set_input("x", x);
    b.add_leaders(counter[0], 1);

    for (AgentCount j = 0; j + 1 < eta; ++j)
        b.add_transition(counter[static_cast<std::size_t>(j)], x,
                         counter[static_cast<std::size_t>(j) + 1], z);
    b.add_transition(counter[static_cast<std::size_t>(eta - 1)], x, top, top);
    for (std::size_t partner = 0; partner < b.num_states(); ++partner) {
        const auto y = static_cast<StateId>(partner);
        if (y != top) b.add_transition(top, y, top, top);
    }
    return std::move(b).build();
}

Protocol leader_counter_cascade(int base, int digits) {
    if (base < 2) throw std::invalid_argument("leader_counter_cascade: base must be >= 2");
    if (digits < 1) throw std::invalid_argument("leader_counter_cascade: digits must be >= 1");
    const double eta = std::pow(static_cast<double>(base), digits);
    if (eta > static_cast<double>(1 << 20))
        throw std::invalid_argument("leader_counter_cascade: base^digits too large");

    ProtocolBuilder b;
    const StateId x = b.add_state("x", 0);
    const StateId z = b.add_state("z", 0);
    const StateId top = b.add_state("T", 1);
    const StateId idle = b.add_state("idle", 0);
    // Controller increment modes, one per digit position.
    std::vector<StateId> inc(static_cast<std::size_t>(digits));
    for (int i = 0; i < digits; ++i)
        inc[static_cast<std::size_t>(i)] = b.add_state("inc" + std::to_string(i), 0);
    // Digit agents: digit i holding value v.
    std::vector<std::vector<StateId>> digit(static_cast<std::size_t>(digits));
    for (int i = 0; i < digits; ++i) {
        digit[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(base));
        for (int v = 0; v < base; ++v)
            digit[static_cast<std::size_t>(i)][static_cast<std::size_t>(v)] =
                b.add_state("d" + std::to_string(i) + "_" + std::to_string(v), 0);
    }
    b.set_input("x", x);
    b.add_leaders(idle, 1);
    for (int i = 0; i < digits; ++i) b.add_leaders(digit[static_cast<std::size_t>(i)][0], 1);

    // Absorb one input token, then run the carry chain.
    b.add_transition(idle, x, inc[0], z);
    for (int i = 0; i < digits; ++i) {
        for (int v = 0; v + 1 < base; ++v)
            b.add_transition(inc[static_cast<std::size_t>(i)],
                             digit[static_cast<std::size_t>(i)][static_cast<std::size_t>(v)], idle,
                             digit[static_cast<std::size_t>(i)][static_cast<std::size_t>(v) + 1]);
        const StateId full =
            digit[static_cast<std::size_t>(i)][static_cast<std::size_t>(base) - 1];
        if (i + 1 < digits) {
            b.add_transition(inc[static_cast<std::size_t>(i)], full,
                             inc[static_cast<std::size_t>(i) + 1],
                             digit[static_cast<std::size_t>(i)][0]);
        } else {
            b.add_transition(inc[static_cast<std::size_t>(i)], full, top, top);  // overflow
        }
    }
    for (std::size_t partner = 0; partner < b.num_states(); ++partner) {
        const auto y = static_cast<StateId>(partner);
        if (y != top) b.add_transition(top, y, top, top);
    }
    return std::move(b).build();
}

}  // namespace ppsc::protocols
