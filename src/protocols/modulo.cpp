#include "protocols/modulo.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace ppsc::protocols {

namespace {

Protocol build_modulo(const std::vector<std::int64_t>& input_values,
                      const std::vector<std::string>& input_names, std::int64_t m,
                      std::int64_t r);

}  // namespace

Protocol modulo(std::int64_t m, std::int64_t r) {
    if (m < 2) throw std::invalid_argument("modulo: modulus must be >= 2");
    if (r < 0 || r >= m) throw std::invalid_argument("modulo: remainder out of range");
    return build_modulo({1}, {"x"}, m, r);
}

Protocol modulo_linear(const std::vector<std::int64_t>& coeffs, std::int64_t m,
                       std::int64_t r) {
    if (m < 2) throw std::invalid_argument("modulo_linear: modulus must be >= 2");
    if (r < 0 || r >= m) throw std::invalid_argument("modulo_linear: remainder out of range");
    if (coeffs.empty()) throw std::invalid_argument("modulo_linear: no coefficients");
    std::vector<std::string> names;
    std::vector<std::int64_t> values;
    for (std::size_t j = 0; j < coeffs.size(); ++j) {
        names.push_back("x" + std::to_string(j));
        values.push_back(((coeffs[j] % m) + m) % m);
    }
    return build_modulo(values, names, m, r);
}

namespace {

Protocol build_modulo(const std::vector<std::int64_t>& input_values,
                      const std::vector<std::string>& input_names, std::int64_t m,
                      std::int64_t r) {
    ProtocolBuilder b;
    std::vector<StateId> acc(static_cast<std::size_t>(m));
    std::vector<StateId> follower(static_cast<std::size_t>(m));
    for (std::int64_t v = 0; v < m; ++v) {
        const int out = v == r ? 1 : 0;
        acc[static_cast<std::size_t>(v)] = b.add_state("u" + std::to_string(v), out);
        follower[static_cast<std::size_t>(v)] = b.add_state("f" + std::to_string(v), out);
    }
    for (std::size_t j = 0; j < input_names.size(); ++j)
        b.set_input(input_names[j], acc[static_cast<std::size_t>(input_values[j])]);

    for (std::int64_t v1 = 0; v1 < m; ++v1) {
        for (std::int64_t v2 = v1; v2 < m; ++v2) {
            const std::int64_t sum = (v1 + v2) % m;
            // Accumulators merge; the loser becomes a follower of the sum.
            b.add_transition(acc[static_cast<std::size_t>(v1)],
                             acc[static_cast<std::size_t>(v2)],
                             acc[static_cast<std::size_t>(sum)],
                             follower[static_cast<std::size_t>(sum)]);
        }
        for (std::int64_t w = 0; w < m; ++w) {
            if (w == v1) continue;  // already agreeing: silent
            b.add_transition(acc[static_cast<std::size_t>(v1)],
                             follower[static_cast<std::size_t>(w)],
                             acc[static_cast<std::size_t>(v1)],
                             follower[static_cast<std::size_t>(v1)]);
        }
    }
    return std::move(b).build();
}

}  // namespace

}  // namespace ppsc::protocols
