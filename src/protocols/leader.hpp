// Protocols with leaders.
//
// Leaders are auxiliary agents present in every initial configuration
// (the multiset L of the tuple (Q,T,L,X,I,O)).  Theorem 4.5 shows that
// with leaders the busy-beaver function can a priori reach Fast-Growing-
// Hierarchy magnitudes, and Theorem 2.2 (citing [12]) gives a
// doubly-exponential lower bound.  This module provides:
//
//   * leader_threshold(η)     — a simple counting leader: O(η) states.
//                               Not succinct; exercises the leader code
//                               paths end-to-end.
//   * leader_counter_cascade  — d chained base-c counters driven by one
//                               leader: computes x ≥ c^d with
//                               d·c + O(1) states, i.e. η = c^d with
//                               O(d·c) states.  With c fixed this is the
//                               classic "multiplying counting power"
//                               mechanism that leader constructions (e.g.
//                               [12]) push further; our family reaches
//                               exponential η, and EXPERIMENTS.md reports
//                               honestly that the 2^(2^n) family of [12]
//                               requires machinery beyond this cascade.
#pragma once

#include <cstdint>

#include "core/protocol.hpp"

namespace ppsc::protocols {

/// One leader counts input agents up to η, then starts an accepting
/// epidemic.  States: counters ℓ_0..ℓ_η, consumed token "d", accept "T",
/// input "x" — η + 4 states.  Throws std::invalid_argument if η < 1.
Protocol leader_threshold(AgentCount eta);

/// Cascade of `digits` base-`base` counters: the leader absorbs input
/// tokens; each absorption increments the least-significant counter with
/// carries; when the counter overflows past base^digits − 1, i.e. after
/// base^digits absorptions, the leader accepts.  Computes
/// x ≥ base^digits.  Throws std::invalid_argument unless base ≥ 2,
/// digits ≥ 1, and base^digits ≤ 2^20 (verification sanity bound).
Protocol leader_counter_cascade(int base, int digits);

}  // namespace ppsc::protocols
