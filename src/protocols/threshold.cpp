#include "protocols/threshold.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace ppsc::protocols {

Protocol unary_threshold(AgentCount eta) {
    if (eta < 1) throw std::invalid_argument("unary_threshold: eta must be >= 1");

    ProtocolBuilder b;
    std::vector<StateId> value(static_cast<std::size_t>(eta) + 1);
    for (AgentCount v = 0; v <= eta; ++v)
        value[static_cast<std::size_t>(v)] =
            b.add_state("v" + std::to_string(v), v == eta ? 1 : 0);
    b.set_input("x", value[1]);

    // a,b ↦ 0,(a+b) if a+b < η;  a,b ↦ η,η otherwise (Example 2.1).
    for (AgentCount a = 0; a <= eta; ++a) {
        for (AgentCount p = a; p <= eta; ++p) {
            const AgentCount sum = a + p;
            if (sum < eta) {
                b.add_transition(value[static_cast<std::size_t>(a)],
                                 value[static_cast<std::size_t>(p)], value[0],
                                 value[static_cast<std::size_t>(sum)]);
            } else {
                b.add_transition(value[static_cast<std::size_t>(a)],
                                 value[static_cast<std::size_t>(p)],
                                 value[static_cast<std::size_t>(eta)],
                                 value[static_cast<std::size_t>(eta)]);
            }
        }
    }
    return std::move(b).build();
}

Protocol binary_threshold_power(int k) {
    if (k < 0 || k > 40)
        throw std::invalid_argument("binary_threshold_power: k must be in [0, 40]");

    ProtocolBuilder b;
    const StateId zero = b.add_state("0", 0);
    std::vector<StateId> power(static_cast<std::size_t>(k) + 1);
    for (int i = 0; i <= k; ++i)
        power[static_cast<std::size_t>(i)] =
            b.add_state("2^" + std::to_string(i), i == k ? 1 : 0);
    b.set_input("x", power[0]);

    // 2^i, 2^i ↦ 0, 2^{i+1} for i < k;   a, 2^k ↦ 2^k, 2^k for all a.
    for (int i = 0; i < k; ++i)
        b.add_transition(power[static_cast<std::size_t>(i)], power[static_cast<std::size_t>(i)],
                         zero, power[static_cast<std::size_t>(i) + 1]);
    b.add_transition(zero, power[static_cast<std::size_t>(k)],
                     power[static_cast<std::size_t>(k)], power[static_cast<std::size_t>(k)]);
    for (int i = 0; i <= k; ++i)
        b.add_transition(power[static_cast<std::size_t>(i)], power[static_cast<std::size_t>(k)],
                         power[static_cast<std::size_t>(k)], power[static_cast<std::size_t>(k)]);
    return std::move(b).build();
}

namespace {

int top_bit(AgentCount value) {
    PPSC_CHECK(value > 0);
    int bit = 0;
    while ((AgentCount{1} << (bit + 1)) <= value) ++bit;
    return bit;
}

}  // namespace

std::size_t collector_threshold_states(AgentCount eta) {
    if (eta < 1) throw std::invalid_argument("collector_threshold_states: eta must be >= 1");
    if (eta == 1) return 2;
    const int k = top_bit(eta);
    std::size_t collectors = 0;
    // One collector state per set bit whose residual need is non-zero.
    for (int m = k; m >= 0; --m) {
        if (((eta >> m) & 1) != 0 && (eta % (AgentCount{1} << m)) > 0) ++collectors;
    }
    // z + tokens t_0..t_k + collectors + top.
    return 1 + static_cast<std::size_t>(k) + 1 + collectors + 1;
}

Protocol collector_threshold(AgentCount eta) {
    if (eta < 1) throw std::invalid_argument("collector_threshold: eta must be >= 1");
    if (eta >= (AgentCount{1} << 40))
        throw std::invalid_argument("collector_threshold: eta too large");

    if (eta == 1) {
        // 2-state detector: any agent triggers the accepting epidemic.
        ProtocolBuilder b;
        const StateId x = b.add_state("x", 0);
        const StateId top = b.add_state("T", 1);
        b.set_input("x", x);
        b.add_transition(x, x, top, top);
        b.add_transition(x, top, top, top);
        return std::move(b).build();
    }

    const int k = top_bit(eta);

    ProtocolBuilder b;
    const StateId z = b.add_state("z", 0);
    std::vector<StateId> token(static_cast<std::size_t>(k) + 1);
    for (int i = 0; i <= k; ++i) token[static_cast<std::size_t>(i)] =
        b.add_state("t" + std::to_string(i), 0);
    const StateId top = b.add_state("T", 1);

    // Collector state c_m exists for each set bit m of η whose residual
    // need r_m = η mod 2^m is non-zero.  c_m "holds" value η − r_m.
    std::vector<StateId> collector(static_cast<std::size_t>(k) + 1, -1);
    std::vector<AgentCount> need(static_cast<std::size_t>(k) + 1, 0);
    for (int m = k; m >= 0; --m) {
        if (((eta >> m) & 1) == 0) continue;
        const AgentCount r = eta % (AgentCount{1} << m);
        if (r == 0) continue;
        collector[static_cast<std::size_t>(m)] = b.add_state("c" + std::to_string(m), 0);
        need[static_cast<std::size_t>(m)] = r;
    }
    b.set_input("x", token[0]);

    // Token merging: t_i, t_i ↦ z, t_{i+1};  top tokens overflow to T.
    for (int i = 0; i < k; ++i)
        b.add_transition(token[static_cast<std::size_t>(i)], token[static_cast<std::size_t>(i)],
                         z, token[static_cast<std::size_t>(i) + 1]);
    b.add_transition(token[static_cast<std::size_t>(k)], token[static_cast<std::size_t>(k)], top,
                     top);  // 2^{k+1} > η

    // A top token starts collecting (or accepts outright if η = 2^k).
    // The partner is unchanged; every state can be the partner.
    const bool exact_power = (eta == (AgentCount{1} << k));
    const std::size_t num_states_now = b.num_states();
    for (std::size_t partner = 0; partner < num_states_now; ++partner) {
        const auto y = static_cast<StateId>(partner);
        if (y == token[static_cast<std::size_t>(k)]) continue;  // t_k,t_k handled above
        if (exact_power) {
            b.add_transition(token[static_cast<std::size_t>(k)], y, top, top);
        } else {
            b.add_transition(token[static_cast<std::size_t>(k)], y,
                             collector[static_cast<std::size_t>(k)], y);
        }
    }

    if (!exact_power) {
        // Collector absorption and completion.
        for (int m = k; m >= 0; --m) {
            if (collector[static_cast<std::size_t>(m)] < 0) continue;
            const StateId c = collector[static_cast<std::size_t>(m)];
            const AgentCount r = need[static_cast<std::size_t>(m)];
            for (int j = 0; j <= k; ++j) {
                const AgentCount tok = AgentCount{1} << j;
                if (tok >= r) {
                    // Witnessed (η − r) + 2^j ≥ η: accept.
                    b.add_transition(c, token[static_cast<std::size_t>(j)], top, top);
                } else if (j == top_bit(r)) {
                    const AgentCount rest = r - tok;
                    if (rest == 0) {
                        b.add_transition(c, token[static_cast<std::size_t>(j)], top, top);
                    } else {
                        PPSC_CHECK(collector[static_cast<std::size_t>(j)] >= 0);
                        b.add_transition(c, token[static_cast<std::size_t>(j)],
                                         collector[static_cast<std::size_t>(j)], z);
                    }
                }
                // Other tokens: silent (they wait to merge upward).
            }
        }
        // Two collectors each hold ≥ 2^k: combined ≥ 2^{k+1} > η.
        for (int m1 = 0; m1 <= k; ++m1) {
            if (collector[static_cast<std::size_t>(m1)] < 0) continue;
            for (int m2 = m1; m2 <= k; ++m2) {
                if (collector[static_cast<std::size_t>(m2)] < 0) continue;
                b.add_transition(collector[static_cast<std::size_t>(m1)],
                                 collector[static_cast<std::size_t>(m2)], top, top);
            }
        }
    }

    // Accepting epidemic.
    for (std::size_t partner = 0; partner < b.num_states(); ++partner) {
        const auto y = static_cast<StateId>(partner);
        if (y != top) b.add_transition(top, y, top, top);
    }
    return std::move(b).build();
}

}  // namespace ppsc::protocols
