// General linear threshold protocols: Σ aⱼ·xⱼ ≥ c with arbitrary integer
// coefficients (positive, negative, zero) and arbitrary constant.
//
// Together with linear modulo protocols and boolean composition this
// yields every Presburger predicate — the class population protocols
// compute exactly ([8] in the paper).
//
// Construction (value-conserving cancellation with revocable beliefs; in
// the spirit of Angluin et al. 2006 but engineered for clean bottom-SCC
// behaviour, and exhaustively model-checked in this repository's tests):
//
//   Let A = max(|c|, max|aⱼ|, 1).  Agents are either *holders* H(v, b) with
//   value v ∈ [−A, A] and belief b, or *followers* F(b).
//
//   H(u,·), H(v,·):  let w = u + v, b' = [w ≥ c]
//        |w| ≤ A  →  H(w, b'), F(b')          (mass merges, count drops)
//        w > A    →  H(A, b'), H(w − A, b')   (saturation split)
//        w < −A   →  H(−A, b'), H(w + A, b')
//   H(u, b), F(·) →  H(u, b), F(b)            (followers copy; beliefs are
//                                              recomputed ONLY from pair
//                                              sums — a lone holder's value
//                                              is partial information and
//                                              recomputing from it would
//                                              oscillate settled verdicts)
//   F, F          →  silent
//
//   Output = belief.  The total held value is conserved exactly (splits
//   redistribute, never truncate), so Σ aⱼxⱼ is an invariant.  Bottom SCCs
//   are: a single holder whose last combine stamped b = [T ≥ c] on it;
//   several holders whose every pair sums > A (then T > A ≥ c and every
//   recomputation yields 1); or the mirror case with every pair < −A
//   (then T < −A ≤ c, every recomputation yields 0).  In each, beliefs are
//   constant and agree with [Σ aⱼxⱼ ≥ c].
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/protocol.hpp"

namespace ppsc::protocols {

/// Builds the protocol for Σ coeffs[j]·x_j ≥ constant.  Input variables
/// are named "x0", "x1", … matching the coefficient indices.  Throws
/// std::invalid_argument if coeffs is empty or any |aⱼ| or |c| exceeds 64
/// (the state count is 2(2A+1)+2; gigantic atoms belong in a different
/// encoding).
Protocol linear_threshold(const std::vector<std::int64_t>& coeffs, std::int64_t constant);

}  // namespace ppsc::protocols
