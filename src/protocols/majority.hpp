// The classic 4-state majority protocol.
//
// Decides x_A > x_B (strict majority of A agents; ties output 0).  This is
// the motivating example of the paper's introduction: a Presburger
// predicate with a tiny protocol.  States: active A, B and passive a, b.
//
//   A,B ↦ a,b   (actives cancel)
//   A,b ↦ A,a   (survivors convert passives)
//   B,a ↦ B,b
//   a,b ↦ b,b   (passive tie-break towards "no majority")
//
// Exhaustively verified against Predicate::majority() in the tests.
#pragma once

#include "core/protocol.hpp"

namespace ppsc::protocols {

/// Builds the 4-state majority protocol with input variables "A", "B".
Protocol majority();

}  // namespace ppsc::protocols
