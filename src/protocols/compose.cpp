#include "protocols/compose.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace ppsc::protocols {

namespace {

/// Successor options of the unordered pair {p,q} in one component:
/// the explicit rules plus the implicit silent transition.
std::vector<std::pair<StateId, StateId>> component_options(const Protocol& protocol, StateId p,
                                                           StateId q) {
    std::vector<std::pair<StateId, StateId>> options;
    options.emplace_back(p, q);  // silent
    for (const TransitionId rule : protocol.rules_for_pair(p, q)) {
        const Transition& t = protocol.transitions()[static_cast<std::size_t>(rule)];
        options.emplace_back(t.post1, t.post2);
    }
    return options;
}

}  // namespace

Protocol product(const Protocol& first, const Protocol& second,
                 const OutputCombiner& combine) {
    if (!first.is_leaderless() || !second.is_leaderless())
        throw std::invalid_argument("product: both protocols must be leaderless");
    const auto vars1 = first.input_variables();
    const auto vars2 = second.input_variables();
    if (vars1.size() != vars2.size() ||
        !std::equal(vars1.begin(), vars1.end(), vars2.begin()))
        throw std::invalid_argument("product: input variable lists must match");

    const std::size_t n1 = first.num_states();
    const std::size_t n2 = second.num_states();

    ProtocolBuilder b;
    std::vector<StateId> pair_state(n1 * n2);
    auto id = [&](StateId q1, StateId q2) {
        return pair_state[static_cast<std::size_t>(q1) * n2 + static_cast<std::size_t>(q2)];
    };
    for (std::size_t q1 = 0; q1 < n1; ++q1) {
        for (std::size_t q2 = 0; q2 < n2; ++q2) {
            const int out = combine(first.output(static_cast<StateId>(q1)),
                                    second.output(static_cast<StateId>(q2)));
            if (out != 0 && out != 1)
                throw std::invalid_argument("product: combiner must return 0 or 1");
            pair_state[q1 * n2 + q2] =
                b.add_state(first.state_name(static_cast<StateId>(q1)) + "|" +
                                second.state_name(static_cast<StateId>(q2)),
                            out);
        }
    }
    for (std::size_t v = 0; v < vars1.size(); ++v)
        b.set_input(vars1[v], id(first.input_state(v), second.input_state(v)));

    // For every unordered pair of product states, every combination of a
    // component-1 option with a component-2 option, under both pairings of
    // the participants.
    for (std::size_t i = 0; i < n1 * n2; ++i) {
        for (std::size_t j = i; j < n1 * n2; ++j) {
            const auto p1 = static_cast<StateId>(i / n2), p2 = static_cast<StateId>(i % n2);
            const auto q1 = static_cast<StateId>(j / n2), q2 = static_cast<StateId>(j % n2);
            const auto options1 = component_options(first, p1, q1);
            const auto options2 = component_options(second, p2, q2);
            for (const auto& [a1, b1] : options1) {
                for (const auto& [a2, b2] : options2) {
                    // Pairing 1: first participants together.
                    b.add_transition(id(p1, p2), id(q1, q2), id(a1, a2), id(b1, b2));
                    // Pairing 2: crossed.
                    b.add_transition(id(p1, p2), id(q1, q2), id(a1, b2), id(b1, a2));
                }
            }
        }
    }
    return std::move(b).build();
}

Protocol negate(const Protocol& protocol) {
    ProtocolBuilder b;
    for (std::size_t q = 0; q < protocol.num_states(); ++q)
        b.add_state(protocol.state_name(static_cast<StateId>(q)),
                    1 - protocol.output(static_cast<StateId>(q)));
    const auto vars = protocol.input_variables();
    for (std::size_t v = 0; v < vars.size(); ++v)
        b.set_input(vars[v], protocol.input_state(v));
    for (std::size_t q = 0; q < protocol.num_states(); ++q) {
        const auto leaders = protocol.leaders()[static_cast<StateId>(q)];
        if (leaders > 0) b.add_leaders(static_cast<StateId>(q), leaders);
    }
    for (const Transition& t : protocol.transitions())
        b.add_transition(t.pre1, t.pre2, t.post1, t.post2);
    return std::move(b).build();
}

}  // namespace ppsc::protocols
