#include "protocols/linear_threshold.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/check.hpp"

namespace ppsc::protocols {

Protocol linear_threshold(const std::vector<std::int64_t>& coeffs, std::int64_t constant) {
    if (coeffs.empty()) throw std::invalid_argument("linear_threshold: no coefficients");
    std::int64_t max_abs = 1;
    for (const std::int64_t a : coeffs) max_abs = std::max(max_abs, a < 0 ? -a : a);
    if (max_abs > 64 || (constant < 0 ? -constant : constant) > 64)
        throw std::invalid_argument("linear_threshold: coefficients/constant limited to |.|<=64");

    const std::int64_t A = std::max(max_abs, constant < 0 ? -constant : constant);

    ProtocolBuilder b;
    // Holders H(v, belief) for v in [-A, A].
    std::vector<StateId> holder[2];
    for (int belief = 0; belief < 2; ++belief) {
        holder[belief].resize(static_cast<std::size_t>(2 * A + 1));
        for (std::int64_t v = -A; v <= A; ++v) {
            holder[belief][static_cast<std::size_t>(v + A)] =
                b.add_state("H" + std::to_string(v) + "b" + std::to_string(belief), belief);
        }
    }
    const StateId follower[2] = {b.add_state("F0", 0), b.add_state("F1", 1)};

    auto holder_state = [&](std::int64_t v, int belief) {
        PPSC_CHECK(v >= -A && v <= A);
        return holder[belief][static_cast<std::size_t>(v + A)];
    };

    for (std::size_t j = 0; j < coeffs.size(); ++j) {
        const std::int64_t a = coeffs[j];
        b.set_input("x" + std::to_string(j), holder_state(a, a >= constant ? 1 : 0));
    }

    // Holder-holder interactions.
    for (std::int64_t u = -A; u <= A; ++u) {
        for (std::int64_t v = u; v <= A; ++v) {
            const std::int64_t w = u + v;
            const int verdict = w >= constant ? 1 : 0;
            for (int b1 = 0; b1 < 2; ++b1) {
                for (int b2 = 0; b2 < 2; ++b2) {
                    if (b1 > b2 && u == v) continue;  // unordered duplicate
                    const StateId pre1 = holder_state(u, b1);
                    const StateId pre2 = holder_state(v, b2);
                    if (w > A) {
                        b.add_transition(pre1, pre2, holder_state(A, verdict),
                                         holder_state(w - A, verdict));
                    } else if (w < -A) {
                        b.add_transition(pre1, pre2, holder_state(-A, verdict),
                                         holder_state(w + A, verdict));
                    } else {
                        b.add_transition(pre1, pre2, holder_state(w, verdict),
                                         follower[verdict]);
                    }
                }
            }
        }
    }

    // Holder-follower: the follower copies the holder's belief.  Beliefs
    // are recomputed only at holder-holder meetings — recomputing from a
    // lone holder's partial value here would let a residual holder flip a
    // settled consensus back and forth forever.
    for (std::int64_t u = -A; u <= A; ++u) {
        for (int b1 = 0; b1 < 2; ++b1) {
            b.add_transition(holder_state(u, b1), follower[1 - b1], holder_state(u, b1),
                             follower[b1]);
        }
    }
    // Follower-follower: silent (no rule).

    return std::move(b).build();
}

}  // namespace ppsc::protocols
