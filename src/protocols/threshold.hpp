// Threshold protocols: families computing x ≥ η.
//
// Three constructions with very different state complexities — exactly the
// gap the paper studies:
//
//   * unary_threshold(η)       — Example 2.1's P_k generalised to any η:
//                                η+1 states.  Simple, terrible complexity.
//   * binary_threshold_power(k)— Example 2.1's P'_k verbatim: computes
//                                x ≥ 2^k with k+2 states ({0, 2^0..2^k};
//                                the paper counts k+1, an off-by-one we
//                                report in EXPERIMENTS.md).
//   * collector_threshold(η)   — a leaderless O(log η) protocol for
//                                *arbitrary* η in the spirit of Blondin,
//                                Esparza, Jaax [12]: agents hold power-of-
//                                two tokens that merge, and a "collector"
//                                walks down the set bits of η absorbing
//                                matching tokens; any witnessed value ≥ η
//                                triggers an accepting epidemic.
//
// All three are leaderless, single-input, and exhaustively verified in the
// test suite; DESIGN.md sketches the collector correctness argument.
#pragma once

#include <cstdint>

#include "core/protocol.hpp"

namespace ppsc::protocols {

/// Example 2.1 P_k generalised: states {0..η}, value-summing transitions
/// capped at η, output 1 iff value η.  Computes x ≥ η with η+1 states.
/// Throws std::invalid_argument if η < 1.
Protocol unary_threshold(AgentCount eta);

/// Example 2.1 P'_k: computes x ≥ 2^k with states {0, 2^0, ..., 2^k}.
/// Throws std::invalid_argument if k < 0 or k > 40.
Protocol binary_threshold_power(int k);

/// Leaderless threshold protocol for arbitrary η ≥ 1 with O(log η) states.
/// For η = 1 falls back to the 2-state detector.  Throws on η < 1 or
/// η ≥ 2^40.
Protocol collector_threshold(AgentCount eta);

/// Number of states collector_threshold(η) uses (without building it).
std::size_t collector_threshold_states(AgentCount eta);

}  // namespace ppsc::protocols
