#include "protocols/families.hpp"

#include <array>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "protocols/double_exp_threshold.hpp"
#include "protocols/leader.hpp"
#include "protocols/majority.hpp"
#include "protocols/threshold.hpp"
#include "support/bignat.hpp"

namespace ppsc::protocols {

namespace {

// Parameter ranges mirror the validation inside each builder — the builder
// remains the source of truth and still throws on out-of-range values; the
// registry only documents the ranges.
constexpr std::array<ProtocolFamily, 9> kFamilies = {{
    {"unary", 1, "<eta>", "eta >= 1", "x >= eta with eta + 1 states (Section 2 baseline)", "3"},
    {"binary", 1, "<k>", "0 <= k <= 40", "x >= 2^k via doubling tokens, k + 2 states", "3"},
    {"collector", 1, "<eta>", "eta >= 1 (int64)",
     "x >= eta with O(log eta) states (succinct collector)", "5"},
    {"majority", 0, "", "no parameters", "2-input majority: is x >= y?", ""},
    {"leader", 1, "<eta>", "eta >= 1", "x >= eta with a leader agent driving the count", "3"},
    {"cascade", 2, "<base> <digits>", "base >= 2, digits >= 1, base^digits in int64",
     "leader-driven base-ary counter cascade deciding x >= base^digits", "3 2"},
    {"double_exp", 1, "<n>", "0 <= n <= 17",
     "x >= 2^(2^n) with 2^n + 3 states (E11 flagship; sparse rule table past ~4k states)", "2"},
    {"double_exp_dense", 1, "<n>", "1 <= n <= 13",
     "x >= 2^(2^n) - 1: a collector per bit, Theta(4^n) non-silent pairs", "2"},
    {"succinct", 1, "<eta>", "eta >= 1, decimal, up to 2^17 + 1 bits",
     "x >= eta for arbitrary-precision eta with O(log eta) states", "19"},
}};

// ppsc-lint: validated-parser (full-token check: used must equal value.size, typed error otherwise)
long long parse_int(std::string_view family, std::string_view value) {
    std::size_t used = 0;
    long long parsed = 0;
    try {
        parsed = std::stoll(std::string(value), &used);
    } catch (const std::exception&) {
        used = 0;
    }
    if (used != value.size())
        throw std::invalid_argument("family " + std::string(family) + ": parameter '" +
                                    std::string(value) + "' is not an integer");
    return parsed;
}

}  // namespace

std::span<const ProtocolFamily> protocol_families() { return kFamilies; }

Protocol build_family(std::string_view name, std::span<const std::string> args) {
    const ProtocolFamily* family = nullptr;
    for (const ProtocolFamily& f : kFamilies) {
        if (name == f.name) {
            family = &f;
            break;
        }
    }
    if (family == nullptr)
        throw std::invalid_argument("unknown family '" + std::string(name) + "'; known:\n" +
                                    family_usage());

    const auto arity = static_cast<std::size_t>(family->arity);
    if (args.size() != arity)
        throw std::invalid_argument("family " + std::string(name) + ": expected " +
                                    std::to_string(arity) + " parameter(s) (" + family->params +
                                    ", " + family->range + "), got " +
                                    std::to_string(args.size()));

    if (name == "unary") return unary_threshold(parse_int(name, args[0]));
    if (name == "binary") return binary_threshold_power(static_cast<int>(parse_int(name, args[0])));
    if (name == "collector") return collector_threshold(parse_int(name, args[0]));
    if (name == "majority") return majority();
    if (name == "leader") return leader_threshold(parse_int(name, args[0]));
    if (name == "cascade")
        return leader_counter_cascade(static_cast<int>(parse_int(name, args[0])),
                                      static_cast<int>(parse_int(name, args[1])));
    if (name == "double_exp")
        return double_exp_threshold(static_cast<int>(parse_int(name, args[0])));
    if (name == "double_exp_dense")
        return double_exp_threshold_dense(static_cast<int>(parse_int(name, args[0])));
    if (name == "succinct") return succinct_threshold(BigNat::from_decimal(args[0]));
    throw std::logic_error("protocol family registered but not dispatched: " +
                           std::string(name));
}

std::string family_usage() {
    std::ostringstream os;
    for (const ProtocolFamily& f : kFamilies) {
        os << "  " << f.name;
        if (f.params[0] != '\0') os << ' ' << f.params;
        os << "\n      " << f.summary << " (" << f.range << ")\n";
    }
    return os.str();
}

}  // namespace ppsc::protocols
