// Modulo (remainder) protocols: x ≡ r (mod m).
//
// Together with thresholds, modulo predicates generate all Presburger
// predicates under boolean combinations — the normal form used by Blondin
// et al. [11, 12].  Construction: every agent starts as an *accumulator*
// holding value 1; two accumulators merge (one keeps the sum mod m, the
// other becomes a *follower* adopting the merged value); accumulators
// re-program followers they meet.  Fairness leaves exactly one accumulator,
// whose value is x mod m, and all followers adopt it.
#pragma once

#include <cstdint>

#include "core/protocol.hpp"

namespace ppsc::protocols {

/// Builds the 2m-state protocol for x ≡ r (mod m).
/// Throws std::invalid_argument unless m ≥ 2 and 0 ≤ r < m.
Protocol modulo(std::int64_t m, std::int64_t r);

/// Builds the 2m-state protocol for Σ coeffs[j]·x_j ≡ r (mod m): identical
/// machinery, but an agent of variable j starts as an accumulator holding
/// coeffs[j] mod m.  Input variables are "x0", "x1", ….
/// Throws std::invalid_argument unless m ≥ 2, 0 ≤ r < m, and coeffs
/// non-empty.
Protocol modulo_linear(const std::vector<std::int64_t>& coeffs, std::int64_t m, std::int64_t r);

}  // namespace ppsc::protocols
