#include "protocols/double_exp_threshold.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace ppsc::protocols {

namespace {

bool bit_set(const BigNat& value, std::uint64_t bit) {
    const std::size_t limb = static_cast<std::size_t>(bit / 32);
    return limb < value.limbs().size() && ((value.limbs()[limb] >> (bit % 32)) & 1u) != 0;
}

/// Per-collector data: the set bit m it sits on and the shape of its
/// residual need r_m = η mod 2^m (all comparisons against token values 2^j
/// reduce to bit-length arithmetic, so the builder never compares BigNats
/// in the O(k²) transition loops).
struct CollectorInfo {
    std::uint64_t bit = 0;         ///< m: the collector's set bit of η
    std::uint64_t need_top = 0;    ///< top_bit(r_m)
    bool need_is_power = false;    ///< r_m == 2^need_top
};

void validate(const BigNat& eta, const char* who) {
    if (eta.is_zero()) throw std::invalid_argument(std::string(who) + ": eta must be >= 1");
    if (eta.bit_length() > kSuccinctThresholdMaxBits)
        throw std::invalid_argument(std::string(who) + ": eta exceeds " +
                                    std::to_string(kSuccinctThresholdMaxBits) + " bits");
}

/// The set bits of η whose residual η mod 2^m is non-zero, descending,
/// with the residual shape each collector needs.
std::vector<CollectorInfo> collector_bits(const BigNat& eta) {
    std::vector<CollectorInfo> collectors;
    const std::uint64_t k = eta.bit_length() - 1;
    if (k == 0) return collectors;
    BigNat residual = eta - BigNat::power_of_two(k);  // η mod 2^k at m = k
    for (std::uint64_t m = k;; --m) {
        if (bit_set(eta, m) && !residual.is_zero()) {
            const std::uint64_t top = residual.bit_length() - 1;
            collectors.push_back(
                {m, top, residual == BigNat::power_of_two(top)});
        }
        if (m == 0) break;
        if (bit_set(eta, m - 1)) residual -= BigNat::power_of_two(m - 1);
    }
    return collectors;
}

}  // namespace

std::size_t succinct_threshold_states(const BigNat& eta) {
    validate(eta, "succinct_threshold_states");
    if (eta == BigNat(1)) return 2;
    const std::uint64_t k = eta.bit_length() - 1;
    // z + tokens t_0..t_k + T + collectors.
    return static_cast<std::size_t>(k) + 3 + collector_bits(eta).size();
}

Protocol succinct_threshold(const BigNat& eta) {
    validate(eta, "succinct_threshold");

    if (eta == BigNat(1)) {
        // 2-state detector: any agent triggers the accepting epidemic.
        ProtocolBuilder b;
        const StateId x = b.add_state("x", 0);
        const StateId top = b.add_state("T", 1);
        b.set_input("x", x);
        b.add_transition(x, x, top, top);
        b.add_transition(x, top, top, top);
        return std::move(b).build();
    }

    const std::uint64_t k = eta.bit_length() - 1;

    ProtocolBuilder b;
    const StateId z = b.add_state("z", 0);
    std::vector<StateId> token(static_cast<std::size_t>(k) + 1);
    for (std::uint64_t i = 0; i <= k; ++i)
        token[static_cast<std::size_t>(i)] = b.add_state("t" + std::to_string(i), 0);
    const StateId top = b.add_state("T", 1);

    // Collector state c_m exists for each set bit m of η whose residual
    // need r_m = η mod 2^m is non-zero.  c_m "holds" value η − r_m.
    const std::vector<CollectorInfo> infos = collector_bits(eta);
    std::vector<StateId> collector(static_cast<std::size_t>(k) + 1, -1);
    std::vector<const CollectorInfo*> info_of(static_cast<std::size_t>(k) + 1, nullptr);
    for (const CollectorInfo& info : infos) {
        collector[static_cast<std::size_t>(info.bit)] =
            b.add_state("c" + std::to_string(info.bit), 0);
        info_of[static_cast<std::size_t>(info.bit)] = &info;
    }
    b.set_input("x", token[0]);

    // Token merging: t_i, t_i ↦ z, t_{i+1};  top tokens overflow to T.
    for (std::uint64_t i = 0; i < k; ++i)
        b.add_transition(token[static_cast<std::size_t>(i)], token[static_cast<std::size_t>(i)],
                         z, token[static_cast<std::size_t>(i) + 1]);
    b.add_transition(token[static_cast<std::size_t>(k)], token[static_cast<std::size_t>(k)], top,
                     top);  // 2^{k+1} > η

    // A top token starts collecting (or accepts outright if η = 2^k).
    // The partner is unchanged; every state can be the partner.
    const bool exact_power = infos.empty() || infos.front().bit != k;
    const std::size_t num_states_now = b.num_states();
    for (std::size_t partner = 0; partner < num_states_now; ++partner) {
        const auto y = static_cast<StateId>(partner);
        if (y == token[static_cast<std::size_t>(k)]) continue;  // t_k,t_k handled above
        if (exact_power) {
            b.add_transition(token[static_cast<std::size_t>(k)], y, top, top);
        } else {
            b.add_transition(token[static_cast<std::size_t>(k)], y,
                             collector[static_cast<std::size_t>(k)], y);
        }
    }

    // Collector absorption and completion.  A collector holding η − r meets
    // a token 2^j: witnessed value (η − r) + 2^j ≥ η iff 2^j ≥ r — accept;
    // the top-bit token of r continues the walk at the next set bit.
    // All comparisons against r reduce to its precomputed bit shape.
    for (const CollectorInfo& info : infos) {
        const StateId c = collector[static_cast<std::size_t>(info.bit)];
        for (std::uint64_t j = 0; j <= k; ++j) {
            const bool token_covers_need =
                j > info.need_top || (j == info.need_top && info.need_is_power);
            if (token_covers_need) {
                // Witnessed (η − r) + 2^j ≥ η: accept.
                b.add_transition(c, token[static_cast<std::size_t>(j)], top, top);
            } else if (j == info.need_top) {
                // rest = r − 2^j = η mod 2^j, non-zero here (the power-of-two
                // case accepted above), so the next collector exists.
                PPSC_CHECK(collector[static_cast<std::size_t>(j)] >= 0);
                b.add_transition(c, token[static_cast<std::size_t>(j)],
                                 collector[static_cast<std::size_t>(j)], z);
            }
            // Other tokens: silent (they wait to merge upward).
        }
    }
    // Two collectors each hold ≥ 2^k: combined ≥ 2^{k+1} > η.  (Ascending
    // bit order, matching collector_threshold's transition order so the two
    // constructions stay textually identical on the shared range.)
    for (std::size_t i = infos.size(); i-- > 0;) {
        for (std::size_t j = i + 1; j-- > 0;) {
            b.add_transition(collector[static_cast<std::size_t>(infos[i].bit)],
                             collector[static_cast<std::size_t>(infos[j].bit)], top, top);
        }
    }

    // Accepting epidemic.
    for (std::size_t partner = 0; partner < b.num_states(); ++partner) {
        const auto y = static_cast<StateId>(partner);
        if (y != top) b.add_transition(top, y, top, top);
    }
    return std::move(b).build();
}

BigNat double_exp_eta(int n) {
    if (n < 0 || n > 17)
        throw std::invalid_argument("double_exp_eta: n must be in [0, 17]");
    return BigNat::power_of_two(std::uint64_t{1} << n);
}

Protocol double_exp_threshold(int n) {
    if (n < 0 || n > 17)
        throw std::invalid_argument("double_exp_threshold: n must be in [0, 17]");
    return succinct_threshold(double_exp_eta(n));
}

Protocol double_exp_threshold_dense(int n) {
    if (n < 1 || n > 13)
        throw std::invalid_argument("double_exp_threshold_dense: n must be in [1, 13]");
    return succinct_threshold(double_exp_eta(n) - BigNat(1));
}

}  // namespace ppsc::protocols
