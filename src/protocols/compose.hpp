// Parallel product composition of protocols.
//
// Runs two leaderless protocols on the same agents: the product state of an
// agent is a pair (q₁, q₂); when two agents meet, each component performs a
// (possibly silent) transition of its protocol, and the output is a boolean
// combination of the component outputs.  This is the classic closure
// construction behind "population protocols compute all of Presburger"
// (boolean combinations of thresholds and modulos).
//
// The composition multiplies state counts — |Q| = |Q₁|·|Q₂| — which is the
// succinctness price the paper's state-complexity question is about.
#pragma once

#include <functional>

#include "core/protocol.hpp"

namespace ppsc::protocols {

/// Pointwise boolean combiner for outputs.
using OutputCombiner = std::function<int(int, int)>;

inline OutputCombiner combine_and() {
    return [](int a, int b) { return a & b; };
}
inline OutputCombiner combine_or() {
    return [](int a, int b) { return a | b; };
}
inline OutputCombiner combine_xor() {
    return [](int a, int b) { return a ^ b; };
}

/// Product of two leaderless protocols with identical input-variable lists.
/// Throws std::invalid_argument if either has leaders or the variable lists
/// differ.
Protocol product(const Protocol& first, const Protocol& second, const OutputCombiner& combine);

/// The same protocol with all outputs flipped.  Computes ¬φ whenever the
/// input computes φ (well-specified executions stabilise to the flipped
/// consensus).
Protocol negate(const Protocol& protocol);

}  // namespace ppsc::protocols
