// Tests for the protocol text format (parser + serialiser round trip),
// including the registered protocol families: every name the tool's help
// lists must build from its example parameters and round-trip.
#include "core/protocol_parser.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "protocols/families.hpp"
#include "protocols/threshold.hpp"
#include "verify/verifier.hpp"

namespace ppsc {
namespace {

constexpr const char* kThreshold2 = R"(# x >= 2 detector
state x 0
state T 1
input x -> x
trans x x -> T T
trans x T -> T T
)";

TEST(ProtocolParser, ParsesMinimalProtocol) {
    const Protocol p = parse_protocol(kThreshold2);
    EXPECT_EQ(p.num_states(), 2u);
    EXPECT_EQ(p.num_transitions(), 2u);
    EXPECT_TRUE(p.is_leaderless());
    const Verifier verifier(p);
    EXPECT_TRUE(verifier.check_predicate(Predicate::x_at_least(2), 2, 6).holds);
}

TEST(ProtocolParser, ParsesLeadersAndComments) {
    const Protocol p = parse_protocol(R"(
state x 0      # input token
state l 0
state T 1
input x -> x
leaders l 2
trans l x -> T T
trans T x -> T T
trans T l -> T T
)");
    EXPECT_FALSE(p.is_leaderless());
    EXPECT_EQ(p.leaders()[*p.find_state("l")], 2);
}

TEST(ProtocolParser, RoundTripsThroughFormat) {
    const Protocol original = protocols::collector_threshold(5);
    const Protocol reparsed = parse_protocol(format_protocol(original));
    EXPECT_EQ(reparsed.num_states(), original.num_states());
    EXPECT_EQ(reparsed.num_transitions(), original.num_transitions());
    // Semantically identical: same verdicts on a range of inputs.
    const Verifier v1(original), v2(reparsed);
    for (AgentCount i = 2; i <= 8; ++i) {
        EXPECT_EQ(v1.verify_input(i).computed, v2.verify_input(i).computed) << i;
    }
}

TEST(ProtocolParser, ErrorsCarryLineNumbers) {
    try {
        parse_protocol("state a 0\nstate b 2\n");
        FAIL() << "expected parse error";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    }
}

TEST(ProtocolParser, RejectsBrokenInputs) {
    EXPECT_THROW(parse_protocol("bogus line\n"), std::invalid_argument);
    EXPECT_THROW(parse_protocol("state a 0\ninput x -> missing\n"), std::invalid_argument);
    EXPECT_THROW(parse_protocol("state a 0\ntrans a a ->\n"), std::invalid_argument);
    EXPECT_THROW(parse_protocol("state a 0\nleaders a many\n"), std::invalid_argument);
    EXPECT_THROW(parse_protocol("state a 0\n"), std::invalid_argument);  // no input
    EXPECT_THROW(parse_protocol("state a 0\nstate a 1\ninput x -> a\n"),
                 std::invalid_argument);  // duplicate state
}

TEST(ProtocolParser, EmptyFileFailsCleanly) {
    EXPECT_THROW(parse_protocol(""), std::invalid_argument);
}

TEST(ProtocolParser, ConflictingRedefinitionIsTypedError) {
    // Same pre-pair, different post-pair, plain `trans`: a typo, not a
    // nondeterministic protocol — typed error carrying both line numbers.
    const char* text =
        "state a 0\nstate b 1\ninput x -> a\ntrans a a -> b b\ntrans a a -> a b\n";
    try {
        parse_protocol(text);
        FAIL() << "expected DuplicateRuleError";
    } catch (const DuplicateRuleError& e) {
        EXPECT_EQ(e.line(), 5u);
        EXPECT_EQ(e.previous_line(), 4u);
        EXPECT_NE(std::string(e.what()).find("conflicting redefinition"), std::string::npos)
            << e.what();
    }
}

TEST(ProtocolParser, ConflictDetectionCanonicalisesPairOrder) {
    // `trans b a` and `trans a b` name the same unordered pre-pair.
    EXPECT_THROW(
        parse_protocol(
            "state a 0\nstate b 1\ninput x -> a\ntrans a b -> b b\ntrans b a -> a a\n"),
        DuplicateRuleError);
}

TEST(ProtocolParser, IdenticalDuplicateIsWarningNotError) {
    std::vector<ParseWarning> warnings;
    const Protocol p = parse_protocol(
        "state a 0\nstate b 1\ninput x -> a\ntrans a a -> b b\ntrans a a -> b b\n", &warnings);
    EXPECT_EQ(p.num_transitions(), 1u);  // builder merges the duplicate
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_EQ(warnings[0].line, 5u);
    EXPECT_NE(warnings[0].message.find("duplicate rule"), std::string::npos)
        << warnings[0].message;
    // Unordered-post duplicate (b a vs a b) is the same rule too.
    warnings.clear();
    parse_protocol("state a 0\nstate b 1\ninput x -> a\ntrans a a -> a b\ntrans a a -> b a\n",
                   &warnings);
    EXPECT_EQ(warnings.size(), 1u);
}

TEST(ProtocolParser, TransPlusDeclaresNondeterminism) {
    // Explicit nondeterministic extension parses to two rules on the pair…
    const Protocol p = parse_protocol(
        "state a 0\nstate b 1\ninput x -> a\ntrans a a -> a b\ntrans+ a a -> b b\n");
    EXPECT_EQ(p.num_transitions(), 2u);
    EXPECT_EQ(p.rules_for_pair(0, 0).size(), 2u);
    // …and round-trips: the serialiser emits trans+ for the second rule.
    const std::string text = format_protocol(p);
    EXPECT_NE(text.find("trans+"), std::string::npos) << text;
    EXPECT_EQ(format_protocol(parse_protocol(text)), text);
    // trans+ with no prior rule for the pair is an error.
    EXPECT_THROW(
        parse_protocol("state a 0\nstate b 1\ninput x -> a\ntrans+ a a -> b b\n"),
        std::invalid_argument);
}

TEST(ProtocolFamilies, EveryRegisteredFamilyBuildsAndRoundTrips) {
    // The registry is the source of the tool's help text; each listed name
    // must build from its documented example parameters, serialise, and
    // reparse to a textually identical protocol.
    ASSERT_FALSE(protocols::protocol_families().empty());
    for (const protocols::ProtocolFamily& family : protocols::protocol_families()) {
        std::vector<std::string> args;
        std::istringstream example(family.example_args);
        for (std::string token; example >> token;) args.push_back(token);
        const Protocol built = protocols::build_family(family.name, args);
        EXPECT_GE(built.num_states(), 2u) << family.name;
        const std::string text = format_protocol(built);
        const Protocol reparsed = parse_protocol(text);
        EXPECT_EQ(format_protocol(reparsed), text) << family.name;
        EXPECT_EQ(reparsed.num_states(), built.num_states()) << family.name;
        EXPECT_EQ(reparsed.num_transitions(), built.num_transitions()) << family.name;
    }
}

TEST(ProtocolFamilies, RejectsUnknownNamesAndBadArity) {
    EXPECT_THROW(protocols::build_family("no_such_family", {}), std::invalid_argument);
    EXPECT_THROW(protocols::build_family("double_exp", {}), std::invalid_argument);
    const std::vector<std::string> two = {"1", "2"};
    EXPECT_THROW(protocols::build_family("unary", two), std::invalid_argument);
    const std::vector<std::string> junk = {"xyz"};
    EXPECT_THROW(protocols::build_family("double_exp", junk), std::invalid_argument);
    // The usage text behind `protocol_tool help` lists every family.
    const std::string usage = protocols::family_usage();
    for (const protocols::ProtocolFamily& family : protocols::protocol_families())
        EXPECT_NE(usage.find(family.name), std::string::npos) << family.name;
}

}  // namespace
}  // namespace ppsc
