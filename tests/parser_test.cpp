// Tests for the protocol text format (parser + serialiser round trip).
#include "core/protocol_parser.hpp"

#include <gtest/gtest.h>

#include "protocols/threshold.hpp"
#include "verify/verifier.hpp"

namespace ppsc {
namespace {

constexpr const char* kThreshold2 = R"(# x >= 2 detector
state x 0
state T 1
input x -> x
trans x x -> T T
trans x T -> T T
)";

TEST(ProtocolParser, ParsesMinimalProtocol) {
    const Protocol p = parse_protocol(kThreshold2);
    EXPECT_EQ(p.num_states(), 2u);
    EXPECT_EQ(p.num_transitions(), 2u);
    EXPECT_TRUE(p.is_leaderless());
    const Verifier verifier(p);
    EXPECT_TRUE(verifier.check_predicate(Predicate::x_at_least(2), 2, 6).holds);
}

TEST(ProtocolParser, ParsesLeadersAndComments) {
    const Protocol p = parse_protocol(R"(
state x 0      # input token
state l 0
state T 1
input x -> x
leaders l 2
trans l x -> T T
trans T x -> T T
trans T l -> T T
)");
    EXPECT_FALSE(p.is_leaderless());
    EXPECT_EQ(p.leaders()[*p.find_state("l")], 2);
}

TEST(ProtocolParser, RoundTripsThroughFormat) {
    const Protocol original = protocols::collector_threshold(5);
    const Protocol reparsed = parse_protocol(format_protocol(original));
    EXPECT_EQ(reparsed.num_states(), original.num_states());
    EXPECT_EQ(reparsed.num_transitions(), original.num_transitions());
    // Semantically identical: same verdicts on a range of inputs.
    const Verifier v1(original), v2(reparsed);
    for (AgentCount i = 2; i <= 8; ++i) {
        EXPECT_EQ(v1.verify_input(i).computed, v2.verify_input(i).computed) << i;
    }
}

TEST(ProtocolParser, ErrorsCarryLineNumbers) {
    try {
        parse_protocol("state a 0\nstate b 2\n");
        FAIL() << "expected parse error";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    }
}

TEST(ProtocolParser, RejectsBrokenInputs) {
    EXPECT_THROW(parse_protocol("bogus line\n"), std::invalid_argument);
    EXPECT_THROW(parse_protocol("state a 0\ninput x -> missing\n"), std::invalid_argument);
    EXPECT_THROW(parse_protocol("state a 0\ntrans a a ->\n"), std::invalid_argument);
    EXPECT_THROW(parse_protocol("state a 0\nleaders a many\n"), std::invalid_argument);
    EXPECT_THROW(parse_protocol("state a 0\n"), std::invalid_argument);  // no input
    EXPECT_THROW(parse_protocol("state a 0\nstate a 1\ninput x -> a\n"),
                 std::invalid_argument);  // duplicate state
}

TEST(ProtocolParser, EmptyFileFailsCleanly) {
    EXPECT_THROW(parse_protocol(""), std::invalid_argument);
}

}  // namespace
}  // namespace ppsc
