// Property test for epoch-batched stepping: a randomized protocol
// generator sweeps epoch vs. per-step mode over > 10³ deterministically
// seeded full runs, asserting matching convergence-time means/variances
// (and whole distributions, via KS) and identical final-consensus
// verdicts on every single trial.
//
// Two instance families, both with *provable* per-instance verdicts so
// verdict identity is checkable exactly, not just statistically:
//   * random max-epidemic protocols — a random total order over ns states,
//     every cross pair fires (a, b) → (max, max), random outputs: from any
//     initial support the population converges (silently) to all agents in
//     the order-maximal support state, so the verdict is a deterministic
//     function of the instance;
//   * random collector_threshold(η) instances above and below threshold —
//     the verdict is the predicate x ≥ η itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "protocols/threshold.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "support/stat_test.hpp"

namespace ppsc {
namespace {

struct Instance {
    Protocol protocol;
    Config initial;
    int expected_output;
    std::string label;
};

/// Random max-epidemic instance: states under a random total order, every
/// cross pair promotes both agents to the order-larger state.
///
/// Outputs are pinned so the order-maximal state is the *only* state with
/// the winning output: consensus then coincides with silence.  (With free
/// random outputs an instance can start in — or drift through — a
/// non-silent consensus, which the O(1) stability probe may prove early;
/// per-step mode checks that probe after every firing but epoch mode only
/// at epoch boundaries, so detection granularity would bias the
/// convergence-time comparison.  At silence the epoch sizer has already
/// degraded to per-step fallback, so granularity is identical there.)
Instance random_epidemic(std::uint64_t seed, int index) {
    Rng rng(seed);
    const int ns = 4 + static_cast<int>(rng.below(21));  // 4..24 states
    std::vector<int> order(static_cast<std::size_t>(ns));
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);

    const int winning_output = static_cast<int>(rng.below(2));
    ProtocolBuilder b;
    std::vector<StateId> states;
    std::vector<int> outputs;
    for (int q = 0; q < ns; ++q) {
        outputs.push_back(order[static_cast<std::size_t>(q)] == ns - 1 ? winning_output
                                                                       : 1 - winning_output);
        states.push_back(b.add_state("q" + std::to_string(q), outputs.back()));
    }
    for (int a = 0; a < ns; ++a) {
        for (int bq = a + 1; bq < ns; ++bq) {
            const int winner = order[static_cast<std::size_t>(a)] >
                                       order[static_cast<std::size_t>(bq)]
                                   ? a
                                   : bq;
            b.add_transition(states[static_cast<std::size_t>(a)],
                             states[static_cast<std::size_t>(bq)],
                             states[static_cast<std::size_t>(winner)],
                             states[static_cast<std::size_t>(winner)]);
        }
    }
    b.set_input("x", states[0]);
    Protocol protocol = std::move(b).build();

    // Random initial support of ≥ 2 states over a 4096-agent population.
    // Every support state gets ≥ 128 agents: a near-degenerate split such as
    // {1, 4095} converges in O(1) interactions, before an epoch can engage,
    // and would make the engagement assertion below vacuous.
    const AgentCount population = 4096;
    const AgentCount floor = 128;
    const int support = 2 + static_cast<int>(rng.below(static_cast<std::uint64_t>(ns - 1)));
    std::vector<int> pick(static_cast<std::size_t>(ns));
    std::iota(pick.begin(), pick.end(), 0);
    for (std::size_t i = pick.size(); i > 1; --i) std::swap(pick[i - 1], pick[rng.below(i)]);
    // The order-maximal state must be in the support: without it the whole
    // population shares the losing output from the start (instant stable
    // consensus, nothing for the epoch path to do).
    for (int s = 0; s < ns; ++s) {
        if (order[static_cast<std::size_t>(pick[static_cast<std::size_t>(s)])] == ns - 1) {
            if (s >= support) std::swap(pick[0], pick[static_cast<std::size_t>(s)]);
            break;
        }
    }
    Config initial(protocol.num_states());
    AgentCount left = population - floor * static_cast<AgentCount>(support);
    int max_rank = -1;
    int max_state = 0;
    for (int s = 0; s < support; ++s) {
        const int q = pick[static_cast<std::size_t>(s)];  // distinct support states
        const AgentCount extra =
            s + 1 == support ? left : static_cast<AgentCount>(rng.below(left + 1));
        left -= extra;
        initial.add(states[static_cast<std::size_t>(q)], floor + extra);
        if (order[static_cast<std::size_t>(q)] > max_rank) {
            max_rank = order[static_cast<std::size_t>(q)];
            max_state = q;
        }
    }
    return {std::move(protocol), std::move(initial), outputs[static_cast<std::size_t>(max_state)],
            "epidemic-" + std::to_string(index)};
}

/// Random collector_threshold(η) instance, above or below threshold.
Instance random_collector(std::uint64_t seed, int index, bool above) {
    Rng rng(seed);
    const AgentCount eta = 500 + static_cast<AgentCount>(rng.below(4500));
    Protocol protocol = protocols::collector_threshold(eta);
    const AgentCount x = above ? eta + static_cast<AgentCount>(rng.below(eta)) : eta - 1;
    Config initial = protocol.initial_config(x);
    return {std::move(protocol), std::move(initial), above ? 1 : 0,
            "collector-" + std::to_string(index)};
}

TEST(EpochProperty, RandomProtocolsMatchMomentsAndVerdictsAcrossAThousandTrials) {
    std::vector<Instance> instances;
    for (int i = 0; i < 10; ++i)
        instances.push_back(random_epidemic(stat::derive_seed(3000, "epidemic-" + std::to_string(i)), i));
    for (int i = 0; i < 3; ++i)
        instances.push_back(
            random_collector(stat::derive_seed(3001, "collector-" + std::to_string(i)), i, i != 1));

    const int runs_per_mode = 45;
    int total_trials = 0;
    const int stat_tests = static_cast<int>(instances.size()) * 3;
    const double alpha = stat::bonferroni(1e-3, stat_tests);

    for (const Instance& instance : instances) {
        const Simulator sim(instance.protocol, PairSelect::fenwick);
        sim.reset_epoch_stats();
        std::vector<double> times[2];
        for (int mode = 0; mode < 2; ++mode) {
            SimulationOptions options;
            options.max_interactions = std::uint64_t{1} << 32;
            options.step_mode = mode == 0 ? StepMode::per_step : StepMode::epoch;
            options.epoch.min_firings = 8;
            Rng rng(stat::derive_seed(3002, instance.label + (mode == 0 ? "-ref" : "-epoch")));
            for (int r = 0; r < runs_per_mode; ++r) {
                const SimulationResult result = sim.run(instance.initial, rng, options);
                ASSERT_TRUE(result.converged) << instance.label << " mode " << mode;
                ASSERT_TRUE(result.output.has_value()) << instance.label;
                // Verdict identity, trial by trial — not just on average.
                ASSERT_EQ(*result.output, instance.expected_output)
                    << instance.label << " mode " << mode << " run " << r;
                times[mode].push_back(static_cast<double>(result.interactions));
                ++total_trials;
            }
        }
        // The comparison is vacuous unless the epoch path actually served
        // the epoch-mode runs.
        ASSERT_GT(sim.epoch_stats().epoch_fired, 0u) << instance.label;

        const auto ref = stat::sample_moments(times[0]);
        const auto epoch = stat::sample_moments(times[1]);
        const auto mean = stat::mean_equivalence_test(ref, epoch, alpha);
        EXPECT_TRUE(mean.pass) << instance.label << ": mean z = " << mean.statistic << " (ref "
                               << ref.mean << ", epoch " << epoch.mean << ")";
        const auto variance = stat::variance_equivalence_test(ref, epoch, alpha);
        EXPECT_TRUE(variance.pass) << instance.label << ": variance z = " << variance.statistic;
        const auto ks = stat::ks_two_sample(times[0], times[1], alpha);
        EXPECT_TRUE(ks.pass) << instance.label << ": KS D = " << ks.statistic << " > "
                             << ks.critical;
    }
    EXPECT_GE(total_trials, 1000);  // the ≥ 10³ seeded-trials requirement
}

}  // namespace
}  // namespace ppsc
