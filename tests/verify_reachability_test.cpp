// Tests for the bounded-population reachability graph and its SCC/closure
// machinery — the semantic foundation of all verification.
#include "verify/reachability.hpp"

#include <gtest/gtest.h>

#include "protocols/threshold.hpp"

namespace ppsc {
namespace {

/// Two-state one-way epidemic: X,A -> A,A.
Protocol epidemic() {
    ProtocolBuilder b;
    const StateId a = b.add_state("A", 1);
    const StateId x = b.add_state("X", 0);
    b.set_input("x", x);
    b.add_transition(x, a, a, a);
    return std::move(b).build();
}

/// Oscillator: A,A <-> B,B; never stabilises from {2·A}.
Protocol oscillator() {
    ProtocolBuilder b;
    const StateId a = b.add_state("A", 1);
    const StateId c = b.add_state("B", 0);
    b.set_input("x", a);
    b.add_transition(a, a, c, c);
    b.add_transition(c, c, a, a);
    return std::move(b).build();
}

TEST(ReachabilityGraph, EpidemicChainIsALine) {
    const Protocol p = epidemic();
    // {4·X, 1·A} -> ... -> {5·A}: five configurations in a line.
    Config root(2);
    root.set(*p.find_state("X"), 4);
    root.set(*p.find_state("A"), 1);
    const Config roots[] = {root};
    const ReachabilityGraph graph = ReachabilityGraph::explore(p, roots, {});
    EXPECT_EQ(graph.num_nodes(), 5u);
    EXPECT_EQ(graph.num_edges(), 4u);

    const auto scc = graph.compute_sccs();
    EXPECT_EQ(scc.num_components, 5);
    // Exactly one bottom SCC: the all-A configuration.
    int bottoms = 0;
    for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
        const auto comp = static_cast<std::size_t>(scc.component_of[node]);
        if (scc.is_bottom[comp]) {
            ++bottoms;
            EXPECT_EQ(graph.config(static_cast<NodeId>(node))[*p.find_state("A")], 5);
        }
    }
    EXPECT_EQ(bottoms, 1);
}

TEST(ReachabilityGraph, PureInputConfigIsIsolatedWhenSilent) {
    const Protocol p = epidemic();
    // {3·X}: no A agent, nothing ever fires.
    const Config roots[] = {Config::single(2, *p.find_state("X"), 3)};
    const ReachabilityGraph graph = ReachabilityGraph::explore(p, roots, {});
    EXPECT_EQ(graph.num_nodes(), 1u);
    EXPECT_EQ(graph.num_edges(), 0u);
    const auto scc = graph.compute_sccs();
    EXPECT_TRUE(scc.is_bottom[0]);
}

TEST(ReachabilityGraph, OscillatorFormsOneCyclicBottomScc) {
    const Protocol p = oscillator();
    const Config roots[] = {p.initial_config(2)};
    const ReachabilityGraph graph = ReachabilityGraph::explore(p, roots, {});
    EXPECT_EQ(graph.num_nodes(), 2u);
    const auto scc = graph.compute_sccs();
    EXPECT_EQ(scc.num_components, 1);
    EXPECT_TRUE(scc.is_bottom[0]);
}

TEST(ReachabilityGraph, FullSliceEnumeratesAllMultisets) {
    const Protocol p = epidemic();
    // Population 4 over 2 states: 5 multisets.
    const ReachabilityGraph graph = ReachabilityGraph::full_slice(p, 4, {});
    EXPECT_EQ(graph.num_nodes(), 5u);
    // Population 3 over 3 states (unary_threshold(2)): C(5,2) = 10.
    const Protocol t = protocols::unary_threshold(2);
    EXPECT_EQ(ReachabilityGraph::full_slice(t, 3, {}).num_nodes(), 10u);
}

TEST(ReachabilityGraph, FindLocatesConfigs) {
    const Protocol p = epidemic();
    const Config roots[] = {p.initial_config(3)};
    const ReachabilityGraph graph = ReachabilityGraph::explore(p, roots, {});
    EXPECT_TRUE(graph.find(p.initial_config(3)).has_value());
    Config absent(2);
    absent.set(*p.find_state("A"), 3);  // unreachable: no A agent initially
    EXPECT_FALSE(graph.find(absent).has_value());
}

TEST(ReachabilityGraph, ForwardAndBackwardClosures) {
    const Protocol p = epidemic();
    Config root(2);
    root.set(*p.find_state("X"), 2);
    root.set(*p.find_state("A"), 1);
    const Config roots[] = {root};
    const ReachabilityGraph graph = ReachabilityGraph::explore(p, roots, {});
    ASSERT_EQ(graph.num_nodes(), 3u);

    const NodeId start = graph.roots()[0];
    const auto forward = graph.forward_closure(start);
    EXPECT_EQ(std::count(forward.begin(), forward.end(), true), 3);

    // Backward closure from the final all-A config covers everything.
    Config final_config(2);
    final_config.set(*p.find_state("A"), 3);
    std::vector<bool> targets(graph.num_nodes(), false);
    targets[static_cast<std::size_t>(*graph.find(final_config))] = true;
    const auto backward = graph.backward_closure(targets);
    EXPECT_EQ(std::count(backward.begin(), backward.end(), true), 3);
}

TEST(ReachabilityGraph, ComputeModesAgreeOnClosures) {
    const Protocol p = protocols::unary_threshold(2);
    ReachabilityOptions reference;
    reference.compute = ClosureCompute::reference;
    const ReachabilityGraph sparse = ReachabilityGraph::full_slice(p, 4, {});
    const ReachabilityGraph dense = ReachabilityGraph::full_slice(p, 4, reference);
    ASSERT_EQ(sparse.num_nodes(), dense.num_nodes());
    EXPECT_EQ(sparse.num_edges(), dense.num_edges());

    std::vector<bool> targets(sparse.num_nodes(), false);
    targets[0] = true;
    targets[sparse.num_nodes() / 2] = true;
    EXPECT_EQ(sparse.backward_closure(targets, ClosureCompute::sparse),
              sparse.backward_closure(targets, ClosureCompute::reference));
}

TEST(ReachabilityGraph, NodeBudgetThrowsInsteadOfTruncating) {
    const Protocol p = protocols::unary_threshold(5);
    ReachabilityOptions tight;
    tight.max_nodes = 3;
    const Config roots[] = {p.initial_config(6)};
    EXPECT_THROW(ReachabilityGraph::explore(p, roots, tight), std::length_error);
}

TEST(ReachabilityGraph, RootValidation) {
    const Protocol p = epidemic();
    EXPECT_THROW(ReachabilityGraph::explore(p, {}, {}), std::invalid_argument);
    const Config bad_dim[] = {Config(5)};
    EXPECT_THROW(ReachabilityGraph::explore(p, bad_dim, {}), std::invalid_argument);
    const Config mixed[] = {p.initial_config(2), p.initial_config(3)};
    EXPECT_THROW(ReachabilityGraph::explore(p, mixed, {}), std::invalid_argument);
    EXPECT_THROW(ReachabilityGraph::full_slice(p, 1, {}), std::invalid_argument);
}

TEST(ReachabilityGraph, AgentCountInvariantAcrossAllNodes) {
    const Protocol p = protocols::unary_threshold(3);
    const Config roots[] = {p.initial_config(5)};
    const ReachabilityGraph graph = ReachabilityGraph::explore(p, roots, {});
    for (std::size_t node = 0; node < graph.num_nodes(); ++node)
        EXPECT_EQ(graph.config(static_cast<NodeId>(node)).size(), 5);
}

}  // namespace
}  // namespace ppsc
