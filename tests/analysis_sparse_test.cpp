// Sparse ≡ reference identity for the analysis stack (PR 6).
//
// Every ported layer keeps its seed-era dense formulation as a swappable
// reference (mirroring sim/traps.hpp's TrapCompute), and this file asserts
// the two backends *agree* — exhaustively over small protocols, randomly
// over larger ones, and on a hand-built graph whose backward closure has a
// non-trivial BFS round structure.  Covered contracts:
//
//   * ReachabilityGraph successor enumeration (ClosureCompute in explore /
//     full_slice) — identical node sets, edges and SCC structure;
//   * ReachabilityGraph::backward_closure — worklist vs reverse-BFS;
//   * StableAnalysis — identical stable sets under either backend;
//   * Verifier::infer_threshold — identical verdicts end to end, and the
//     screening phase is sound: a refuted candidate's exact threshold is
//     always nullopt;
//   * hilbert_basis_equalities / realisable_multiset_basis — identical
//     bases from the incremental-residual and recompute backends;
//   * bounds::stable_configuration_for_input — identical selections from
//     the one-pass and per-component-rescan aggregations.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "bounds/pumping.hpp"
#include "diophantine/realisable.hpp"
#include "protocols/double_exp_threshold.hpp"
#include "protocols/threshold.hpp"
#include "stable/stable_sets.hpp"
#include "support/rng.hpp"
#include "verify/reachability.hpp"
#include "verify/verifier.hpp"

namespace ppsc {
namespace {

ReachabilityOptions with_compute(ClosureCompute compute) {
    ReachabilityOptions options;
    options.compute = compute;
    return options;
}

/// Asserts the two successor-enumeration backends build the same graph.
/// full_slice interns every configuration of the slice up front (in
/// enumeration order) and close() sorts each node's out-list, so the two
/// graphs must match node for node, edge for edge.
void expect_slices_identical(const Protocol& protocol, AgentCount population,
                             const std::string& what) {
    const ReachabilityGraph sparse =
        ReachabilityGraph::full_slice(protocol, population, with_compute(ClosureCompute::sparse));
    const ReachabilityGraph reference = ReachabilityGraph::full_slice(
        protocol, population, with_compute(ClosureCompute::reference));
    ASSERT_EQ(sparse.num_nodes(), reference.num_nodes()) << what;
    for (std::size_t node = 0; node < sparse.num_nodes(); ++node) {
        const auto id = static_cast<NodeId>(node);
        ASSERT_EQ(sparse.config(id), reference.config(id)) << what << ", node " << node;
        const auto sparse_out = sparse.successors(id);
        const auto reference_out = reference.successors(id);
        ASSERT_EQ(std::vector<NodeId>(sparse_out.begin(), sparse_out.end()),
                  std::vector<NodeId>(reference_out.begin(), reference_out.end()))
            << what << ", node " << node;
    }

    // Backward closures on the shared graph: seed from each output class
    // (the stable-set use) and compare the worklist against the reference
    // reverse-BFS.
    for (int b = 0; b < 2; ++b) {
        std::vector<bool> targets(sparse.num_nodes(), false);
        for (std::size_t node = 0; node < sparse.num_nodes(); ++node)
            targets[node] = sparse.protocol().consensus_output(
                                sparse.config(static_cast<NodeId>(node))) == b;
        EXPECT_EQ(sparse.backward_closure(targets, ClosureCompute::sparse),
                  sparse.backward_closure(targets, ClosureCompute::reference))
            << what << ", b = " << b;
    }
}

void expect_layers_identical(const Protocol& protocol, AgentCount max_population,
                             const std::string& what) {
    expect_slices_identical(protocol, max_population, what);

    // Stable sets: identical classifications under either backend.
    const StableAnalysis sparse(protocol, max_population, {}, ClosureCompute::sparse);
    const StableAnalysis reference(protocol, max_population, {}, ClosureCompute::reference);
    for (AgentCount population = 2; population <= max_population; ++population) {
        for (int b = 0; b < 2; ++b) {
            EXPECT_EQ(sparse.stable_configs(population, b),
                      reference.stable_configs(population, b))
                << what << ", population " << population << ", b = " << b;
        }
    }

    // End-to-end verdicts: the threshold inference must not depend on the
    // backend that built its reachability graphs.
    const Verifier sparse_verifier(protocol, with_compute(ClosureCompute::sparse));
    const Verifier reference_verifier(protocol, with_compute(ClosureCompute::reference));
    EXPECT_EQ(sparse_verifier.infer_threshold(max_population),
              reference_verifier.infer_threshold(max_population))
        << what;

    // Pumping's stable-configuration selection.
    for (AgentCount input = 2; input <= max_population; ++input) {
        EXPECT_EQ(bounds::stable_configuration_for_input(protocol, input, {},
                                                         ClosureCompute::sparse),
                  bounds::stable_configuration_for_input(protocol, input, {},
                                                         ClosureCompute::reference))
            << what << ", input " << input;
    }

    // Diophantine: incremental-residual completion and scatter row assembly
    // against the recompute-everything reference.  The backends walk the
    // identical frontier, so a budget abort (possible for the nastier
    // random systems) must also strike both or neither.
    HilbertOptions sparse_hilbert, reference_hilbert;
    sparse_hilbert.compute = HilbertCompute::sparse;
    reference_hilbert.compute = HilbertCompute::reference;
    sparse_hilbert.max_frontier = reference_hilbert.max_frontier = 200'000;
    std::optional<RealisableBasis> basis_sparse, basis_reference;
    try {
        basis_sparse = realisable_multiset_basis(protocol, sparse_hilbert);
    } catch (const std::length_error&) {
    }
    try {
        basis_reference = realisable_multiset_basis(protocol, reference_hilbert);
    } catch (const std::length_error&) {
    }
    ASSERT_EQ(basis_sparse.has_value(), basis_reference.has_value()) << what;
    if (basis_sparse) {
        EXPECT_EQ(basis_sparse->elements, basis_reference->elements) << what;
        EXPECT_EQ(basis_sparse->inputs, basis_reference->inputs) << what;
        EXPECT_EQ(basis_sparse->results, basis_reference->results) << what;
    }
}

// Every protocol over 3 states with at most two non-silent transitions and
// every output assignment — the same 3728-protocol space the trap sweep
// covers, run through every ported layer.
TEST(AnalysisSparse, ExhaustiveThreeStateSweep) {
    struct Candidate {
        StateId p, q, p2, q2;
    };
    std::vector<Candidate> candidates;
    for (StateId p = 0; p < 3; ++p)
        for (StateId q = p; q < 3; ++q)
            for (StateId p2 = 0; p2 < 3; ++p2)
                for (StateId q2 = p2; q2 < 3; ++q2) {
                    if (p == p2 && q == q2) continue;  // silent
                    candidates.push_back({p, q, p2, q2});
                }
    ASSERT_EQ(candidates.size(), 30u);

    std::size_t checked = 0;
    const auto sweep_outputs = [&](const std::vector<Candidate>& transitions) {
        for (int outputs = 0; outputs < 8; ++outputs) {
            ProtocolBuilder b;
            for (StateId s = 0; s < 3; ++s)
                b.add_state("q" + std::to_string(s), (outputs >> s) & 1);
            b.set_input("x", 0);
            for (const Candidate& t : transitions) b.add_transition(t.p, t.q, t.p2, t.q2);
            const Protocol protocol = std::move(b).build();
            expect_layers_identical(protocol, 4, "outputs mask " + std::to_string(outputs));
            ++checked;
        }
    };

    sweep_outputs({});  // zero non-silent pairs
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        sweep_outputs({candidates[i]});
        for (std::size_t j = i + 1; j < candidates.size(); ++j)
            sweep_outputs({candidates[i], candidates[j]});
    }
    EXPECT_EQ(checked, 8u * (1 + 30 + 30 * 29 / 2));
}

// Randomised protocols over 5 states with up to 8 transitions: multi-rule
// pairs, dead states, and graphs big enough that the sparse and reference
// enumerations take genuinely different paths.
TEST(AnalysisSparse, RandomisedFiveStateSweep) {
    Rng rng(0x7a9);
    for (int round = 0; round < 60; ++round) {
        ProtocolBuilder b;
        for (StateId s = 0; s < 5; ++s)
            b.add_state("q" + std::to_string(s), static_cast<int>(rng.below(2)));
        b.set_input("x", 0);
        const int transitions = 1 + static_cast<int>(rng.below(8));
        for (int t = 0; t < transitions; ++t) {
            b.add_transition(static_cast<StateId>(rng.below(5)), static_cast<StateId>(rng.below(5)),
                             static_cast<StateId>(rng.below(5)),
                             static_cast<StateId>(rng.below(5)));
        }
        const Protocol protocol = std::move(b).build();
        expect_layers_identical(protocol, 4, "random round " + std::to_string(round));
    }
}

// The paper's families, where the sparse paths matter most.
TEST(AnalysisSparse, FamiliesAgree) {
    expect_slices_identical(protocols::unary_threshold(3), 5, "unary(3)");
    expect_slices_identical(protocols::collector_threshold(5), 4, "collector(5)");
    expect_slices_identical(protocols::double_exp_threshold(4), 4, "double_exp(4)");
    expect_slices_identical(protocols::double_exp_threshold_dense(2), 4, "double_exp_dense(2)");
}

// Regression pinning the round structure of the sparse backward closure:
// a three-level chain with a diamond.  The closure is a *set*, so unlike
// the trap fixpoint no order discipline is needed — but the exact expected
// sets are pinned here so a future worklist rewrite that drops nodes (e.g.
// by consuming the visited bit too early) fails loudly rather than only on
// the random sweeps.
TEST(AnalysisSparse, BackwardClosureRegressionOnDiamondChain) {
    // x,y -> z,z ; z,w -> y,y: from {x,y,w,w} the graph branches and
    // re-converges across three BFS levels.
    ProtocolBuilder b;
    const StateId x = b.add_state("x", 0);
    const StateId y = b.add_state("y", 0);
    const StateId z = b.add_state("z", 1);
    const StateId w = b.add_state("w", 1);
    b.set_input("in", x);
    b.add_transition(x, y, z, z);
    b.add_transition(z, w, y, y);
    const Protocol p = std::move(b).build();

    Config root(p.num_states());
    root.set(x, 1);
    root.set(y, 1);
    root.set(w, 2);
    const Config roots[] = {root};
    const ReachabilityGraph graph = ReachabilityGraph::explore(p, roots, {});
    // {x,y,2w} -> {2z,2w} -> {z,y,w} (twice over: the second z can also
    // react) -> ... the closure of the all-consensus sink must pull in the
    // whole chain; the closure of the root alone contains only the root.
    ASSERT_GE(graph.num_nodes(), 3u);

    std::vector<bool> root_only(graph.num_nodes(), false);
    root_only[static_cast<std::size_t>(graph.roots()[0])] = true;
    const auto from_root_sparse = graph.backward_closure(root_only, ClosureCompute::sparse);
    const auto from_root_reference =
        graph.backward_closure(root_only, ClosureCompute::reference);
    EXPECT_EQ(from_root_sparse, from_root_reference);
    // The root has no predecessors: its backward closure is itself.
    EXPECT_EQ(std::count(from_root_sparse.begin(), from_root_sparse.end(), true), 1);

    // Seeding from every node with no successors (the sinks) must reach
    // every node: the graph is a finite DAG-plus-cycles where each node
    // can keep firing until it can't.
    std::vector<bool> sinks(graph.num_nodes(), false);
    for (std::size_t node = 0; node < graph.num_nodes(); ++node)
        sinks[node] = graph.successors(static_cast<NodeId>(node)).empty();
    const auto from_sinks = graph.backward_closure(sinks, ClosureCompute::sparse);
    EXPECT_EQ(from_sinks, graph.backward_closure(sinks, ClosureCompute::reference));
    EXPECT_EQ(std::count(from_sinks.begin(), from_sinks.end(), true),
              static_cast<std::ptrdiff_t>(graph.num_nodes()));
}

// Laziness contract: constructing a StableAnalysis is free, touching one
// small slice is cheap, and only the queries that genuinely quantify over
// every slice pay for (or trip the budget of) the big ones.
TEST(AnalysisSparse, StableAnalysisIsLazy) {
    const Protocol p = protocols::unary_threshold(2);
    ReachabilityOptions tight;
    tight.max_nodes = 50;  // population 30 over 3 states needs C(32,2) = 496 nodes
    const StableAnalysis analysis(p, 30, tight);

    // Small slices fit the budget and answer correctly.
    EXPECT_EQ(analysis.stable_configs(3, 1).size(), 1u);  // {3·v2}
    Config accept(p.num_states());
    accept.set(*p.find_state("v2"), 4);
    EXPECT_EQ(analysis.stability(accept), Stability::kStable1);

    // All-slice reports force population 30 and must trip the node budget —
    // proof that the constructor and the small queries never materialised it.
    EXPECT_THROW(analysis.stable_counts(1), std::length_error);
    EXPECT_THROW(analysis.downward_closure_violation(), std::length_error);

    // Out-of-range queries are rejected without materialising anything.
    Config too_big(p.num_states());
    too_big.set(*p.find_state("v0"), 31);
    EXPECT_THROW(analysis.stability(too_big), std::invalid_argument);
}

// Screening soundness, exhaustively: whenever phase 1 refutes a candidate,
// the exact threshold is nullopt — and therefore the two-phase
// infer_threshold is result-identical to the exact one.  Same 3-state
// space as above, with a deliberately small interaction budget (soundness
// may not depend on it).
TEST(AnalysisSparse, ScreeningIsSoundOnExhaustiveThreeStateSweep) {
    ScreeningOptions screening;
    screening.runs = 1;
    screening.max_interactions = 1'000;

    std::size_t screened = 0, checked = 0;
    const auto sweep = [&](StateId p, StateId q, StateId p2, StateId q2) {
        for (int outputs = 0; outputs < 8; ++outputs) {
            ProtocolBuilder b;
            for (StateId s = 0; s < 3; ++s)
                b.add_state("q" + std::to_string(s), (outputs >> s) & 1);
            b.set_input("x", 0);
            b.add_transition(p, q, p2, q2);
            const Protocol protocol = std::move(b).build();
            const Verifier verifier(protocol);
            const auto exact = verifier.infer_threshold(5);
            if (verifier.screening_refutes_threshold(5, screening)) {
                ++screened;
                EXPECT_EQ(exact, std::nullopt)
                    << "screening refuted a genuine threshold: outputs mask " << outputs;
            }
            EXPECT_EQ(verifier.infer_threshold(5, screening), exact);
            ++checked;
        }
    };
    for (StateId p = 0; p < 3; ++p)
        for (StateId q = p; q < 3; ++q)
            for (StateId p2 = 0; p2 < 3; ++p2)
                for (StateId q2 = p2; q2 < 3; ++q2) {
                    if (p == p2 && q == q2) continue;
                    sweep(p, q, p2, q2);
                }
    EXPECT_EQ(checked, 8u * 30);
    // The sweep is full of oscillators and mixed-sink protocols; screening
    // must actually catch some of them or phase 1 is dead code.
    EXPECT_GT(screened, 0u);
}

// Hilbert backends on raw systems (not just protocol-shaped ones),
// including a system whose completion takes several frontier generations.
TEST(AnalysisSparse, HilbertBackendsAgreeOnRawSystems) {
    const auto both = [](const HomogeneousSystem& system) {
        HilbertOptions sparse, reference;
        sparse.compute = HilbertCompute::sparse;
        reference.compute = HilbertCompute::reference;
        EXPECT_EQ(hilbert_basis_equalities(system, sparse),
                  hilbert_basis_equalities(system, reference));
        EXPECT_EQ(generating_basis_inequalities(system, sparse),
                  generating_basis_inequalities(system, reference));
    };

    // x = y.
    both({2, {{1, -1}}});
    // 2x = 3y: minimal solution (3, 2), several generations out.
    both({2, {{2, -3}}});
    // x + y = 2z with a redundant doubled row.
    both({3, {{1, 1, -2}, {2, 2, -4}}});
    // Empty system: every unit vector is minimal.
    both({3, {}});

    Rng rng(0xd10);
    for (int round = 0; round < 40; ++round) {
        HomogeneousSystem system;
        system.num_vars = 2 + rng.below(3);
        const std::size_t rows = 1 + rng.below(2);
        for (std::size_t i = 0; i < rows; ++i) {
            std::vector<std::int64_t> row(system.num_vars);
            for (auto& a : row) a = static_cast<std::int64_t>(rng.below(5)) - 2;
            system.rows.push_back(std::move(row));
        }
        both(system);
    }
}

}  // namespace
}  // namespace ppsc
