// Tests for Dickson's lemma utilities, controlled bad sequences, and the
// fast-growing hierarchy (Section 4 substrate).
#include <gtest/gtest.h>

#include "wqo/dickson.hpp"
#include "wqo/fast_growing.hpp"

namespace ppsc {
namespace {

TEST(Dickson, GoodSequenceDetection) {
    const std::vector<NatVec> good = {{2, 0}, {0, 2}, {1, 2}};  // (0,2) <= (1,2)
    EXPECT_TRUE(is_good_sequence(good));
    const std::vector<NatVec> bad = {{2, 0}, {1, 1}, {0, 2}};  // pairwise incomparable
    EXPECT_FALSE(is_good_sequence(bad));
    EXPECT_FALSE(is_good_sequence(std::vector<NatVec>{}));
    EXPECT_FALSE(is_good_sequence(std::vector<NatVec>{{1, 1}}));
}

TEST(Dickson, MinimalElements) {
    const std::vector<NatVec> vectors = {{2, 0}, {1, 1}, {2, 1}, {0, 3}, {1, 1}};
    const auto minimal = minimal_elements(vectors);
    EXPECT_EQ(minimal.size(), 3u);  // (2,0), (1,1), (0,3); (2,1) dominated
    for (const auto& v : minimal) EXPECT_NE(v, (NatVec{2, 1}));
}

TEST(BadSequence, DimensionOneIsDeltaPlusOne) {
    // In N¹ a bad sequence is strictly decreasing from at most δ: length δ+1.
    for (std::int64_t delta = 0; delta <= 4; ++delta) {
        const auto result = longest_controlled_bad_sequence(1, delta);
        EXPECT_TRUE(result.exact);
        EXPECT_EQ(result.length, static_cast<std::size_t>(delta) + 1) << "delta=" << delta;
    }
}

TEST(BadSequence, WitnessIsActuallyBadAndControlled) {
    const auto result = longest_controlled_bad_sequence(2, 1);
    EXPECT_TRUE(result.exact);
    EXPECT_FALSE(is_good_sequence(result.witness));
    for (std::size_t i = 0; i < result.witness.size(); ++i) {
        for (const auto c : result.witness[i])
            EXPECT_LE(c, static_cast<std::int64_t>(i) + 1);
    }
}

TEST(BadSequence, DimensionTwoGrowsMuchFasterThanDimensionOne) {
    // The Figueira et al. phenomenon in miniature: the jump from d=1 to
    // d=2 already produces a large blow-up of the maximal length.
    const auto d1 = longest_controlled_bad_sequence(1, 1);
    const auto d2 = longest_controlled_bad_sequence(2, 1);
    ASSERT_TRUE(d1.exact);
    ASSERT_TRUE(d2.exact);
    EXPECT_EQ(d1.length, 2u);
    EXPECT_GT(d2.length, 2 * d1.length);
}

TEST(BadSequence, RejectsBadParameters) {
    EXPECT_THROW(longest_controlled_bad_sequence(0, 1), std::invalid_argument);
    EXPECT_THROW(longest_controlled_bad_sequence(2, -1), std::invalid_argument);
}

TEST(BadSequence, BudgetTruncationIsReported) {
    BadSequenceOptions tiny;
    tiny.max_nodes = 10;
    const auto result = longest_controlled_bad_sequence(2, 3, tiny);
    EXPECT_FALSE(result.exact);
}

TEST(SatNat, ArithmeticSaturates) {
    const SatNat big(SatNat::kCap - 1);
    EXPECT_FALSE(big.is_saturated());
    EXPECT_TRUE((big + big).is_saturated());
    EXPECT_TRUE((big * SatNat(3)).is_saturated());
    EXPECT_EQ((SatNat(6) * SatNat(7)).value(), 42u);
    EXPECT_EQ(SatNat::saturated().to_string(), ">=2^62");
}

TEST(FastGrowing, SmallLevelsMatchClosedForms) {
    // F_0(x) = x+1.
    EXPECT_EQ(fast_growing(0, 5).value(), 6u);
    // F_1(x) = 2x+1.
    for (std::uint64_t x = 0; x <= 10; ++x) EXPECT_EQ(fast_growing(1, x).value(), 2 * x + 1);
    // F_2(x) = 2^(x+1)(x+1) − 1.
    for (std::uint64_t x = 0; x <= 6; ++x)
        EXPECT_EQ(fast_growing(2, x).value(), ((x + 1) << (x + 1)) - 1) << x;
}

TEST(FastGrowing, LevelThreeExplodes) {
    EXPECT_EQ(fast_growing(3, 1).value(), 2047u);
    EXPECT_TRUE(fast_growing(3, 3).is_saturated());
    EXPECT_TRUE(fast_growing_omega(3).is_saturated());
    EXPECT_EQ(fast_growing_omega(2).value(), fast_growing(2, 2).value());
}

TEST(Ackermann, ClassicValues) {
    EXPECT_EQ(ackermann(0, 0).value(), 1u);
    EXPECT_EQ(ackermann(1, 1).value(), 3u);
    EXPECT_EQ(ackermann(2, 2).value(), 7u);
    EXPECT_EQ(ackermann(3, 3).value(), 61u);
    EXPECT_EQ(ackermann(2, 3).value(), 9u);
    EXPECT_EQ(ackermann(3, 0).value(), 5u);
    EXPECT_TRUE(ackermann(4, 2).is_saturated());  // 2^65536 − 3
}

TEST(Ackermann, A41IsExact) {
    // A(4,1) = 2^16 − 3 = 65533.
    EXPECT_EQ(ackermann(4, 1).value(), 65533u);
}

TEST(InverseAckermann, IsTinyForHugeInputs) {
    EXPECT_EQ(inverse_ackermann(1), 0);
    EXPECT_EQ(inverse_ackermann(4), 2);
    EXPECT_EQ(inverse_ackermann(60), 3);
    EXPECT_EQ(inverse_ackermann(62), 4);
    EXPECT_LE(inverse_ackermann(1ull << 62), 5);
}

}  // namespace
}  // namespace ppsc
