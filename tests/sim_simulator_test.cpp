// Tests for the random-scheduler simulator: convergence on verified
// protocols, agreement with the exhaustive verifier, determinism, and the
// soundness of both stability-detection mechanisms.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "protocols/modulo.hpp"
#include "protocols/threshold.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "verify/verifier.hpp"

namespace ppsc {
namespace {

TEST(Simulator, OutputTrapsForCollectorThreshold) {
    const Protocol p = protocols::collector_threshold(5);
    const Simulator sim(p);
    // W_1 must be exactly {T}: it is the only 1-output state and T,T pairs
    // are silent.
    const auto& w1 = sim.output_trap(1);
    for (std::size_t q = 0; q < p.num_states(); ++q) {
        EXPECT_EQ(w1[q], p.state_name(static_cast<StateId>(q)) == "T");
    }
}

TEST(Simulator, StepConservesAgents) {
    const Protocol p = protocols::collector_threshold(6);
    const Simulator sim(p);
    Rng rng(42);
    Config config = p.initial_config(9);
    for (int i = 0; i < 200; ++i) {
        sim.step(config, rng);
        EXPECT_EQ(config.size(), 9);
    }
}

TEST(Simulator, ConvergesToAcceptAboveThreshold) {
    const Protocol p = protocols::collector_threshold(6);
    const Simulator sim(p);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(seed);
        const SimulationResult result = sim.run_input(10, rng);
        EXPECT_TRUE(result.converged) << "seed " << seed;
        EXPECT_EQ(result.output, 1) << "seed " << seed;
    }
}

TEST(Simulator, ConvergesToRejectBelowThreshold) {
    const Protocol p = protocols::collector_threshold(6);
    const Simulator sim(p);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(seed);
        const SimulationResult result = sim.run_input(5, rng);
        EXPECT_TRUE(result.converged) << "seed " << seed;
        EXPECT_EQ(result.output, 0) << "seed " << seed;
    }
}

TEST(Simulator, DeterministicUnderSameSeed) {
    const Protocol p = protocols::unary_threshold(4);
    const Simulator sim(p);
    Rng rng1(99), rng2(99);
    const SimulationResult r1 = sim.run_input(7, rng1);
    const SimulationResult r2 = sim.run_input(7, rng2);
    EXPECT_EQ(r1.interactions, r2.interactions);
    EXPECT_EQ(r1.final_config, r2.final_config);
}

TEST(Simulator, SilentDetectionOnRejectingRun) {
    // unary_threshold rejection ends in a silent non-trap configuration.
    const Protocol p = protocols::unary_threshold(5);
    const Simulator sim(p);
    Rng rng(5);
    const SimulationResult result = sim.run_input(3, rng);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.output, 0);
    EXPECT_TRUE(sim.is_silent(result.final_config));
}

TEST(Simulator, IsProvablyStableSoundness) {
    // Every configuration the simulator declares stable must have a
    // consensus output that matches the verifier's verdict on a fair run.
    const Protocol p = protocols::collector_threshold(3);
    const Simulator sim(p);
    const Verifier verifier(p);
    for (AgentCount input = 2; input <= 7; ++input) {
        Rng rng(static_cast<std::uint64_t>(input));
        const SimulationResult result = sim.run_input(input, rng);
        ASSERT_TRUE(result.converged);
        const InputVerdict verdict = verifier.verify_input(input);
        ASSERT_TRUE(verdict.well_specified);
        EXPECT_EQ(result.output, verdict.computed) << "input " << input;
    }
}

TEST(Simulator, HonoursInteractionBudget) {
    // The oscillator never stabilises; the budget must stop the run.
    ProtocolBuilder b;
    const StateId a = b.add_state("A", 1);
    const StateId c = b.add_state("B", 0);
    b.set_input("x", a);
    b.add_transition(a, a, c, c);
    b.add_transition(c, c, a, a);
    const Protocol p = std::move(b).build();

    const Simulator sim(p);
    SimulationOptions options;
    options.max_interactions = 500;
    Rng rng(3);
    const SimulationResult result = sim.run(p.initial_config(2), rng, options);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.interactions, 500u);
}

TEST(Simulator, ParallelTimeIsInteractionsOverPopulation) {
    const Protocol p = protocols::unary_threshold(2);
    const Simulator sim(p);
    Rng rng(1);
    const SimulationResult result = sim.run_input(8, rng);
    EXPECT_DOUBLE_EQ(result.parallel_time, static_cast<double>(result.interactions) / 8.0);
}

TEST(Simulator, RejectsTooSmallPopulations) {
    const Protocol p = protocols::unary_threshold(2);
    const Simulator sim(p);
    Rng rng(1);
    EXPECT_THROW(sim.run(Config::single(p.num_states(), 0, 1), rng), std::invalid_argument);
}

TEST(ConvergenceSweep, ProducesSaneRows) {
    const Protocol p = protocols::collector_threshold(4);
    ConvergenceSweepOptions options;
    options.runs_per_size = 5;
    const auto rows = convergence_sweep(
        p, {4, 8, 16}, [](AgentCount i) { return i >= 4 ? 1 : 0; }, options);
    ASSERT_EQ(rows.size(), 3u);
    for (const auto& row : rows) {
        EXPECT_EQ(row.runs, 5u);
        EXPECT_EQ(row.converged_runs, 5u) << "population " << row.population;
        EXPECT_DOUBLE_EQ(row.correct_fraction, 1.0) << "population " << row.population;
        EXPECT_GT(row.mean_parallel_time, 0.0);
    }
}

TEST(RunningStats, WelfordMatchesDirectComputation) {
    RunningStats stats;
    const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (const double v : values) stats.add(v);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.stddev(), 2.13809, 1e-4);  // sample stddev
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(Samples, QuantilesNearestRank) {
    Samples samples;
    for (int i = 1; i <= 99; ++i) samples.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(samples.median(), 50.0);
    EXPECT_DOUBLE_EQ(samples.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(samples.quantile(1.0), 99.0);
}

}  // namespace
}  // namespace ppsc
