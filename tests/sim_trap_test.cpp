// Stable-consensus detection: the worklist trap fixpoint must be
// *identical* (not merely equally sound) to the reference pass structure —
// the evict-both-pre-states rule is scan-order dependent, so this is a real
// contract, asserted exhaustively on small protocols and on the E11 family
// — and the incremental per-trap outside-support counters behind the O(1)
// stability probes must agree with the from-scratch probe after arbitrarily
// long trajectories under both pair-selection modes.
#include "sim/traps.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "protocols/double_exp_threshold.hpp"
#include "protocols/threshold.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace ppsc {
namespace {

void expect_traps_identical(const Protocol& protocol, const std::string& what) {
    for (int b = 0; b < 2; ++b) {
        const std::vector<bool> worklist = compute_output_trap(protocol, b, TrapCompute::worklist);
        const std::vector<bool> reference =
            compute_output_trap(protocol, b, TrapCompute::reference);
        EXPECT_EQ(worklist, reference) << what << ", b = " << b;
    }
}

// Every protocol over 3 states with at most two non-silent transitions and
// every output assignment: 3728 protocols, including zero-non-silent-pair
// ones (the empty transition set) and multi-rule nondeterministic pairs
// (two transitions sharing a pre-pair).
TEST(TrapCompute, ExhaustiveThreeStateSweep) {
    struct Candidate {
        StateId p, q, p2, q2;
    };
    std::vector<Candidate> candidates;
    for (StateId p = 0; p < 3; ++p)
        for (StateId q = p; q < 3; ++q)
            for (StateId p2 = 0; p2 < 3; ++p2)
                for (StateId q2 = p2; q2 < 3; ++q2) {
                    if (p == p2 && q == q2) continue;  // silent
                    candidates.push_back({p, q, p2, q2});
                }
    ASSERT_EQ(candidates.size(), 30u);

    std::size_t checked = 0;
    const auto sweep_outputs = [&](const std::vector<Candidate>& transitions) {
        for (int outputs = 0; outputs < 8; ++outputs) {
            ProtocolBuilder b;
            for (StateId s = 0; s < 3; ++s)
                b.add_state("q" + std::to_string(s), (outputs >> s) & 1);
            b.set_input("x", 0);
            for (const Candidate& t : transitions) b.add_transition(t.p, t.q, t.p2, t.q2);
            const Protocol protocol = std::move(b).build();
            expect_traps_identical(protocol, "outputs mask " + std::to_string(outputs));
            ++checked;
        }
    };

    sweep_outputs({});  // zero non-silent pairs
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        sweep_outputs({candidates[i]});
        for (std::size_t j = i + 1; j < candidates.size(); ++j)
            sweep_outputs({candidates[i], candidates[j]});
    }
    EXPECT_EQ(checked, 8u * (1 + 30 + 30 * 29 / 2));
}

// Regression pinning the determinism contract: the fixpoint genuinely
// depends on the processing order.  A worklist that re-examined freshly
// triggered transitions immediately (plain pop-min, ignoring the
// reference's pass structure) would evict {x, y, z} here; the reference's
// full ascending passes evict {x, y, w}.
TEST(TrapCompute, ScanOrderDependenceFollowsReference) {
    ProtocolBuilder b;
    const StateId x = b.add_state("x", 0);
    const StateId y = b.add_state("y", 0);
    const StateId z = b.add_state("z", 0);
    const StateId w = b.add_state("w", 0);
    const StateId v = b.add_state("v", 1);
    b.set_input("in", x);
    b.add_transition(y, z, x, x);  // t0: violated only once x is evicted
    b.add_transition(x, x, v, v);  // t1: evicts x (v is outside the 0-trap)
    b.add_transition(y, w, v, v);  // t2: evicts y and w in the same pass
    const Protocol protocol = std::move(b).build();

    const std::vector<bool> trap = compute_output_trap(protocol, 0, TrapCompute::worklist);
    EXPECT_FALSE(trap[static_cast<std::size_t>(x)]);
    EXPECT_FALSE(trap[static_cast<std::size_t>(y)]);
    EXPECT_FALSE(trap[static_cast<std::size_t>(w)]);
    // z survives: by the time t0 becomes violated (pass 2), y is already
    // out, so t0 never acts.  Immediate re-examination would kill z instead.
    EXPECT_TRUE(trap[static_cast<std::size_t>(z)]);
    expect_traps_identical(protocol, "scan-order regression");
}

// Randomised protocols over 5 states with up to 8 transitions: plenty of
// multi-rule pairs, chained evictions and dead states.
TEST(TrapCompute, RandomisedFiveStateSweep) {
    Rng rng(0x7a9);
    for (int round = 0; round < 400; ++round) {
        ProtocolBuilder b;
        for (StateId s = 0; s < 5; ++s)
            b.add_state("q" + std::to_string(s), static_cast<int>(rng.below(2)));
        b.set_input("x", 0);
        const int transitions = 1 + static_cast<int>(rng.below(8));
        for (int t = 0; t < transitions; ++t) {
            b.add_transition(static_cast<StateId>(rng.below(5)), static_cast<StateId>(rng.below(5)),
                             static_cast<StateId>(rng.below(5)),
                             static_cast<StateId>(rng.below(5)));
        }
        const Protocol protocol = std::move(b).build();
        expect_traps_identical(protocol, "random round " + std::to_string(round));
    }
}

// The E11 family itself, plus the threshold workhorse and a simulator-level
// equality check (a Simulator seeded with either algorithm must expose the
// same traps and therefore the same trajectories and verdicts).
TEST(TrapCompute, FamiliesAndSimulatorAgree) {
    expect_traps_identical(protocols::double_exp_threshold(6), "double_exp(6)");
    expect_traps_identical(protocols::double_exp_threshold_dense(3), "double_exp_dense(3)");
    expect_traps_identical(protocols::collector_threshold(17), "collector(17)");

    const Protocol p = protocols::double_exp_threshold(5);
    const Simulator worklist(p, PairSelect::automatic, TrapCompute::worklist);
    const Simulator reference(p, PairSelect::automatic, TrapCompute::reference);
    for (int b = 0; b < 2; ++b) EXPECT_EQ(worklist.output_trap(b), reference.output_trap(b));

    Rng rng_w(123), rng_r(123);
    const SimulationResult a = worklist.run_input(40, rng_w);
    const SimulationResult c = reference.run_input(40, rng_r);
    EXPECT_EQ(a.interactions, c.interactions);
    EXPECT_EQ(a.final_config, c.final_config);
    EXPECT_EQ(a.converged, c.converged);
}

TEST(TransitionIncidence, ListsProducersAscendingAndDeduped) {
    ProtocolBuilder b;
    const StateId a = b.add_state("a", 0);
    const StateId c = b.add_state("c", 0);
    const StateId d = b.add_state("d", 1);
    b.set_input("x", a);
    b.add_transition(a, a, c, d);  // t0: produces c, d
    b.add_transition(a, c, d, d);  // t1: produces d (listed once)
    b.add_transition(c, d, a, c);  // t2: produces a, c
    const Protocol p = std::move(b).build();

    const auto as_vector = [](std::span<const TransitionId> span) {
        return std::vector<TransitionId>(span.begin(), span.end());
    };
    EXPECT_EQ(as_vector(p.transitions_producing(a)), (std::vector<TransitionId>{2}));
    EXPECT_EQ(as_vector(p.transitions_producing(c)), (std::vector<TransitionId>{0, 2}));
    EXPECT_EQ(as_vector(p.transitions_producing(d)), (std::vector<TransitionId>{0, 1}));
}

// The O(1) cached stability probe must agree with the from-scratch probe
// (forced through a fresh copy of the configuration, which misses the
// cache) at every checkpoint of long batched trajectories, under both
// pair-selection modes.
TEST(StabilityCounters, ConsistentAlongLongBatchTrajectories) {
    const std::array<Protocol, 2> protocols_under_test = {
        protocols::collector_threshold(32), protocols::double_exp_threshold_dense(3)};
    for (const Protocol& protocol : protocols_under_test) {
        for (const PairSelect select : {PairSelect::fenwick, PairSelect::scan}) {
            const Simulator sim(protocol, select);
            Config config = protocol.initial_config(100);
            Rng rng(0xbead);
            bool saw_stable = false;
            for (int checkpoint = 0; checkpoint < 60; ++checkpoint) {
                sim.run_batch(config, rng, 2000);
                const bool cached = sim.is_provably_stable(config);
                const Config fresh = config;  // different object: cache miss
                EXPECT_EQ(cached, sim.is_provably_stable(fresh))
                    << "checkpoint " << checkpoint;
                EXPECT_EQ(sim.is_silent(config), sim.is_silent(fresh))
                    << "checkpoint " << checkpoint;
                saw_stable = saw_stable || cached;
            }
            // Population 100 ≥ both thresholds: the accepting epidemic must
            // have trapped the population within the budget above.
            EXPECT_TRUE(saw_stable);
        }
    }
}

TEST(StabilityCounters, RunBatchStopsWhenStableWithoutChangingTheTrajectory) {
    const Protocol protocol = protocols::collector_threshold(8);
    const Simulator sim(protocol);
    constexpr std::uint64_t kBudget = 50'000'000;

    Config stopped = protocol.initial_config(32);
    Rng rng(77);
    const std::uint64_t done = sim.run_batch(stopped, rng, kBudget, /*stop_when_stable=*/true);
    ASSERT_LT(done, kBudget);
    EXPECT_TRUE(sim.is_provably_stable(stopped));
    EXPECT_EQ(protocol.consensus_output(stopped), 1);

    // Replaying exactly `done` interactions without the early stop lands on
    // the same configuration: stopping is pure observation.
    Config replay = protocol.initial_config(32);
    Rng rng_replay(77);
    EXPECT_EQ(sim.run_batch(replay, rng_replay, done), done);
    EXPECT_EQ(replay, stopped);

    // An already-stable configuration executes nothing under the option.
    Rng rng_again(78);
    EXPECT_EQ(sim.run_batch(stopped, rng_again, kBudget, /*stop_when_stable=*/true), 0u);
}

TEST(StabilityCounters, OscillatorNeverStopsEarly) {
    ProtocolBuilder b;
    const StateId a = b.add_state("A", 1);
    const StateId c = b.add_state("B", 0);
    b.set_input("x", a);
    b.add_transition(a, a, c, c);
    b.add_transition(c, c, a, a);
    const Protocol p = std::move(b).build();
    const Simulator sim(p);
    Config config = p.initial_config(2);
    Rng rng(9);
    EXPECT_EQ(sim.run_batch(config, rng, 4096, /*stop_when_stable=*/true), 4096u);
    EXPECT_FALSE(sim.is_provably_stable(config));
}

// The silence check must agree with a brute-force scan over all state
// pairs whichever candidate set (non-silent pair list vs. support square)
// it picks.
TEST(SilenceCheck, MatchesBruteForceOnRandomConfigurations) {
    const Protocol protocol = protocols::double_exp_threshold_dense(4);
    const Simulator sim(protocol);
    const auto n = static_cast<StateId>(protocol.num_states());
    Rng rng(0x511e);
    for (int round = 0; round < 50; ++round) {
        Config config(protocol.num_states());
        // Mix wide supports (pairs path) and narrow ones (support² path).
        const int occupied = 1 + static_cast<int>(rng.below(round % 2 == 0 ? 3 : n));
        for (int i = 0; i < occupied; ++i)
            config.add(static_cast<StateId>(rng.below(static_cast<std::uint64_t>(n))),
                       1 + static_cast<AgentCount>(rng.below(3)));
        bool brute_silent = true;
        for (StateId p = 0; p < n && brute_silent; ++p) {
            for (StateId q = p; q < n && brute_silent; ++q) {
                const bool enabled =
                    p == q ? config[p] >= 2 : config[p] >= 1 && config[q] >= 1;
                if (enabled && !protocol.pair_is_silent(p, q)) brute_silent = false;
            }
        }
        EXPECT_EQ(sim.is_silent(config), brute_silent) << "round " << round;
    }
}

}  // namespace
}  // namespace ppsc
