// Regression tests for the unordered-container audit: the tree's
// unordered_map/unordered_set uses in trajectory-affecting code
// (Protocol::pair_of in src/core/protocol.cpp, the `seen` dedup sets in
// src/diophantine/pottier.cpp, ReachabilityGraph::index_ in
// src/verify/reachability.hpp) are lookup- or dedup-only — nothing
// observable may depend on libstdc++ bucket iteration order.  ppsc_lint
// rule R2 keeps new *iteration* out of these files; these tests pin the
// behavioural half of the audit: permuting the order in which the keys are
// *inserted* (transition order, root order, constraint-row order) must
// leave every observable result identical, and repeated identical calls
// must reproduce byte-identical outputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "core/protocol.hpp"
#include "diophantine/pottier.hpp"
#include "verify/reachability.hpp"

namespace ppsc {
namespace {

// --- Protocol::pair_of (lookup-only unordered_map) -------------------------

/// A protocol with several non-silent pairs, one of which carries two
/// rules; `reversed` flips the transition insertion order.
Protocol build_fan(bool reversed) {
    ProtocolBuilder b;
    const StateId a = b.add_state("A", 0);
    const StateId c = b.add_state("B", 0);
    const StateId d = b.add_state("C", 0);
    const StateId e = b.add_state("D", 1);
    b.set_input("x", a);
    struct Row {
        StateId p, q, p2, q2;
    };
    std::vector<Row> rows = {
        {a, a, c, c}, {a, c, d, d}, {c, d, e, e}, {d, d, e, a}, {d, d, e, c}, {a, e, e, e},
    };
    if (reversed) std::reverse(rows.begin(), rows.end());
    for (const Row& row : rows) b.add_transition(row.p, row.q, row.p2, row.q2);
    return std::move(b).build();
}

/// The rules of pair (p, q) as a canonically sorted list of Transitions —
/// the order-free semantic content of the pair lookup.
std::vector<Transition> pair_rules(const Protocol& protocol, StateId p, StateId q) {
    std::vector<Transition> rules;
    for (const TransitionId id : protocol.rules_for_pair(p, q)) {
        rules.push_back(protocol.transitions()[static_cast<std::size_t>(id)]);
    }
    std::sort(rules.begin(), rules.end(), [](const Transition& x, const Transition& y) {
        return std::tie(x.pre1, x.pre2, x.post1, x.post2) <
               std::tie(y.pre1, y.pre2, y.post1, y.post2);
    });
    return rules;
}

TEST(OrderIndependence, PairLookupIgnoresTransitionInsertionOrder) {
    const Protocol forward = build_fan(false);
    const Protocol backward = build_fan(true);
    ASSERT_EQ(forward.num_states(), backward.num_states());
    ASSERT_EQ(forward.num_transitions(), backward.num_transitions());

    // Both insertion orders and both rule-table representations must agree
    // on the rules of every pair.
    const auto n = static_cast<StateId>(forward.num_states());
    for (const RuleTable kind : {RuleTable::dense, RuleTable::sparse}) {
        const Protocol f = forward.with_rule_table(kind);
        const Protocol r = backward.with_rule_table(kind);
        for (StateId p = 0; p < n; ++p) {
            for (StateId q = p; q < n; ++q) {
                EXPECT_EQ(pair_rules(f, p, q), pair_rules(r, p, q))
                    << "pair (" << static_cast<int>(p) << ", " << static_cast<int>(q)
                    << ") table " << static_cast<int>(kind);
            }
        }
    }
}

// --- ReachabilityGraph::index_ (lookup-only unordered_map) -----------------

/// Reachability verdicts keyed by configuration (NodeIds are exploration-
/// order-dependent and deliberately not compared).
struct Verdicts {
    std::size_t num_nodes = 0;
    std::size_t num_edges = 0;
    int num_bottom_components = 0;
    // For each explored config (found via the other graph's configs): is it
    // in the backward closure of the bottom SCCs?
    std::vector<std::pair<Config, bool>> can_reach_bottom;
};

Verdicts verdicts_of(const ReachabilityGraph& graph) {
    Verdicts v;
    v.num_nodes = graph.num_nodes();
    v.num_edges = graph.num_edges();
    const auto scc = graph.compute_sccs();
    std::vector<bool> bottoms(static_cast<std::size_t>(graph.num_nodes()), false);
    for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
        const auto comp = static_cast<std::size_t>(scc.component_of[node]);
        if (scc.is_bottom[comp]) bottoms[node] = true;
    }
    for (std::size_t comp = 0; comp < static_cast<std::size_t>(scc.num_components); ++comp) {
        if (scc.is_bottom[comp]) ++v.num_bottom_components;
    }
    const std::vector<bool> closure = graph.backward_closure(bottoms);
    for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
        v.can_reach_bottom.emplace_back(graph.config(static_cast<NodeId>(node)), closure[node]);
    }
    std::sort(v.can_reach_bottom.begin(), v.can_reach_bottom.end(),
              [](const auto& x, const auto& y) { return x.first.counts() < y.first.counts(); });
    return v;
}

TEST(OrderIndependence, ReachabilityVerdictsIgnoreRootOrder) {
    // Epidemic with a side state: X,A -> A,A and X,B -> B,B compete.
    ProtocolBuilder b;
    const StateId a = b.add_state("A", 1);
    const StateId c = b.add_state("B", 0);
    const StateId x = b.add_state("X", 0);
    b.set_input("x", x);
    b.add_transition(x, a, a, a);
    b.add_transition(x, c, c, c);
    Protocol p = std::move(b).build();

    Config r1(3), r2(3), r3(3);
    r1.set(x, 3);
    r1.set(a, 1);
    r2.set(x, 3);
    r2.set(c, 1);
    r3.set(x, 2);
    r3.set(a, 1);
    r3.set(c, 1);

    const std::vector<Config> order_a = {r1, r2, r3};
    const std::vector<Config> order_b = {r3, r1, r2};
    const auto va = verdicts_of(ReachabilityGraph::explore(p, order_a, {}));
    const auto vb = verdicts_of(ReachabilityGraph::explore(p, order_b, {}));

    EXPECT_EQ(va.num_nodes, vb.num_nodes);
    EXPECT_EQ(va.num_edges, vb.num_edges);
    EXPECT_EQ(va.num_bottom_components, vb.num_bottom_components);
    ASSERT_EQ(va.can_reach_bottom.size(), vb.can_reach_bottom.size());
    for (std::size_t i = 0; i < va.can_reach_bottom.size(); ++i) {
        EXPECT_EQ(va.can_reach_bottom[i].first, vb.can_reach_bottom[i].first);
        EXPECT_EQ(va.can_reach_bottom[i].second, vb.can_reach_bottom[i].second) << "config " << i;
    }
}

// --- Pottier `seen` sets (insert-only dedup unordered_sets) ----------------

TEST(OrderIndependence, HilbertBasisIgnoresRowOrderAndIsRepeatable) {
    // 2a + b = 2c together with a + b = c + d; minimal solutions are small
    // enough to enumerate but plural enough to expose ordering leaks.
    HomogeneousSystem forward;
    forward.num_vars = 4;
    forward.rows = {{2, 1, -2, 0}, {1, 1, -1, -1}};
    HomogeneousSystem backward;
    backward.num_vars = 4;
    backward.rows = {{1, 1, -1, -1}, {2, 1, -2, 0}};

    for (const HilbertCompute compute : {HilbertCompute::sparse, HilbertCompute::reference}) {
        HilbertOptions options;
        options.compute = compute;

        // Identical input twice: the dedup sets must not leak bucket order
        // into the result — the output must be byte-identical, not merely
        // set-equal.
        const auto once = hilbert_basis_equalities(forward, options);
        const auto twice = hilbert_basis_equalities(forward, options);
        EXPECT_EQ(once, twice) << "compute " << static_cast<int>(compute);

        // Permuted constraint rows: same solution set.
        auto of_forward = hilbert_basis_equalities(forward, options);
        auto of_backward = hilbert_basis_equalities(backward, options);
        std::sort(of_forward.begin(), of_forward.end());
        std::sort(of_backward.begin(), of_backward.end());
        EXPECT_EQ(of_forward, of_backward) << "compute " << static_cast<int>(compute);
        EXPECT_FALSE(of_forward.empty());
    }
}

}  // namespace
}  // namespace ppsc
