// Tests for the downward-closed set algebra (the paper's Section 3
// representation of stable sets).
#include "stable/downward.hpp"

#include <gtest/gtest.h>

#include "protocols/threshold.hpp"

namespace ppsc {
namespace {

BasisElement element(std::vector<AgentCount> base, std::vector<StateId> pump) {
    return BasisElement{Config::from_counts(std::move(base)), std::move(pump)};
}

TEST(DownwardClosedSet, EmptySetContainsNothing) {
    DownwardClosedSet empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_FALSE(empty.contains(Config::from_counts({0, 0})));
    EXPECT_EQ(empty.to_string(), "∅");
}

TEST(DownwardClosedSet, ClosureOfSingleConfig) {
    const auto set = DownwardClosedSet::closure_of(Config::from_counts({2, 1}));
    EXPECT_TRUE(set.contains(Config::from_counts({2, 1})));
    EXPECT_TRUE(set.contains(Config::from_counts({0, 1})));
    EXPECT_TRUE(set.contains(Config::from_counts({2, 0})));
    EXPECT_FALSE(set.contains(Config::from_counts({3, 0})));
    EXPECT_FALSE(set.contains(Config::from_counts({0, 2})));
    EXPECT_EQ(set.norm(), 2);
}

TEST(DownwardClosedSet, PumpDirectionsAreUnbounded) {
    const DownwardClosedSet set({element({1, 0, 2}, {0})});
    EXPECT_TRUE(set.contains(Config::from_counts({100, 0, 2})));
    EXPECT_TRUE(set.contains(Config::from_counts({100, 0, 1})));
    EXPECT_FALSE(set.contains(Config::from_counts({100, 1, 2})));
    EXPECT_FALSE(set.contains(Config::from_counts({0, 0, 3})));
}

TEST(DownwardClosedSet, NormalisationDropsSubsumedElements) {
    // ({1,0}, {q0}) subsumes ({0,0}, {}) and ({3,0} ≤ pumped).
    const DownwardClosedSet set({element({1, 0}, {0}), element({0, 0}, {}),
                                 element({3, 0}, {0})});
    // ({3,0},{q0}) and ({1,0},{q0}) denote the same set (mutual
    // subsumption); exactly one representative survives — the first, with
    // the smaller corner.
    EXPECT_EQ(set.num_elements(), 1u);
    EXPECT_EQ(set.norm(), 1);
}

TEST(DownwardClosedSet, UnionAndCovers) {
    const DownwardClosedSet a({element({2, 0}, {1})});
    const DownwardClosedSet b({element({0, 1}, {})});
    const DownwardClosedSet both = a.unified_with(b);
    EXPECT_TRUE(both.covers(a));
    EXPECT_TRUE(both.covers(b));
    EXPECT_FALSE(b.covers(a));
    // b ⊆ a: (0,1) ≤ (2,0)+N^{q1}? (0,1): q1 excess 1 pumpable ✓.
    EXPECT_TRUE(a.covers(b));
    EXPECT_EQ(both.num_elements(), 1u);  // b got absorbed
}

TEST(DownwardClosedSet, EmpiricalBasisDenotesTheStableSet) {
    // The empirical basis of SC_1 for unary_threshold(2), interpreted as a
    // DownwardClosedSet, must contain exactly the 1-stable configurations
    // of every computed slice... restricted to downward closure: SC_1 is
    // {k·v2, k >= 2} plus all sub-configurations of those — which within a
    // slice of fixed size is just {k·v2}.
    const Protocol p = protocols::unary_threshold(2);
    const StableAnalysis analysis(p, 6);
    const DownwardClosedSet set(analysis.empirical_basis(1));
    for (AgentCount population = 2; population <= 6; ++population) {
        for (const Config& config : analysis.stable_configs(population, 1)) {
            EXPECT_TRUE(set.contains(config)) << config.to_string();
        }
    }
    // And it must not contain unstable configurations.
    Config mixed(p.num_states());
    mixed.set(*p.find_state("v1"), 1);
    mixed.set(*p.find_state("v2"), 1);
    EXPECT_FALSE(set.contains(mixed));
}

TEST(DownwardClosedSet, ToStringShowsStructure) {
    const DownwardClosedSet set({element({2, 0}, {1})});
    const std::string names[] = {"a", "b"};
    EXPECT_EQ(set.to_string(names), "{2·a}+N^{b}");
}

}  // namespace
}  // namespace ppsc
