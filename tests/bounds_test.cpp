// Tests for the paper's bound formulas (Definitions 3/6, Lemma 3.2,
// Theorems 2.2 and 5.9).
#include <gtest/gtest.h>

#include "bounds/paper_bounds.hpp"
#include "protocols/threshold.hpp"

namespace ppsc {
namespace {

TEST(PaperBounds, SmallBasisExponentExactValues) {
    // 2(2n+1)!+1: n=1 -> 13, n=2 -> 241, n=3 -> 10081.
    EXPECT_EQ(bounds::small_basis_exponent(1).to_u64(), 13u);
    EXPECT_EQ(bounds::small_basis_exponent(2).to_u64(), 241u);
    EXPECT_EQ(bounds::small_basis_exponent(3).to_u64(), 10081u);
}

TEST(PaperBounds, BetaExactForTinyN) {
    const auto beta1 = bounds::small_basis_beta_exact(1);
    ASSERT_TRUE(beta1.has_value());
    EXPECT_EQ(beta1->to_u64(), 1ull << 13);
    const auto beta3 = bounds::small_basis_beta_exact(3);
    ASSERT_TRUE(beta3.has_value());
    EXPECT_EQ(beta3->bit_length(), 10082u);
    // n = 6: exponent 2·13!+1 ≈ 1.2e10 bits — not materialisable.
    EXPECT_FALSE(bounds::small_basis_beta_exact(6).has_value());
}

TEST(PaperBounds, BetaLogDomainAgreesWithExact) {
    const LogNum beta2 = bounds::small_basis_beta(2);
    EXPECT_NEAR(static_cast<double>(beta2.log2_value()), 241.0, 1e-6);
}

TEST(PaperBounds, ThetaMatchesFactorialExponent) {
    // ϑ(2) = 2^(6!) = 2^720.
    EXPECT_NEAR(static_cast<double>(bounds::theta(2).log2_value()), 720.0, 1e-6);
}

TEST(PaperBounds, MaxTransitionsFormula) {
    // n = 2: 3 pre-pairs × 2 non-silent successors = 6.
    EXPECT_EQ(bounds::max_transitions(2).to_u64(), 6u);
    // n = 3: 6 × 5 = 30.
    EXPECT_EQ(bounds::max_transitions(3).to_u64(), 30u);
}

TEST(PaperBounds, Theorem59ChainHoldsForSmallN) {
    for (std::size_t n = 2; n <= 7; ++n) {
        const auto chain = bounds::theorem59_chain(n);
        EXPECT_TRUE(chain.holds) << "n=" << n;
        EXPECT_FALSE(chain.lhs.is_zero());
        // The final bound dominates by an enormous margin.
        if (!chain.rhs.is_infinite()) {
            EXPECT_LT(static_cast<double>(chain.lhs.log2_value()),
                      static_cast<double>(chain.rhs.log2_value()))
                << "n=" << n;
        }
    }
}

TEST(PaperBounds, Theorem59ChainForConcreteProtocol) {
    const Protocol p = protocols::collector_threshold(6);
    const auto chain = bounds::theorem59_chain_for(p);
    EXPECT_EQ(chain.n, p.num_states());
    EXPECT_TRUE(chain.holds);
    // The protocol's actual η = 6 sits astronomically below the bound.
    EXPECT_GT(static_cast<double>(chain.rhs.log2_value()), 64.0);
}

TEST(PaperBounds, BusyBeaverLowerWitnesses) {
    const auto lower5 = bounds::busy_beaver_lower(5);
    EXPECT_EQ(lower5.unary_eta, 4);
    EXPECT_EQ(lower5.binary_eta, 8);  // P'_3: states {0,1,2,4,8} = 5, eta = 8
    EXPECT_GE(lower5.best(), 8);

    // Ω(2^n) growth: doubling per extra state from the binary family.
    const auto lower10 = bounds::busy_beaver_lower(10);
    EXPECT_EQ(lower10.binary_eta, 256);
    EXPECT_THROW(bounds::busy_beaver_lower(1), std::invalid_argument);
}

TEST(PaperBounds, CollectorLowerBoundIsConsistent) {
    for (std::size_t n = 3; n <= 12; ++n) {
        const auto lower = bounds::busy_beaver_lower(n);
        if (lower.collector_eta > 0) {
            EXPECT_LE(protocols::collector_threshold_states(lower.collector_eta), n)
                << "n=" << n;
        }
    }
}

TEST(PaperBounds, BblLowerIsDoublyExponential) {
    EXPECT_NEAR(static_cast<double>(bounds::bbl_lower(4).log2_value()), 16.0, 1e-9);
    EXPECT_NEAR(static_cast<double>(bounds::bbl_lower(10).log2_value()), 1024.0, 1e-9);
}

TEST(PaperBounds, BusyBeaverBracketPlacesMeasurementsBetweenTheorems) {
    // The measured BB(3) = 3 (tests/search_test.cpp) against the paper:
    // constructions reach 2 with 3 states, and ϑ(3) is astronomically above.
    const auto bracket = bounds::busy_beaver_bracket(3, 3);
    EXPECT_EQ(bracket.construction_lower, bounds::busy_beaver_lower(3).best());
    EXPECT_TRUE(bracket.reaches_construction);
    EXPECT_TRUE(bracket.below_upper);

    // A measurement below the constructive witness flags an incomplete
    // search rather than silently passing.
    const auto incomplete = bounds::busy_beaver_bracket(5, 3);
    EXPECT_EQ(incomplete.construction_lower, 8);
    EXPECT_FALSE(incomplete.reaches_construction);
    EXPECT_TRUE(incomplete.below_upper);
}

TEST(PaperBounds, BblUpperDescriptionMentionsHierarchy) {
    const std::string text = bounds::bbl_upper_description(3, 1);
    EXPECT_NE(text.find("F_omega"), std::string::npos);
    EXPECT_NE(text.find("Theorem 4.5"), std::string::npos);
}

}  // namespace
}  // namespace ppsc
