// The sparse rule table (RuleTable::sparse): the open-addressed pair → id
// map against the dense triangular reference, edge cases (no non-silent
// pairs, a single self pair), automatic representation selection at the
// dense cap, trajectory identity between the two representations — per
// seed on long batches and exhaustively on the 4995-config sweep — and the
// |Q| ≥ 10⁵ regime the sparse table unlocks.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "protocols/double_exp_threshold.hpp"
#include "sim/simulator.hpp"
#include "support/hash.hpp"

namespace ppsc {
namespace {

// Token-merge chain with `num_states` states: c_i,c_i -> z,c_{i+1}, all
// outputs 0.  Θ(|Q|) non-silent pairs (all self pairs), cheap to build at
// any size — the shape the sparse table exists for.
Protocol merge_chain(std::size_t num_states) {
    ProtocolBuilder b;
    const StateId z = b.add_state("z", 0);
    std::vector<StateId> chain(num_states - 1);
    for (std::size_t i = 0; i + 1 < num_states; ++i)
        chain[i] = b.add_state("c" + std::to_string(i), 0);
    b.set_input("x", chain[0]);
    for (std::size_t i = 0; i + 2 < num_states; ++i)
        b.add_transition(chain[i], chain[i], z, chain[i + 1]);
    return std::move(b).build();
}

// Every pair lookup of `a` and `b` agrees: pair ids, silence, and the rule
// spans over all unordered state pairs.
void expect_identical_lookups(const Protocol& a, const Protocol& b) {
    ASSERT_EQ(a.num_states(), b.num_states());
    for (std::size_t p = 0; p < a.num_states(); ++p) {
        for (std::size_t q = p; q < a.num_states(); ++q) {
            const auto sp = static_cast<StateId>(p), sq = static_cast<StateId>(q);
            ASSERT_EQ(a.pair_id(sp, sq), b.pair_id(sp, sq)) << p << "," << q;
            const auto rules_a = a.rules_for_pair(sp, sq);
            const auto rules_b = b.rules_for_pair(sp, sq);
            ASSERT_EQ(rules_a.size(), rules_b.size()) << p << "," << q;
            for (std::size_t i = 0; i < rules_a.size(); ++i)
                EXPECT_EQ(rules_a[i], rules_b[i]) << p << "," << q;
        }
    }
}

TEST(DenseIndexMap, FindsEveryKeyAndMissesOthers) {
    // Adjacent packed pairs stress the mixer (dense in both halves); the
    // map must resolve every inserted key and miss everything else.
    std::vector<std::uint64_t> keys;
    for (std::uint64_t p = 0; p < 40; ++p) {
        for (std::uint64_t q = p; q < 40; q += (p % 3) + 1) keys.push_back((p << 32) | q);
    }
    DenseIndexMap map;
    map.assign(keys);
    for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(map.find(keys[i]), i);
    EXPECT_EQ(map.find((std::uint64_t{41} << 32) | 41), DenseIndexMap::kMissing);
    EXPECT_EQ(map.find(0x7fffffff00000000ull), DenseIndexMap::kMissing);
    EXPECT_GT(map.memory_bytes(), keys.size() * 12);  // ≥ 2× load headroom

    map.assign({});
    EXPECT_EQ(map.find(0), DenseIndexMap::kMissing);
}

TEST(SparseRuleTable, ZeroNonsilentPairs) {
    // A protocol whose every pair is silent: both representations must
    // report kNoPair everywhere, and a simulation is silent from the start.
    for (const RuleTable kind : {RuleTable::dense, RuleTable::sparse}) {
        ProtocolBuilder b;
        const StateId a = b.add_state("a", 0);
        b.add_state("b", 1);
        b.set_input("x", a);
        b.set_rule_table(kind);
        const Protocol p = std::move(b).build();
        EXPECT_EQ(p.rule_table(), kind);
        EXPECT_TRUE(p.nonsilent_pairs().empty());
        for (StateId s = 0; s < 2; ++s) {
            for (StateId t = s; t < 2; ++t) {
                EXPECT_EQ(p.pair_id(s, t), Protocol::kNoPair);
                EXPECT_TRUE(p.rules_for_pair(s, t).empty());
            }
        }
        const Simulator simulator(p);
        Rng rng(1);
        const SimulationResult result = simulator.run_input(5, rng);
        EXPECT_TRUE(result.converged);
        EXPECT_EQ(result.interactions, 0u);
    }
}

TEST(SparseRuleTable, SingleSelfPair) {
    for (const RuleTable kind : {RuleTable::dense, RuleTable::sparse}) {
        ProtocolBuilder b;
        const StateId a = b.add_state("a", 0);
        const StateId t = b.add_state("t", 1);
        b.set_input("x", a);
        b.add_transition(a, a, t, t);
        b.set_rule_table(kind);
        const Protocol p = std::move(b).build();
        EXPECT_EQ(p.pair_id(a, a), 0u);
        EXPECT_EQ(p.self_pair(a), 0u);
        EXPECT_EQ(p.pair_id(a, t), Protocol::kNoPair);
        EXPECT_EQ(p.pair_id(t, t), Protocol::kNoPair);
        EXPECT_TRUE(p.pair_neighbors(a).empty());
        ASSERT_EQ(p.rules_for_pair_id(0).size(), 1u);

        const Simulator simulator(p);
        Config config = p.initial_config(2);
        Rng rng(7);
        std::uint64_t consumed = 0;
        const auto fired = simulator.fired_step(config, rng, std::uint64_t{1} << 30, &consumed);
        ASSERT_TRUE(fired.has_value());
        EXPECT_EQ(config[t], 2);  // a,a -> t,t fired; now silent
        EXPECT_FALSE(simulator.fired_step(config, rng, std::uint64_t{1} << 30, &consumed));
    }
}

TEST(SparseRuleTable, AutomaticResolvesByTriangularSize) {
    // 4100 states sit just past kDenseRuleTablePairCap (2²³ triangular
    // pairs at |Q| = 4096); 4000 sit below it.
    const Protocol small = merge_chain(4000);
    EXPECT_EQ(small.rule_table(), RuleTable::dense);
    const Protocol large = merge_chain(4100);
    EXPECT_EQ(large.rule_table(), RuleTable::sparse);
    // Sparse memory is keyed on the ~4k non-silent pairs, not the 8.4M
    // triangular slots (4 bytes each) the dense array would need.
    EXPECT_LT(large.rule_table_bytes(), std::size_t{1} << 20);
    expect_identical_lookups(large, large.with_rule_table(RuleTable::dense));
}

TEST(SparseRuleTable, PastTheOldDenseCapTrajectoriesMatchDensePerSeed) {
    // |Q| just past the old practical dense cap (~2·10⁴ states ≈ 800 MB of
    // triangular offsets): the sparse table runs it in kilobytes, and the
    // forced-dense rebuild must produce byte-identical trajectories.
    const Protocol sparse = merge_chain(20'005);
    ASSERT_EQ(sparse.rule_table(), RuleTable::sparse);
    EXPECT_LT(sparse.rule_table_bytes(), std::size_t{1} << 21);
    const Protocol dense = sparse.with_rule_table(RuleTable::dense);
    ASSERT_EQ(dense.rule_table(), RuleTable::dense);
    EXPECT_GT(dense.rule_table_bytes(), std::size_t{200'000'000} * 4);

    const Simulator sim_sparse(sparse), sim_dense(dense);
    EXPECT_EQ(sim_sparse.pair_selection(), sim_dense.pair_selection());
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        Config a = sparse.initial_config(1 << 12);
        Config b = dense.initial_config(1 << 12);
        Rng rng_a(seed), rng_b(seed);
        for (int chunk = 0; chunk < 8; ++chunk) {
            const std::uint64_t done_a = sim_sparse.run_batch(a, rng_a, 2000);
            const std::uint64_t done_b = sim_dense.run_batch(b, rng_b, 2000);
            ASSERT_EQ(done_a, done_b) << "seed " << seed << " chunk " << chunk;
            ASSERT_TRUE(a == b) << "seed " << seed << " chunk " << chunk;
            if (done_a < 2000) break;  // silent
        }
    }
}

TEST(SparseRuleTable, DenseSparseIdentityOnTheExhaustive4995ConfigSweep) {
    // The existing exhaustive sweep (sim_pair_fenwick_test) pinned Fenwick
    // vs. scan selection; this one pins dense vs. sparse rule tables on the
    // same 4995 configurations: every configuration of up to 6 agents of
    // double_exp_threshold_dense(2) must consume the random stream
    // identically under both representations.
    const Protocol dense_table = protocols::double_exp_threshold_dense(2);
    ASSERT_EQ(dense_table.rule_table(), RuleTable::dense);  // 9 states: automatic = dense
    const Protocol sparse_table = dense_table.with_rule_table(RuleTable::sparse);
    expect_identical_lookups(dense_table, sparse_table);
    const std::size_t num_states = dense_table.num_states();
    const Simulator sim_dense(dense_table), sim_sparse(sparse_table);

    std::vector<AgentCount> counts(num_states, 0);
    std::uint64_t seed = 0;
    std::size_t checked = 0;
    const std::function<void(std::size_t, AgentCount)> enumerate = [&](std::size_t q,
                                                                       AgentCount left) {
        if (q + 1 == num_states) {
            counts[q] = left;
            const Config base = Config::from_counts(counts);
            if (base.size() >= 2) {
                Config a = base, b = base;
                Rng rng_a(++seed), rng_b(seed);
                std::uint64_t consumed_a = 0, consumed_b = 0;
                const auto fired_a = sim_dense.fired_step(a, rng_a, 64, &consumed_a);
                const auto fired_b = sim_sparse.fired_step(b, rng_b, 64, &consumed_b);
                ASSERT_EQ(fired_a, fired_b) << base.to_string(dense_table.state_names());
                ASSERT_EQ(consumed_a, consumed_b) << base.to_string(dense_table.state_names());
                ASSERT_TRUE(a == b) << base.to_string(dense_table.state_names());
                ++checked;
            }
            counts[q] = 0;
            return;
        }
        for (AgentCount c = 0; c <= left; ++c) {
            counts[q] = c;
            enumerate(q + 1, left - c);
        }
        counts[q] = 0;
    };
    for (AgentCount population = 2; population <= 6; ++population) enumerate(0, population);
    EXPECT_EQ(checked, 4'995u);  // Σ_{m=2..6} C(m+8, 8) — genuinely exhaustive
}

TEST(SparseRuleTable, UnlocksHundredThousandStates) {
    // double_exp_threshold(17): |Q| = 2¹⁷ + 3 = 131075 > 10⁵.  The dense
    // triangular lookup would need 8.6G pair slots (~34 GB); the sparse
    // table is keyed on the ~2.6·10⁵ non-silent pairs.
    const Protocol p = protocols::double_exp_threshold(17);
    EXPECT_EQ(p.num_states(), (std::size_t{1} << 17) + 3);
    EXPECT_EQ(p.rule_table(), RuleTable::sparse);
    EXPECT_LT(p.rule_table_bytes(), std::size_t{1} << 25);  // ≪ the 34 GB dense table

    // Structure spot-checks across the whole id range: the token-merge
    // self pairs and the accepting epidemic must resolve; unrelated token
    // pairs are silent.
    const StateId t0 = *p.find_state("t0");
    const StateId t_mid = *p.find_state("t65536");
    const StateId t_top = *p.find_state("t131072");
    const StateId top = *p.find_state("T");
    for (const StateId t : {t0, t_mid}) {
        const Protocol::PairId id = p.pair_id(t, t);
        ASSERT_NE(id, Protocol::kNoPair);
        ASSERT_EQ(p.rules_for_pair_id(id).size(), 1u);
    }
    EXPECT_NE(p.pair_id(top, t_mid), Protocol::kNoPair);  // epidemic
    EXPECT_NE(p.pair_id(t_top, t0), Protocol::kNoPair);   // t_top starts accepting
    EXPECT_EQ(p.pair_id(t0, t_mid), Protocol::kNoPair);   // distinct tokens wait
}

}  // namespace
}  // namespace ppsc
