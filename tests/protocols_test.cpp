// Exhaustive verification of every protocol construction in the library.
// These tests are the executable counterpart of the paper's Example 2.1 and
// of the cited constructions of [11, 12]: each family is model-checked on
// all inputs up to a cutoff.
#include <gtest/gtest.h>

#include "protocols/compose.hpp"
#include "protocols/leader.hpp"
#include "protocols/majority.hpp"
#include "protocols/modulo.hpp"
#include "protocols/threshold.hpp"
#include "verify/verifier.hpp"

namespace ppsc {
namespace {

// --- Example 2.1: P_k (unary) ---------------------------------------------

class UnaryThresholdTest : public ::testing::TestWithParam<AgentCount> {};

TEST_P(UnaryThresholdTest, ComputesXAtLeastEta) {
    const AgentCount eta = GetParam();
    const Protocol p = protocols::unary_threshold(eta);
    EXPECT_EQ(p.num_states(), static_cast<std::size_t>(eta) + 1);
    EXPECT_TRUE(p.is_leaderless());
    const Verifier verifier(p);
    EXPECT_TRUE(verifier.check_predicate(Predicate::x_at_least(eta), 2, eta + 4).holds)
        << "eta=" << eta;
}

INSTANTIATE_TEST_SUITE_P(Family, UnaryThresholdTest,
                         ::testing::Values<AgentCount>(1, 2, 3, 4, 5, 6, 8));

// --- Example 2.1: P'_k (binary doubling) -----------------------------------

class BinaryThresholdTest : public ::testing::TestWithParam<int> {};

TEST_P(BinaryThresholdTest, ComputesXAtLeastTwoToK) {
    const int k = GetParam();
    const Protocol p = protocols::binary_threshold_power(k);
    EXPECT_EQ(p.num_states(), static_cast<std::size_t>(k) + 2);
    const AgentCount eta = AgentCount{1} << k;
    const Verifier verifier(p);
    EXPECT_TRUE(verifier.check_predicate(Predicate::x_at_least(eta), 2, eta + 3).holds)
        << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Family, BinaryThresholdTest, ::testing::Values(0, 1, 2, 3));

// --- Collector threshold (O(log eta), arbitrary eta) -----------------------

class CollectorThresholdTest : public ::testing::TestWithParam<AgentCount> {};

TEST_P(CollectorThresholdTest, ComputesXAtLeastEta) {
    const AgentCount eta = GetParam();
    const Protocol p = protocols::collector_threshold(eta);
    EXPECT_EQ(p.num_states(), protocols::collector_threshold_states(eta)) << "eta=" << eta;
    EXPECT_TRUE(p.is_leaderless());
    const Verifier verifier(p);
    EXPECT_TRUE(verifier.check_predicate(Predicate::x_at_least(eta), 2, eta + 3).holds)
        << "eta=" << eta;
}

// Every eta up to 13 exercises all bit patterns: powers of two, all-ones,
// isolated low bits.
INSTANTIATE_TEST_SUITE_P(Family, CollectorThresholdTest,
                         ::testing::Values<AgentCount>(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                                       13));

TEST(CollectorThreshold, StateCountIsLogarithmic) {
    // ~2·log2(eta) states versus eta+1 for unary.
    EXPECT_LE(protocols::collector_threshold_states(1000), 25u);
    EXPECT_LE(protocols::collector_threshold_states((AgentCount{1} << 30) - 1), 70u);
}

TEST(CollectorThreshold, RejectsBadEta) {
    EXPECT_THROW(protocols::collector_threshold(0), std::invalid_argument);
    EXPECT_THROW(protocols::collector_threshold(AgentCount{1} << 41), std::invalid_argument);
    EXPECT_THROW(protocols::unary_threshold(0), std::invalid_argument);
    EXPECT_THROW(protocols::binary_threshold_power(-1), std::invalid_argument);
    EXPECT_THROW(protocols::binary_threshold_power(41), std::invalid_argument);
}

// --- Majority ---------------------------------------------------------------

TEST(Majority, ComputesStrictMajorityOnAllTuples) {
    const Protocol p = protocols::majority();
    EXPECT_EQ(p.num_states(), 4u);
    const Verifier verifier(p);
    const PredicateCheck check =
        verifier.check_predicate_all_tuples(Predicate::majority(), 9);
    EXPECT_TRUE(check.holds) << check.failures.size() << " failing tuples";
    EXPECT_GT(check.inputs_checked, 30u);
}

// --- Modulo -----------------------------------------------------------------

struct ModCase {
    std::int64_t m, r;
};

class ModuloTest : public ::testing::TestWithParam<ModCase> {};

TEST_P(ModuloTest, ComputesCongruence) {
    const auto [m, r] = GetParam();
    const Protocol p = protocols::modulo(m, r);
    EXPECT_EQ(p.num_states(), static_cast<std::size_t>(2 * m));
    const Verifier verifier(p);
    EXPECT_TRUE(verifier.check_predicate(Predicate::modulo({1}, m, r), 2, 11).holds)
        << "m=" << m << " r=" << r;
}

INSTANTIATE_TEST_SUITE_P(Family, ModuloTest,
                         ::testing::Values(ModCase{2, 0}, ModCase{2, 1}, ModCase{3, 0},
                                           ModCase{3, 2}, ModCase{5, 1}));

TEST(Modulo, RejectsBadParameters) {
    EXPECT_THROW(protocols::modulo(1, 0), std::invalid_argument);
    EXPECT_THROW(protocols::modulo(3, 3), std::invalid_argument);
    EXPECT_THROW(protocols::modulo(3, -1), std::invalid_argument);
}

// --- Product composition -----------------------------------------------------

TEST(Product, ThresholdAndParity) {
    // (x >= 2) ∧ (x ≡ 0 mod 2)
    const Protocol p = protocols::product(protocols::unary_threshold(2),
                                          protocols::modulo(2, 0), protocols::combine_and());
    EXPECT_EQ(p.num_states(), 3u * 4u);
    const Verifier verifier(p);
    const Predicate predicate = Predicate::conjunction(Predicate::x_at_least(2),
                                                       Predicate::modulo({1}, 2, 0));
    EXPECT_TRUE(verifier.check_predicate(predicate, 2, 9).holds);
}

TEST(Product, ThresholdOrParity) {
    // (x >= 4) ∨ (x ≡ 1 mod 2)
    const Protocol p = protocols::product(protocols::unary_threshold(4),
                                          protocols::modulo(2, 1), protocols::combine_or());
    const Verifier verifier(p);
    const Predicate predicate = Predicate::disjunction(Predicate::x_at_least(4),
                                                       Predicate::modulo({1}, 2, 1));
    EXPECT_TRUE(verifier.check_predicate(predicate, 2, 9).holds);
}

TEST(Product, RequiresMatchingVariablesAndNoLeaders) {
    const Protocol t = protocols::unary_threshold(2);
    const Protocol m = protocols::majority();  // different variables
    EXPECT_THROW(protocols::product(t, m, protocols::combine_and()), std::invalid_argument);
    const Protocol leader = protocols::leader_threshold(2);
    EXPECT_THROW(protocols::product(t, leader, protocols::combine_and()),
                 std::invalid_argument);
}

// --- Leader protocols ---------------------------------------------------------

class LeaderThresholdTest : public ::testing::TestWithParam<AgentCount> {};

TEST_P(LeaderThresholdTest, ComputesXAtLeastEta) {
    const AgentCount eta = GetParam();
    const Protocol p = protocols::leader_threshold(eta);
    EXPECT_FALSE(p.is_leaderless());
    const Verifier verifier(p);
    // With a leader present the input may be as small as 1.
    EXPECT_TRUE(verifier.check_predicate(Predicate::x_at_least(eta), 1, eta + 3).holds)
        << "eta=" << eta;
}

INSTANTIATE_TEST_SUITE_P(Family, LeaderThresholdTest,
                         ::testing::Values<AgentCount>(1, 2, 3, 5));

struct CascadeCase {
    int base, digits;
};

class CascadeTest : public ::testing::TestWithParam<CascadeCase> {};

TEST_P(CascadeTest, ComputesXAtLeastBaseToDigits) {
    const auto [base, digits] = GetParam();
    const Protocol p = protocols::leader_counter_cascade(base, digits);
    AgentCount eta = 1;
    for (int i = 0; i < digits; ++i) eta *= base;
    const Verifier verifier(p);
    EXPECT_TRUE(verifier.check_predicate(Predicate::x_at_least(eta), 1, eta + 2).holds)
        << "base=" << base << " digits=" << digits;
}

INSTANTIATE_TEST_SUITE_P(Family, CascadeTest,
                         ::testing::Values(CascadeCase{2, 1}, CascadeCase{2, 2},
                                           CascadeCase{2, 3}, CascadeCase{3, 2}));

TEST(Cascade, StateEconomy) {
    // eta = 2^10 = 1024 with ~3·10+4 states: exponentially better than the
    // leaderless unary construction (1025 states).
    const Protocol p = protocols::leader_counter_cascade(2, 10);
    EXPECT_LE(p.num_states(), 35u);
}

TEST(Leader, RejectsBadParameters) {
    EXPECT_THROW(protocols::leader_threshold(0), std::invalid_argument);
    EXPECT_THROW(protocols::leader_counter_cascade(1, 3), std::invalid_argument);
    EXPECT_THROW(protocols::leader_counter_cascade(2, 0), std::invalid_argument);
    EXPECT_THROW(protocols::leader_counter_cascade(2, 25), std::invalid_argument);
}

}  // namespace
}  // namespace ppsc
