// Tests for the pair-weight Fenwick tree behind fired-step pair selection:
// per-seed equivalence with the reference O(#pairs) cumulative scan
// (PairSelect::scan), an exhaustive small-protocol sweep mirroring
// support_fenwick_test, and a chi-squared goodness-of-fit check of the
// fired-pair distribution against the exact conditional law w_pair / W
// (through the shared statistical harness, support/stat_test.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "protocols/double_exp_threshold.hpp"
#include "protocols/threshold.hpp"
#include "sim/simulator.hpp"
#include "support/stat_test.hpp"

namespace ppsc {
namespace {

// A protocol whose 5 "live" states interact on every pair (each pair has a
// unique rule, so the fired transition identifies the selected pair) and
// whose sink z is silent with everything — padding with z agents drives the
// configuration into the sparse regime where fired-step pair selection runs.
Protocol all_pairs_probe() {
    ProtocolBuilder b;
    std::vector<StateId> s(5);
    for (int i = 0; i < 5; ++i) s[static_cast<std::size_t>(i)] = b.add_state("s" + std::to_string(i), 0);
    const StateId z = b.add_state("z", 1);
    b.set_input("x", s[0]);
    for (int i = 0; i < 5; ++i) {
        for (int j = i; j < 5; ++j) {
            b.add_transition(s[static_cast<std::size_t>(i)], s[static_cast<std::size_t>(j)], z, z);
        }
    }
    return std::move(b).build();
}

TEST(PairWeightFenwick, FiredPairDistributionPassesChiSquared) {
    // The pair fired by a non-silent encounter must follow the conditional
    // law P(pair) = w_pair / W with w = c(c−1) for self pairs and 2·c_p·c_q
    // otherwise, independently of the silent-skip machinery around it.
    const Protocol protocol = all_pairs_probe();
    const Simulator simulator(protocol);
    Config base(protocol.num_states());
    const std::vector<AgentCount> live = {6, 3, 9, 2, 5};
    for (std::size_t q = 0; q < live.size(); ++q) base.set(static_cast<StateId>(q), live[q]);
    base.set(*protocol.find_state("z"), 200);  // sparse: W/n(n−1) ≈ 0.012

    // w over the live pairs; every fired transition is (s_i, s_j) -> (z, z),
    // so the pre-pair of the fired transition identifies the selection.
    double total_weight = 0.0;
    std::map<std::pair<StateId, StateId>, double> weight;
    for (std::size_t i = 0; i < live.size(); ++i) {
        for (std::size_t j = i; j < live.size(); ++j) {
            const double w = i == j ? static_cast<double>(live[i]) * (static_cast<double>(live[i]) - 1)
                                    : 2.0 * static_cast<double>(live[i]) * static_cast<double>(live[j]);
            weight[{static_cast<StateId>(i), static_cast<StateId>(j)}] = w;
            total_weight += w;
        }
    }

    const int samples = 20'000;
    std::map<std::pair<StateId, StateId>, std::uint64_t> observed;
    Rng rng(stat::derive_seed(314159, "fired-pair-gof"));
    for (int trial = 0; trial < samples; ++trial) {
        Config config = base;
        const auto fired = simulator.fired_step(config, rng, std::uint64_t{1} << 40);
        ASSERT_TRUE(fired.has_value());
        const Transition& t = protocol.transitions()[static_cast<std::size_t>(*fired)];
        ++observed[{t.pre1, t.pre2}];
    }

    // 15 pair cells → 14 degrees of freedom at α = 10⁻³ (the harness pulls
    // the critical value, ≈ 36.1, from its pinned table).  The seed is
    // fixed, so the test is deterministic.
    std::vector<std::uint64_t> counts;
    std::vector<double> weights;
    for (const auto& [pair, w] : weight) {
        counts.push_back(observed[pair]);
        weights.push_back(w);
    }
    const stat::GofResult gof = stat::chi_squared_gof(counts, weights);
    EXPECT_EQ(gof.cells, 15u);
    EXPECT_EQ(gof.df, 14);
    EXPECT_NEAR(gof.critical, 36.123, 1e-3);
    EXPECT_TRUE(gof.pass) << "fired-pair distribution deviates from w/W: X² = " << gof.statistic
                          << " > " << gof.critical << " (p = " << gof.p_value << ")";
}

TEST(PairWeightFenwick, TrajectoriesMatchTheReferenceScanPerSeed) {
    // Fenwick selection and the cumulative scan resolve the same rank draw
    // over the same weights in the same order, so whole run_batch
    // trajectories must be identical per seed — not just in distribution.
    const Protocol protocol = protocols::double_exp_threshold_dense(3);  // eta = 255
    const Simulator fenwick(protocol, PairSelect::fenwick);
    const Simulator scan(protocol, PairSelect::scan);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Config a = protocol.initial_config(300);  // above threshold: rich dynamics
        Config b = protocol.initial_config(300);
        Rng rng_a(seed), rng_b(seed);
        for (int chunk = 0; chunk < 40; ++chunk) {
            const std::uint64_t done_a = fenwick.run_batch(a, rng_a, 500);
            const std::uint64_t done_b = scan.run_batch(b, rng_b, 500);
            ASSERT_EQ(done_a, done_b) << "seed " << seed << " chunk " << chunk;
            ASSERT_TRUE(a == b) << "seed " << seed << " chunk " << chunk;
            if (done_a < 500) break;  // silent
        }
    }
}

TEST(PairWeightFenwick, ExhaustiveSmallProtocolEquivalence) {
    // Mirrors support_fenwick_test's exhaustive style: enumerate *every*
    // configuration of up to 6 agents of the dense double-exponential
    // protocol at n = 2 (eta = 15, 9 states) and check that fired_step
    // under Fenwick selection and under the reference scan consume the
    // stream identically — same fired transition, same interaction count,
    // same successor configuration.
    const Protocol protocol = protocols::double_exp_threshold_dense(2);
    const std::size_t num_states = protocol.num_states();
    ASSERT_EQ(num_states, 9u);
    const Simulator fenwick(protocol, PairSelect::fenwick);
    const Simulator scan(protocol, PairSelect::scan);

    std::vector<AgentCount> counts(num_states, 0);
    std::uint64_t seed = 0;
    std::size_t checked = 0;
    const std::function<void(std::size_t, AgentCount)> enumerate = [&](std::size_t q,
                                                                       AgentCount left) {
        if (q + 1 == num_states) {
            counts[q] = left;
            const Config base = Config::from_counts(counts);
            if (base.size() >= 2) {
                Config a = base, b = base;
                Rng rng_a(++seed), rng_b(seed);
                std::uint64_t consumed_a = 0, consumed_b = 0;
                const auto fired_a = fenwick.fired_step(a, rng_a, 64, &consumed_a);
                const auto fired_b = scan.fired_step(b, rng_b, 64, &consumed_b);
                ASSERT_EQ(fired_a, fired_b) << base.to_string(protocol.state_names());
                ASSERT_EQ(consumed_a, consumed_b) << base.to_string(protocol.state_names());
                ASSERT_TRUE(a == b) << base.to_string(protocol.state_names());
                ++checked;
            }
            counts[q] = 0;
            return;
        }
        for (AgentCount c = 0; c <= left; ++c) {
            counts[q] = c;
            enumerate(q + 1, left - c);
        }
        counts[q] = 0;
    };
    for (AgentCount population = 2; population <= 6; ++population) enumerate(0, population);
    EXPECT_EQ(checked, 4'995u);  // Σ_{m=2..6} C(m+8, 8) — genuinely exhaustive
}

}  // namespace
}  // namespace ppsc
