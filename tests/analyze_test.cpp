// Tests for the protocol-level static analyzer (analyze/): soundness of
// every claim against exhaustive reachability ground truth on the full
// 3-state corpus, checker acceptance of every emitted certificate,
// serialisation round trips, tamper rejection (a mutated certificate must
// never pass the independent checker), the leader-counting power of
// invariant certificates over the structural closure, and exact verdict
// preservation of the busy-beaver static pre-screen.
#include "analyze/analyze.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analyze/checker.hpp"
#include "protocols/threshold.hpp"
#include "search/busy_beaver.hpp"
#include "verify/reachability.hpp"

namespace ppsc {
namespace {

using analyze::Analysis;
using analyze::AnalysisOptions;
using analyze::Certificate;
using analyze::CertificateKind;
using analyze::CheckReport;

/// Ground truth: explores the exact reachability graph from IC(n) for
/// n = 2..4 and asserts that nothing the analyzer claims impossible ever
/// happens — an unreachable state is never occupied, a dead transition is
/// never enabled, a refuted consensus is never formed.
void expect_sound_against_reachability(const Protocol& protocol, const Analysis& analysis,
                                       const std::string& what) {
    for (AgentCount n = 2; n <= 4; ++n) {
        const std::vector<Config> roots = {protocol.initial_config(n)};
        const ReachabilityGraph graph = ReachabilityGraph::explore(protocol, roots);
        for (NodeId node = 0; node < static_cast<NodeId>(graph.num_nodes()); ++node) {
            const Config& config = graph.config(node);
            for (std::size_t q = 0; q < protocol.num_states(); ++q) {
                if (analysis.unreachable[q] && config[static_cast<StateId>(q)] > 0) {
                    ADD_FAILURE() << what << ": state " << q
                                  << " claimed unreachable but occupied at n = " << n;
                    return;
                }
            }
            for (std::size_t t = 0; t < protocol.num_transitions(); ++t) {
                if (analysis.dead[t] && protocol.enabled(config, protocol.transitions()[t])) {
                    ADD_FAILURE() << what << ": transition " << t
                                  << " claimed dead but enabled at n = " << n;
                    return;
                }
            }
            const std::optional<int> consensus = protocol.consensus_output(config);
            for (int b = 0; b <= 1; ++b) {
                if (analysis.consensus_refuted[static_cast<std::size_t>(b)] && consensus &&
                    *consensus == b) {
                    ADD_FAILURE() << what << ": consensus " << b
                                  << " claimed refuted but reached at n = " << n;
                    return;
                }
            }
        }
    }
}

// The same 3728-protocol corpus as tests/sim_trap_test.cpp: every 3-state
// protocol with at most two non-silent transitions under every output
// assignment.  For each one: every analyzer claim holds on the exact
// reachability graph, every emitted certificate is checker-accepted, and
// the certificate list round-trips through its text serialisation.
TEST(StaticAnalysis, ExhaustiveThreeStateSweepIsSoundAndCertified) {
    struct Candidate {
        StateId p, q, p2, q2;
    };
    std::vector<Candidate> candidates;
    for (StateId p = 0; p < 3; ++p)
        for (StateId q = p; q < 3; ++q)
            for (StateId p2 = 0; p2 < 3; ++p2)
                for (StateId q2 = p2; q2 < 3; ++q2) {
                    if (p == p2 && q == q2) continue;  // silent
                    candidates.push_back({p, q, p2, q2});
                }
    ASSERT_EQ(candidates.size(), 30u);

    std::size_t checked = 0;
    std::size_t protocols_with_unreachable = 0;
    std::size_t protocols_with_dead = 0;
    std::size_t protocols_with_refuted_consensus = 0;
    const auto sweep_outputs = [&](const std::vector<Candidate>& transitions) {
        for (int outputs = 0; outputs < 8; ++outputs) {
            ProtocolBuilder b;
            for (StateId s = 0; s < 3; ++s)
                b.add_state("q" + std::to_string(s), (outputs >> s) & 1);
            b.set_input("x", 0);
            for (const Candidate& t : transitions) b.add_transition(t.p, t.q, t.p2, t.q2);
            const Protocol protocol = std::move(b).build();
            const std::string what =
                "corpus protocol " + std::to_string(checked) + " (mask " +
                std::to_string(outputs) + ")";

            const Analysis analysis = analyze::analyze_protocol(protocol);
            ASSERT_TRUE(analysis.cone_inference_ran) << what;
            expect_sound_against_reachability(protocol, analysis, what);

            const CheckReport report =
                analyze::check_certificates(protocol, analysis.certificates);
            ASSERT_TRUE(report.ok) << what << ": " << report.error;

            const std::vector<Certificate> reparsed = analyze::parse_certificates(
                analyze::format_certificates(analysis.certificates));
            ASSERT_EQ(reparsed, analysis.certificates) << what;

            bool any_unreachable = false, any_dead = false;
            for (const bool u : analysis.unreachable) any_unreachable |= u;
            for (const bool d : analysis.dead) any_dead |= d;
            protocols_with_unreachable += any_unreachable;
            protocols_with_dead += any_dead;
            protocols_with_refuted_consensus +=
                analysis.consensus_refuted[0] || analysis.consensus_refuted[1];
            ++checked;
        }
    };

    sweep_outputs({});  // zero non-silent pairs
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        sweep_outputs({candidates[i]});
        for (std::size_t j = i + 1; j < candidates.size(); ++j)
            sweep_outputs({candidates[i], candidates[j]});
    }
    EXPECT_EQ(checked, 8u * (1 + 30 + 30 * 29 / 2));
    // The sweep must exercise every claim kind, or the soundness assertions
    // above are vacuous.
    EXPECT_GT(protocols_with_unreachable, 0u);
    EXPECT_GT(protocols_with_dead, 0u);
    EXPECT_GT(protocols_with_refuted_consensus, 0u);
}

/// A protocol with a genuinely unreachable state u, a dead transition
/// firing from it, and a refutable output-1 consensus:
///   a (input, output 0), b (output 0), u (output 1)
///   t0: a a -> a b      (b is reachable)
///   t1: u b -> a a      (dead: u is unreachable)
Protocol unreachable_fixture() {
    ProtocolBuilder b;
    const StateId a = b.add_state("a", 0);
    const StateId bb = b.add_state("b", 0);
    const StateId u = b.add_state("u", 1);
    b.set_input("x", a);
    b.add_transition(a, a, a, bb);
    b.add_transition(u, bb, a, a);
    return std::move(b).build();
}

TEST(StaticAnalysis, FindsUnreachableDeadAndRefutedConsensus) {
    const Protocol protocol = unreachable_fixture();
    const Analysis analysis = analyze::analyze_protocol(protocol);
    EXPECT_FALSE(analysis.unreachable[0]);  // a
    EXPECT_FALSE(analysis.unreachable[1]);  // b
    EXPECT_TRUE(analysis.unreachable[2]);   // u
    EXPECT_FALSE(analysis.dead[0]);
    EXPECT_TRUE(analysis.dead[1]);
    EXPECT_FALSE(analysis.consensus_refuted[0]);
    EXPECT_TRUE(analysis.consensus_refuted[1]);
    EXPECT_TRUE(analyze::check_certificates(protocol, analysis.certificates).ok);
    expect_sound_against_reachability(protocol, analysis, "unreachable fixture");
}

TEST(StaticAnalysis, SingletonFallbackStaysSoundWhenConeIsCapped) {
    const Protocol protocol = unreachable_fixture();
    AnalysisOptions options;
    options.cone_state_cap = 0;  // force the O(|T|) singleton path
    const Analysis analysis = analyze::analyze_protocol(protocol, options);
    EXPECT_FALSE(analysis.cone_inference_ran);
    EXPECT_TRUE(analysis.unreachable[2]);
    EXPECT_TRUE(analysis.consensus_refuted[1]);
    EXPECT_TRUE(analyze::check_certificates(protocol, analysis.certificates).ok);
    expect_sound_against_reachability(protocol, analysis, "singleton fallback");
}

// The leader-counting argument invariants add over the structural closure:
// with a *single* leader l and the rule l l -> q x, producing q needs two
// copies of l at once.  The closure fires the pair {l, l} from membership
// alone and admits q; the invariant v = (x:0, l:1, q:2) has v·Δ = 0 and
// threshold v·L = 1 < v(q) = 2, proving q unreachable.
TEST(StaticAnalysis, InvariantCountsLeadersWhereClosureCannot) {
    const auto build = [](AgentCount num_leaders) {
        ProtocolBuilder b;
        const StateId x = b.add_state("x", 0);
        const StateId l = b.add_state("l", 0);
        const StateId q = b.add_state("q", 1);
        b.set_input("in", x);
        b.add_leaders(l, num_leaders);
        b.add_transition(l, l, q, x);
        return std::move(b).build();
    };

    const Protocol single = build(1);
    const Analysis analysis = analyze::analyze_protocol(single);
    ASSERT_TRUE(analysis.cone_inference_ran);
    // The closure certificate (index 0) admits q …
    ASSERT_EQ(analysis.certificates[0].kind, CertificateKind::closure);
    EXPECT_TRUE(analysis.certificates[0].inside[2]);
    // … but an invariant certificate refutes it, and the whole list checks.
    EXPECT_TRUE(analysis.unreachable[2]);
    EXPECT_TRUE(analysis.consensus_refuted[1]);
    EXPECT_TRUE(analyze::check_certificates(single, analysis.certificates).ok);

    // With two leaders q is genuinely reachable; the analyzer must not
    // claim it (the same invariant now has threshold v·L = 2, no claim).
    const Analysis two = analyze::analyze_protocol(build(2));
    EXPECT_FALSE(two.unreachable[2]);
    EXPECT_FALSE(two.consensus_refuted[1]);
}

TEST(StaticAnalysis, HealthyProtocolHasNoFindings) {
    const Protocol protocol = protocols::collector_threshold(5);
    const Analysis analysis = analyze::analyze_protocol(protocol);
    for (const bool u : analysis.unreachable) EXPECT_FALSE(u);
    for (const bool d : analysis.dead) EXPECT_FALSE(d);
    EXPECT_FALSE(analysis.consensus_refuted[0]);
    EXPECT_FALSE(analysis.consensus_refuted[1]);
    EXPECT_TRUE(analyze::check_certificates(protocol, analysis.certificates).ok);
}

/// Applies `mutate` to a copy of the fixture's certificates and asserts the
/// checker rejects the result (and points at the right certificate).
void expect_tamper_rejected(const Protocol& protocol, std::vector<Certificate> certificates,
                            const std::string& what,
                            const std::function<void(std::vector<Certificate>&)>& mutate) {
    mutate(certificates);
    const CheckReport report = analyze::check_certificates(protocol, certificates);
    EXPECT_FALSE(report.ok) << what;
    EXPECT_FALSE(report.error.empty()) << what;
}

TEST(CertificateChecker, RejectsEveryTamperedCertificate) {
    const Protocol protocol = unreachable_fixture();
    const Analysis analysis = analyze::analyze_protocol(protocol);
    const std::vector<Certificate>& certs = analysis.certificates;
    ASSERT_TRUE(analyze::check_certificates(protocol, certs).ok);

    // Locate one certificate of each kind.
    std::size_t closure_at = certs.size(), invariant_at = certs.size();
    std::size_t dead_at = certs.size(), consensus_at = certs.size();
    for (std::size_t i = 0; i < certs.size(); ++i) {
        switch (certs[i].kind) {
            case CertificateKind::closure: closure_at = i; break;
            case CertificateKind::invariant: invariant_at = i; break;
            case CertificateKind::dead: dead_at = i; break;
            case CertificateKind::consensus: consensus_at = i; break;
        }
    }
    ASSERT_LT(closure_at, certs.size());
    ASSERT_LT(invariant_at, certs.size());
    ASSERT_LT(dead_at, certs.size());
    ASSERT_LT(consensus_at, certs.size());
    // The invariant found claims u (state 2) unreachable.
    ASSERT_TRUE(analyze::claimed_unreachable(certs[invariant_at], protocol)[2]);

    expect_tamper_rejected(protocol, certs, "invariant size", [&](auto& c) {
        c[invariant_at].coefficients.push_back(0);
    });
    expect_tamper_rejected(protocol, certs, "negative coefficient", [&](auto& c) {
        c[invariant_at].coefficients[2] = -1;
    });
    expect_tamper_rejected(protocol, certs, "increasing invariant", [&](auto& c) {
        // v = e_b + e_u increases along t0 (a a -> a b).
        c[invariant_at].coefficients = {0, 1, 1};
    });
    expect_tamper_rejected(protocol, certs, "nonzero on input state", [&](auto& c) {
        c[invariant_at].coefficients[0] = 1;
    });
    expect_tamper_rejected(protocol, certs, "closure size", [&](auto& c) {
        c[closure_at].inside.pop_back();
    });
    expect_tamper_rejected(protocol, certs, "closure drops input state", [&](auto& c) {
        c[closure_at].inside[0] = false;
    });
    expect_tamper_rejected(protocol, certs, "closure not closed", [&](auto& c) {
        c[closure_at].inside[1] = false;  // t0 posts b from {a, a} ⊆ R
    });
    expect_tamper_rejected(protocol, certs, "dead transition out of range", [&](auto& c) {
        c[dead_at].transition = 99;
    });
    expect_tamper_rejected(protocol, certs, "dead state not a pre-state", [&](auto& c) {
        c[dead_at].state = 0;  // a is not a pre-state of t1 (u b -> a a)
    });
    expect_tamper_rejected(protocol, certs, "dead hung on reachable pre-state", [&](auto& c) {
        c[dead_at].state = 1;  // b *is* a pre-state of t1, but provably occupied
    });
    expect_tamper_rejected(protocol, certs, "dead reference dangling", [&](auto& c) {
        c[dead_at].refs = {certs.size() + 7};
    });
    expect_tamper_rejected(protocol, certs, "dead reference not a base certificate",
                           [&](auto& c) { c[dead_at].refs = {consensus_at}; });
    expect_tamper_rejected(protocol, certs, "dead with no references", [&](auto& c) {
        c[dead_at].refs.clear();
    });
    expect_tamper_rejected(protocol, certs, "consensus output out of range", [&](auto& c) {
        c[consensus_at].output = 2;
    });
    expect_tamper_rejected(protocol, certs, "consensus coverage gap", [&](auto& c) {
        // Point the consensus proof at a certificate that claims nothing
        // about u: the closure with u added back in.
        c[closure_at].inside[2] = true;
        c[consensus_at].refs = {closure_at};
    });

    // Tampering must also be caught through the text round trip: serialise,
    // corrupt the text, re-parse, re-check.
    std::string text = analyze::format_certificates(certs);
    const std::size_t pos = text.find("coeffs");
    ASSERT_NE(pos, std::string::npos);
    text.insert(pos + std::string("coeffs").size(), " 7");  // prepend a coefficient
    const std::vector<Certificate> tampered = analyze::parse_certificates(text);
    EXPECT_FALSE(analyze::check_certificates(protocol, tampered).ok);
}

TEST(CertificateFormat, ParserRejectsMalformedText) {
    EXPECT_THROW(analyze::parse_certificates("coeffs 1 2\n"), std::invalid_argument);
    EXPECT_THROW(analyze::parse_certificates("certificate bogus\nend\n"), std::invalid_argument);
    EXPECT_THROW(analyze::parse_certificates("certificate invariant\ncoeffs 1 2\n"),
                 std::invalid_argument);  // unterminated
    EXPECT_THROW(analyze::parse_certificates("certificate invariant\ncoeffs 12x\nend\n"),
                 std::invalid_argument);
    EXPECT_THROW(analyze::parse_certificates("certificate closure\ninside 0 2\nend\n"),
                 std::invalid_argument);
    EXPECT_THROW(
        analyze::parse_certificates("certificate invariant\ncertificate closure\nend\n"),
        std::invalid_argument);
    EXPECT_THROW(analyze::parse_certificates("certificate dead\nrefs -1\nend\n"),
                 std::invalid_argument);
    // Line numbers are part of the contract.
    try {
        analyze::parse_certificates("certificate invariant\ncoeffs 1\nwhat 3\nend\n");
        FAIL() << "expected parse error";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
    }
}

// The static pre-screen is sound falsification: a statically refuted
// candidate's exact threshold inference is guaranteed nullopt, so every
// reported field except the cost counters matches an unscreened run bit
// for bit — asserted exhaustively at n = 2 and on sampled sweeps at
// n = 4 and n = 5, where a nonzero refuted fraction is also required.
TEST(BusyBeaverStaticScreen, PreservesResultsExactlyTwoStatesExhaustive) {
    search::SearchOptions exact;
    exact.max_input = 8;
    search::SearchOptions screened = exact;
    screened.static_screen = true;

    const auto a = search::busy_beaver_search(2, exact);
    const auto b = search::busy_beaver_search(2, screened);
    EXPECT_EQ(a.best_eta, b.best_eta);
    EXPECT_EQ(a.threshold_protocols, b.threshold_protocols);
    EXPECT_EQ(a.eta_histogram, b.eta_histogram);
    EXPECT_EQ(a.best_protocol_text, b.best_protocol_text);
    EXPECT_EQ(a.canonical, b.canonical);
    EXPECT_EQ(a.static_refuted, 0u);
    EXPECT_GT(b.static_refuted, 0u);
}

TEST(BusyBeaverStaticScreen, PreservesSampledSweepsAtFourAndFiveStates) {
    for (const std::size_t n : {std::size_t{4}, std::size_t{5}}) {
        search::SearchOptions exact;
        exact.max_input = n == 4 ? 6 : 5;
        exact.sample_limit = n == 4 ? 1500 : 500;
        exact.seed = 7;
        search::SearchOptions screened = exact;
        screened.static_screen = true;
        // Stacking the PR 6 simulation screen on top must stay exact too.
        search::SearchOptions both = screened;
        both.screen = true;
        both.screening.runs = 2;
        both.screening.max_interactions = 2'000;

        const auto a = search::busy_beaver_search(n, exact);
        const auto b = search::busy_beaver_search(n, screened);
        const auto c = search::busy_beaver_search(n, both);
        for (const auto* run : {&b, &c}) {
            EXPECT_EQ(a.best_eta, run->best_eta) << n;
            EXPECT_EQ(a.threshold_protocols, run->threshold_protocols) << n;
            EXPECT_EQ(a.eta_histogram, run->eta_histogram) << n;
            EXPECT_EQ(a.best_protocol_text, run->best_protocol_text) << n;
            EXPECT_EQ(a.canonical, run->canonical) << n;
            EXPECT_GT(run->static_refuted, 0u) << n;
        }
    }
}

}  // namespace
}  // namespace ppsc
