// Tests for the CRC-64/XZ implementation backing the checkpoint trailer.
#include "support/crc64.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace ppsc {
namespace {

TEST(Crc64, CheckValue) {
    // The CRC-64/XZ check value: crc of the ASCII string "123456789".
    const char* input = "123456789";
    EXPECT_EQ(crc64(input, std::strlen(input)), 0x995DC9BBDF1939FAull);
}

TEST(Crc64, EmptyInputIsZero) { EXPECT_EQ(crc64(nullptr, 0), 0u); }

TEST(Crc64, ChunkedEqualsWhole) {
    const std::string data = "population protocols compute predicates";
    const std::uint64_t whole = crc64(data.data(), data.size());
    for (std::size_t split = 0; split <= data.size(); ++split) {
        const std::uint64_t first = crc64(data.data(), split);
        const std::uint64_t chained = crc64(data.data() + split, data.size() - split, first);
        EXPECT_EQ(chained, whole) << "split at " << split;
    }
}

TEST(Crc64, DetectsEverySingleBitFlip) {
    std::string data = "checkpoint trailer";
    const std::uint64_t reference = crc64(data.data(), data.size());
    for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
        data[bit / 8] ^= static_cast<char>(1 << (bit % 8));
        EXPECT_NE(crc64(data.data(), data.size()), reference) << "bit " << bit;
        data[bit / 8] ^= static_cast<char>(1 << (bit % 8));
    }
}

}  // namespace
}  // namespace ppsc
