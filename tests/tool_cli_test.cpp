// Regression tests driving the real protocol_tool binary: degenerate and
// hostile inputs must produce a one-line diagnostic and a failure exit
// code (never a crash, never a silent misparse), and the checkpointed
// longrun must survive a hard SIGKILL and resume to the digest of an
// uninterrupted run.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct RunResult {
    int exit_code = -1;       ///< WEXITSTATUS, or -1 when not exited normally
    int term_signal = 0;      ///< terminating signal, 0 when exited normally
    std::string output;       ///< combined stdout+stderr
};

/// Runs `protocol_tool <args>` through the shell, capturing both streams.
RunResult run_tool(const std::string& args) {
    const std::string command = std::string(PPSC_TOOL_PATH) + " " + args + " 2>&1";
    std::FILE* pipe = ::popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    RunResult result;
    char buffer[4096];
    std::size_t got;
    while ((got = std::fread(buffer, 1, sizeof buffer, pipe)) > 0)
        result.output.append(buffer, got);
    const int status = ::pclose(pipe);
    if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
    if (WIFSIGNALED(status)) result.term_signal = WTERMSIG(status);
    return result;
}

/// Scratch directory with a generated double_exp(3) protocol file.
struct ToolFixture : ::testing::Test {
    void SetUp() override {
        dir = fs::temp_directory_path() / ("ppsc-tool-cli-" + std::to_string(::getpid()));
        fs::remove_all(dir);
        fs::create_directories(dir);
        pp = (dir / "d3.pp").string();
        const RunResult family = run_tool("family double_exp 3");
        ASSERT_EQ(family.exit_code, 0) << family.output;
        std::ofstream(pp) << family.output;
    }
    void TearDown() override {
        std::error_code ec;
        fs::remove_all(dir, ec);
    }
    fs::path dir;
    std::string pp;
};

// --- degenerate inputs -----------------------------------------------------

TEST_F(ToolFixture, RejectsNonNumericPopulation) {
    for (const char* bad : {"abc", "12x", "", "-5", "1", "0"}) {
        const RunResult r = run_tool("simulate " + pp + " '" + bad + "'");
        EXPECT_EQ(r.exit_code, 1) << "population '" << bad << "': " << r.output;
        EXPECT_NE(r.output.find("population"), std::string::npos) << r.output;
    }
}

TEST_F(ToolFixture, RejectsNonNumericEta) {
    const RunResult r = run_tool("verify " + pp + " 16x");
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.output.find("eta"), std::string::npos) << r.output;
}

TEST_F(ToolFixture, RejectsMissingFile) {
    const RunResult r = run_tool("info " + (dir / "no-such-file.pp").string());
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
}

TEST_F(ToolFixture, RejectsMalformedProtocolFile) {
    const std::string bad = (dir / "bad.pp").string();
    std::ofstream(bad) << "state q0 2\ntrans q0 -> q0\n";  // bad output + arity
    const RunResult r = run_tool("info " + bad);
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
}

TEST_F(ToolFixture, RejectsUnknownCommandAndUnknownFlag) {
    EXPECT_EQ(run_tool("frobnicate " + pp).exit_code, 1);
    EXPECT_EQ(run_tool("simulate " + pp + " 100 --frobnicate").exit_code, 1);
    EXPECT_EQ(run_tool("longrun " + pp + " 100 1000 --resume").exit_code, 1)
        << "--resume without --checkpoint-dir must be rejected";
    EXPECT_EQ(run_tool("longrun " + pp + " 100 1000 --checkpoint-dir").exit_code, 1)
        << "--checkpoint-dir without a value must be rejected";
    EXPECT_EQ(run_tool("longrun " + pp + " 100 1000 --checkpoint-dir x --checkpoint-every 0")
                  .exit_code,
              1)
        << "zero cadence must be rejected";
}

TEST_F(ToolFixture, HelpAndDemoSucceed) {
    EXPECT_EQ(run_tool("help").exit_code, 0);
    EXPECT_EQ(run_tool("demo").exit_code, 0);
}

// --- crash/resume end to end -----------------------------------------------

TEST_F(ToolFixture, LongrunSurvivesSigkillAndResumesToReferenceDigest) {
    const std::string base = "longrun " + pp + " 256 2000000 7 ";
    const RunResult reference = run_tool(base);
    ASSERT_EQ(reference.exit_code, 0) << reference.output;
    const std::size_t line = reference.output.find("longrun:");
    ASSERT_NE(line, std::string::npos);
    const std::string reference_line = reference.output.substr(line);

    const std::string flags =
        "--checkpoint-dir " + (dir / "ck").string() + " --checkpoint-every 100000 ";
    // Depending on whether the shell execs the command directly, the kill
    // surfaces as a SIGKILL status or as the shell's 128+9 exit code.
    const RunResult killed = run_tool(base + flags + "--die-after 800000");
    EXPECT_TRUE(killed.term_signal == SIGKILL || killed.exit_code == 128 + SIGKILL)
        << "signal=" << killed.term_signal << " exit=" << killed.exit_code << "\n"
        << killed.output;

    const RunResult resumed = run_tool(base + flags + "--resume");
    ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
    EXPECT_NE(resumed.output.find("resumed from"), std::string::npos) << resumed.output;
    EXPECT_NE(resumed.output.find(reference_line), std::string::npos)
        << "resumed digest line differs:\nwant: " << reference_line
        << "\ngot:  " << resumed.output;
}

}  // namespace
