// Unit tests for Config — the multiset arithmetic everything else builds on.
#include "core/config.hpp"

#include <gtest/gtest.h>

namespace ppsc {
namespace {

TEST(Config, EmptyConfigHasSizeZero) {
    Config c(4);
    EXPECT_EQ(c.size(), 0);
    EXPECT_EQ(c.num_states(), 4u);
    EXPECT_TRUE(c.support().empty());
}

TEST(Config, FromCountsAndAccessors) {
    Config c = Config::from_counts({2, 0, 3});
    EXPECT_EQ(c.size(), 5);
    EXPECT_EQ(c[0], 2);
    EXPECT_EQ(c[1], 0);
    EXPECT_EQ(c[2], 3);
    EXPECT_EQ(c.support(), (std::vector<StateId>{0, 2}));
}

TEST(Config, FromCountsRejectsNegative) {
    EXPECT_THROW(Config::from_counts({1, -1}), std::invalid_argument);
}

TEST(Config, SingleFactory) {
    Config c = Config::single(3, 1, 7);
    EXPECT_EQ(c.size(), 7);
    EXPECT_EQ(c[1], 7);
}

TEST(Config, SetAndAdd) {
    Config c(2);
    c.set(0, 5);
    c.add(0, -2);
    c.add(1, 1);
    EXPECT_EQ(c[0], 3);
    EXPECT_EQ(c[1], 1);
    EXPECT_THROW(c.add(1, -5), std::invalid_argument);
    EXPECT_THROW(c.set(0, -1), std::invalid_argument);
}

TEST(Config, OutOfRangeMutationThrows) {
    // operator[] is an unchecked hot-path accessor (debug-asserted only);
    // the mutating API keeps its bounds checks.
    Config c(2);
    EXPECT_THROW(c.set(2, 1), std::out_of_range);
    EXPECT_THROW(c.add(5, 1), std::out_of_range);
}

TEST(Config, SizeIsMaintainedIncrementally) {
    Config c(3);
    EXPECT_EQ(c.size(), 0);
    c.set(0, 4);
    c.add(1, 2);
    EXPECT_EQ(c.size(), 6);
    c.add(0, -3);
    EXPECT_EQ(c.size(), 3);
    c.set(0, 0);
    EXPECT_EQ(c.size(), 2);
    Config d = c;
    d += c;
    EXPECT_EQ(d.size(), 4);
    d -= c;
    EXPECT_EQ(d.size(), 2);
    d *= 5;
    EXPECT_EQ(d.size(), 10);
}

TEST(Config, VersionChangesOnEveryMutation) {
    Config c(2);
    const std::uint64_t v0 = c.version();
    c.set(0, 1);
    const std::uint64_t v1 = c.version();
    EXPECT_NE(v0, v1);
    c.add(1, 3);
    const std::uint64_t v2 = c.version();
    EXPECT_NE(v1, v2);
    // Copies are distinct objects: they never share a version with their
    // source (samplers key caches on (address, version)).
    const Config d = c;
    EXPECT_NE(d.version(), c.version());
    EXPECT_TRUE(d == c);
}

TEST(Config, AdditionAndSubtraction) {
    const Config a = Config::from_counts({1, 2, 0});
    const Config b = Config::from_counts({0, 1, 4});
    EXPECT_EQ((a + b).counts(), (std::vector<AgentCount>{1, 3, 4}));
    EXPECT_EQ(((a + b) - b).counts(), a.counts());
    EXPECT_THROW(a - b, std::invalid_argument);
}

TEST(Config, DimensionMismatchThrows) {
    const Config a = Config::from_counts({1});
    const Config b = Config::from_counts({1, 2});
    EXPECT_THROW(a + b, std::invalid_argument);
}

TEST(Config, ScalarMultiple) {
    const Config a = Config::from_counts({1, 2});
    EXPECT_EQ((a * 3).counts(), (std::vector<AgentCount>{3, 6}));
    EXPECT_EQ((0 * a).size(), 0);
    EXPECT_THROW(a * -1, std::invalid_argument);
}

TEST(Config, ComponentwiseOrder) {
    const Config a = Config::from_counts({1, 2});
    const Config b = Config::from_counts({2, 2});
    const Config c = Config::from_counts({0, 3});
    EXPECT_TRUE(a.leq(b));
    EXPECT_FALSE(b.leq(a));
    EXPECT_FALSE(a.leq(c));
    EXPECT_FALSE(c.leq(a));
    EXPECT_TRUE(a.leq(a));
}

TEST(Config, SaturationCheck) {
    const Config a = Config::from_counts({2, 3, 2});
    EXPECT_TRUE(a.is_saturated(2));
    EXPECT_FALSE(a.is_saturated(3));
    EXPECT_TRUE(a.is_saturated(0));
}

TEST(Config, MonotonicityOfAddition) {
    // The monotonicity property of Section 2.2 at the level of multisets:
    // C ≤ D implies C + E ≤ D + E.
    const Config c = Config::from_counts({1, 0, 2});
    const Config d = Config::from_counts({1, 1, 3});
    const Config e = Config::from_counts({4, 4, 4});
    ASSERT_TRUE(c.leq(d));
    EXPECT_TRUE((c + e).leq(d + e));
}

TEST(Config, HashDiffersOnDifferentConfigs) {
    const Config a = Config::from_counts({1, 2});
    const Config b = Config::from_counts({2, 1});
    EXPECT_NE(a.hash(), b.hash());
    EXPECT_EQ(a.hash(), Config::from_counts({1, 2}).hash());
}

TEST(Config, ToStringRendersCounts) {
    const Config a = Config::from_counts({2, 0, 1});
    EXPECT_EQ(a.to_string(), "{2·q0, q2}");
    const std::string names[] = {"A", "B", "C"};
    EXPECT_EQ(a.to_string(names), "{2·A, C}");
    EXPECT_EQ(Config(2).to_string(), "{}");
}

}  // namespace
}  // namespace ppsc
