// The double-exponential threshold family (E11 workload): exhaustive
// verification of small instances, structural agreement with
// collector_threshold on the int64 range, randomized-simulation correctness
// of the flagship 2^(2^n) instances, and the parser/compose integration
// every family in src/protocols/ gets.
#include <gtest/gtest.h>

#include <string>

#include "core/protocol_parser.hpp"
#include "protocols/compose.hpp"
#include "protocols/double_exp_threshold.hpp"
#include "protocols/modulo.hpp"
#include "protocols/threshold.hpp"
#include "sim/experiment.hpp"
#include "verify/verifier.hpp"

namespace ppsc {
namespace {

// --- Exhaustive verification (arbitrary-precision collector) ----------------

class SuccinctThresholdTest : public ::testing::TestWithParam<AgentCount> {};

TEST_P(SuccinctThresholdTest, ComputesXAtLeastEta) {
    const AgentCount eta = GetParam();
    const Protocol p = protocols::succinct_threshold(BigNat(static_cast<std::uint64_t>(eta)));
    EXPECT_EQ(p.num_states(),
              protocols::succinct_threshold_states(BigNat(static_cast<std::uint64_t>(eta))))
        << "eta=" << eta;
    EXPECT_TRUE(p.is_leaderless());
    const Verifier verifier(p);
    EXPECT_TRUE(verifier.check_predicate(Predicate::x_at_least(eta), 2, eta + 3).holds)
        << "eta=" << eta;
}

// Every eta up to 13 exercises all bit patterns: powers of two, all-ones,
// isolated low bits.
INSTANTIATE_TEST_SUITE_P(Family, SuccinctThresholdTest,
                         ::testing::Values<AgentCount>(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                                       13));

TEST(SuccinctThreshold, IsCollectorThresholdOnTheInt64Range) {
    // Same states, same names, same transitions in the same order: the
    // BigNat construction is collector_threshold lifted beyond int64, and
    // the text format makes the structural equality checkable verbatim.
    const AgentCount etas[] = {1, 2, 5, 12, 13, 96, 1000, (AgentCount{1} << 30) - 1};
    for (const AgentCount eta : etas) {
        EXPECT_EQ(
            format_protocol(protocols::succinct_threshold(BigNat(static_cast<std::uint64_t>(eta)))),
            format_protocol(protocols::collector_threshold(eta)))
            << "eta=" << eta;
    }
}

TEST(SuccinctThreshold, RejectsBadEta) {
    EXPECT_THROW(protocols::succinct_threshold(BigNat()), std::invalid_argument);
    EXPECT_THROW(
        protocols::succinct_threshold(BigNat::power_of_two(protocols::kSuccinctThresholdMaxBits)),
        std::invalid_argument);
    EXPECT_THROW(protocols::double_exp_threshold(-1), std::invalid_argument);
    EXPECT_THROW(protocols::double_exp_threshold(18), std::invalid_argument);
    EXPECT_THROW(protocols::double_exp_threshold_dense(0), std::invalid_argument);
    EXPECT_THROW(protocols::double_exp_threshold_dense(14), std::invalid_argument);
}

// --- The double-exponential instances ---------------------------------------

TEST(DoubleExpThreshold, StateCountsAreLogarithmicInEta) {
    for (int n = 0; n <= 8; ++n) {
        const BigNat eta = protocols::double_exp_eta(n);
        EXPECT_EQ(eta.bit_length(), (std::uint64_t{1} << n) + 1) << "n=" << n;  // 2^(2^n)
        // Flagship: exact power, token chain only — |Q| = 2^n + 3.
        EXPECT_EQ(protocols::succinct_threshold_states(eta), (std::size_t{1} << n) + 3)
            << "n=" << n;
        // Dense: a collector per bit of 2^(2^n) − 1 — |Q| = 2^(n+1) + 1.
        if (n >= 1) {
            EXPECT_EQ(protocols::succinct_threshold_states(eta - BigNat(1)),
                      (std::size_t{2} << n) + 1)
                << "n=" << n;
        }
    }
    // The workload the pair-weight Fenwick exists for: a |Q| ≫ 10³ instance
    // with far more non-silent pairs than a scan per fired step could bear.
    const Protocol big = protocols::double_exp_threshold_dense(10);
    EXPECT_GT(big.num_states(), 2000u);
    EXPECT_GT(big.nonsilent_pairs().size(), 500'000u);
}

TEST(DoubleExpThreshold, SmallInstancesVerifyExhaustively) {
    // n = 0 (eta = 2) and n = 1 (eta = 4): model-checked on all inputs.
    for (const int n : {0, 1}) {
        const Protocol p = protocols::double_exp_threshold(n);
        const AgentCount eta = AgentCount{1} << (1 << n);
        const Verifier verifier(p);
        EXPECT_TRUE(verifier.check_predicate(Predicate::x_at_least(eta), 2, eta + 4).holds)
            << "n=" << n;
    }
}

TEST(DoubleExpThreshold, DecidesItsPredicateInRandomizedSimulation) {
    // n = 2: eta = 2^2^2 = 16.  Sampled initial configurations must
    // converge to the correct consensus on both sides of the threshold.
    const Protocol p = protocols::double_exp_threshold(2);
    ConvergenceSweepOptions options;
    options.runs_per_size = 8;
    const auto rows = convergence_sweep(
        p, {10, 15, 16, 17, 64}, [](AgentCount i) { return i >= 16 ? 1 : 0; }, options);
    for (const ConvergenceRow& row : rows) {
        EXPECT_EQ(row.converged_runs, row.runs) << "population " << row.population;
        EXPECT_EQ(row.correct_fraction, 1.0) << "population " << row.population;
    }
}

TEST(DoubleExpThreshold, DenseVariantDecidesItsPredicateInRandomizedSimulation) {
    const Protocol p = protocols::double_exp_threshold_dense(2);  // eta = 15
    ConvergenceSweepOptions options;
    options.runs_per_size = 8;
    const auto rows = convergence_sweep(
        p, {9, 14, 15, 16, 60}, [](AgentCount i) { return i >= 15 ? 1 : 0; }, options);
    for (const ConvergenceRow& row : rows) {
        EXPECT_EQ(row.converged_runs, row.runs) << "population " << row.population;
        EXPECT_EQ(row.correct_fraction, 1.0) << "population " << row.population;
    }
}

// --- Parser / compose integration -------------------------------------------

TEST(DoubleExpThreshold, RoundTripsThroughTheTextFormat) {
    const Protocol p = protocols::double_exp_threshold_dense(2);
    const Protocol reparsed = parse_protocol(format_protocol(p));
    EXPECT_EQ(format_protocol(reparsed), format_protocol(p));
    EXPECT_EQ(reparsed.num_states(), p.num_states());
    EXPECT_EQ(reparsed.num_transitions(), p.num_transitions());
}

TEST(DoubleExpThreshold, ComposesUnderProduct) {
    // (x ≥ 4) ∧ (x ≡ 0 mod 2), with the double-exponential family providing
    // the threshold component — verified exhaustively on the product.
    const Protocol threshold = protocols::double_exp_threshold(1);  // eta = 4
    const Protocol parity = protocols::modulo(2, 0);
    const Protocol both =
        protocols::product(threshold, parity, protocols::combine_and());
    EXPECT_EQ(both.num_states(), threshold.num_states() * parity.num_states());
    const Verifier verifier(both);
    const Predicate predicate = Predicate::conjunction(Predicate::x_at_least(4),
                                                       Predicate::modulo({1}, 2, 0));
    EXPECT_TRUE(verifier.check_predicate(predicate, 2, 7).holds);
}

// --- E11 sweep plumbing ------------------------------------------------------

TEST(E11Sweep, ProducesCompleteRowsOnBothSelectionPaths) {
    for (const PairSelect select : {PairSelect::fenwick, PairSelect::scan}) {
        E11Options tiny;
        tiny.tower_ns = {3};
        tiny.populations = {64, 256};
        tiny.interactions_per_row = 1 << 14;
        tiny.selection = select;
        const auto rows = e11_throughput_sweep(tiny);
        ASSERT_EQ(rows.size(), 4u);  // {flagship, dense} × two populations
        for (const ThroughputRow& row : rows) {
            EXPECT_EQ(row.interactions, tiny.interactions_per_row) << row.protocol;
            EXPECT_GT(row.num_states, 8u) << row.protocol;
            EXPECT_GT(row.interactions_per_sec, 0.0) << row.protocol;
        }
    }
}

}  // namespace
}  // namespace ppsc
