// Unit tests for LogNum, the log-domain representation of the paper's
// astronomical bounds.
#include "support/lognum.hpp"

#include <gtest/gtest.h>

#include "support/bignat.hpp"

namespace ppsc {
namespace {

TEST(LogNum, ZeroBehaviour) {
    LogNum zero;
    EXPECT_TRUE(zero.is_zero());
    EXPECT_EQ(zero.to_string(), "0");
    EXPECT_TRUE((zero * LogNum::from_u64(7)).is_zero());
    EXPECT_EQ((zero + LogNum::from_u64(7)).to_string(), "7");
}

TEST(LogNum, FromU64RoundTripsSmallValues) {
    for (std::uint64_t v : {1ull, 2ull, 3ull, 100ull, 4096ull, 999999ull}) {
        EXPECT_EQ(LogNum::from_u64(v).to_string(), std::to_string(v)) << v;
    }
}

TEST(LogNum, MultiplicationAddsLogs) {
    const LogNum a = LogNum::from_u64(1 << 10);
    const LogNum b = LogNum::from_u64(1 << 12);
    EXPECT_NEAR(static_cast<double>((a * b).log2_value()), 22.0, 1e-9);
}

TEST(LogNum, DivisionSubtractsLogs) {
    const LogNum a = LogNum::power_of_two(100.0L);
    const LogNum b = LogNum::power_of_two(40.0L);
    EXPECT_NEAR(static_cast<double>((a / b).log2_value()), 60.0, 1e-9);
}

TEST(LogNum, PowScalesLogs) {
    const LogNum a = LogNum::from_u64(2);
    EXPECT_NEAR(static_cast<double>(a.pow(100).log2_value()), 100.0, 1e-9);
}

TEST(LogNum, AdditionApproximatesLogSumExp) {
    const LogNum three = LogNum::from_u64(3) + LogNum::from_u64(5);
    EXPECT_EQ(three.to_string(), "8");
    // A vastly smaller addend vanishes.
    const LogNum big = LogNum::power_of_two(500.0L) + LogNum::from_u64(1);
    EXPECT_NEAR(static_cast<double>(big.log2_value()), 500.0, 1e-9);
}

TEST(LogNum, ComparisonsFollowMagnitude) {
    EXPECT_TRUE(LogNum::from_u64(3) < LogNum::from_u64(5));
    EXPECT_TRUE(LogNum::power_of_two(1000.0L) > LogNum::power_of_two(999.0L));
}

TEST(LogNum, FromBigNatAgreesWithLog2Approx) {
    const BigNat big = BigNat::power_of_two(12345);
    EXPECT_NEAR(static_cast<double>(LogNum::from_bignat(big).log2_value()), 12345.0, 1e-6);
}

TEST(LogNum, PowerOfTwoWithBigNatExponent) {
    // 2^(8!) = 2^40320: representable in log-domain.
    const LogNum bound = LogNum::power_of_two(BigNat::factorial(8));
    EXPECT_NEAR(static_cast<double>(bound.log2_value()), 40320.0, 1e-6);
    EXPECT_EQ(bound.to_string(), "2^40320.0");
}

TEST(LogNum, SaturatesOnDoublyAstronomicalExponent) {
    // 2^(2^20000) cannot be held even in log-domain: exponent has 20001 bits.
    const LogNum bound = LogNum::power_of_two(BigNat::power_of_two(20000));
    EXPECT_TRUE(bound.is_infinite());
    EXPECT_EQ(bound.to_string(), "inf");
}

TEST(LogNum, LargeRenderingStyles) {
    EXPECT_EQ(LogNum::power_of_two(100.5L).to_string(), "2^100.5");
    const std::string huge = LogNum::power_of_two(2.0e6L).to_string();
    EXPECT_TRUE(huge.find("2^(~") == 0) << huge;
}

}  // namespace
}  // namespace ppsc
