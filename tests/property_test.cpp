// Property-based cross-validation on randomly generated protocols.
//
// The library's components implement the same semantics through different
// algorithms (stochastic simulation vs exact graph search vs Parikh
// arithmetic vs stable-set backward analysis).  On random protocols —
// which exercise corners no hand-written construction hits — they must
// agree:
//
//   P1  reachability graphs conserve the population and report a valid
//       SCC partition (bottom SCCs really have no exits);
//   P2  if the simulator claims convergence with output b, the exact
//       verifier agrees that fair executions from that input compute b;
//   P3  stable sets are downward closed (Lemma 3.1) on random protocols;
//   P4  execution endpoints match Parikh displacement (Lemma 5.1(i));
//   P5  monotonicity: reachability is preserved under adding agents
//       (Section 2.2), sampled;
//   P6  Contejean–Devie Hilbert bases match brute force on random systems.
#include <gtest/gtest.h>

#include "core/parikh.hpp"
#include "diophantine/pottier.hpp"
#include "sim/simulator.hpp"
#include "stable/stable_sets.hpp"
#include "support/rng.hpp"
#include "verify/verifier.hpp"

namespace ppsc {
namespace {

/// Random protocol: n states, each unordered pair gets 1..2 random rules
/// (possibly silent), random outputs, input variable at state 0.
Protocol random_protocol(Rng& rng, std::size_t n) {
    ProtocolBuilder b;
    for (std::size_t q = 0; q < n; ++q)
        b.add_state("q" + std::to_string(q), static_cast<int>(rng.below(2)));
    b.set_input("x", 0);
    for (std::size_t q = 0; q < n; ++q) {
        for (std::size_t p = 0; p <= q; ++p) {
            const std::uint64_t rules = 1 + rng.below(2);
            for (std::uint64_t k = 0; k < rules; ++k) {
                b.add_transition(static_cast<StateId>(p), static_cast<StateId>(q),
                                 static_cast<StateId>(rng.below(n)),
                                 static_cast<StateId>(rng.below(n)));
            }
        }
    }
    return std::move(b).build();
}

class RandomProtocolTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProtocolTest, P1_GraphInvariantsAndSccPartition) {
    Rng rng(GetParam());
    for (int trial = 0; trial < 8; ++trial) {
        const Protocol p = random_protocol(rng, 2 + rng.below(3));
        const AgentCount population = 3 + static_cast<AgentCount>(rng.below(3));
        const Config roots[] = {p.initial_config(population)};
        const ReachabilityGraph graph = ReachabilityGraph::explore(p, roots, {});
        const auto scc = graph.compute_sccs();
        ASSERT_GT(scc.num_components, 0);
        for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
            EXPECT_EQ(graph.config(static_cast<NodeId>(node)).size(), population);
            const auto component = scc.component_of[node];
            ASSERT_GE(component, 0);
            ASSERT_LT(component, scc.num_components);
            // Bottom components have no cross-component successors.
            for (const NodeId next : graph.successors(static_cast<NodeId>(node))) {
                const auto next_component = scc.component_of[static_cast<std::size_t>(next)];
                if (scc.is_bottom[static_cast<std::size_t>(component)]) {
                    EXPECT_EQ(next_component, component);
                }
                // Tarjan completion order: edges never point to a strictly
                // larger component id.
                EXPECT_LE(next_component, component);
            }
        }
    }
}

TEST_P(RandomProtocolTest, P2_SimulatorConvergenceSoundAgainstVerifier) {
    Rng rng(GetParam() ^ 0xabcdef);
    for (int trial = 0; trial < 12; ++trial) {
        const Protocol p = random_protocol(rng, 2 + rng.below(3));
        const Simulator simulator(p);
        const Verifier verifier(p);
        const AgentCount population = 2 + static_cast<AgentCount>(rng.below(4));
        SimulationOptions options;
        options.max_interactions = 20'000;
        Rng sim_rng(rng.next());
        const SimulationResult result = simulator.run_input(population, sim_rng, options);
        if (!result.converged || !result.output) continue;
        // The simulator claims stability with consensus b: then the final
        // configuration must be b-stable, hence every fair continuation
        // keeps output b.  Check against the exact verifier verdict for
        // the final configuration's own reachability.
        const Config finals[] = {result.final_config};
        const ReachabilityGraph graph = ReachabilityGraph::explore(p, finals, {});
        for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
            EXPECT_EQ(p.consensus_output(graph.config(static_cast<NodeId>(node))),
                      result.output)
                << "simulator declared stability on a non-stable configuration";
        }
    }
}

TEST_P(RandomProtocolTest, P3_StableSetsDownwardClosed) {
    Rng rng(GetParam() ^ 0x517e);
    for (int trial = 0; trial < 4; ++trial) {
        const Protocol p = random_protocol(rng, 2 + rng.below(2));
        const StableAnalysis analysis(p, 5);
        EXPECT_EQ(analysis.downward_closure_violation(), std::nullopt);
    }
}

TEST_P(RandomProtocolTest, P4_ParikhConsistencyOfRandomWalks) {
    Rng rng(GetParam() ^ 0x9a91c4);
    for (int trial = 0; trial < 20; ++trial) {
        const Protocol p = random_protocol(rng, 2 + rng.below(4));
        const Simulator simulator(p);
        const AgentCount population = 3 + static_cast<AgentCount>(rng.below(5));
        Config config = p.initial_config(population);
        const Config start = config;
        ParikhImage parikh(p.num_transitions(), 0);
        for (int step = 0; step < 50; ++step) {
            const auto fired = simulator.step(config, rng);
            if (fired) parikh[static_cast<std::size_t>(*fired)] += 1;
        }
        const auto predicted = apply_parikh(start, p, parikh);
        for (std::size_t q = 0; q < p.num_states(); ++q)
            ASSERT_EQ(predicted[q], config[static_cast<StateId>(q)]);
    }
}

TEST_P(RandomProtocolTest, P5_MonotonicityOfReachability) {
    Rng rng(GetParam() ^ 0x30303);
    for (int trial = 0; trial < 5; ++trial) {
        const Protocol p = random_protocol(rng, 2 + rng.below(2));
        const AgentCount population = 3;
        const Config root = p.initial_config(population);
        const Config roots[] = {root};
        const ReachabilityGraph graph = ReachabilityGraph::explore(p, roots, {});

        // Add one agent in a random state; every C' reachable from C must
        // give C' + D reachable from C + D.
        Config extra(p.num_states());
        extra.set(static_cast<StateId>(rng.below(p.num_states())), 1);
        const Config bigger_roots[] = {root + extra};
        const ReachabilityGraph bigger =
            ReachabilityGraph::explore(p, bigger_roots, {});
        for (std::size_t node = 0; node < graph.num_nodes(); ++node) {
            const Config lifted = graph.config(static_cast<NodeId>(node)) + extra;
            EXPECT_TRUE(bigger.find(lifted).has_value())
                << "monotonicity violated for " << lifted.to_string();
        }
    }
}

TEST_P(RandomProtocolTest, P6_HilbertBasisMatchesBruteForce) {
    Rng rng(GetParam() ^ 0xd10);
    for (int trial = 0; trial < 6; ++trial) {
        HomogeneousSystem system;
        system.num_vars = 2 + rng.below(2);
        const std::size_t rows = 1 + rng.below(2);
        for (std::size_t i = 0; i < rows; ++i) {
            std::vector<std::int64_t> row;
            for (std::size_t j = 0; j < system.num_vars; ++j)
                row.push_back(static_cast<std::int64_t>(rng.below(5)) - 2);
            system.rows.push_back(std::move(row));
        }
        HilbertOptions options;
        options.max_norm1 = 400;
        std::vector<std::vector<std::int64_t>> fast;
        try {
            fast = hilbert_basis_equalities(system, options);
        } catch (const std::length_error&) {
            continue;  // pathological random system; budget is the contract
        }
        auto slow = brute_force_minimal_equalities(system, 5);
        for (const auto& y : slow) {
            EXPECT_NE(std::find(fast.begin(), fast.end(), y), fast.end())
                << "missing minimal solution";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProtocolTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace ppsc
