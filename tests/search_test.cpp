// Tests for the busy-beaver search (Definition 1, experiment E9).
#include "search/busy_beaver.hpp"

#include <gtest/gtest.h>

namespace ppsc {
namespace {

TEST(BusyBeaverSearch, TwoStatesExhaustive) {
    search::SearchOptions options;
    options.max_input = 8;
    const auto outcome = search::busy_beaver_search(2, options);
    EXPECT_TRUE(outcome.exhaustive);
    // 3 output masks (not all-0) × 3^3 tables.
    EXPECT_EQ(outcome.enumerated, 81u);
    EXPECT_GT(outcome.canonical, 0u);
    EXPECT_GT(outcome.threshold_protocols, 0u);
    // With 2 states the best threshold observed is x >= 3: e.g. input
    // state 0 with output 1, state 1 with output 0, and rules
    // 0,0 -> 0,1 / 0,1 -> 1,1 / 1,1 -> 1,1... the search must find
    // something at least as good as the trivial x >= 2 (all-accepting).
    EXPECT_GE(outcome.best_eta, 2);
    EXPECT_LE(outcome.best_eta, 4);
    EXPECT_FALSE(outcome.best_protocol_text.empty());
}

TEST(BusyBeaverSearch, ThreeStatesExhaustiveMeasuredValue) {
    search::SearchOptions options;
    options.max_input = 9;
    const auto outcome = search::busy_beaver_search(3, options);
    EXPECT_TRUE(outcome.exhaustive);
    // Measured result (EXPERIMENTS.md, E9): among all deterministic
    // 3-state protocols the best threshold is x >= 3, realised by 104
    // canonical protocols.  (Definition 1 also allows nondeterministic
    // protocols, which this enumeration does not cover.)
    EXPECT_EQ(outcome.best_eta, 3);
    // Histogram counts only verified thresholds.
    std::uint64_t total = 0;
    for (const auto& [eta, count] : outcome.eta_histogram) {
        EXPECT_GE(eta, 2);
        total += count;
    }
    EXPECT_EQ(total, outcome.threshold_protocols);
}

TEST(BusyBeaverSearch, SamplingModeWorks) {
    search::SearchOptions options;
    options.max_input = 6;
    options.sample_limit = 2000;
    options.seed = 7;
    const auto outcome = search::busy_beaver_search(4, options);
    EXPECT_FALSE(outcome.exhaustive);
    EXPECT_EQ(outcome.enumerated, 2000u);
}

TEST(BusyBeaverSearch, ScreeningPreservesResultsExactly) {
    // Two-phase mode is sound falsification: every field of the outcome
    // except the cost counters must match a screen-free run bit for bit.
    search::SearchOptions exact;
    exact.max_input = 8;
    search::SearchOptions screened = exact;
    screened.screen = true;
    screened.screening.runs = 2;
    screened.screening.max_interactions = 2'000;

    const auto a = search::busy_beaver_search(2, exact);
    const auto b = search::busy_beaver_search(2, screened);
    EXPECT_EQ(a.best_eta, b.best_eta);
    EXPECT_EQ(a.threshold_protocols, b.threshold_protocols);
    EXPECT_EQ(a.eta_histogram, b.eta_histogram);
    EXPECT_EQ(a.best_protocol_text, b.best_protocol_text);
    EXPECT_EQ(a.canonical, b.canonical);
    EXPECT_EQ(a.screened_out, 0u);
    // The 2-state space is full of oscillators; screening must catch some
    // or the fast path is dead code.
    EXPECT_GT(b.screened_out, 0u);
}

TEST(BusyBeaverSearch, ParameterValidation) {
    EXPECT_THROW(search::busy_beaver_search(1, {}), std::invalid_argument);
    EXPECT_THROW(search::busy_beaver_search(4, {}), std::invalid_argument);  // no sample limit
}

}  // namespace
}  // namespace ppsc
