// Unit tests for Protocol / ProtocolBuilder, including Example 2.1 of the
// paper built by hand.
#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "protocols/majority.hpp"
#include "protocols/modulo.hpp"
#include "protocols/threshold.hpp"

namespace ppsc {
namespace {

/// The protocol P_1 of Example 2.1 (k = 1): computes x >= 2 with states
/// {0, 1, 2}, transitions a,b -> 0,a+b if a+b < 2 and a,b -> 2,2 otherwise.
Protocol build_example21_p1() {
    ProtocolBuilder b;
    const StateId s0 = b.add_state("0", 0);
    const StateId s1 = b.add_state("1", 0);
    const StateId s2 = b.add_state("2", 1);
    b.set_input("x", s1);
    // a=0,b=0 -> 0,0 silent. a=0,b=1 -> 0,1 silent. a=1,b=1 -> 2,2.
    b.add_transition(s1, s1, s2, s2);
    // pairs involving 2: a+b >= 2 -> 2,2.
    b.add_transition(s2, s0, s2, s2);
    b.add_transition(s2, s1, s2, s2);
    return std::move(b).build();
}

TEST(ProtocolBuilder, BuildsExample21) {
    const Protocol p = build_example21_p1();
    EXPECT_EQ(p.num_states(), 3u);
    EXPECT_EQ(p.num_transitions(), 3u);
    EXPECT_TRUE(p.is_leaderless());
    EXPECT_EQ(p.input_variables().size(), 1u);
    EXPECT_EQ(p.output(*p.find_state("2")), 1);
    EXPECT_EQ(p.output(*p.find_state("1")), 0);
}

TEST(ProtocolBuilder, RejectsBadInput) {
    ProtocolBuilder b;
    EXPECT_THROW(b.add_state("A", 2), std::invalid_argument);
    const StateId a = b.add_state("A", 0);
    EXPECT_THROW(b.add_state("A", 0), std::invalid_argument);
    EXPECT_THROW(b.add_state("", 0), std::invalid_argument);
    EXPECT_THROW(b.add_transition(a, a, a, StateId{5}), std::invalid_argument);
    EXPECT_THROW(b.set_input("x", StateId{9}), std::invalid_argument);
    b.set_input("x", a);
    EXPECT_THROW(b.set_input("x", a), std::invalid_argument);
    EXPECT_THROW(b.add_leaders(a, 0), std::invalid_argument);
}

TEST(ProtocolBuilder, BuildWithoutStatesOrInputThrows) {
    {
        ProtocolBuilder b;
        EXPECT_THROW(std::move(b).build(), std::invalid_argument);
    }
    {
        ProtocolBuilder b;
        b.add_state("A", 0);
        EXPECT_THROW(std::move(b).build(), std::invalid_argument);
    }
}

TEST(ProtocolBuilder, SilentTransitionsAreIgnoredAndDuplicatesMerged) {
    ProtocolBuilder b;
    const StateId a = b.add_state("A", 0);
    const StateId c = b.add_state("B", 0);
    b.set_input("x", a);
    b.add_transition(a, c, a, c);  // silent
    b.add_transition(a, c, c, a);  // silent after canonicalisation
    b.add_transition(a, a, c, c);
    b.add_transition(a, a, c, c);  // duplicate
    const Protocol p = std::move(b).build();
    EXPECT_EQ(p.num_transitions(), 1u);
    EXPECT_TRUE(p.pair_is_silent(a, c));
    EXPECT_FALSE(p.pair_is_silent(a, a));
}

TEST(ProtocolBuilder, TransitionsCanonicalisedUnordered) {
    ProtocolBuilder b;
    const StateId a = b.add_state("A", 0);
    const StateId c = b.add_state("B", 0);
    const StateId d = b.add_state("C", 1);
    b.set_input("x", a);
    b.add_transition(c, a, d, a);  // stored as {A,B} -> {A,C}
    const Protocol p = std::move(b).build();
    ASSERT_EQ(p.num_transitions(), 1u);
    const Transition& t = p.transitions()[0];
    EXPECT_LE(t.pre1, t.pre2);
    EXPECT_LE(t.post1, t.post2);
    EXPECT_EQ(p.rules_for_pair(a, c).size(), 1u);
    EXPECT_EQ(p.rules_for_pair(c, a).size(), 1u);
}

TEST(Protocol, InitialConfigLeaderless) {
    const Protocol p = build_example21_p1();
    const Config ic = p.initial_config(5);
    EXPECT_EQ(ic.size(), 5);
    EXPECT_EQ(ic[*p.find_state("1")], 5);
    // Linearity for leaderless protocols (Section 2.2).
    const Config ic2 = p.initial_config(2);
    const Config ic3 = p.initial_config(3);
    EXPECT_EQ(ic2 + ic3, ic);
}

TEST(Protocol, InitialConfigRequiresTwoAgents) {
    const Protocol p = build_example21_p1();
    EXPECT_THROW(p.initial_config(1), std::invalid_argument);
    EXPECT_THROW(p.initial_config(-3), std::invalid_argument);
}

TEST(Protocol, InitialConfigWithLeaders) {
    ProtocolBuilder b;
    const StateId x = b.add_state("x", 0);
    const StateId ell = b.add_state("L", 1);
    b.set_input("x", x);
    b.add_leaders(ell, 2);
    const Protocol p = std::move(b).build();
    EXPECT_FALSE(p.is_leaderless());
    const Config ic = p.initial_config(3);
    EXPECT_EQ(ic[x], 3);
    EXPECT_EQ(ic[ell], 2);
    EXPECT_EQ(ic.size(), 5);
    // With leaders, IC(0) is still a valid configuration (two leader agents).
    EXPECT_EQ(p.initial_config(0).size(), 2);
}

TEST(Protocol, ConsensusOutput) {
    const Protocol p = build_example21_p1();
    const StateId s0 = *p.find_state("0"), s1 = *p.find_state("1"), s2 = *p.find_state("2");
    Config all_two(3);
    all_two.set(s2, 4);
    EXPECT_EQ(p.consensus_output(all_two), 1);
    Config mixed(3);
    mixed.set(s1, 1);
    mixed.set(s2, 1);
    EXPECT_EQ(p.consensus_output(mixed), std::nullopt);
    Config zeros(3);
    zeros.set(s0, 2);
    zeros.set(s1, 1);
    EXPECT_EQ(p.consensus_output(zeros), 0);
    EXPECT_EQ(p.consensus_output(Config(3)), std::nullopt);
}

TEST(Protocol, EnabledAndFire) {
    const Protocol p = build_example21_p1();
    const StateId s1 = *p.find_state("1"), s2 = *p.find_state("2");
    const Transition& doubling = p.transitions()[p.rules_for_pair(s1, s1).front()];

    Config two_ones = Config::single(3, s1, 2);
    EXPECT_TRUE(p.enabled(two_ones, doubling));
    const Config after = p.fire(two_ones, doubling);
    EXPECT_EQ(after[s2], 2);
    EXPECT_EQ(after[s1], 0);
    EXPECT_EQ(after.size(), 2);  // agent count conserved

    Config one_one = Config::single(3, s1, 1);
    EXPECT_FALSE(p.enabled(one_one, doubling));  // pairs need two agents
}

TEST(Protocol, DisplacementVectors) {
    const Protocol p = build_example21_p1();
    const StateId s1 = *p.find_state("1"), s2 = *p.find_state("2");
    const Transition& doubling = p.transitions()[p.rules_for_pair(s1, s1).front()];
    const auto delta = p.displacement(doubling);
    EXPECT_EQ(delta[static_cast<std::size_t>(s1)], -2);
    EXPECT_EQ(delta[static_cast<std::size_t>(s2)], 2);
    // Displacements conserve the number of agents.
    std::int64_t sum = 0;
    for (auto d : delta) sum += d;
    EXPECT_EQ(sum, 0);
}

TEST(Protocol, TextAndDotRenderings) {
    const Protocol p = build_example21_p1();
    const std::string text = p.to_text();
    EXPECT_NE(text.find("3 states"), std::string::npos);
    EXPECT_NE(text.find("leaderless"), std::string::npos);
    const std::string dot = p.to_dot();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

TEST(Protocol, FindStateMissingReturnsNullopt) {
    const Protocol p = build_example21_p1();
    EXPECT_EQ(p.find_state("missing"), std::nullopt);
}

TEST(Protocol, CsrRuleTableMatchesNaiveMapExhaustively) {
    // The CSR pair→rules table (offsets + flat id array + silent bitset)
    // must agree, for every unordered pair, with a naive map rebuilt from
    // transitions().
    const Protocol candidates[] = {build_example21_p1(),
                                   protocols::unary_threshold(7),
                                   protocols::collector_threshold(37),
                                   protocols::modulo(5, 2),
                                   protocols::majority()};
    for (const Protocol& p : candidates) {
        std::map<std::pair<StateId, StateId>, std::vector<TransitionId>> naive;
        const auto transitions = p.transitions();
        for (std::size_t i = 0; i < transitions.size(); ++i)
            naive[{transitions[i].pre1, transitions[i].pre2}].push_back(
                static_cast<TransitionId>(i));

        const auto n = static_cast<StateId>(p.num_states());
        for (StateId a = 0; a < n; ++a) {
            for (StateId b = 0; b < n; ++b) {
                const auto key = std::make_pair(std::min(a, b), std::max(a, b));
                const auto it = naive.find(key);
                const auto rules = p.rules_for_pair(a, b);
                if (it == naive.end()) {
                    EXPECT_TRUE(rules.empty());
                    EXPECT_TRUE(p.pair_is_silent(a, b));
                } else {
                    EXPECT_EQ(std::vector<TransitionId>(rules.begin(), rules.end()),
                              it->second)
                        << "pair (" << a << ", " << b << ")";
                    EXPECT_FALSE(p.pair_is_silent(a, b));
                }
            }
        }
    }
}

}  // namespace
}  // namespace ppsc
