// Tests for the Fenwick tree and for the Fenwick-backed agent sampling of
// the simulator: exact equivalence with the linear-scan rank mapping the
// simulator used before, plus a chi-squared goodness-of-fit test of the
// sampled pair distribution.
#include "support/fenwick.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/config.hpp"
#include "protocols/threshold.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace ppsc {
namespace {

TEST(FenwickTree, PrefixSumsMatchNaive) {
    const std::vector<std::int64_t> weights = {3, 0, 5, 1, 0, 0, 7, 2, 4};
    const FenwickTree tree{std::span<const std::int64_t>(weights)};
    std::int64_t sum = 0;
    for (std::size_t i = 0; i <= weights.size(); ++i) {
        EXPECT_EQ(tree.prefix_sum(i), sum);
        if (i < weights.size()) {
            EXPECT_EQ(tree.value(i), weights[i]);
            sum += weights[i];
        }
    }
    EXPECT_EQ(tree.total(), sum);
}

TEST(FenwickTree, SampleInvertsTheCdfExhaustively) {
    const std::vector<std::int64_t> weights = {2, 0, 3, 1, 0, 4};
    const FenwickTree tree{std::span<const std::int64_t>(weights)};
    // Rank r belongs to the smallest i with prefix_sum(i+1) > r.
    for (std::int64_t r = 0; r < tree.total(); ++r) {
        std::size_t expected = 0;
        std::int64_t cumulative = 0;
        for (std::size_t q = 0; q < weights.size(); ++q) {
            cumulative += weights[q];
            if (r < cumulative) {
                expected = q;
                break;
            }
        }
        EXPECT_EQ(tree.sample(r), expected) << "rank " << r;
    }
}

TEST(FenwickTree, AddKeepsTreeConsistent) {
    std::vector<std::int64_t> naive(17, 0);
    FenwickTree tree{std::span<const std::int64_t>(naive)};
    Rng rng(7);
    for (int iter = 0; iter < 1000; ++iter) {
        const std::size_t i = rng.below(naive.size());
        const std::int64_t delta = static_cast<std::int64_t>(rng.below(9)) - naive[i] % 5;
        if (naive[i] + delta < 0) continue;
        naive[i] += delta;
        tree.add(i, delta);
    }
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < naive.size(); ++i) {
        EXPECT_EQ(tree.prefix_sum(i), sum);
        sum += naive[i];
    }
    EXPECT_EQ(tree.total(), sum);
}

TEST(FenwickTree, SingleElementAndEmpty) {
    const std::vector<std::int64_t> one = {5};
    const FenwickTree tree{std::span<const std::int64_t>(one)};
    EXPECT_EQ(tree.total(), 5);
    for (std::int64_t r = 0; r < 5; ++r) EXPECT_EQ(tree.sample(r), 0u);

    const FenwickTree empty;
    EXPECT_EQ(empty.size(), 0u);
    EXPECT_EQ(empty.total(), 0);
}

TEST(FenwickTree, ConstructionOverEmptyCountVectorIsClean) {
    // Degenerate input: assign over an empty span must yield a working
    // empty tree (and shrink a previously non-empty one), with every
    // non-sampling operation well-defined.
    const std::vector<std::int64_t> weights = {4, 2};
    FenwickTree tree{std::span<const std::int64_t>(weights)};
    EXPECT_EQ(tree.total(), 6);
    tree.assign(std::span<const std::int64_t>{});
    EXPECT_EQ(tree.size(), 0u);
    EXPECT_EQ(tree.total(), 0);
    EXPECT_EQ(tree.prefix_sum(0), 0);

    const FenwickTree128 empty128{std::span<const Int128>{}};
    EXPECT_EQ(empty128.size(), 0u);
    EXPECT_TRUE(empty128.total() == 0);
}

TEST(FenwickTree128, CarriesWeightsBeyondInt64) {
    // The pair-weight instantiation: ordered pair weights 2·c_p·c_q pass
    // int64 once populations pass 2³¹ agents.  Exercise sums, updates and
    // sampling with weights around 2^80.
    const Int128 big = Int128{1} << 80;
    const std::vector<Int128> weights = {big, 0, 3 * big, big / 2};
    FenwickTree128 tree{std::span<const Int128>(weights)};
    EXPECT_TRUE(tree.total() == big + 3 * big + big / 2);
    EXPECT_TRUE(tree.value(2) == 3 * big);
    EXPECT_EQ(tree.sample(0), 0u);
    EXPECT_EQ(tree.sample(big), 2u);            // first rank past slot 0
    EXPECT_EQ(tree.sample(4 * big), 3u);        // into the last slot
    tree.add(1, big);
    EXPECT_TRUE(tree.prefix_sum(2) == 2 * big);
    EXPECT_EQ(tree.sample(big + 1), 1u);
    // Exhaustive CDF inversion at coarse ranks, mirroring the int64 test.
    std::size_t expected_slot = 0;
    Int128 cumulative = 0;
    for (std::size_t q = 0; q < weights.size(); ++q) {
        const Int128 w = tree.value(q);
        if (w == 0) continue;
        EXPECT_EQ(tree.sample(cumulative), q);
        EXPECT_EQ(tree.sample(cumulative + w - 1), q);
        cumulative += w;
        expected_slot = q;
    }
    EXPECT_EQ(expected_slot, 3u);
    EXPECT_TRUE(cumulative == tree.total());
}

TEST(Rng, Below128DelegatesToBelowInWordRangeAndHonoursWideBounds) {
    // In-word bounds must consume the stream exactly like below(), so the
    // widened pair-weight draw leaves all ≤ 2³¹-population trajectories
    // bit-identical.
    Rng narrow(42), wide(42);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t bound = 1 + (i * 7919u);
        EXPECT_EQ(static_cast<std::uint64_t>(wide.below128(bound)), narrow.below(bound));
    }
    // Wide bounds: all draws in range, and the high 64 bits actually used.
    const unsigned __int128 bound = (static_cast<unsigned __int128>(1) << 70) + 12345;
    Rng rng(7);
    bool saw_high_bits = false;
    for (int i = 0; i < 500; ++i) {
        const unsigned __int128 v = rng.below128(bound);
        ASSERT_TRUE(v < bound);
        saw_high_bits = saw_high_bits || (v >> 64) != 0;
    }
    EXPECT_TRUE(saw_high_bits);
}

// The linear-scan rank→state mapping the simulator used before the Fenwick
// sampler.  Used as the reference in the equivalence tests below.
StateId scan_rank(const std::vector<AgentCount>& counts, AgentCount rank) {
    AgentCount cumulative = 0;
    for (std::size_t q = 0; q < counts.size(); ++q) {
        cumulative += counts[q];
        if (rank < cumulative) return static_cast<StateId>(q);
    }
    ADD_FAILURE() << "rank " << rank << " beyond population";
    return -1;
}

TEST(FenwickSampling, RankMappingMatchesLinearScanExhaustively) {
    const std::vector<AgentCount> counts = {4, 0, 0, 9, 1, 0, 6, 2};
    const FenwickTree tree{std::span<const std::int64_t>(counts)};
    for (AgentCount r = 0; r < tree.total(); ++r)
        EXPECT_EQ(static_cast<StateId>(tree.sample(r)), scan_rank(counts, r)) << "rank " << r;
}

TEST(FenwickSampling, SamplePairMatchesLinearScanGivenSameRanks) {
    // Simulator::sample_pair consumes two rng.below draws exactly like the
    // old scan-based sampler; with the same Rng state both must produce the
    // same ordered state pair.
    const Protocol protocol = protocols::collector_threshold(37);
    const Simulator simulator(protocol);
    Config config = protocol.initial_config(50);
    // Scramble the configuration so many states are occupied.
    Rng scramble(3);
    for (int i = 0; i < 300; ++i) simulator.step(config, scramble);

    Rng rng_fenwick(12345), rng_reference(12345);
    const AgentCount n = config.size();
    for (int i = 0; i < 2000; ++i) {
        const auto [s1, s2] = simulator.sample_pair(config, rng_fenwick);
        const auto r1 = static_cast<AgentCount>(
            rng_reference.below(static_cast<std::uint64_t>(n)));
        auto r2 = static_cast<AgentCount>(
            rng_reference.below(static_cast<std::uint64_t>(n - 1)));
        if (r2 >= r1) ++r2;
        EXPECT_EQ(s1, scan_rank(config.counts(), r1));
        EXPECT_EQ(s2, scan_rank(config.counts(), r2));
    }
}

TEST(FenwickSampling, PairDistributionPassesChiSquared) {
    // Chi-squared goodness-of-fit of Simulator::sample_pair against the
    // exact encounter distribution P(s1=a, s2=b) = c_a (c_b − [a=b]) / n(n−1).
    const std::size_t num_states = 5;
    const Config config = Config::from_counts({6, 0, 3, 9, 2});
    const double n = static_cast<double>(config.size());

    ProtocolBuilder b;
    for (std::size_t q = 0; q < num_states; ++q)
        b.add_state("s" + std::to_string(q), 0);
    b.set_input("x", 0);
    b.add_transition(0, 1, 2, 3);  // protocols need one rule; sampling ignores it
    const Protocol protocol = std::move(b).build();
    const Simulator simulator(protocol);

    const int samples = 200000;
    std::map<std::pair<StateId, StateId>, int> observed;
    Rng rng(271828);
    for (int i = 0; i < samples; ++i) ++observed[simulator.sample_pair(config, rng)];

    double chi2 = 0.0;
    int cells = 0;
    for (StateId a = 0; a < static_cast<StateId>(num_states); ++a) {
        for (StateId bb = 0; bb < static_cast<StateId>(num_states); ++bb) {
            const double ca = static_cast<double>(config[a]);
            const double cb = static_cast<double>(config[bb]) - (a == bb ? 1.0 : 0.0);
            const double p = ca * cb / (n * (n - 1.0));
            const int seen = observed[{a, bb}];
            if (p <= 0.0) {
                EXPECT_EQ(seen, 0);
                continue;
            }
            const double expected = p * samples;
            const double diff = seen - expected;
            chi2 += diff * diff / expected;
            ++cells;
        }
    }
    // 4 occupied states → 16 occupied-pair cells → 15 degrees of freedom;
    // the 99.9th percentile of χ²(15) is ≈ 37.7.  A correct sampler fails
    // this once in a thousand seeds; the seed above is fixed, so the test
    // is deterministic.
    EXPECT_EQ(cells, 16);
    EXPECT_LT(chi2, 37.7) << "sampled pair distribution deviates from uniform encounters";
}

}  // namespace
}  // namespace ppsc
