// Tests for stable-set computation — the executable form of Section 3.
#include "stable/stable_sets.hpp"

#include <gtest/gtest.h>

#include "protocols/majority.hpp"
#include "protocols/threshold.hpp"

namespace ppsc {
namespace {

Config make_config(const Protocol& p, std::initializer_list<std::pair<const char*, AgentCount>>
                                          counts) {
    Config config(p.num_states());
    for (const auto& [name, count] : counts) config.set(*p.find_state(name), count);
    return config;
}

TEST(StableAnalysis, UnaryThresholdSliceTwoExactClassification) {
    const Protocol p = protocols::unary_threshold(2);
    const StableAnalysis analysis(p, 4);

    EXPECT_EQ(analysis.stability(make_config(p, {{"v2", 2}})), Stability::kStable1);
    EXPECT_EQ(analysis.stability(make_config(p, {{"v0", 2}})), Stability::kStable0);
    EXPECT_EQ(analysis.stability(make_config(p, {{"v0", 1}, {"v1", 1}})), Stability::kStable0);
    // Mixed-output or value-2 configurations are not stable.
    EXPECT_EQ(analysis.stability(make_config(p, {{"v1", 2}})), Stability::kNeither);
    EXPECT_EQ(analysis.stability(make_config(p, {{"v1", 1}, {"v2", 1}})), Stability::kNeither);
    EXPECT_EQ(analysis.stability(make_config(p, {{"v0", 1}, {"v2", 1}})), Stability::kNeither);
}

TEST(StableAnalysis, StableCountsPerSlice) {
    const Protocol p = protocols::unary_threshold(2);
    const StableAnalysis analysis(p, 3);
    const auto counts0 = analysis.stable_counts(0);
    const auto counts1 = analysis.stable_counts(1);
    ASSERT_EQ(counts0.size(), 2u);
    // Size 2: {2·v0}, {v0,v1} are 0-stable; {2·v2} is 1-stable.
    EXPECT_EQ(counts0[0], (std::pair<AgentCount, std::size_t>{2, 2}));
    EXPECT_EQ(counts1[0], (std::pair<AgentCount, std::size_t>{2, 1}));
    // Size 3: value must stay <= 1: {3·v0}, {2·v0, v1}; accept: {3·v2}.
    EXPECT_EQ(counts0[1], (std::pair<AgentCount, std::size_t>{3, 2}));
    EXPECT_EQ(counts1[1], (std::pair<AgentCount, std::size_t>{3, 1}));
}

TEST(StableAnalysis, DownwardClosureHoldsOnFamilies) {
    // Lemma 3.1, checked exhaustively over the bounded region.
    for (AgentCount eta = 2; eta <= 4; ++eta) {
        const StableAnalysis analysis(protocols::unary_threshold(eta), 5);
        EXPECT_EQ(analysis.downward_closure_violation(), std::nullopt) << "unary eta=" << eta;
    }
    const StableAnalysis collector(protocols::collector_threshold(5), 5);
    EXPECT_EQ(collector.downward_closure_violation(), std::nullopt);
    const StableAnalysis maj(protocols::majority(), 6);
    EXPECT_EQ(maj.downward_closure_violation(), std::nullopt);
}

TEST(StableAnalysis, EmpiricalBasisOfAcceptingSet) {
    const Protocol p = protocols::unary_threshold(2);
    const StableAnalysis analysis(p, 6);
    const auto basis = analysis.empirical_basis(1);
    // SC_1 over the region is {k·v2 : k >= 2} = {2·v2} + N^{v2}.
    ASSERT_EQ(basis.size(), 1u);
    EXPECT_EQ(basis[0].base, make_config(p, {{"v2", 2}}));
    ASSERT_EQ(basis[0].pump.size(), 1u);
    EXPECT_EQ(basis[0].pump[0], *p.find_state("v2"));
    EXPECT_EQ(basis[0].norm(), 2);
}

TEST(StableAnalysis, EmpiricalBasisOfRejectingSet) {
    const Protocol p = protocols::unary_threshold(2);
    const StableAnalysis analysis(p, 6);
    const auto basis = analysis.empirical_basis(0);
    // SC_0 = configurations of total value <= 1 without v2:
    //   {2·v0} + N^{v0}  and  {v0,v1} + N^{v0}.
    ASSERT_EQ(basis.size(), 2u);
    for (const auto& element : basis) {
        EXPECT_LE(element.norm(), 2);
        ASSERT_EQ(element.pump.size(), 1u);
        EXPECT_EQ(element.pump[0], *p.find_state("v0"));
    }
}

TEST(StableAnalysis, BasisNormsAreTinyComparedToBeta) {
    // Lemma 3.2 guarantees norm <= 2^(2(2n+1)!+1); empirically the norms of
    // these families are single digits — the gap the paper discusses.
    const StableAnalysis analysis(protocols::collector_threshold(3), 6);
    for (int b = 0; b < 2; ++b) {
        for (const auto& element : analysis.empirical_basis(b)) {
            EXPECT_LE(element.norm(), 6);
        }
    }
}

TEST(StableAnalysis, ReferenceBackendClassifiesIdentically) {
    const Protocol p = protocols::collector_threshold(3);
    const StableAnalysis sparse(p, 4);
    const StableAnalysis reference(p, 4, {}, ClosureCompute::reference);
    EXPECT_EQ(sparse.compute(), ClosureCompute::sparse);
    EXPECT_EQ(reference.compute(), ClosureCompute::reference);
    for (AgentCount population = 2; population <= 4; ++population) {
        for (int b = 0; b < 2; ++b) {
            EXPECT_EQ(sparse.stable_configs(population, b),
                      reference.stable_configs(population, b))
                << "population " << population << ", b = " << b;
        }
    }
}

TEST(StableAnalysis, StabilityQueriesValidateRange) {
    const Protocol p = protocols::unary_threshold(2);
    const StableAnalysis analysis(p, 4);
    EXPECT_THROW(analysis.stability(make_config(p, {{"v0", 9}})), std::invalid_argument);
    EXPECT_THROW(StableAnalysis(p, 1), std::invalid_argument);
    EXPECT_THROW(analysis.empirical_basis(2), std::invalid_argument);
    EXPECT_THROW(analysis.empirical_basis(0, 0), std::invalid_argument);
}

TEST(StableAnalysis, StableConfigsAgreeWithStabilityFlags) {
    const Protocol p = protocols::collector_threshold(3);
    const StableAnalysis analysis(p, 4);
    for (int b = 0; b < 2; ++b) {
        for (const Config& config : analysis.stable_configs(3, b)) {
            EXPECT_TRUE(analysis.is_stable(config, b));
            // A stable configuration is a consensus of b (Definition 2 with
            // C' = C).
            EXPECT_EQ(p.consensus_output(config), b);
        }
    }
}

}  // namespace
}  // namespace ppsc
