// Unit tests for BigNat: algebraic laws checked against 64-bit oracles,
// plus the specific big values the paper's bounds need.
#include "support/bignat.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "support/rng.hpp"

namespace ppsc {
namespace {

TEST(BigNat, DefaultIsZero) {
    BigNat zero;
    EXPECT_TRUE(zero.is_zero());
    EXPECT_EQ(zero.bit_length(), 0u);
    EXPECT_EQ(zero.to_string(), "0");
    EXPECT_EQ(zero.to_u64(), 0u);
}

TEST(BigNat, ConstructionFromU64) {
    EXPECT_EQ(BigNat(1).to_u64(), 1u);
    EXPECT_EQ(BigNat(0xffffffffull).to_u64(), 0xffffffffull);
    EXPECT_EQ(BigNat(0x100000000ull).to_u64(), 0x100000000ull);
    EXPECT_EQ(BigNat(UINT64_MAX).to_u64(), UINT64_MAX);
}

TEST(BigNat, DecimalRoundTrip) {
    const char* cases[] = {"0", "1", "9", "10", "4294967295", "4294967296",
                           "18446744073709551615", "18446744073709551616",
                           "123456789012345678901234567890"};
    for (const char* text : cases) {
        EXPECT_EQ(BigNat::from_decimal(text).to_string(), text) << text;
    }
}

TEST(BigNat, FromDecimalRejectsGarbage) {
    EXPECT_THROW(BigNat::from_decimal(""), std::invalid_argument);
    EXPECT_THROW(BigNat::from_decimal("12a"), std::invalid_argument);
    EXPECT_THROW(BigNat::from_decimal("-1"), std::invalid_argument);
}

TEST(BigNat, AdditionMatchesU64Oracle) {
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t a = rng.next() >> 1;  // avoid overflow
        const std::uint64_t b = rng.next() >> 1;
        EXPECT_EQ((BigNat(a) + BigNat(b)).to_u64(), a + b);
    }
}

TEST(BigNat, SubtractionMatchesU64Oracle) {
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t a = rng.next();
        std::uint64_t b = rng.next();
        if (a < b) std::swap(a, b);
        EXPECT_EQ((BigNat(a) - BigNat(b)).to_u64(), a - b);
    }
}

TEST(BigNat, SubtractionUnderflowThrows) {
    EXPECT_THROW(BigNat(3) - BigNat(4), std::underflow_error);
}

TEST(BigNat, MultiplicationMatchesU64Oracle) {
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t a = rng.next() & 0xffffffffull;
        const std::uint64_t b = rng.next() & 0xffffffffull;
        EXPECT_EQ((BigNat(a) * BigNat(b)).to_u64(), a * b);
    }
}

TEST(BigNat, MultiplicationBySchoolbookIdentities) {
    const BigNat big = BigNat::from_decimal("340282366920938463463374607431768211456");  // 2^128
    EXPECT_EQ((big * BigNat(0)).to_string(), "0");
    EXPECT_EQ((big * BigNat(1)).to_string(), big.to_string());
    EXPECT_EQ((big * big).to_string(), BigNat::power_of_two(256).to_string());
}

TEST(BigNat, ShiftsMatchU64Oracle) {
    Rng rng(17);
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t a = rng.next() & 0xffffffffull;
        const std::uint64_t s = rng.below(30);
        EXPECT_EQ((BigNat(a) << s).to_u64(), a << s);
        EXPECT_EQ((BigNat(a) >> s).to_u64(), a >> s);
    }
}

TEST(BigNat, ShiftAcrossLimbBoundaries) {
    const BigNat one(1);
    for (std::uint64_t bits : {31u, 32u, 33u, 63u, 64u, 65u, 127u, 128u, 1000u}) {
        const BigNat shifted = one << bits;
        EXPECT_EQ(shifted.bit_length(), bits + 1) << bits;
        EXPECT_EQ(shifted >> bits, one) << bits;
    }
}

TEST(BigNat, PowerOfTwoHasExpectedBitLength) {
    EXPECT_EQ(BigNat::power_of_two(0).to_u64(), 1u);
    EXPECT_EQ(BigNat::power_of_two(10).to_u64(), 1024u);
    EXPECT_EQ(BigNat::power_of_two(100000).bit_length(), 100001u);
}

TEST(BigNat, PowMatchesRepeatedMultiplication) {
    const BigNat three(3);
    BigNat expected(1);
    for (int e = 0; e < 50; ++e) {
        EXPECT_EQ(three.pow(static_cast<std::uint64_t>(e)), expected);
        expected *= three;
    }
}

TEST(BigNat, PowOverflowGuardThrows) {
    EXPECT_THROW(BigNat(2).pow(1u << 30, /*max_bits=*/1024), std::overflow_error);
}

TEST(BigNat, FactorialSmallValues) {
    const std::uint64_t expected[] = {1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800};
    for (std::uint64_t n = 0; n <= 10; ++n) {
        EXPECT_EQ(BigNat::factorial(n).to_u64(), expected[n]) << n;
    }
}

TEST(BigNat, Factorial30Exact) {
    // 30! = 265252859812191058636308480000000
    EXPECT_EQ(BigNat::factorial(30).to_string(), "265252859812191058636308480000000");
}

TEST(BigNat, ComparisonsAreTotalOrder) {
    const BigNat a(5), b = BigNat::from_decimal("18446744073709551616"), c(5);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b > a);
    EXPECT_TRUE(a == c);
    EXPECT_TRUE(a <= c);
    EXPECT_TRUE(b >= a);
}

TEST(BigNat, Log2ApproxOnPowersOfTwo) {
    for (std::uint64_t e : {1u, 10u, 64u, 1000u, 54321u}) {
        EXPECT_NEAR(BigNat::power_of_two(e).log2_approx(), static_cast<double>(e), 1e-9) << e;
    }
}

TEST(BigNat, ToU64OverflowThrows) {
    EXPECT_THROW(BigNat::power_of_two(64).to_u64(), std::overflow_error);
}

TEST(BigNat, DivU32MatchesOracle) {
    Rng rng(23);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t a = rng.next();
        const std::uint32_t d = static_cast<std::uint32_t>(rng.below(1000000) + 1);
        std::uint32_t rem = 0;
        const BigNat q = BigNat(a).div_u32(d, rem);
        EXPECT_EQ(q.to_u64(), a / d);
        EXPECT_EQ(rem, a % d);
    }
}

TEST(BigNat, DivByZeroThrows) {
    std::uint32_t rem = 0;
    EXPECT_THROW(BigNat(5).div_u32(0, rem), std::invalid_argument);
}

TEST(BigNat, DisplayStringSwitchesToScientific) {
    EXPECT_EQ(BigNat(12345).to_display_string(), "12345");
    const std::string huge = BigNat::power_of_two(1000).to_display_string();
    EXPECT_EQ(huge.front(), '~');
}

// The paper's Theorem 5.9 exponent: (2n+2)! for small n, exact.
TEST(BigNat, PaperExponentFactorials) {
    EXPECT_EQ(BigNat::factorial(6).to_u64(), 720u);         // n=2: (2n+2)! = 6!
    EXPECT_EQ(BigNat::factorial(8).to_u64(), 40320u);       // n=3
    EXPECT_EQ(BigNat::factorial(10).to_u64(), 3628800u);    // n=4
}

}  // namespace
}  // namespace ppsc
