// Tests for the high-throughput simulation engine: batched stepping
// (run_batch), the rejection-free silent-encounter skipping inside run(),
// incremental silence detection, and the parallel convergence sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "protocols/double_exp_threshold.hpp"
#include "protocols/majority.hpp"
#include "protocols/threshold.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"

namespace ppsc {
namespace {

TEST(RunBatch, ConservesAgentsAndHonoursBudget) {
    const Protocol p = protocols::collector_threshold(20);
    const Simulator sim(p);
    Config config = p.initial_config(64);
    Rng rng(17);
    const std::uint64_t executed = sim.run_batch(config, rng, 10'000);
    EXPECT_LE(executed, 10'000u);
    EXPECT_EQ(config.size(), 64);
}

TEST(RunBatch, StopsEarlyExactlyWhenSilent) {
    // run_batch returns less than its budget only when the configuration is
    // silent; drive a run to completion and check both directions.
    const Protocol p = protocols::collector_threshold(6);
    const Simulator sim(p);
    Config config = p.initial_config(10);
    Rng rng(23);
    std::uint64_t total = 0;
    for (int round = 0; round < 1000; ++round) {
        const std::uint64_t executed = sim.run_batch(config, rng, 5'000);
        total += executed;
        if (executed < 5'000) break;
    }
    EXPECT_TRUE(sim.is_silent(config)) << "after " << total << " interactions";
    // Once silent, further batches execute nothing.
    EXPECT_EQ(sim.run_batch(config, rng, 1'000), 0u);
    EXPECT_EQ(config.size(), 10);
}

TEST(RunBatch, AgreesWithSingleSteppingUnderSameSeed) {
    // run_batch in the dense regime and step() consume the scheduler chain
    // identically; on a protocol where no encounter is ever skipped
    // (majority keeps most pairs active early on) the first interactions of
    // a batch match per-step execution with the same seed.  Here we only
    // require the invariants: agent conservation and monotone interaction
    // counting.
    const Protocol p = protocols::majority();
    const Simulator sim(p);
    const AgentCount inputs[] = {40, 24};
    Config batch_config = p.initial_config(inputs);
    Config step_config = p.initial_config(inputs);
    Rng batch_rng(99), step_rng(99);
    const std::uint64_t executed = sim.run_batch(batch_config, batch_rng, 200);
    std::uint64_t stepped = 0;
    for (std::uint64_t i = 0; i < executed; ++i) {
        sim.step(step_config, step_rng);
        ++stepped;
    }
    EXPECT_EQ(executed, stepped);
    EXPECT_EQ(batch_config.size(), step_config.size());
}

TEST(RunBatch, ReturnsZeroCleanlyOnDegeneratePopulations) {
    // Populations of 0 or 1 agents have n(n−1) == 0 ordered pairs: no
    // encounter can ever happen, so the batch is trivially complete rather
    // than an error.
    const Protocol p = protocols::unary_threshold(2);
    const Simulator sim(p);
    Rng rng(1);
    Config empty(p.num_states());
    EXPECT_EQ(sim.run_batch(empty, rng, 10), 0u);
    EXPECT_EQ(empty.size(), 0);
    Config lonely = Config::single(p.num_states(), 0, 1);
    EXPECT_EQ(sim.run_batch(lonely, rng, 10), 0u);
    EXPECT_EQ(lonely.size(), 1);
    // fired_step reports the same boundary as "silent": nothing fires.
    std::uint64_t consumed = 99;
    EXPECT_EQ(sim.fired_step(lonely, rng, 10, &consumed), std::nullopt);
    EXPECT_EQ(consumed, 0u);
}

TEST(RunBatch, ConsumesBudgetExactlyInTheSparseRegime) {
    // A far-from-silent sparse configuration: the geometric silent-skip
    // regularly overshoots small budgets and must be clamped so `consumed`
    // is reported exactly — never past the budget.
    const Protocol p = protocols::collector_threshold(2);
    const Simulator sim(p);
    const auto t0 = p.input_state(0);
    const auto top = p.find_state("T");
    ASSERT_TRUE(top.has_value());
    Rng rng(31337);
    for (const std::uint64_t budget : {1u, 2u, 3u, 7u, 100u}) {
        // Two mergeable tokens drowned in accepted agents: tiny weight,
        // huge pair count.
        Config config(p.num_states());
        config.set(t0, 2);
        config.set(*top, 1 << 16);
        std::uint64_t total = 0;
        // Until something fires the configuration is not silent, so every
        // batch must consume its full budget, exactly.
        for (int round = 0; round < 50; ++round) {
            const std::uint64_t executed = sim.run_batch(config, rng, budget);
            EXPECT_EQ(executed, budget) << "budget " << budget << " round " << round;
            total += executed;
            if (config[t0] != 2) break;  // a token merged or was absorbed
        }
        EXPECT_EQ(total % budget, 0u);
    }
}

TEST(RunBatch, PairWeightsSurvivePopulationsBeyond2To31) {
    // Regression for the ROADMAP-flagged overflow: with n > 2³¹ agents the
    // ordered-pair weight n(n−1) exceeds int64; the engine now tracks pair
    // weights in 128-bit arithmetic instead of falling back to (or
    // corrupting) per-encounter stepping.
    const Protocol p = protocols::collector_threshold(1);  // x,x -> T,T; x,T -> T,T
    const Simulator sim(p);
    const StateId x = p.input_state(0);
    const auto top = p.find_state("T");
    ASSERT_TRUE(top.has_value());
    const AgentCount population = (AgentCount{1} << 32) + 3;

    // Dense boundary case: every pair among the x agents is active, so the
    // total weight itself passes int64 and every interaction fires.
    Config config = Config::single(p.num_states(), x, population);
    Rng rng(5);
    EXPECT_EQ(sim.run_batch(config, rng, 1'000), 1'000u);
    EXPECT_EQ(config.size(), population);
    EXPECT_GT(config[*top], 0);
    EXPECT_EQ(config[x] + config[*top], population);

    // Sparse boundary case: two stragglers in a sea of accepted agents —
    // the geometric skip must cover the whole budget without overflowing.
    Config sparse(p.num_states());
    sparse.set(x, 2);
    sparse.set(*top, AgentCount{1} << 32);
    Rng rng2(6);
    const std::uint64_t executed = sim.run_batch(sparse, rng2, 10'000);
    EXPECT_EQ(executed, 10'000u);
    EXPECT_EQ(sparse.size(), (AgentCount{1} << 32) + 2);
}

TEST(BatchedRun, InteractionCountDistributionMatchesPerStepReference) {
    // run() skips runs of silent encounters geometrically instead of
    // executing them one by one.  The number of interactions to
    // convergence must keep the same distribution as a naive per-step
    // reference loop.  Compare the means over many seeds (within 15% —
    // both samples have ~500 runs, stddev/mean is ~0.5, so the two means
    // differ by more than this only with negligible probability for a
    // correct implementation).
    const Protocol p = protocols::collector_threshold(6);
    const Simulator sim(p);
    const AgentCount input = 10;
    const int trials = 500;

    double batched_mean = 0.0;
    for (int s = 1; s <= trials; ++s) {
        Rng rng(static_cast<std::uint64_t>(s));
        const SimulationResult result = sim.run_input(input, rng);
        ASSERT_TRUE(result.converged);
        ASSERT_EQ(result.output, 1);
        batched_mean += static_cast<double>(result.interactions);
    }
    batched_mean /= trials;

    double stepped_mean = 0.0;
    for (int s = 1; s <= trials; ++s) {
        Rng rng(static_cast<std::uint64_t>(1'000'000 + s));
        Config config = p.initial_config(input);
        std::uint64_t interactions = 0;
        while (!sim.is_provably_stable(config)) {
            sim.step(config, rng);
            ++interactions;
            ASSERT_LT(interactions, 10'000'000u);
        }
        stepped_mean += static_cast<double>(interactions);
    }
    stepped_mean /= trials;

    EXPECT_NEAR(batched_mean / stepped_mean, 1.0, 0.15)
        << "batched mean " << batched_mean << " vs per-step mean " << stepped_mean;
}

TEST(BatchedRun, DeterministicUnderSameSeed) {
    const Protocol p = protocols::collector_threshold(12);
    const Simulator sim(p);
    Rng rng1(4242), rng2(4242);
    const SimulationResult r1 = sim.run_input(20, rng1);
    const SimulationResult r2 = sim.run_input(20, rng2);
    EXPECT_EQ(r1.interactions, r2.interactions);
    EXPECT_TRUE(r1.final_config == r2.final_config);
    EXPECT_EQ(r1.output, r2.output);
}

TEST(BatchedRun, SilentConfigurationConvergesImmediately) {
    // All agents in the accepting epidemic state T: every enabled pair is
    // silent, so run() must converge without executing any interaction.
    const Protocol p = protocols::collector_threshold(6);
    const Simulator sim(p);
    const auto top = p.find_state("T");
    ASSERT_TRUE(top.has_value());
    Rng rng(5);
    const SimulationResult result = sim.run(Config::single(p.num_states(), *top, 8), rng);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.interactions, 0u);
    EXPECT_EQ(result.output, 1);
}

TEST(ParallelSweep, ProducesIdenticalRowsToSerialSweep) {
    const Protocol p = protocols::collector_threshold(8);
    const auto expected = [](AgentCount i) { return i >= 8 ? 1 : 0; };
    const std::vector<AgentCount> populations = {6, 8, 16, 32};

    ConvergenceSweepOptions serial;
    serial.runs_per_size = 8;
    serial.parallelism = 1;
    const auto serial_rows = convergence_sweep(p, populations, expected, serial);

    ConvergenceSweepOptions parallel = serial;
    parallel.parallelism = 4;
    const auto parallel_rows = convergence_sweep(p, populations, expected, parallel);

    ASSERT_EQ(serial_rows.size(), parallel_rows.size());
    for (std::size_t i = 0; i < serial_rows.size(); ++i) {
        const ConvergenceRow& s = serial_rows[i];
        const ConvergenceRow& q = parallel_rows[i];
        EXPECT_EQ(s.population, q.population);
        EXPECT_EQ(s.runs, q.runs);
        EXPECT_EQ(s.converged_runs, q.converged_runs);
        // Aggregation order is fixed, so even the floating-point statistics
        // are bit-identical.
        EXPECT_EQ(s.mean_parallel_time, q.mean_parallel_time);
        EXPECT_EQ(s.stddev_parallel_time, q.stddev_parallel_time);
        EXPECT_EQ(s.max_parallel_time, q.max_parallel_time);
        EXPECT_EQ(s.correct_fraction, q.correct_fraction);
    }
}

TEST(ParallelSweep, ZeroTrialsAndEmptyPopulationsReturnCleanly) {
    const Protocol p = protocols::collector_threshold(4);
    const auto expected = [](AgentCount i) { return i >= 4 ? 1 : 0; };

    ConvergenceSweepOptions no_trials;
    no_trials.runs_per_size = 0;
    const auto rows = convergence_sweep(p, {8, 16}, expected, no_trials);
    ASSERT_EQ(rows.size(), 2u);
    for (const ConvergenceRow& row : rows) {
        EXPECT_EQ(row.runs, 0u);
        EXPECT_EQ(row.converged_runs, 0u);
        EXPECT_EQ(row.mean_parallel_time, 0.0);
        EXPECT_EQ(row.correct_fraction, 0.0);
    }

    ConvergenceSweepOptions defaults;
    EXPECT_TRUE(convergence_sweep(p, {}, expected, defaults).empty());
}

TEST(RunBatch, FiredCountIsPerCallAndSumsCleanlyAcrossRestarts) {
    // The fired-count out-param is a *per-call* total, overwritten on every
    // call — restart loops (e11_throughput_sweep) sum it themselves, so a
    // stale value must never leak from one call into the next.
    const Protocol p = protocols::double_exp_threshold(2);
    const Simulator sim(p, PairSelect::fenwick);
    sim.reset_epoch_stats();

    for (const StepMode mode : {StepMode::per_step, StepMode::epoch}) {
        Rng rng(0xF1ED ^ static_cast<std::uint64_t>(mode));
        Config config = p.initial_config(20'000);
        std::uint64_t total_done = 0;
        std::uint64_t total_fired = 0;
        std::uint64_t fired_call = 0;
        for (int round = 0; round < 64; ++round) {
            const std::uint64_t chunk = 1 << 16;
            const std::uint64_t got =
                sim.run_batch(config, rng, chunk, false, nullptr, &fired_call, mode);
            EXPECT_LE(fired_call, got) << "a call cannot fire more than it consumed";
            total_done += got;
            total_fired += fired_call;
            if (got < chunk) config = p.initial_config(20'000);  // silent: restart
        }
        EXPECT_GT(total_fired, 0u);
        EXPECT_LT(total_fired, total_done);  // silent skips dominate eventually

        // Overwrite semantics: a silent config consumes and fires nothing,
        // and the out-param must say so rather than keep its old value.
        Config silent = Config::single(p.num_states(), *p.find_state("T"), 100);
        fired_call = 0xDEAD;
        EXPECT_EQ(sim.run_batch(silent, rng, 1'000, false, nullptr, &fired_call, mode), 0u);
        EXPECT_EQ(fired_call, 0u);
    }

    // Epoch-mode accounting cross-check: this simulator's counters saw only
    // the loops above, so every fired interaction is either epoch-batched
    // or a per-step fallback — per-call sums and global stats must agree
    // on where each firing went (no double-counting across restarts).
    const EpochStats stats = sim.epoch_stats();
    EXPECT_GT(stats.epochs, 0u);
    EXPECT_GT(stats.epoch_fired, 0u);
    Rng check_rng(0xF1ED ^ static_cast<std::uint64_t>(StepMode::epoch));
    Config config = p.initial_config(20'000);
    std::uint64_t epoch_fired_sum = 0;
    std::uint64_t fired_call = 0;
    for (int round = 0; round < 64; ++round) {
        const std::uint64_t got = sim.run_batch(config, check_rng, 1 << 16, false, nullptr,
                                                &fired_call, StepMode::epoch);
        epoch_fired_sum += fired_call;
        if (got < (1u << 16)) config = p.initial_config(20'000);
    }
    EXPECT_EQ(epoch_fired_sum, stats.epoch_fired + stats.fallback_fired)
        << "per-call fired sums must partition into epoch_fired + fallback_fired";
}

TEST(BatchedRun, ResumedRunsReportAbsoluteFiredTotals) {
    // A run resumed from a checkpoint starts its interaction *and* fired
    // counters at the snapshot's values (SimulationOptions::initial_fired):
    // the ticks it writes and the result it returns must carry the same
    // absolute totals the uninterrupted run reports — under both stepping
    // modes, whose boundaries the hook rides.
    const Protocol p = protocols::collector_threshold(6);
    const Simulator sim(p, PairSelect::fenwick);
    struct Tick {
        std::uint64_t interactions;
        std::uint64_t fired;
    };

    for (const StepMode mode : {StepMode::per_step, StepMode::epoch}) {
        const std::uint64_t seed = 0xC0FFEE ^ static_cast<std::uint64_t>(mode);
        SimulationOptions options;
        options.step_mode = mode;
        options.epoch.min_firings = 4;
        options.checkpoint.every = 512;

        // Reference: the uninterrupted run and its full tick sequence.
        std::vector<Tick> reference;
        options.checkpoint.callback = [&](const CheckpointTick& tick) {
            reference.push_back({tick.interactions, tick.fired});
            return true;
        };
        Rng ref_rng(seed);
        const SimulationResult full = sim.run(p.initial_config(300), ref_rng, options);
        ASSERT_TRUE(full.converged);
        ASSERT_GE(reference.size(), 2u) << "workload too small to checkpoint twice";

        // Interrupt at the first tick, capturing the snapshot by hand.
        Config snap_config(p.num_states());
        std::uint64_t snap_rng_state = 0;
        Tick snap{0, 0};
        options.checkpoint.callback = [&](const CheckpointTick& tick) {
            snap_config = tick.config;
            snap_rng_state = tick.rng_state;
            snap = {tick.interactions, tick.fired};
            return false;  // graceful stop
        };
        Rng cut_rng(seed);
        const SimulationResult partial = sim.run(p.initial_config(300), cut_rng, options);
        EXPECT_FALSE(partial.converged);
        EXPECT_EQ(partial.interactions, reference.front().interactions);
        EXPECT_EQ(partial.fired, reference.front().fired);

        // Resume: counters seeded from the snapshot, stream from its state.
        std::vector<Tick> resumed;
        options.initial_interactions = snap.interactions;
        options.initial_fired = snap.fired;
        options.checkpoint.callback = [&](const CheckpointTick& tick) {
            resumed.push_back({tick.interactions, tick.fired});
            return true;
        };
        Rng resume_rng(0);
        resume_rng.set_state(snap_rng_state);
        const SimulationResult tail = sim.run(std::move(snap_config), resume_rng, options);
        ASSERT_TRUE(tail.converged);
        EXPECT_EQ(tail.interactions, full.interactions);
        EXPECT_EQ(tail.fired, full.fired);
        EXPECT_TRUE(tail.final_config == full.final_config);
        // The resumed ticks are exactly the uninterrupted run's tail: same
        // boundaries, same absolute totals — no double- or under-counting.
        ASSERT_EQ(resumed.size() + 1, reference.size());
        for (std::size_t i = 0; i < resumed.size(); ++i) {
            EXPECT_EQ(resumed[i].interactions, reference[i + 1].interactions) << "tick " << i;
            EXPECT_EQ(resumed[i].fired, reference[i + 1].fired) << "tick " << i;
        }
    }
}

TEST(ParallelSweep, DefaultParallelismMatchesSerial) {
    const Protocol p = protocols::collector_threshold(4);
    const auto expected = [](AgentCount i) { return i >= 4 ? 1 : 0; };

    ConvergenceSweepOptions serial;
    serial.runs_per_size = 5;
    serial.parallelism = 1;
    ConvergenceSweepOptions defaulted = serial;
    defaulted.parallelism = 0;  // hardware concurrency

    const auto a = convergence_sweep(p, {8, 16}, expected, serial);
    const auto b = convergence_sweep(p, {8, 16}, expected, defaulted);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].converged_runs, b[i].converged_runs);
        EXPECT_EQ(a[i].mean_parallel_time, b[i].mean_parallel_time);
    }
}

}  // namespace
}  // namespace ppsc
