// Exhaustive verification of the Presburger-to-protocol compiler — the
// constructive half of "population protocols compute exactly Presburger"
// ([8] in the paper).  Every compiled protocol is model-checked against
// its source predicate on all inputs up to a cutoff.
#include <gtest/gtest.h>

#include "protocols/compose.hpp"
#include "protocols/linear_threshold.hpp"
#include "protocols/modulo.hpp"
#include "protocols/presburger.hpp"
#include "verify/verifier.hpp"

namespace ppsc {
namespace {

void expect_computes(const Protocol& protocol, const Predicate& predicate,
                     AgentCount max_population) {
    const Verifier verifier(protocol);
    const PredicateCheck check =
        verifier.check_predicate_all_tuples(predicate, max_population);
    EXPECT_TRUE(check.holds) << predicate.to_string() << ": " << check.failures.size()
                             << " of " << check.inputs_checked << " inputs failed";
}

// --- linear_threshold atoms ---------------------------------------------------

TEST(LinearThreshold, SingleVariableThresholds) {
    for (std::int64_t c = 1; c <= 4; ++c) {
        expect_computes(protocols::linear_threshold({1}, c), Predicate::threshold({1}, c), 8);
    }
}

TEST(LinearThreshold, MajorityViaGeneralConstruction) {
    // x0 - x1 >= 1: strict majority, the canonical mixed-sign atom.
    expect_computes(protocols::linear_threshold({1, -1}, 1), Predicate::majority(), 8);
}

TEST(LinearThreshold, WeightedMixedSigns) {
    // 2·x0 - x1 >= 2.
    expect_computes(protocols::linear_threshold({2, -1}, 2), Predicate::threshold({2, -1}, 2),
                    7);
}

TEST(LinearThreshold, NonPositiveConstant) {
    // x0 - 2·x1 >= -2: true on a co-finite-ish region including zero.
    expect_computes(protocols::linear_threshold({1, -2}, -2),
                    Predicate::threshold({1, -2}, -2), 7);
}

TEST(LinearThreshold, ZeroCoefficientVariableIsIgnored) {
    // 0·x0 + x1 >= 2.
    expect_computes(protocols::linear_threshold({0, 1}, 2), Predicate::threshold({0, 1}, 2), 7);
}

TEST(LinearThreshold, ThreeVariables) {
    // x0 + x1 - x2 >= 2.
    expect_computes(protocols::linear_threshold({1, 1, -1}, 2),
                    Predicate::threshold({1, 1, -1}, 2), 6);
}

TEST(LinearThreshold, RegressionResidualHolderOscillation) {
    // The configuration that broke the naive belief-recomputation design:
    // coefficients {2, -1}, c = 2, input (2, 1) — a residual holder below c
    // coexists with a saturated holder.  Must be well-specified and accept.
    const Protocol p = protocols::linear_threshold({2, -1}, 2);
    const Verifier verifier(p);
    const AgentCount input[] = {2, 1};
    const InputVerdict verdict = verifier.verify_input(input);
    EXPECT_TRUE(verdict.well_specified);
    EXPECT_EQ(verdict.computed, 1);  // 2·2 − 1 = 3 >= 2
}

TEST(LinearThreshold, RejectsOversizedParameters) {
    EXPECT_THROW(protocols::linear_threshold({}, 1), std::invalid_argument);
    EXPECT_THROW(protocols::linear_threshold({65}, 1), std::invalid_argument);
    EXPECT_THROW(protocols::linear_threshold({1}, 100), std::invalid_argument);
}

// --- modulo_linear atoms --------------------------------------------------------

TEST(ModuloLinear, WeightedCongruence) {
    // x0 + 2·x1 ≡ 1 (mod 3).
    expect_computes(protocols::modulo_linear({1, 2}, 3, 1), Predicate::modulo({1, 2}, 3, 1), 7);
}

TEST(ModuloLinear, NegativeCoefficientsReduceCorrectly) {
    // x0 - x1 ≡ 0 (mod 2) — parity equality.
    expect_computes(protocols::modulo_linear({1, -1}, 2, 0), Predicate::modulo({1, -1}, 2, 0),
                    8);
}

// --- full compiler ----------------------------------------------------------------

TEST(CompilePresburger, SimpleAtomsRoundTrip) {
    const Predicate threshold = Predicate::threshold({1}, 3);
    expect_computes(protocols::compile_presburger(threshold), threshold, 8);
    const Predicate mod = Predicate::modulo({1}, 2, 1);
    expect_computes(protocols::compile_presburger(mod), mod, 8);
}

TEST(CompilePresburger, Negation) {
    // ¬(x >= 3) = x <= 2.
    const Predicate predicate = Predicate::negation(Predicate::threshold({1}, 3));
    expect_computes(protocols::compile_presburger(predicate), predicate, 8);
}

TEST(CompilePresburger, ConjunctionThresholdAndParity) {
    // (x >= 2) ∧ (x ≡ 0 mod 2).
    const Predicate predicate = Predicate::conjunction(Predicate::threshold({1}, 2),
                                                       Predicate::modulo({1}, 2, 0));
    expect_computes(protocols::compile_presburger(predicate), predicate, 7);
}

TEST(CompilePresburger, DisjunctionAcrossVariables) {
    // (x0 - x1 >= 1) ∨ (x0 + x1 ≡ 0 mod 2): atoms of different shapes are
    // padded to a common arity.
    const Predicate predicate = Predicate::disjunction(Predicate::majority(),
                                                       Predicate::modulo({1, 1}, 2, 0));
    expect_computes(protocols::compile_presburger(predicate), predicate, 6);
}

TEST(CompilePresburger, NestedFormula) {
    // ¬(x >= 3) ∧ (x ≡ 1 mod 2): "x is an odd number below 3".
    const Predicate predicate = Predicate::conjunction(
        Predicate::negation(Predicate::threshold({1}, 3)), Predicate::modulo({1}, 2, 1));
    expect_computes(protocols::compile_presburger(predicate), predicate, 7);
}

TEST(CompilePresburger, StateCountPrediction) {
    const Predicate predicate = Predicate::conjunction(Predicate::threshold({1}, 2),
                                                       Predicate::modulo({1}, 2, 0));
    const Protocol protocol = protocols::compile_presburger(predicate);
    EXPECT_EQ(protocol.num_states(), protocols::compiled_state_count(predicate));
}

TEST(CompilePresburger, ArityZeroThrows) {
    EXPECT_THROW(protocols::compile_presburger(Predicate::threshold({}, 0)),
                 std::invalid_argument);
}

TEST(Negate, FlipsComputedPredicate) {
    const Protocol p = protocols::negate(protocols::linear_threshold({1}, 3));
    expect_computes(p, Predicate::negation(Predicate::threshold({1}, 3)), 8);
}

}  // namespace
}  // namespace ppsc
