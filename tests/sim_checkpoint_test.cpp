// Tests for crash-safe checkpoint/restore: format round-trips, a golden
// file pinning format v1, fault-injected loading (truncation at every byte
// offset, a bit flip in every byte), rotation + fallback, and the headline
// kill-and-resume equivalence suite — a trajectory restored from a
// checkpoint finishes byte-identically to one that was never interrupted,
// across the E10 collector and E11 double-exponential families under both
// rule-table representations.
#include "sim/checkpoint.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "protocols/double_exp_threshold.hpp"
#include "protocols/threshold.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "support/crc64.hpp"

namespace ppsc {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory, removed on scope exit.
struct TempDir {
    explicit TempDir(const std::string& name)
        : path(fs::temp_directory_path() /
               ("ppsc-ckpt-" + name + "-" + std::to_string(::getpid()))) {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    fs::path path;
};

/// The fixed checkpoint behind the golden file and the format tests.
Checkpoint reference_checkpoint() {
    Checkpoint ck;
    ck.fingerprint = 0x1122334455667788ull;
    std::vector<AgentCount> counts(7, 0);
    counts[0] = 3;
    counts[2] = 1;
    counts[6] = 41;
    ck.config = Config::from_counts(std::move(counts));
    ck.rng_state = 0x9E3779B97F4A7C15ull;
    ck.interactions = 123456789;
    ck.fired = 987654;
    ck.restarts = 3;
    ck.stats.add(1.5);
    ck.stats.add(2.5);
    ck.stats.add(4.0);
    return ck;
}

void expect_matches_reference(const Checkpoint& got) {
    const Checkpoint want = reference_checkpoint();
    EXPECT_EQ(got.fingerprint, want.fingerprint);
    ASSERT_EQ(got.config.num_states(), want.config.num_states());
    for (std::size_t q = 0; q < want.config.num_states(); ++q)
        EXPECT_EQ(got.config[static_cast<StateId>(q)], want.config[static_cast<StateId>(q)]);
    EXPECT_EQ(got.rng_state, want.rng_state);
    EXPECT_EQ(got.interactions, want.interactions);
    EXPECT_EQ(got.fired, want.fired);
    EXPECT_EQ(got.restarts, want.restarts);
    EXPECT_EQ(got.stats.count(), want.stats.count());
    EXPECT_EQ(got.stats.mean(), want.stats.mean());
    EXPECT_EQ(got.stats.m2(), want.stats.m2());
    EXPECT_EQ(got.stats.raw_min(), want.stats.raw_min());
    EXPECT_EQ(got.stats.raw_max(), want.stats.raw_max());
}

// --- format ----------------------------------------------------------------

TEST(Checkpoint, SerializeParseRoundTrip) {
    const Checkpoint original = reference_checkpoint();
    const auto bytes = serialize_checkpoint(original);
    const CheckpointParse parsed = parse_checkpoint(bytes, original.fingerprint);
    ASSERT_TRUE(parsed.ok()) << parsed.detail;
    expect_matches_reference(*parsed.checkpoint);
}

TEST(Checkpoint, SerializeIsDeterministic) {
    EXPECT_EQ(serialize_checkpoint(reference_checkpoint()),
              serialize_checkpoint(reference_checkpoint()));
}

TEST(Checkpoint, SparseSerializationStaysSmallAtHundredThousandStates) {
    // |Q| = 2^17 + 3 > 10^5, but only the support is serialized.
    const Protocol protocol = protocols::double_exp_threshold(17);
    Checkpoint ck;
    ck.config = protocol.initial_config(1000);
    const auto bytes = serialize_checkpoint(ck);
    EXPECT_LT(bytes.size(), 512u) << "support-sparse encoding must not scale with |Q|";
    const CheckpointParse parsed = parse_checkpoint(bytes);
    ASSERT_TRUE(parsed.ok()) << parsed.detail;
    EXPECT_EQ(parsed.checkpoint->config.num_states(), protocol.num_states());
    EXPECT_EQ(parsed.checkpoint->config.size(), 1000);
}

TEST(Checkpoint, GoldenV1FileParsesAndBytesArePinned) {
    const std::string path = std::string(PPSC_TEST_DATA_DIR) + "/golden-v1.ppc";
    const CheckpointParse parsed = load_checkpoint_file(path, 0x1122334455667788ull);
    ASSERT_TRUE(parsed.ok()) << parsed.detail;
    expect_matches_reference(*parsed.checkpoint);

    // The writer must still produce the exact golden bytes: any layout
    // change needs a format-version bump, not a silent drift.
    std::ifstream file(path, std::ios::binary);
    ASSERT_TRUE(file.good());
    const std::vector<std::uint8_t> golden((std::istreambuf_iterator<char>(file)),
                                           std::istreambuf_iterator<char>());
    EXPECT_EQ(serialize_checkpoint(reference_checkpoint()), golden);
}

// --- fault injection -------------------------------------------------------

TEST(Checkpoint, TruncationAtEveryOffsetIsRejectedTyped) {
    const auto bytes = serialize_checkpoint(reference_checkpoint());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const CheckpointParse parsed =
            parse_checkpoint(std::span<const std::uint8_t>(bytes.data(), len));
        EXPECT_FALSE(parsed.ok()) << "accepted a truncation to " << len << " bytes";
        EXPECT_FALSE(parsed.checkpoint.has_value());
        EXPECT_NE(parsed.error, CheckpointError::none);
    }
}

TEST(Checkpoint, BitFlipInEveryByteIsRejected) {
    const auto clean = serialize_checkpoint(reference_checkpoint());
    for (std::size_t offset = 0; offset < clean.size(); ++offset) {
        auto bytes = clean;
        bytes[offset] ^= static_cast<std::uint8_t>(1u << (offset % 8));
        const CheckpointParse parsed = parse_checkpoint(bytes, reference_checkpoint().fingerprint);
        EXPECT_FALSE(parsed.ok()) << "accepted a bit flip at offset " << offset;
        EXPECT_FALSE(parsed.checkpoint.has_value());
    }
}

TEST(Checkpoint, WrongMagicAndWrongVersionAreTypedRejections) {
    auto bytes = serialize_checkpoint(reference_checkpoint());
    auto flipped = bytes;
    flipped[0] = 'X';
    EXPECT_EQ(parse_checkpoint(flipped).error, CheckpointError::bad_magic);

    auto future = bytes;
    future[8] = static_cast<std::uint8_t>(kCheckpointFormatVersion + 1);
    EXPECT_EQ(parse_checkpoint(future).error, CheckpointError::bad_version);
}

TEST(Checkpoint, WrongFingerprintIsRejectedAsWrongProtocol) {
    const auto bytes = serialize_checkpoint(reference_checkpoint());
    const CheckpointParse parsed = parse_checkpoint(bytes, 0xDEADBEEFull);
    EXPECT_EQ(parsed.error, CheckpointError::wrong_protocol);
    EXPECT_FALSE(parsed.checkpoint.has_value());
}

TEST(Checkpoint, CrcValidButInconsistentPayloadIsMalformed) {
    // Break the ascending-support invariant (state 0 -> 5, past the next
    // entry's state 2), then re-seal the CRC so only semantic validation
    // can catch it.
    auto bytes = serialize_checkpoint(reference_checkpoint());
    bytes[40] = 5;  // first support entry's state id (offset 40, u32 LE)
    const std::uint64_t crc = crc64(bytes.data(), bytes.size() - 8);
    for (int i = 0; i < 8; ++i)
        bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(crc >> (8 * i));
    const CheckpointParse parsed = parse_checkpoint(bytes);
    EXPECT_EQ(parsed.error, CheckpointError::malformed);
}

// --- files, rotation, fallback ---------------------------------------------

TEST(Checkpoint, FileWriteIsAtomicAndLeavesNoTemp) {
    const TempDir tmp("file");
    const std::string path = (tmp.path / "snap.ppc").string();
    ASSERT_EQ(write_checkpoint_file(path, reference_checkpoint()), CheckpointError::none);
    ASSERT_EQ(write_checkpoint_file(path, reference_checkpoint()), CheckpointError::none);
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    const CheckpointParse parsed = load_checkpoint_file(path);
    ASSERT_TRUE(parsed.ok()) << parsed.detail;
    expect_matches_reference(*parsed.checkpoint);
}

TEST(Checkpoint, RotationKeepsLastK) {
    const TempDir tmp("rotate");
    CheckpointDir dir(tmp.path.string(), 3);
    Checkpoint ck = reference_checkpoint();
    for (int i = 0; i < 7; ++i) {
        ck.interactions = static_cast<std::uint64_t>(i);
        ASSERT_EQ(dir.write(ck), CheckpointError::none);
    }
    std::size_t files = 0;
    for (const auto& entry : fs::directory_iterator(tmp.path)) {
        ++files;
        EXPECT_EQ(entry.path().extension(), ".ppc");
    }
    EXPECT_EQ(files, 3u);
    const CheckpointDir::Latest latest = dir.load_latest();
    ASSERT_TRUE(latest.checkpoint.has_value());
    EXPECT_EQ(latest.checkpoint->interactions, 6u);
    EXPECT_TRUE(latest.rejected.empty());
}

TEST(Checkpoint, LoaderFallsBackPastCorruptNewestSlots) {
    const TempDir tmp("fallback");
    CheckpointDir dir(tmp.path.string(), 4);
    Checkpoint ck = reference_checkpoint();
    std::vector<std::string> paths;
    for (int i = 0; i < 3; ++i) {
        ck.interactions = static_cast<std::uint64_t>(10 + i);
        std::string written;
        ASSERT_EQ(dir.write(ck, &written), CheckpointError::none);
        paths.push_back(written);
    }
    // Truncate the newest slot and garbage the middle one.
    fs::resize_file(paths[2], 17);
    {
        std::ofstream garbage(paths[1], std::ios::binary | std::ios::trunc);
        garbage << "not a checkpoint at all";
    }
    const CheckpointDir::Latest latest = dir.load_latest(reference_checkpoint().fingerprint);
    ASSERT_TRUE(latest.checkpoint.has_value()) << "must fall back to the valid slot";
    EXPECT_EQ(latest.checkpoint->interactions, 10u);
    EXPECT_EQ(latest.path, paths[0]);
    EXPECT_EQ(latest.rejected.size(), 2u);
}

TEST(Checkpoint, MissingDirectoryLoadsEmpty) {
    CheckpointDir dir("/nonexistent/ppsc-checkpoint-test-dir", 2);
    const CheckpointDir::Latest latest = dir.load_latest();
    EXPECT_FALSE(latest.checkpoint.has_value());
    EXPECT_TRUE(latest.rejected.empty());
}

// --- fingerprints and digests ----------------------------------------------

TEST(Checkpoint, FingerprintSeparatesProtocolsAndRuleTables) {
    const Protocol a = protocols::collector_threshold(9);
    const Protocol b = protocols::collector_threshold(10);
    const Protocol c = protocols::double_exp_threshold(4);
    EXPECT_NE(protocol_fingerprint(a), protocol_fingerprint(b));
    EXPECT_NE(protocol_fingerprint(a), protocol_fingerprint(c));
    EXPECT_EQ(protocol_fingerprint(a), protocol_fingerprint(protocols::collector_threshold(9)));
    // The resolved rule-table kind participates: a dense-table simulator
    // must not resume a sparse-table run.
    EXPECT_NE(protocol_fingerprint(c.with_rule_table(RuleTable::dense)),
              protocol_fingerprint(c.with_rule_table(RuleTable::sparse)));
}

TEST(Checkpoint, ConfigDigestSeesEveryCount) {
    Config a = Config::from_counts({3, 0, 2});
    Config b = Config::from_counts({3, 0, 1});
    Config c = Config::from_counts({2, 1, 2});
    EXPECT_NE(config_digest(a), config_digest(b));
    EXPECT_NE(config_digest(a), config_digest(c));
    EXPECT_EQ(config_digest(a), config_digest(Config::from_counts({3, 0, 2})));
}

// --- kill-and-resume equivalence -------------------------------------------

struct TrajectoryEnd {
    std::uint64_t done = 0;
    std::uint64_t fired = 0;
    std::uint64_t rng_state = 0;
    std::uint64_t digest = 0;
};

TrajectoryEnd finish(const Simulator& sim, Config config, Rng rng, std::uint64_t budget,
                     std::uint64_t base_done = 0, std::uint64_t base_fired = 0) {
    std::uint64_t fired = 0;
    const std::uint64_t got = sim.run_batch(config, rng, budget, false, nullptr, &fired);
    return {base_done + got, base_fired + fired, rng.state(), config_digest(config)};
}

TEST(Checkpoint, KillAndResumeIsByteIdenticalAcrossFamiliesAndRuleTables) {
    struct Variant {
        std::string label;
        Protocol protocol;
        AgentCount population;
    };
    std::vector<Variant> variants;
    // E10 family: collector threshold.  E11 family: double-exponential
    // threshold, succinct and dense constructions.
    for (const RuleTable table : {RuleTable::dense, RuleTable::sparse}) {
        const std::string suffix = table == RuleTable::dense ? "/dense" : "/sparse";
        variants.push_back({"collector(9)" + suffix,
                            protocols::collector_threshold(9).with_rule_table(table), 400});
        variants.push_back({"double_exp(4)" + suffix,
                            protocols::double_exp_threshold(4).with_rule_table(table), 600});
        variants.push_back({"double_exp_dense(3)" + suffix,
                            protocols::double_exp_threshold_dense(3).with_rule_table(table),
                            500});
    }
    constexpr std::uint64_t kBudget = 120'000;
    constexpr std::uint64_t kEvery = 2'000;
    for (const Variant& variant : variants) {
        SCOPED_TRACE(variant.label);
        const Simulator sim(variant.protocol);
        const std::uint64_t fingerprint = protocol_fingerprint(variant.protocol);
        const Config start = variant.protocol.initial_config(variant.population);

        // Reference: one uninterrupted trajectory.
        const TrajectoryEnd reference = finish(sim, start, Rng(1234), kBudget);

        // Interrupted: stop at the first checkpoint tick, as a kill would.
        std::optional<Checkpoint> captured;
        CheckpointHook hook;
        hook.every = kEvery;
        hook.callback = [&](const CheckpointTick& tick) {
            Checkpoint ck;
            ck.fingerprint = fingerprint;
            ck.config = tick.config;
            ck.rng_state = tick.rng_state;
            ck.interactions = tick.interactions;
            ck.fired = tick.fired;
            captured = std::move(ck);
            return false;  // die here
        };
        Config interrupted = start;
        Rng rng(1234);
        sim.run_batch(interrupted, rng, kBudget, false, &hook);
        ASSERT_TRUE(captured.has_value()) << "trajectory went silent before the first tick";
        ASSERT_LT(captured->interactions, kBudget);

        // Round-trip the snapshot through the real byte format.
        const CheckpointParse parsed =
            parse_checkpoint(serialize_checkpoint(*captured), fingerprint);
        ASSERT_TRUE(parsed.ok()) << parsed.detail;

        // Resume and run to the same absolute budget.
        Rng resumed_rng(0);
        resumed_rng.set_state(parsed.checkpoint->rng_state);
        const TrajectoryEnd resumed =
            finish(sim, parsed.checkpoint->config, resumed_rng,
                   kBudget - parsed.checkpoint->interactions, parsed.checkpoint->interactions,
                   parsed.checkpoint->fired);

        EXPECT_EQ(resumed.done, reference.done);
        EXPECT_EQ(resumed.fired, reference.fired);
        EXPECT_EQ(resumed.rng_state, reference.rng_state);
        EXPECT_EQ(resumed.digest, reference.digest);
    }
}

TEST(Checkpoint, HookPresenceDoesNotPerturbTheTrajectory) {
    const Protocol protocol = protocols::double_exp_threshold(4);
    const Simulator sim(protocol);
    const Config start = protocol.initial_config(700);
    const TrajectoryEnd plain = finish(sim, start, Rng(77), 80'000);

    CheckpointHook hook;
    hook.every = 1'000;
    std::uint64_t ticks = 0;
    hook.callback = [&](const CheckpointTick&) {
        ++ticks;
        return true;
    };
    Config config = start;
    Rng rng(77);
    std::uint64_t fired = 0;
    const std::uint64_t got = sim.run_batch(config, rng, 80'000, false, &hook, &fired);
    EXPECT_GT(ticks, 0u);
    EXPECT_EQ(got, plain.done);
    EXPECT_EQ(fired, plain.fired);
    EXPECT_EQ(rng.state(), plain.rng_state);
    EXPECT_EQ(config_digest(config), plain.digest);
}

TEST(Checkpoint, SimulatorRunResumesToIdenticalResult) {
    const Protocol protocol = protocols::collector_threshold(9);
    const Simulator sim(protocol);
    const Config start = protocol.initial_config(300);

    SimulationOptions plain;
    Rng reference_rng(5);
    const SimulationResult reference = sim.run(start, reference_rng, plain);
    ASSERT_TRUE(reference.converged);

    // Interrupt the run at its first checkpoint tick.
    std::optional<Checkpoint> captured;
    SimulationOptions interrupting;
    interrupting.checkpoint.every = 1'500;
    interrupting.checkpoint.callback = [&](const CheckpointTick& tick) {
        Checkpoint ck;
        ck.config = tick.config;
        ck.rng_state = tick.rng_state;
        ck.interactions = tick.interactions;
        captured = std::move(ck);
        return false;
    };
    Rng interrupted_rng(5);
    const SimulationResult partial = sim.run(start, interrupted_rng, interrupting);
    ASSERT_TRUE(captured.has_value());
    EXPECT_FALSE(partial.converged);
    ASSERT_LT(captured->interactions, reference.interactions);

    SimulationOptions resuming;
    resuming.initial_interactions = captured->interactions;
    Rng rng(0);
    rng.set_state(captured->rng_state);
    const SimulationResult resumed = sim.run(captured->config, rng, resuming);

    EXPECT_EQ(resumed.converged, reference.converged);
    EXPECT_EQ(resumed.interactions, reference.interactions);
    EXPECT_EQ(resumed.output, reference.output);
    EXPECT_EQ(resumed.parallel_time, reference.parallel_time);
    EXPECT_EQ(config_digest(resumed.final_config), config_digest(reference.final_config));
}

TEST(Checkpoint, ConvergenceSweepRowsSurviveCheckpointingAndResume) {
    const Protocol protocol = protocols::collector_threshold(5);
    const std::vector<AgentCount> populations = {40, 60};
    const auto expected = [](AgentCount i) { return i >= 5 ? 1 : 0; };

    ConvergenceSweepOptions plain;
    plain.runs_per_size = 6;
    plain.seed = 99;
    plain.parallelism = 1;
    const auto reference = convergence_sweep(protocol, populations, expected, plain);

    const TempDir tmp("sweep");
    ConvergenceSweepOptions checkpointed = plain;
    checkpointed.checkpoint_dir = tmp.path.string();
    checkpointed.checkpoint_every = 500;
    const auto first = convergence_sweep(protocol, populations, expected, checkpointed);
    // Second sweep resumes every trial from its final snapshot.
    const auto second = convergence_sweep(protocol, populations, expected, checkpointed);

    ASSERT_EQ(reference.size(), first.size());
    ASSERT_EQ(reference.size(), second.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        for (const auto* rows : {&first, &second}) {
            EXPECT_EQ((*rows)[i].population, reference[i].population);
            EXPECT_EQ((*rows)[i].converged_runs, reference[i].converged_runs);
            EXPECT_EQ((*rows)[i].mean_parallel_time, reference[i].mean_parallel_time);
            EXPECT_EQ((*rows)[i].stddev_parallel_time, reference[i].stddev_parallel_time);
            EXPECT_EQ((*rows)[i].correct_fraction, reference[i].correct_fraction);
        }
    }
}

TEST(Checkpoint, SweepStopFlagStopsBeforeAnyTrial) {
    const Protocol protocol = protocols::collector_threshold(5);
    std::atomic<bool> stop{true};
    ConvergenceSweepOptions options;
    options.runs_per_size = 4;
    options.parallelism = 1;
    options.stop = &stop;
    const auto rows = convergence_sweep(protocol, {40}, [](AgentCount) { return 1; }, options);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].converged_runs, 0u);
}

TEST(Checkpoint, StatsRestoreContinuesBitIdentically) {
    RunningStats a;
    for (const double x : {3.0, -1.5, 8.25}) a.add(x);
    RunningStats b = RunningStats::restore(a.count(), a.mean(), a.m2(), a.raw_min(), a.raw_max());
    a.add(2.5);
    b.add(2.5);
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.m2(), b.m2());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

}  // namespace
}  // namespace ppsc
