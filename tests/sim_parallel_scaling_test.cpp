// Thread-scaling tests for convergence_sweep (satellite of the epoch PR):
// rows must be bit-identical across `parallelism` settings — the sweep's
// documented contract — and on machines with ≥ 4 hardware threads a
// 4-worker sweep must actually run measurably faster than the serial one.
// The wall-clock test self-skips on smaller machines (CI containers and
// the dev box often expose a single core).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "protocols/double_exp_threshold.hpp"
#include "sim/experiment.hpp"

namespace ppsc {
namespace {

ConvergenceSweepOptions sweep_options(unsigned parallelism, StepMode step_mode) {
    ConvergenceSweepOptions options;
    options.runs_per_size = 24;
    options.seed = 0x5CA1E;
    options.parallelism = parallelism;
    options.simulation.max_interactions = std::uint64_t{1} << 30;
    options.simulation.step_mode = step_mode;
    return options;
}

std::vector<AgentCount> populations() { return {1 << 11, 1 << 12}; }

void expect_rows_equal(const std::vector<ConvergenceRow>& a,
                       const std::vector<ConvergenceRow>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].population, b[i].population);
        EXPECT_EQ(a[i].runs, b[i].runs);
        EXPECT_EQ(a[i].converged_runs, b[i].converged_runs);
        // Bit-identical, not approximately equal: trials land in per-trial
        // slots and are aggregated serially, so even the floating-point
        // accumulation order matches the serial sweep.
        EXPECT_EQ(a[i].mean_parallel_time, b[i].mean_parallel_time) << "row " << i;
        EXPECT_EQ(a[i].stddev_parallel_time, b[i].stddev_parallel_time) << "row " << i;
        EXPECT_EQ(a[i].max_parallel_time, b[i].max_parallel_time) << "row " << i;
        EXPECT_EQ(a[i].correct_fraction, b[i].correct_fraction) << "row " << i;
    }
}

TEST(ParallelScaling, RowsAreIdenticalAcrossParallelismSettings) {
    // Runs everywhere (oversubscription is fine for a determinism check):
    // serial vs. 4 workers, in both stepping modes.
    const Protocol protocol = protocols::double_exp_threshold(2);
    const auto expected = [](AgentCount) { return 1; };
    for (const StepMode mode : {StepMode::per_step, StepMode::epoch}) {
        const auto serial =
            convergence_sweep(protocol, populations(), expected, sweep_options(1, mode));
        const auto parallel =
            convergence_sweep(protocol, populations(), expected, sweep_options(4, mode));
        expect_rows_equal(serial, parallel);
        for (const ConvergenceRow& row : serial) {
            EXPECT_EQ(row.converged_runs, row.runs);
            EXPECT_EQ(row.correct_fraction, 1.0);
        }
    }
}

TEST(ParallelScaling, FourWorkersBeatSerialWallClock) {
    if (std::thread::hardware_concurrency() < 4)
        GTEST_SKIP() << "needs >= 4 hardware threads, have "
                     << std::thread::hardware_concurrency();

    const Protocol protocol = protocols::double_exp_threshold(2);
    const auto expected = [](AgentCount) { return 1; };
    const auto timed = [&](unsigned parallelism) {
        // Best of 3: robust against one-off scheduler hiccups without
        // averaging away a genuine lack of scaling.
        double best = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            const auto start = std::chrono::steady_clock::now();
            const auto rows = convergence_sweep(protocol, populations(), expected,
                                                sweep_options(parallelism, StepMode::per_step));
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            for (const ConvergenceRow& row : rows) EXPECT_EQ(row.converged_runs, row.runs);
            best = std::min(best, elapsed.count());
        }
        return best;
    };

    const double serial = timed(1);
    const double parallel = timed(4);
    // 4 workers over 48 independent trials: demand a conservative 1.5× so
    // the test stays green on noisy shared runners while still failing if
    // the sweep silently serialises (speedup ≈ 1).
    EXPECT_GT(serial / parallel, 1.5)
        << "serial " << serial << " s vs 4-worker " << parallel << " s";
}

}  // namespace
}  // namespace ppsc
