// Statistical equivalence of epoch-batched stepping (StepMode::epoch) and
// the exact per-step reference, through the shared harness
// (support/stat_test.hpp):
//
//   * chi-squared goodness-of-fit of the per-pair firing counts of single
//     epochs against the exact multinomial law Multinomial(k, w/W) — the
//     probe protocol gives every pair a unique sink, so the sink counts
//     read the multinomial draw back exactly;
//   * exhaustive small-configuration moment checks: every configuration of
//     2..7 agents over the probe's live states, first-epoch firing counts
//     vs. the multinomial mean and variance;
//   * two-sample tests (mean, variance, Kolmogorov-Smirnov) on full
//     convergence-time distributions, epoch vs. per-step, plus identical
//     consensus verdicts;
//   * structural consistency after epochs: the incremental weights, trap
//     counters, and silence flags must equal a from-scratch rebuild.
//
// Everything is deterministically seeded via stat::derive_seed, so the
// suite is flake-free at its fixed significance levels.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "protocols/double_exp_threshold.hpp"
#include "sim/simulator.hpp"
#include "support/stat_test.hpp"

namespace ppsc {
namespace {

/// Live states interacting on every pair, each pair firing into its own
/// private sink — after an epoch, sink counts identify the per-pair firing
/// counts exactly (2 sink agents per firing).  Sinks are silent with
/// everything, so only the live-live weights ever enter the multinomial.
struct PairProbe {
    Protocol protocol;
    std::vector<StateId> live;
    std::vector<std::vector<StateId>> sink;  // sink[i][j], i ≤ j
};

PairProbe make_pair_probe(int num_live) {
    ProtocolBuilder b;
    std::vector<StateId> live;
    for (int i = 0; i < num_live; ++i) live.push_back(b.add_state("s" + std::to_string(i), 0));
    std::vector<std::vector<StateId>> sink(static_cast<std::size_t>(num_live));
    for (int i = 0; i < num_live; ++i) {
        for (int j = i; j < num_live; ++j) {
            const StateId z =
                b.add_state("z" + std::to_string(i) + "_" + std::to_string(j), 1);
            sink[static_cast<std::size_t>(i)].push_back(z);
            b.add_transition(live[static_cast<std::size_t>(i)],
                             live[static_cast<std::size_t>(j)], z, z);
        }
    }
    b.set_input("x", live[0]);
    return {std::move(b).build(), std::move(live), std::move(sink)};
}

/// Hook that stops the run at its first fired boundary — in epoch mode,
/// right after the FIRST epoch, whose multinomial was drawn over the exact
/// weights of the starting configuration.
CheckpointHook stop_after_first_boundary() {
    return {1, [](const CheckpointTick&) { return false; }};
}

/// Exact ordered pair weight of the probe's live pair (i, j) at `config`.
double probe_weight(const Config& config, StateId si, StateId sj) {
    const auto ci = static_cast<double>(config[si]);
    const auto cj = static_cast<double>(config[sj]);
    return si == sj ? ci * (ci - 1.0) : 2.0 * ci * cj;
}

TEST(EpochEquivalence, SingleEpochFiringCountsPassChiSquaredAgainstTheMultinomial) {
    // Accumulated over T independent first epochs from the same base
    // configuration, the per-pair counts are Multinomial(T·k, w/W) exactly
    // — conditional-binomial descent is distribution-identical to k
    // sequential weight-proportional draws.
    const PairProbe probe = make_pair_probe(5);
    const Simulator sim(probe.protocol, PairSelect::fenwick);
    Config base(probe.protocol.num_states());
    const std::vector<AgentCount> counts = {60, 30, 90, 20, 50};
    for (std::size_t q = 0; q < counts.size(); ++q) base.set(probe.live[q], counts[q]);

    EpochOptions epoch;
    epoch.min_firings = 2;
    epoch.drift = 0.25;
    const CheckpointHook stop = stop_after_first_boundary();
    sim.reset_epoch_stats();

    const int trials = 4'000;
    std::vector<std::uint64_t> observed;
    std::vector<double> weights;
    std::vector<std::size_t> cell_of;  // (i, j) → cell index, probe order
    for (std::size_t i = 0; i < probe.live.size(); ++i) {
        for (std::size_t j = i; j < probe.live.size(); ++j) {
            cell_of.push_back(weights.size());
            weights.push_back(probe_weight(base, probe.live[i], probe.live[j]));
            observed.push_back(0);
        }
    }

    Rng rng(stat::derive_seed(2025, "single-epoch-gof"));
    std::uint64_t k_first = 0;
    for (int t = 0; t < trials; ++t) {
        Config config = base;
        std::uint64_t fired = 0;
        sim.run_batch(config, rng, std::uint64_t{1} << 40, false, &stop, &fired,
                      StepMode::epoch, epoch);
        // The epoch length is a deterministic function of the (identical)
        // starting configuration — every trial draws the same k.
        if (t == 0) {
            k_first = fired;
            ASSERT_GE(k_first, epoch.min_firings);
        }
        ASSERT_EQ(fired, k_first) << "trial " << t;
        std::size_t cell = 0;
        for (std::size_t i = 0; i < probe.live.size(); ++i) {
            for (std::size_t j = i; j < probe.live.size(); ++j) {
                const AgentCount sunk = config[probe.sink[i][j - i]];
                ASSERT_EQ(sunk % 2, 0);
                observed[cell_of[cell]] += static_cast<std::uint64_t>(sunk / 2);
                ++cell;
            }
        }
    }
    const EpochStats stats = sim.epoch_stats();
    EXPECT_EQ(stats.epochs, static_cast<std::uint64_t>(trials));
    EXPECT_EQ(stats.fallback_fired, 0u);
    EXPECT_EQ(stats.rejected_draws, 0u);

    std::uint64_t total = 0;
    for (const std::uint64_t c : observed) total += c;
    EXPECT_EQ(total, k_first * trials);

    const stat::GofResult gof = stat::chi_squared_gof(observed, weights);
    EXPECT_TRUE(gof.pass) << "X² = " << gof.statistic << " > " << gof.critical
                          << " (df " << gof.df << ", p = " << gof.p_value << ")";
}

TEST(EpochEquivalence, ExhaustiveSmallConfigurationMomentChecks) {
    // Every configuration of 2..7 agents over four live states: the first
    // epoch's per-pair counts, accumulated over repeated draws, must match
    // the multinomial mean (chi-squared over the summed counts — an exact
    // multinomial test after pooling) — and for the heaviest pair also the
    // binomial variance k·p·(1−p).  Epoch lengths are clamped to
    // ⌊min count / 2⌋, which makes every draw feasible (2k ≤ count for all
    // states), so k is deterministic per configuration and the law exact.
    const PairProbe probe = make_pair_probe(4);
    const Simulator sim(probe.protocol, PairSelect::fenwick);
    sim.reset_epoch_stats();
    const CheckpointHook stop = stop_after_first_boundary();

    const int trials = 300;
    int tested_configs = 0;
    std::vector<AgentCount> live_counts(4, 0);
    std::vector<stat::GofResult> failures;

    const auto test_config = [&](const std::vector<AgentCount>& counts) {
        Config base(probe.protocol.num_states());
        AgentCount min_live = 0;
        for (std::size_t q = 0; q < counts.size(); ++q) {
            base.set(probe.live[q], counts[q]);
            if (counts[q] > 0) min_live = min_live == 0 ? counts[q] : std::min(min_live, counts[q]);
        }
        // Weights of the active pairs; need ≥ 2 for a meaningful multinomial.
        std::vector<double> weights;
        for (std::size_t i = 0; i < probe.live.size(); ++i) {
            for (std::size_t j = i; j < probe.live.size(); ++j) {
                const double w = probe_weight(base, probe.live[i], probe.live[j]);
                if (w > 0.0) weights.push_back(w);
            }
        }
        if (weights.size() < 2) return;

        EpochOptions epoch;
        epoch.min_firings = 1;
        epoch.drift = 1.0;
        epoch.max_firings = static_cast<std::uint64_t>(std::max<AgentCount>(min_live / 2, 1));

        std::vector<std::uint64_t> sums;
        std::vector<double> active_weights;
        std::vector<double> top_counts;  // per-trial counts of the heaviest pair
        std::uint64_t k_epoch = 0;
        Rng rng(stat::derive_seed(2026, "exhaustive-moments"));
        for (int t = 0; t < trials; ++t) {
            Config config = base;
            std::uint64_t fired = 0;
            sim.run_batch(config, rng, std::uint64_t{1} << 40, false, &stop, &fired,
                          StepMode::epoch, epoch);
            if (t == 0) {
                k_epoch = fired;
                ASSERT_GE(k_epoch, 1u);
                // Collect the active cells once.
                std::size_t heaviest = 0;
                double heaviest_w = 0.0;
                for (std::size_t i = 0; i < probe.live.size(); ++i) {
                    for (std::size_t j = i; j < probe.live.size(); ++j) {
                        const double w = probe_weight(base, probe.live[i], probe.live[j]);
                        if (w <= 0.0) continue;
                        if (w > heaviest_w) {
                            heaviest_w = w;
                            heaviest = active_weights.size();
                        }
                        active_weights.push_back(w);
                        sums.push_back(0);
                    }
                }
                top_counts.reserve(static_cast<std::size_t>(trials));
                (void)heaviest;
            }
            ASSERT_EQ(fired, k_epoch);
            std::size_t cell = 0;
            double top_w = 0.0;
            double top_c = 0.0;
            for (std::size_t i = 0; i < probe.live.size(); ++i) {
                for (std::size_t j = i; j < probe.live.size(); ++j) {
                    const double w = probe_weight(base, probe.live[i], probe.live[j]);
                    if (w <= 0.0) continue;
                    const auto c = static_cast<std::uint64_t>(config[probe.sink[i][j - i]] / 2);
                    sums[cell] += c;
                    if (w > top_w) {
                        top_w = w;
                        top_c = static_cast<double>(c);
                    }
                    ++cell;
                }
            }
            top_counts.push_back(top_c);
        }

        // First moment: summed counts are Multinomial(trials·k, w/W).
        const stat::GofResult gof =
            stat::chi_squared_gof(sums, active_weights, stat::bonferroni(0.01, 400));
        if (!gof.pass) failures.push_back(gof);

        // Second moment, heaviest pair: per-trial counts are
        // Binomial(k, p_top); compare the sample variance via the harness's
        // large-sample variance test against an exact-law sample.
        double total_w = 0.0;
        double max_w = 0.0;
        for (const double w : active_weights) {
            total_w += w;
            max_w = std::max(max_w, w);
        }
        const double p_top = max_w / total_w;
        if (k_epoch >= 2 && p_top < 0.99) {
            const auto m = stat::sample_moments(top_counts);
            const double expect_var = static_cast<double>(k_epoch) * p_top * (1.0 - p_top);
            // z-test of the sample variance against the known value, SE
            // estimated from the sample's own fourth moment.
            const double se =
                std::sqrt(std::max(m.m4 - m.variance * m.variance, 1e-12) /
                          static_cast<double>(m.n));
            const double z = std::fabs(m.variance - expect_var) / se;
            EXPECT_LE(z, stat::normal_quantile(1.0 - 0.5 * stat::bonferroni(0.01, 400)))
                << "variance of heaviest pair off: " << m.variance << " vs " << expect_var;
        }
        ++tested_configs;
    };

    // Exhaustive enumeration: all compositions of 2..7 agents into the four
    // live states (sinks start empty).
    for (AgentCount pop = 2; pop <= 7; ++pop) {
        for (AgentCount a = 0; a <= pop; ++a) {
            for (AgentCount b = 0; a + b <= pop; ++b) {
                for (AgentCount c = 0; a + b + c <= pop; ++c) {
                    live_counts = {a, b, c, pop - a - b - c};
                    test_config(live_counts);
                }
            }
        }
    }
    EXPECT_EQ(tested_configs, 295);  // genuinely exhaustive, minus < 2-pair configs
    for (const auto& gof : failures) {
        ADD_FAILURE() << "multinomial GOF failed: X² = " << gof.statistic << " > "
                      << gof.critical << " (df " << gof.df << ")";
    }
    EXPECT_EQ(sim.epoch_stats().rejected_draws, 0u)
        << "the ⌊min/2⌋ clamp should make every draw feasible";
}

TEST(EpochEquivalence, ConvergenceTimeDistributionsMatchThePerStepReference) {
    // Full runs to consensus on the E11 double-exponential workload: the
    // interaction counts at convergence must be indistinguishable between
    // modes (mean, variance, and KS at α = 10⁻³/3), and the verdicts
    // identical — every run of both modes must stabilise to output 1.
    const Protocol protocol = protocols::double_exp_threshold(2);
    const Simulator sim(protocol, PairSelect::fenwick);
    const AgentCount population = 4096;

    const int runs = 250;
    const double alpha = stat::bonferroni(1e-3, 3);
    std::vector<double> times[2];
    sim.reset_epoch_stats();
    for (int mode = 0; mode < 2; ++mode) {
        SimulationOptions options;
        options.max_interactions = std::uint64_t{1} << 32;
        options.step_mode = mode == 0 ? StepMode::per_step : StepMode::epoch;
        options.epoch.min_firings = 8;
        // Both modes consume the same seeds — only through differently
        // shaped draws.
        Rng rng(stat::derive_seed(2027, mode == 0 ? "convergence-ref" : "convergence-epoch"));
        for (int r = 0; r < runs; ++r) {
            const SimulationResult result = sim.run_input(population, rng, options);
            ASSERT_TRUE(result.converged) << "mode " << mode << " run " << r;
            ASSERT_TRUE(result.output.has_value());
            ASSERT_EQ(*result.output, 1) << "mode " << mode << " run " << r;
            ASSERT_GT(result.fired, 0u);
            ASSERT_LE(result.fired, result.interactions);
            times[mode].push_back(static_cast<double>(result.interactions));
        }
    }
    // The epoch path must have actually served the bulk of the epoch-mode
    // firings — otherwise this test compares per-step with itself.
    const EpochStats stats = sim.epoch_stats();
    ASSERT_GT(stats.epochs, 0u);
    ASSERT_GT(stats.epoch_fired, stats.fallback_fired);

    const auto ref = stat::sample_moments(times[0]);
    const auto epoch = stat::sample_moments(times[1]);
    const auto mean = stat::mean_equivalence_test(ref, epoch, alpha);
    EXPECT_TRUE(mean.pass) << "means differ: z = " << mean.statistic << " (ref " << ref.mean
                           << ", epoch " << epoch.mean << ")";
    const auto variance = stat::variance_equivalence_test(ref, epoch, alpha);
    EXPECT_TRUE(variance.pass) << "variances differ: z = " << variance.statistic << " (ref "
                               << ref.variance << ", epoch " << epoch.variance << ")";
    const auto ks = stat::ks_two_sample(times[0], times[1], alpha);
    EXPECT_TRUE(ks.pass) << "KS: D = " << ks.statistic << " > " << ks.critical;
}

TEST(EpochEquivalence, StructuralConsistencyAfterEpochs) {
    // After a long epoch-mode run, the incrementally maintained state (W,
    // trap counters, agent tree) must agree with a from-scratch rebuild on
    // a fresh simulator — population conserved, silence and stability
    // verdicts identical.
    const Protocol protocol = protocols::double_exp_threshold(2);
    const Simulator sim(protocol, PairSelect::fenwick);
    const AgentCount population = 50'000;
    Config config = protocol.initial_config(population);
    Rng rng(stat::derive_seed(2028, "structural"));
    std::uint64_t fired = 0;
    EpochOptions epoch;
    epoch.min_firings = 8;
    const std::uint64_t done = sim.run_batch(config, rng, std::uint64_t{1} << 28, true, nullptr,
                                             &fired, StepMode::epoch, epoch);
    ASSERT_GT(done, 0u);
    ASSERT_GT(sim.epoch_stats().epochs, 0u);
    EXPECT_EQ(config.size(), population);  // agents are conserved exactly

    // Cached-context probes (O(1) counters) vs. a fresh simulator's
    // counts-based rescan of the same final configuration.
    const Simulator fresh(protocol, PairSelect::fenwick);
    const Config copy = config;
    EXPECT_EQ(sim.is_silent(config), fresh.is_silent(copy));
    EXPECT_EQ(sim.is_provably_stable(config), fresh.is_provably_stable(copy));

    // And the trajectory must still be continuable on the per-step path —
    // mixed-mode stepping shares one exact weight structure.
    std::uint64_t more_fired = 0;
    sim.run_batch(config, rng, 10'000, false, nullptr, &more_fired);
    EXPECT_EQ(config.size(), population);
}

}  // namespace
}  // namespace ppsc
