// The statistical harness must itself be trustworthy before anything is
// proved with it: critical values against the classic table, the analytic
// inversion against the pinned rows, detection power (wrong distributions
// must FAIL), and the new Rng samplers (binomial/poisson/gamma/negative
// binomial) against their exact laws — all with fixed, derived seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "support/rng.hpp"
#include "support/stat_test.hpp"

namespace ppsc {
namespace {

TEST(StatHarness, CriticalValuesMatchTheClassicTable) {
    // Spot checks straight from the χ² table (3 significant decimals).
    EXPECT_NEAR(stat::chi_squared_critical(1, 0.05), 3.841, 1e-3);
    EXPECT_NEAR(stat::chi_squared_critical(2, 0.01), 9.210, 1e-3);
    EXPECT_NEAR(stat::chi_squared_critical(10, 0.05), 18.307, 1e-3);
    EXPECT_NEAR(stat::chi_squared_critical(14, 0.001), 36.123, 1e-3);
    EXPECT_NEAR(stat::chi_squared_critical(15, 0.001), 37.697, 1e-3);
}

TEST(StatHarness, AnalyticInversionAgreesWithThePinnedTable) {
    // Off-table (df, α) pairs go through the incomplete-gamma inversion;
    // on-table pairs must agree with it to the table's precision — the
    // pinned rows double as a regression anchor for the analytic path.
    for (int df = 1; df <= 15; ++df) {
        for (const double alpha : {0.05, 0.01, 0.001}) {
            const double table = stat::chi_squared_critical(df, alpha);
            // Force the analytic path with an α infinitesimally off-table.
            const double analytic = stat::chi_squared_critical(df, alpha * (1.0 + 1e-9));
            EXPECT_NEAR(analytic, table, 2e-3) << "df=" << df << " alpha=" << alpha;
        }
    }
    // And beyond the table: χ²(30) at α=0.001 ≈ 59.703, χ²(100) at 0.05 ≈ 124.342.
    EXPECT_NEAR(stat::chi_squared_critical(30, 0.001), 59.703, 2e-2);
    EXPECT_NEAR(stat::chi_squared_critical(100, 0.05), 124.342, 2e-2);
}

TEST(StatHarness, SurvivalFunctionAndQuantilesAreConsistent) {
    // sf(critical(df, α)) == α by construction; normal quantile spot values.
    for (const int df : {1, 2, 5, 14, 40, 200}) {
        for (const double alpha : {0.2, 0.01, 1e-4}) {
            const double crit = stat::chi_squared_critical(df, alpha);
            EXPECT_NEAR(stat::chi_squared_sf(df, crit), alpha, alpha * 1e-2 + 1e-12)
                << "df=" << df;
        }
    }
    EXPECT_NEAR(stat::normal_quantile(0.975), 1.959964, 1e-5);
    EXPECT_NEAR(stat::normal_quantile(0.999), 3.090232, 1e-5);
    EXPECT_NEAR(stat::normal_quantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(stat::normal_quantile(0.025), -1.959964, 1e-5);
}

TEST(StatHarness, BonferroniAndSeedDerivation) {
    EXPECT_DOUBLE_EQ(stat::bonferroni(0.01, 10), 0.001);
    EXPECT_DOUBLE_EQ(stat::bonferroni(0.05, 1), 0.05);
    // Deterministic, label-sensitive, base-sensitive.
    EXPECT_EQ(stat::derive_seed(7, "a"), stat::derive_seed(7, "a"));
    EXPECT_NE(stat::derive_seed(7, "a"), stat::derive_seed(7, "b"));
    EXPECT_NE(stat::derive_seed(7, "a"), stat::derive_seed(8, "a"));
}

TEST(StatHarness, GofAcceptsTheTrueLawAndRejectsAWrongOne) {
    // Multinomial draws from the true weights must pass; the same counts
    // against visibly wrong weights must fail.  (Power check: a harness
    // that never rejects proves nothing.)
    Rng rng(stat::derive_seed(1002, "gof-power"));
    const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0, 10.0};
    std::vector<std::uint64_t> counts(weights.size(), 0);
    const double total = 20.0;
    for (int i = 0; i < 20'000; ++i) {
        double r = rng.uniform() * total;
        for (std::size_t j = 0; j < weights.size(); ++j) {
            if (r < weights[j] || j + 1 == weights.size()) {
                ++counts[j];
                break;
            }
            r -= weights[j];
        }
    }
    EXPECT_TRUE(stat::chi_squared_gof(counts, weights).pass);
    const std::vector<double> wrong = {2.0, 2.0, 3.0, 4.0, 9.0};
    EXPECT_FALSE(stat::chi_squared_gof(counts, wrong).pass);
}

TEST(StatHarness, GofPoolsSparseCells) {
    // A heavy head with a long thin tail: tail cells pool into one, the
    // statistic stays finite and the df reflects the pooled cell count.
    std::vector<double> weights = {1000.0, 1000.0};
    std::vector<std::uint64_t> counts = {1000, 1000};
    for (int i = 0; i < 10; ++i) {
        weights.push_back(0.1);  // expected ≈ 0.2 each — far below min_expected
        counts.push_back(i == 0 ? 2u : 0u);
    }
    const stat::GofResult gof = stat::chi_squared_gof(counts, weights);
    EXPECT_EQ(gof.cells, 3u);  // two heavy cells + one pooled tail
    EXPECT_EQ(gof.df, 2);
    EXPECT_TRUE(gof.pass);
}

TEST(StatHarness, TwoSampleTestsSeparateEqualFromShifted) {
    Rng rng(stat::derive_seed(1003, "two-sample"));
    const auto draw = [&rng](double shift, double scale, std::size_t n) {
        std::vector<double> xs(n);
        for (double& x : xs) x = shift + scale * rng.normal();
        return xs;
    };
    const std::vector<double> a = draw(10.0, 2.0, 2000);
    const std::vector<double> b = draw(10.0, 2.0, 2000);
    const std::vector<double> shifted = draw(10.4, 2.0, 2000);   // ≈ 6σ of the mean SE
    const std::vector<double> spread = draw(10.0, 2.6, 2000);    // variance 4 → 6.8

    const auto ma = stat::sample_moments(a);
    const auto mb = stat::sample_moments(b);
    EXPECT_TRUE(stat::mean_equivalence_test(ma, mb).pass);
    EXPECT_TRUE(stat::variance_equivalence_test(ma, mb).pass);
    EXPECT_TRUE(stat::ks_two_sample(a, b).pass);

    EXPECT_FALSE(stat::mean_equivalence_test(ma, stat::sample_moments(shifted)).pass);
    EXPECT_FALSE(stat::variance_equivalence_test(ma, stat::sample_moments(spread)).pass);
    EXPECT_FALSE(stat::ks_two_sample(a, shifted).pass);
}

// ---------------------------------------------------------------------------
// The Rng samplers the epoch path is built on.

TEST(StatHarness, BinomialMatchesTheExactPmfOnBothAlgorithms) {
    // n·p = 4.5 exercises the inversion path, n·p = 300 the BTRS rejection
    // path; both must fit the exact pmf (via lgamma) under chi-squared.
    struct Case {
        std::uint64_t n;
        double p;
        const char* label;
    };
    for (const Case c : {Case{30, 0.15, "inversion"}, Case{1000, 0.3, "btrs"}}) {
        Rng rng(stat::derive_seed(1004, c.label));
        std::vector<std::uint64_t> counts(c.n + 1, 0);
        for (int i = 0; i < 40'000; ++i) {
            const std::uint64_t k = rng.binomial(c.n, c.p);
            ASSERT_LE(k, c.n);
            ++counts[k];
        }
        std::vector<double> pmf(c.n + 1);
        const double nd = static_cast<double>(c.n);
        for (std::uint64_t k = 0; k <= c.n; ++k) {
            const double kd = static_cast<double>(k);
            pmf[k] = std::exp(std::lgamma(nd + 1) - std::lgamma(kd + 1) -
                              std::lgamma(nd - kd + 1) + kd * std::log(c.p) +
                              (nd - kd) * std::log1p(-c.p));
        }
        const stat::GofResult gof = stat::chi_squared_gof(counts, pmf);
        EXPECT_TRUE(gof.pass) << c.label << ": X² = " << gof.statistic << " > " << gof.critical;
    }
}

TEST(StatHarness, BinomialEdgeCases) {
    Rng rng(stat::derive_seed(1005, "binomial-edges"));
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
    EXPECT_EQ(rng.binomial(100, 0.0), 0u);
    EXPECT_EQ(rng.binomial(100, 1.0), 100u);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t k = rng.binomial(7, 0.999);  // reflection path
        EXPECT_LE(k, 7u);
    }
    // Large-n sanity: mean within 5 SE.
    const std::uint64_t n = std::uint64_t{1} << 40;
    double sum = 0.0;
    const int reps = 200;
    for (int i = 0; i < reps; ++i) sum += static_cast<double>(rng.binomial(n, 0.25));
    const double nd = static_cast<double>(n);
    const double se = std::sqrt(nd * 0.25 * 0.75 / reps);
    EXPECT_NEAR(sum / reps, nd * 0.25, 5.0 * se);
}

TEST(StatHarness, PoissonMatchesTheExactPmfOnBothAlgorithms) {
    for (const double lambda : {3.5, 40.0}) {  // inversion, then PTRS
        Rng rng(stat::derive_seed(1006, lambda < 10 ? "poisson-inv" : "poisson-ptrs"));
        const std::size_t cap = static_cast<std::size_t>(lambda * 3 + 30);
        std::vector<std::uint64_t> counts(cap + 1, 0);
        for (int i = 0; i < 40'000; ++i) {
            const std::uint64_t k = rng.poisson(lambda);
            ++counts[std::min<std::uint64_t>(k, cap)];
        }
        std::vector<double> pmf(cap + 1, 0.0);
        double tail = 1.0;
        for (std::size_t k = 0; k < cap; ++k) {
            const double kd = static_cast<double>(k);
            pmf[k] = std::exp(kd * std::log(lambda) - lambda - std::lgamma(kd + 1));
            tail -= pmf[k];
        }
        pmf[cap] = std::max(tail, 0.0);
        const stat::GofResult gof = stat::chi_squared_gof(counts, pmf);
        EXPECT_TRUE(gof.pass) << "lambda = " << lambda << ": X² = " << gof.statistic;
    }
}

TEST(StatHarness, GammaAndNegativeBinomialMoments) {
    // Gamma(k, 1): mean k, variance k.  NB(k, p): mean k(1−p)/p, variance
    // k(1−p)/p².  Moment checks within 5 SE at fixed seeds.
    Rng rng(stat::derive_seed(1007, "gamma-nb-moments"));
    const int reps = 40'000;
    for (const double shape : {1.0, 4.0, 1000.0}) {
        double sum = 0.0;
        double sq = 0.0;
        for (int i = 0; i < reps; ++i) {
            const double g = rng.gamma(shape);
            ASSERT_GT(g, 0.0);
            sum += g;
            sq += g * g;
        }
        const double mean = sum / reps;
        const double var = sq / reps - mean * mean;
        // SE of the mean is √(shape/reps); variance estimates are noisier
        // (kurtosis 3 + 6/shape), a 10% band is ≥ 6 SE for these shapes.
        EXPECT_NEAR(mean, shape, 5.0 * std::sqrt(shape / reps)) << "shape " << shape;
        EXPECT_NEAR(var, shape, 0.1 * shape) << "shape " << shape;
    }
    const std::uint64_t k = 50;
    const double p = 0.2;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < reps; ++i) {
        const double x = static_cast<double>(rng.negative_binomial(k, p));
        sum += x;
        sq += x * x;
    }
    const double mean = sum / reps;
    const double var = sq / reps - mean * mean;
    const double expect_mean = k * (1.0 - p) / p;             // 200
    const double expect_var = k * (1.0 - p) / (p * p);        // 1000
    EXPECT_NEAR(mean, expect_mean, 5.0 * std::sqrt(expect_var / reps));
    EXPECT_NEAR(var, expect_var, 0.1 * expect_var);
    // Degenerate p = 1: zero failures, always.
    EXPECT_EQ(rng.negative_binomial(10, 1.0), 0u);
}

}  // namespace
}  // namespace ppsc
