// Tests for the executable Theorem 4.5 pipeline (Lemmas 4.1 / 4.2).
#include "bounds/pumping.hpp"

#include <gtest/gtest.h>

#include "protocols/leader.hpp"
#include "protocols/threshold.hpp"

namespace ppsc {
namespace {

TEST(StableConfigurationForInput, PicksConsensusBottomMember) {
    const Protocol p = protocols::unary_threshold(3);
    const auto below = bounds::stable_configuration_for_input(p, 2);
    ASSERT_TRUE(below.has_value());
    EXPECT_EQ(p.consensus_output(*below), 0);
    EXPECT_EQ(below->size(), 2);

    const auto above = bounds::stable_configuration_for_input(p, 5);
    ASSERT_TRUE(above.has_value());
    EXPECT_EQ(p.consensus_output(*above), 1);
    EXPECT_EQ(above->size(), 5);
}

TEST(StableConfigurationForInput, IllSpecifiedInputGivesNullopt) {
    // Oscillator: its only bottom SCC is not a consensus.
    ProtocolBuilder b;
    const StateId a = b.add_state("A", 1);
    const StateId c = b.add_state("B", 0);
    b.set_input("x", a);
    b.add_transition(a, a, c, c);
    b.add_transition(c, c, a, a);
    const Protocol p = std::move(b).build();
    EXPECT_EQ(bounds::stable_configuration_for_input(p, 2), std::nullopt);
}

TEST(PumpingCertificate, CertifiesThresholdUpperBound) {
    // For a protocol computing x >= eta, Lemma 4.1 certificates must give
    // a >= eta (the verdict that pumps must be the accepting one, since
    // rejection cannot pump past the threshold).
    for (AgentCount eta = 2; eta <= 4; ++eta) {
        const Protocol p = protocols::unary_threshold(eta);
        bounds::PumpingOptions options;
        options.max_input = eta + 6;
        const auto certificate = bounds::find_pumping_certificate(p, options);
        ASSERT_TRUE(certificate.has_value()) << "eta=" << eta;
        EXPECT_EQ(certificate->verdict, 1) << "eta=" << eta;
        EXPECT_GE(certificate->a, eta) << "eta=" << eta;
        EXPECT_GT(certificate->b, 0);
        EXPECT_TRUE(certificate->stable_low.leq(certificate->stable_high));
        // The certificate witnesses eta <= a — consistent with the actual
        // threshold.
    }
}

TEST(PumpingCertificate, RejectingPairsAreFilteredByRecheck) {
    // Below the threshold, C_i <= C_j pairs with rejecting verdicts exist
    // for unary thresholds with larger eta (e.g. {v0...} patterns), but
    // pumping them crosses the threshold; the pipeline must reject such
    // candidates rather than emit a bogus certificate.
    const Protocol p = protocols::unary_threshold(5);
    bounds::PumpingOptions options;
    options.max_input = 12;
    const auto certificate = bounds::find_pumping_certificate(p, options);
    ASSERT_TRUE(certificate.has_value());
    EXPECT_EQ(certificate->verdict, 1);
    EXPECT_GE(certificate->a, 5);
}

TEST(PumpingCertificate, WorksWithLeaders) {
    const Protocol p = protocols::leader_threshold(2);
    bounds::PumpingOptions options;
    options.max_input = 8;
    const auto certificate = bounds::find_pumping_certificate(p, options);
    ASSERT_TRUE(certificate.has_value());
    EXPECT_EQ(certificate->verdict, 1);
    EXPECT_GE(certificate->a, 2);
}

TEST(PumpingCertificate, CollectorFamily) {
    const Protocol p = protocols::collector_threshold(5);
    bounds::PumpingOptions options;
    options.max_input = 11;
    const auto certificate = bounds::find_pumping_certificate(p, options);
    ASSERT_TRUE(certificate.has_value());
    EXPECT_EQ(certificate->verdict, 1);
    EXPECT_GE(certificate->a, 5);
    EXPECT_LE(certificate->a, 11);
}

TEST(PumpingCertificate, ReferenceBackendProducesIdenticalCertificate) {
    const Protocol p = protocols::unary_threshold(3);
    bounds::PumpingOptions sparse, reference;
    sparse.max_input = reference.max_input = 9;
    reference.compute = ClosureCompute::reference;
    reference.reachability.compute = ClosureCompute::reference;
    const auto a = bounds::find_pumping_certificate(p, sparse);
    const auto b = bounds::find_pumping_certificate(p, reference);
    ASSERT_EQ(a.has_value(), b.has_value());
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->a, b->a);
    EXPECT_EQ(a->b, b->b);
    EXPECT_EQ(a->verdict, b->verdict);
    EXPECT_EQ(a->stable_low, b->stable_low);
    EXPECT_EQ(a->stable_high, b->stable_high);
    EXPECT_EQ(a->candidates_rejected, b->candidates_rejected);
}

TEST(PumpingCertificate, RequiresSingleInputVariable) {
    ProtocolBuilder b;
    const StateId a = b.add_state("A", 1);
    const StateId c = b.add_state("B", 0);
    b.set_input("A", a);
    b.set_input("B", c);
    const Protocol p = std::move(b).build();
    EXPECT_THROW(bounds::find_pumping_certificate(p, {}), std::invalid_argument);
}

}  // namespace
}  // namespace ppsc
