// Tests for the fair-execution verifier: correct protocols verify, broken
// protocols are rejected with counterexamples.
#include "verify/verifier.hpp"

#include <gtest/gtest.h>

#include "protocols/threshold.hpp"

namespace ppsc {
namespace {

/// Ill-specified by nondeterminism: from {A,B} both all-A and all-B
/// (disagreeing consensuses) are reachable bottom configurations.
Protocol coin_flip() {
    ProtocolBuilder b;
    const StateId a = b.add_state("A", 1);
    const StateId c = b.add_state("B", 0);
    b.set_input("x", a);
    b.add_transition(a, c, a, a);
    b.add_transition(a, c, c, c);
    return std::move(b).build();
}

/// Never stabilises: {2A} <-> {2B} forms a non-consensus bottom SCC.
Protocol oscillator() {
    ProtocolBuilder b;
    const StateId a = b.add_state("A", 1);
    const StateId c = b.add_state("B", 0);
    b.set_input("x", a);
    b.add_transition(a, a, c, c);
    b.add_transition(c, c, a, a);
    return std::move(b).build();
}

TEST(Verifier, UnaryThresholdComputesItsPredicate) {
    const Protocol p = protocols::unary_threshold(3);
    const Verifier verifier(p);
    const PredicateCheck check = verifier.check_predicate(Predicate::x_at_least(3), 2, 9);
    EXPECT_TRUE(check.holds) << check.failures.size() << " failures";
    EXPECT_EQ(check.inputs_checked, 8u);
}

TEST(Verifier, VerdictFieldsAreMeaningful) {
    const Protocol p = protocols::unary_threshold(2);
    const Verifier verifier(p);
    const InputVerdict verdict = verifier.verify_input(4);
    EXPECT_TRUE(verdict.well_specified);
    EXPECT_EQ(verdict.computed, 1);
    EXPECT_GT(verdict.explored_nodes, 1u);
    EXPECT_GE(verdict.bottom_scc_count, 1u);
    EXPECT_FALSE(verdict.counterexample.has_value());
}

TEST(Verifier, CoinFlipIsIllSpecified) {
    const Protocol p = coin_flip();
    const Verifier verifier(p);
    const InputVerdict verdict = verifier.verify_input(2);
    // IC(2) = {2·A} is already an all-1 consensus... but input 2 means two
    // A agents and no B, so it is actually well-specified; the interesting
    // case needs both states populated, which A,A cannot produce.  Check
    // from a mixed start via a 2-variable wrapper instead: here we simply
    // assert IC(2) stays consensus-1.
    EXPECT_TRUE(verdict.well_specified);
    EXPECT_EQ(verdict.computed, 1);
}

TEST(Verifier, OscillatorIsIllSpecifiedWithCounterexample) {
    const Protocol p = oscillator();
    const Verifier verifier(p);
    const InputVerdict verdict = verifier.verify_input(2);
    EXPECT_FALSE(verdict.well_specified);
    EXPECT_FALSE(verdict.computed.has_value());
    EXPECT_TRUE(verdict.counterexample.has_value());
}

TEST(Verifier, InferThresholdOnExampleFamilies) {
    for (AgentCount eta = 1; eta <= 5; ++eta) {
        const Protocol p = protocols::unary_threshold(eta);
        const Verifier verifier(p);
        const auto inferred = verifier.infer_threshold(eta + 3);
        // Inputs start at 2, so thresholds below 2 are observed as 2.
        EXPECT_EQ(inferred, std::max<AgentCount>(eta, 2)) << "eta=" << eta;
    }
}

TEST(Verifier, InferThresholdRejectsNonThresholdBehaviour) {
    const Protocol p = oscillator();
    const Verifier verifier(p);
    EXPECT_EQ(verifier.infer_threshold(4), std::nullopt);
}

TEST(Verifier, CheckPredicateReportsFailures) {
    // unary_threshold(3) does NOT compute x >= 4.
    const Protocol p = protocols::unary_threshold(3);
    const Verifier verifier(p);
    const PredicateCheck check = verifier.check_predicate(Predicate::x_at_least(4), 2, 6);
    EXPECT_FALSE(check.holds);
    ASSERT_EQ(check.failures.size(), 1u);  // only input 3 differs
    EXPECT_EQ(check.failures[0].input[0], 3);
    EXPECT_EQ(check.failures[0].computed, 1);  // protocol says yes, predicate says no
}

TEST(Verifier, WrongInputArityThrows) {
    const Protocol p = protocols::unary_threshold(2);
    const Verifier verifier(p);
    const AgentCount tuple[] = {1, 1};
    EXPECT_THROW(verifier.verify_input(tuple), std::invalid_argument);
}

}  // namespace
}  // namespace ppsc
