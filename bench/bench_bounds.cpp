// Experiment E8 — the Theorem 5.9 inequality chain and the busy-beaver
// bracket (Theorems 2.2, 4.5, 5.9).
//
// Evaluates eta <= xi·n·beta·3^n <= 2^((2n+2)!) numerically (log-domain,
// exact BigNat where materialisable) and prints the full BB(n) bracket:
// construction lower bounds vs the triple-exponential leaderless ceiling
// and the F_omega-level leaderful ceiling.
#include <cstdio>

#include "bounds/paper_bounds.hpp"
#include "protocols/threshold.hpp"

using namespace ppsc;

int main() {
    std::printf("=== E8: Theorem 5.9 chain — eta <= xi·n·beta·3^n <= 2^((2n+2)!) ===\n\n");
    std::printf("%3s %16s %16s %18s %18s %7s\n", "n", "log2 xi", "log2 beta", "log2 lhs",
                "log2 rhs", "holds");
    for (std::size_t n = 2; n <= 8; ++n) {
        const auto chain = bounds::theorem59_chain(n);
        auto log2_str = [](const LogNum& v) {
            char buffer[40];
            if (v.is_infinite())
                std::snprintf(buffer, sizeof buffer, "inf");
            else
                std::snprintf(buffer, sizeof buffer, "%.4Lg", v.log2_value());
            return std::string(buffer);
        };
        std::printf("%3zu %16s %16s %18s %18s %7s\n", n, log2_str(chain.xi).c_str(),
                    log2_str(chain.beta).c_str(), log2_str(chain.lhs).c_str(),
                    log2_str(chain.rhs).c_str(), chain.holds ? "yes" : "NO");
    }

    std::printf("\nexact beta(n) (Definition 3), where materialisable:\n");
    for (std::size_t n = 1; n <= 4; ++n) {
        const auto beta = bounds::small_basis_beta_exact(n);
        if (beta) {
            std::printf("  beta(%zu) = 2^%s, %llu bits, decimal %s\n", n,
                        bounds::small_basis_exponent(n).to_string().c_str(),
                        static_cast<unsigned long long>(beta->bit_length()),
                        beta->to_display_string(20).c_str());
        } else {
            std::printf("  beta(%zu): exponent %s — beyond exact materialisation\n", n,
                        bounds::small_basis_exponent(n).to_display_string(20).c_str());
        }
    }

    std::printf("\nchain instantiated with actual protocol parameters (not worst-case |T|):\n");
    for (const AgentCount eta : {3, 6, 13}) {
        const Protocol p = protocols::collector_threshold(eta);
        const auto chain = bounds::theorem59_chain_for(p);
        std::printf("  collector_threshold(%lld): n=%zu, lhs=%s, rhs=%s, holds=%s\n",
                    static_cast<long long>(eta), chain.n, chain.lhs.to_string().c_str(),
                    chain.rhs.to_string().c_str(), chain.holds ? "yes" : "NO");
    }

    std::printf("\nthe busy-beaver bracket:\n");
    std::printf("%4s %18s %22s %26s\n", "n", "BB(n) >= (constr)", "BB(n) <= 2^((2n+2)!)",
                "BBL(n) >= 2^(2^n) [12]");
    for (std::size_t n = 3; n <= 10; ++n) {
        const auto lower = bounds::busy_beaver_lower(n);
        std::printf("%4zu %18lld %22s %26s\n", n, static_cast<long long>(lower.best()),
                    bounds::theta(n).to_string().c_str(),
                    bounds::bbl_lower(n).to_string().c_str());
    }
    std::printf("\n%s\n", bounds::bbl_upper_description(10, 1).c_str());
    return 0;
}
