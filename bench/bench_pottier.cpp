// Experiment E7 — Pottier bases of potentially realisable multisets
// (Theorem 5.6 / Corollary 5.7 / Lemma 5.8).
//
// For each protocol: the basis of its potentially realisable multisets,
// the largest element size |pi| against the guarantee xi/2, and the
// Lemma 5.8 search for a basis element concentrating all agents inside the
// support of a stable set.
#include <chrono>
#include <cstdio>

#include "diophantine/realisable.hpp"
#include "protocols/modulo.hpp"
#include "protocols/threshold.hpp"

using namespace ppsc;

int main() {
    std::printf("=== E7: Pottier bases of realisable multisets (Cor. 5.7) ===\n\n");
    std::printf("%-26s %5s %5s %9s %10s %14s %9s\n", "protocol", "|Q|", "|T|", "basis",
                "max |pi|", "xi/2 bound", "time(ms)");

    struct Row {
        const char* name;
        Protocol protocol;
    };
    Row rows[] = {
        {"unary_threshold(2)", protocols::unary_threshold(2)},
        {"unary_threshold(3)", protocols::unary_threshold(3)},
        {"unary_threshold(4)", protocols::unary_threshold(4)},
        {"binary_threshold_power(1)", protocols::binary_threshold_power(1)},
        {"binary_threshold_power(2)", protocols::binary_threshold_power(2)},
        {"binary_threshold_power(3)", protocols::binary_threshold_power(3)},
        {"collector_threshold(3)", protocols::collector_threshold(3)},
        {"collector_threshold(5)", protocols::collector_threshold(5)},
        {"modulo(2,0)", protocols::modulo(2, 0)},
        {"modulo(3,1)", protocols::modulo(3, 1)},
    };
    for (auto& row : rows) {
        const auto start = std::chrono::steady_clock::now();
        RealisableBasis basis;
        try {
            basis = realisable_multiset_basis(row.protocol);
        } catch (const std::length_error&) {
            std::printf("%-26s %5zu %5zu %9s\n", row.name, row.protocol.num_states(),
                        row.protocol.num_transitions(), "budget");
            continue;
        }
        const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
        std::uint32_t rem = 0;
        const BigNat half_xi = basis.xi.div_u32(2, rem);
        std::printf("%-26s %5zu %5zu %9zu %10lld %14s %9lld\n", row.name,
                    row.protocol.num_states(), row.protocol.num_transitions(),
                    basis.elements.size(), static_cast<long long>(basis.max_size),
                    half_xi.to_display_string(12).c_str(), static_cast<long long>(elapsed));
    }

    // Lemma 5.8 witness search: can some basis element drive every agent
    // into the accepting trap {T} ∪ {z}?  (the support of the accepting
    // stable set of the collector protocol)
    std::printf("\nLemma 5.8 witnesses (collector_threshold(5)):\n");
    const Protocol collector = protocols::collector_threshold(5);
    const RealisableBasis basis = realisable_multiset_basis(collector);
    struct Target {
        const char* description;
        std::vector<StateId> states;
    };
    const Target targets[] = {
        {"S = {T, z}", {*collector.find_state("T"), *collector.find_state("z")}},
        {"S = {z, t2}", {*collector.find_state("z"), *collector.find_state("t2")}},
        {"S = {T}", {*collector.find_state("T")}},
    };
    for (const auto& target : targets) {
        const auto witness = zero_concentrated_element(basis, collector, target.states);
        if (witness) {
            std::printf("  %-12s element #%zu, |pi| = %lld, input %lld\n", target.description,
                        *witness, static_cast<long long>(parikh_size(basis.elements[*witness])),
                        static_cast<long long>(basis.inputs[*witness]));
        } else {
            std::printf("  %-12s no basis element concentrates inside S\n",
                        target.description);
        }
    }
    std::printf("\nshape check: basis sizes are small and max|pi| sits orders of magnitude\n"
                "below xi/2 — Pottier's bound is comfortable, never violated.\n");
    return 0;
}
