// Experiments E10/E11 — simulator throughput and convergence-time scaling.
//
// google-benchmark microbenchmarks for the hot paths (interaction
// throughput of the batched engine, the single-step API, fired-step pair
// selection on the double-exponential workload, exhaustive verification)
// followed by the convergence-time series: mean parallel time to stable
// consensus as the population grows, for the succinct threshold protocol —
// the simulation-side context for the paper's introduction (time/state
// trade-offs).
//
// Flags (after the --benchmark_* flags):
//   --skip-sweeps  omits the E10/E11 sweep tables (used by
//                  bench/run_benchmarks.sh, which only wants the JSON
//                  microbenchmark numbers);
//   --e11-smoke    runs only a tiny E11 workload end to end (family
//                  correctness in randomized simulation + both fired-step
//                  selection paths) and exits non-zero on failure — the CI
//                  smoke entry point;
//   --epoch-smoke  deterministic statistical checks of the epoch-batched
//                  stepping mode (sampler moments, multinomial GOF, epoch
//                  vs per-step convergence, fired accounting) — the CI
//                  entry point for engine idea 5, run on every matrix leg;
//   --analyze-smoke  the static analyzer (analyze/) over every registered
//                  protocol family: certificates checker-verified, round-
//                  tripped, and no findings on known-good protocols — the
//                  CI entry point for ppsc-analyze, run on every matrix leg.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <span>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/checker.hpp"
#include "bounds/pumping.hpp"
#include "diophantine/realisable.hpp"
#include "protocols/double_exp_threshold.hpp"
#include "protocols/families.hpp"
#include "protocols/threshold.hpp"
#include "search/busy_beaver.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "sim/traps.hpp"
#include "stable/stable_sets.hpp"
#include "support/fenwick.hpp"
#include "support/stat_test.hpp"
#include "verify/verifier.hpp"

using namespace ppsc;

namespace {

// Throughput of the batched engine (Fenwick sampling + incremental silence
// tracking + rejection-free silent-run skipping): interactions per second
// along the exact scheduler-chain distribution.  When a trajectory reaches
// silence the configuration restarts from IC, so the benchmark measures
// sustained full-trajectory throughput.
void BM_SimulatorStep(benchmark::State& state) {
    const Protocol protocol = protocols::collector_threshold(1 << 20);
    const Simulator simulator(protocol);
    const auto population = static_cast<AgentCount>(state.range(0));
    Config config = protocol.initial_config(population);
    Rng rng(11);
    constexpr std::uint64_t kBatch = 1 << 14;
    std::uint64_t executed = 0;
    for (auto _ : state) {
        const std::uint64_t done = simulator.run_batch(config, rng, kBatch);
        executed += done;
        if (done < kBatch) config = protocol.initial_config(population);  // went silent
        benchmark::DoNotOptimize(config);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
}
BENCHMARK(BM_SimulatorStep)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

// The per-call single-step API (one interaction per call, cached Fenwick
// sampler) — the seed's original benchmark, kept for regression tracking.
void BM_SimulatorSingleStep(benchmark::State& state) {
    const Protocol protocol = protocols::collector_threshold(1 << 20);
    const Simulator simulator(protocol);
    Config config = protocol.initial_config(static_cast<AgentCount>(state.range(0)));
    Rng rng(11);
    for (auto _ : state) {
        simulator.step(config, rng);
        benchmark::DoNotOptimize(config);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorSingleStep)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_FullRunToConsensus(benchmark::State& state) {
    const Protocol protocol = protocols::collector_threshold(50);
    const Simulator simulator(protocol);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        Rng rng(seed++);
        const SimulationResult result =
            simulator.run_input(static_cast<AgentCount>(state.range(0)), rng);
        benchmark::DoNotOptimize(result.interactions);
    }
}
BENCHMARK(BM_FullRunToConsensus)->Arg(256)->Arg(1024);

// The trial-parallel convergence sweep (one row, 8 trials).  Wall-clock
// scales with the worker count on multi-core hosts; per-trial results do
// not depend on it.
void BM_ConvergenceSweep(benchmark::State& state) {
    const Protocol protocol = protocols::collector_threshold(32);
    for (auto _ : state) {
        ConvergenceSweepOptions options;
        options.runs_per_size = 8;
        options.parallelism = static_cast<unsigned>(state.range(0));
        const auto rows = convergence_sweep(
            protocol, {40}, [](AgentCount i) { return i >= 32 ? 1 : 0; }, options);
        benchmark::DoNotOptimize(rows);
    }
}
BENCHMARK(BM_ConvergenceSweep)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// --- E11: double-exponential threshold workload -----------------------------

// The dense family instances are expensive to build (Θ(4^n) transitions);
// share them across benchmarks.  Benchmarks run serially on the main
// thread, so a plain map suffices.
const Protocol& e11_dense_protocol(int n) {
    static std::map<int, Protocol> cache;
    auto it = cache.find(n);
    if (it == cache.end())
        it = cache.emplace(n, protocols::double_exp_threshold_dense(n)).first;
    return it->second;
}

// Flagship instances (shared for the same reason; n = 13 has |Q| = 8195,
// which resolves to the sparse rule table — the old dense triangular table
// would need ~134 MB for its 33.6M pair slots).
const Protocol& e11_flagship_protocol(int n) {
    static std::map<int, Protocol> cache;
    auto it = cache.find(n);
    if (it == cache.end()) it = cache.emplace(n, protocols::double_exp_threshold(n)).first;
    return it->second;
}

// Merge-phase engine throughput from IC on a |Q| ≫ 10³ state space
// (items = interactions along the exact scheduler-chain distribution).
void BM_E11MergePhase(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const auto population = static_cast<AgentCount>(state.range(1));
    const Protocol& protocol = e11_dense_protocol(n);
    const Simulator simulator(protocol);
    Config config = protocol.initial_config(population);
    Rng rng(7);
    constexpr std::uint64_t kBatch = 1 << 14;
    std::uint64_t executed = 0;
    for (auto _ : state) {
        const std::uint64_t done = simulator.run_batch(config, rng, kBatch);
        executed += done;
        if (done < kBatch) config = protocol.initial_config(population);  // went silent
        benchmark::DoNotOptimize(config);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
}
BENCHMARK(BM_E11MergePhase)->Args({8, 1 << 12})->Args({10, 1 << 14});

// Fired-step pair selection (items = fired interactions).  Late-epidemic
// configurations put the weight-bearing pairs at the *end* of the
// non-silent pair list — the worst case for the O(#pairs) reference scan
// and the regime the O(log #pairs) pair-weight Fenwick exists for.
void e11_fired_step_bench(benchmark::State& state, const Protocol& protocol,
                          PairSelect select) {
    const auto population = static_cast<AgentCount>(state.range(1));
    const Simulator simulator(protocol, select);
    const StateId top = *protocol.find_state("T");
    const StateId t0 = protocol.input_state(0);
    const AgentCount stragglers = population / 32;
    const auto make_config = [&] {
        Config config(protocol.num_states());
        config.set(top, population - stragglers);
        config.set(t0, stragglers);
        return config;
    };
    Config config = make_config();
    Rng rng(29);
    std::uint64_t fired = 0;
    for (auto _ : state) {
        const auto transition = simulator.fired_step(config, rng, std::uint64_t{1} << 40);
        if (transition) {
            ++fired;
        } else {
            config = make_config();  // epidemic finished: all agents in T
        }
        benchmark::DoNotOptimize(config);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
void BM_E11FiredStepFenwick(benchmark::State& state) {
    e11_fired_step_bench(state, e11_dense_protocol(static_cast<int>(state.range(0))),
                         PairSelect::fenwick);
}
void BM_E11FiredStepScan(benchmark::State& state) {
    e11_fired_step_bench(state, e11_dense_protocol(static_cast<int>(state.range(0))),
                         PairSelect::scan);
}
BENCHMARK(BM_E11FiredStepFenwick)->Args({8, 1 << 12})->Args({10, 1 << 14});
BENCHMARK(BM_E11FiredStepScan)->Args({8, 1 << 12})->Args({10, 1 << 14});

// The flagship tower under the sparse rule table: n = 13 (|Q| = 8195,
// 33.6M triangular pairs) was out of reach for the dense table — the
// acceptance row for the sparse representation.  n = 10 still resolves
// dense, so the pair of rows compares the two lookups on the same family.
void BM_E11FiredStepFlagship(benchmark::State& state) {
    const Protocol& protocol = e11_flagship_protocol(static_cast<int>(state.range(0)));
    state.SetLabel(protocol.rule_table() == RuleTable::sparse ? "sparse" : "dense");
    e11_fired_step_bench(state, protocol, PairSelect::automatic);
}
BENCHMARK(BM_E11FiredStepFlagship)->Args({10, 1 << 14})->Args({13, 1 << 14});

// Epoch-batched stepping on the flagship at population 2⁴⁰ (items = FIRED
// interactions, not scheduler interactions: both modes skip the silent
// majority analytically, so fired throughput is the honest comparison).
// Epoch mode draws thousands of merge-frontier firings as one multinomial
// over the pair-weight Fenwick per epoch; the per-step reference resolves
// the same distribution one Fenwick descent at a time.  The ~200× gap is
// the acceptance row for engine idea 5 (ROADMAP: ≥ 10⁹ fired/s at n ≥ 2⁴⁰).
void e11_fired_throughput_bench(benchmark::State& state, StepMode mode) {
    const int n = static_cast<int>(state.range(0));
    const AgentCount population = AgentCount{1} << static_cast<int>(state.range(1));
    const Protocol& protocol = e11_flagship_protocol(n);
    const Simulator simulator(protocol, PairSelect::fenwick);
    Config config = protocol.initial_config(population);
    Rng rng(7);
    // Interactions (fired + skipped) per call; epoch calls cover it in a
    // handful of multinomial draws, per-step calls one firing at a time.
    const std::uint64_t batch = mode == StepMode::epoch ? std::uint64_t{1} << 26
                                                        : std::uint64_t{1} << 20;
    std::uint64_t fired_total = 0;
    for (auto _ : state) {
        std::uint64_t fired_call = 0;
        const std::uint64_t done =
            simulator.run_batch(config, rng, batch, false, nullptr, &fired_call, mode);
        fired_total += fired_call;
        if (done < batch) config = protocol.initial_config(population);  // went silent
        benchmark::DoNotOptimize(config);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(fired_total));
    state.SetLabel(mode == StepMode::epoch ? "fired/s, epoch" : "fired/s, per-step");
}
void BM_E11EpochMergePhase(benchmark::State& state) {
    e11_fired_throughput_bench(state, StepMode::epoch);
}
void BM_E11PerStepMergePhase(benchmark::State& state) {
    e11_fired_throughput_bench(state, StepMode::per_step);
}
BENCHMARK(BM_E11EpochMergePhase)->Args({13, 40});
BENCHMARK(BM_E11PerStepMergePhase)->Args({13, 40});

// Batched engine throughput from IC on the sparse-table flagship (the
// double_exp_threshold(13) merge phase end to end).
void BM_E11SparseMergePhase(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const auto population = static_cast<AgentCount>(state.range(1));
    const Protocol& protocol = e11_flagship_protocol(n);
    const Simulator simulator(protocol);
    Config config = protocol.initial_config(population);
    Rng rng(7);
    constexpr std::uint64_t kBatch = 1 << 14;
    std::uint64_t executed = 0;
    for (auto _ : state) {
        const std::uint64_t done = simulator.run_batch(config, rng, kBatch);
        executed += done;
        if (done < kBatch) config = protocol.initial_config(population);  // went silent
        benchmark::DoNotOptimize(config);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
}
BENCHMARK(BM_E11SparseMergePhase)->Args({13, 1 << 14});

// --- Checkpointing ----------------------------------------------------------

// Snapshot cost at the flagship scale (n = 17, |Q| = 131075): the write
// row measures serialize + crash-safe persist (tmp, fsync, atomic rename,
// rotation prune); the load row measures read + full validation (magic,
// version, CRC-64, payload shape, fingerprint) + Config rebuild.  Both are
// Θ(|support|), not Θ(|Q|) — the sparse encoding is what keeps a 10⁵-state
// checkpoint in the hundreds of bytes.
Checkpoint flagship_checkpoint(const Protocol& protocol) {
    Checkpoint ck;
    ck.fingerprint = protocol_fingerprint(protocol);
    Config config = protocol.initial_config(1 << 14);
    const Simulator simulator(protocol);
    Rng rng(41);
    simulator.run_batch(config, rng, 1 << 16);  // realistic mid-run support
    ck.config = std::move(config);
    ck.rng_state = rng.state();
    ck.interactions = 1 << 16;
    ck.fired = 1 << 12;
    return ck;
}

void BM_CheckpointWrite(benchmark::State& state) {
    const Protocol& protocol = e11_flagship_protocol(static_cast<int>(state.range(0)));
    const Checkpoint ck = flagship_checkpoint(protocol);
    CheckpointDir dir("bench-checkpoints.tmp", 3);
    std::uint64_t written = 0;
    for (auto _ : state) {
        if (dir.write(ck) != CheckpointError::none) state.SkipWithError("write failed");
        ++written;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(written));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(written * serialize_checkpoint(ck).size()));
    std::filesystem::remove_all("bench-checkpoints.tmp");
}
BENCHMARK(BM_CheckpointWrite)->Arg(17)->Unit(benchmark::kMicrosecond);

void BM_CheckpointLoad(benchmark::State& state) {
    const Protocol& protocol = e11_flagship_protocol(static_cast<int>(state.range(0)));
    const Checkpoint ck = flagship_checkpoint(protocol);
    CheckpointDir dir("bench-checkpoints.tmp", 3);
    if (dir.write(ck) != CheckpointError::none) state.SkipWithError("setup write failed");
    std::uint64_t loaded = 0;
    for (auto _ : state) {
        const CheckpointDir::Latest latest = dir.load_latest(ck.fingerprint);
        if (!latest.checkpoint) state.SkipWithError("load failed");
        benchmark::DoNotOptimize(latest);
        ++loaded;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(loaded));
    std::filesystem::remove_all("bench-checkpoints.tmp");
}
BENCHMARK(BM_CheckpointLoad)->Arg(17)->Unit(benchmark::kMicrosecond);

// Checkpointing overhead on the batched engine: the same run_batch loop as
// the merge-phase row, with a crash-safe snapshot every 10⁸ interactions —
// the cadence a week-long run would use.  The target is < 1% throughput
// cost against BM_E11SparseMergePhase; the hook itself fires only at
// fired-step boundaries and consumes no randomness, so almost all of the
// budget is the (rare) write.
void BM_E11MergePhaseCheckpointed(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const auto population = static_cast<AgentCount>(state.range(1));
    const Protocol& protocol = e11_flagship_protocol(n);
    const Simulator simulator(protocol);
    CheckpointDir dir("bench-checkpoints.tmp", 2);
    const std::uint64_t fingerprint = protocol_fingerprint(protocol);
    Config config = protocol.initial_config(population);
    Rng rng(7);
    std::uint64_t executed = 0;
    CheckpointHook hook;
    hook.callback = [&](const CheckpointTick& tick) {
        Checkpoint ck;
        ck.fingerprint = fingerprint;
        ck.config = tick.config;
        ck.rng_state = tick.rng_state;
        ck.interactions = executed + tick.interactions;
        ck.fired = tick.fired;
        dir.write(ck);
        return true;
    };
    constexpr std::uint64_t kBatch = 1 << 14;
    constexpr std::uint64_t kCadence = 100'000'000;
    for (auto _ : state) {
        // Cadence marks are absolute; the per-call `every` is the distance
        // to the next mark (or out of reach, keeping only the per-step
        // hook branch in play — exactly what a long-lived call sees).
        const std::uint64_t mark = (executed / kCadence + 1) * kCadence;
        hook.every = mark - executed <= kBatch ? mark - executed : kBatch + 1;
        const std::uint64_t done = simulator.run_batch(config, rng, kBatch, false, &hook);
        executed += done;
        if (done < kBatch) config = protocol.initial_config(population);  // went silent
        benchmark::DoNotOptimize(config);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
    std::filesystem::remove_all("bench-checkpoints.tmp");
}
BENCHMARK(BM_E11MergePhaseCheckpointed)->Args({13, 1 << 14});

// --- Stable-consensus detection ---------------------------------------------

// Output-trap computation on the flagship tower: the worklist fixpoint
// (O(|T| + evictions · deg), sim/traps.hpp) against the O(passes · |T|)
// reference pass structure.  Eviction chains on this family advance one
// token level per reference pass, so reference cost grows with |Q| · |T| —
// n = 17 (|Q| = 131075) is benchmarked for the worklist only; the
// reference needs tens of billions of transition checks there, which is
// exactly the wall this family of benchmarks documents the removal of.
void trap_compute_bench(benchmark::State& state, TrapCompute kind) {
    const Protocol& protocol = e11_flagship_protocol(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        for (int b = 0; b < 2; ++b) {
            const std::vector<bool> trap = compute_output_trap(protocol, b, kind);
            benchmark::DoNotOptimize(trap);
        }
    }
    state.SetLabel("|Q|=" + std::to_string(protocol.num_states()));
}
void BM_ComputeOutputTrapsWorklist(benchmark::State& state) {
    trap_compute_bench(state, TrapCompute::worklist);
}
void BM_ComputeOutputTrapsReference(benchmark::State& state) {
    trap_compute_bench(state, TrapCompute::reference);
}
BENCHMARK(BM_ComputeOutputTrapsWorklist)->Arg(10)->Arg(13)->Arg(17)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ComputeOutputTrapsReference)->Arg(10)->Arg(13)->Unit(benchmark::kMillisecond);

// Stability probes on a wide-support flagship configuration (tokens spread
// over every level).  `warm` probes the configuration the cached step
// context owns — the O(1) counter read run()/run_batch() use after every
// fired interaction; `cold` forces the cache miss and measures the
// from-scratch probe (support scan + silence rescan) that every probe used
// to pay.
void stability_probe_bench(benchmark::State& state, bool warm) {
    const Protocol& protocol = e11_flagship_protocol(13);
    const Simulator simulator(protocol);
    Config config(protocol.num_states());
    const StateId t0 = protocol.input_state(0);
    for (std::uint64_t level = 0; level < (1u << 13); level += 2)
        config.add(t0 + static_cast<StateId>(level), 1);
    Rng rng(5);
    // A zero-budget batch adopts `config` into the sampler cache without
    // executing an interaction.
    simulator.run_batch(config, rng, 0);
    const Config cold_copy = config;  // different object: never cached
    const Config& probed = warm ? config : cold_copy;
    for (auto _ : state) {
        const bool stable = simulator.is_provably_stable(probed);
        benchmark::DoNotOptimize(stable);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
void BM_StabilityProbeWarm(benchmark::State& state) { stability_probe_bench(state, true); }
void BM_StabilityProbeCold(benchmark::State& state) { stability_probe_bench(state, false); }
BENCHMARK(BM_StabilityProbeWarm);
BENCHMARK(BM_StabilityProbeCold);

// The acceptance row: Simulator construction (trap setup included) plus a
// full convergence run on double_exp_threshold(17) — |Q| = 131075, sparse
// rule table.  The sub-threshold population merges to ≤ 1 token per level
// and the run must detect stability; with the reference trap fixpoint the
// construction alone needed ~5·10¹⁰ transition checks, so this benchmark
// was infeasible before the worklist.
void BM_E11FlagshipConvergence(benchmark::State& state) {
    const Protocol& protocol = e11_flagship_protocol(static_cast<int>(state.range(0)));
    std::uint64_t seed = 17;
    double trap_setup = 0.0;
    for (auto _ : state) {
        const Simulator simulator(protocol);
        trap_setup = simulator.trap_setup_seconds();
        Rng rng(seed++);
        SimulationOptions options;
        options.max_interactions = std::uint64_t{1} << 44;
        const SimulationResult result = simulator.run(protocol.initial_config(1 << 12), rng, options);
        if (!result.converged) state.SkipWithError("flagship run failed to converge");
        benchmark::DoNotOptimize(result.interactions);
    }
    state.counters["trap_setup_s"] = trap_setup;
    state.SetLabel("|Q|=" + std::to_string(protocol.num_states()));
}
BENCHMARK(BM_E11FlagshipConvergence)->Arg(17)->Unit(benchmark::kMillisecond);

void BM_ExhaustiveVerification(benchmark::State& state) {
    const Protocol protocol = protocols::unary_threshold(3);
    const Verifier verifier(protocol);
    for (auto _ : state) {
        const InputVerdict verdict = verifier.verify_input(static_cast<AgentCount>(state.range(0)));
        benchmark::DoNotOptimize(verdict.explored_nodes);
    }
}
BENCHMARK(BM_ExhaustiveVerification)->Arg(6)->Arg(10)->Arg(14);

// --- Analysis stack (PR 6) --------------------------------------------------

// Backward closure over a materialised slice: the round-structured worklist
// on the flat reverse CSR against the seed-era per-node-vector reverse BFS.
// The slice (unary_threshold(4), population = state.range(0)) has
// C(pop + 4, 4) nodes; the seed set is Bad_1, the stable-set use.
void backward_closure_bench(benchmark::State& state, ClosureCompute compute) {
    const Protocol protocol = protocols::unary_threshold(4);
    const auto population = static_cast<AgentCount>(state.range(0));
    const ReachabilityGraph graph = ReachabilityGraph::full_slice(protocol, population, {});
    std::vector<bool> bad(graph.num_nodes(), false);
    for (std::size_t node = 0; node < graph.num_nodes(); ++node)
        bad[node] = protocol.consensus_output(graph.config(static_cast<NodeId>(node))) != 1;
    for (auto _ : state) {
        const std::vector<bool> closure = graph.backward_closure(bad, compute);
        benchmark::DoNotOptimize(closure);
    }
    state.SetLabel("nodes=" + std::to_string(graph.num_nodes()));
}
void BM_BackwardClosureSparse(benchmark::State& state) {
    backward_closure_bench(state, ClosureCompute::sparse);
}
void BM_BackwardClosureReference(benchmark::State& state) {
    backward_closure_bench(state, ClosureCompute::reference);
}
BENCHMARK(BM_BackwardClosureSparse)->Arg(10)->Arg(14);
BENCHMARK(BM_BackwardClosureReference)->Arg(10)->Arg(14);

// The full stable-set pipeline (slice construction: sparse successor
// enumeration vs. dense support² probing, plus both closure backends) on
// the E11 tower base.
void stable_flags_bench(benchmark::State& state, ClosureCompute compute) {
    const Protocol protocol = protocols::double_exp_threshold(2);
    const auto max_population = static_cast<AgentCount>(state.range(0));
    for (auto _ : state) {
        const StableAnalysis analysis(protocol, max_population, {}, compute);
        benchmark::DoNotOptimize(analysis.stable_counts(1));
    }
}
void BM_StableFlagsSparse(benchmark::State& state) {
    stable_flags_bench(state, ClosureCompute::sparse);
}
void BM_StableFlagsReference(benchmark::State& state) {
    stable_flags_bench(state, ClosureCompute::reference);
}
BENCHMARK(BM_StableFlagsSparse)->Arg(6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StableFlagsReference)->Arg(6)->Unit(benchmark::kMillisecond);

// Corollary 5.7 basis computation: incremental-residual completion + O(|T|)
// scatter row assembly against the recompute-everything reference.
void realisable_basis_bench(benchmark::State& state, HilbertCompute compute) {
    const Protocol protocol = protocols::collector_threshold(static_cast<AgentCount>(state.range(0)));
    HilbertOptions options;
    options.compute = compute;
    for (auto _ : state) {
        const RealisableBasis basis = realisable_multiset_basis(protocol, options);
        benchmark::DoNotOptimize(basis.elements);
    }
}
void BM_RealisableBasisSparse(benchmark::State& state) {
    realisable_basis_bench(state, HilbertCompute::sparse);
}
void BM_RealisableBasisReference(benchmark::State& state) {
    realisable_basis_bench(state, HilbertCompute::reference);
}
BENCHMARK(BM_RealisableBasisSparse)->Arg(5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RealisableBasisReference)->Arg(5)->Unit(benchmark::kMillisecond);

// The two-phase busy-beaver sweep at n = 5 — a state count whose sampled
// sweep was infeasible for the seed code (every candidate, oscillators
// included, paid for exact reachability graphs on all inputs; screening
// rejects most candidates after a few thousand simulated interactions).
// Items = candidates processed; the screened_out counter reports how much
// of the sample the fast path absorbed.
void busy_beaver_sweep_bench(benchmark::State& state, bool screen, bool static_screen = false) {
    search::SearchOptions options;
    // The horizon is where the cost asymmetry lives: exact verification
    // explores C(i + n − 1, n − 1)-node graphs for every input i up to 24,
    // screening simulates about a thousand interactions on populations ≤ 24.
    options.max_input = 24;
    options.sample_limit = 64;
    options.max_nodes_per_graph = 60'000;  // blown-budget candidates skip fast
    options.screen = screen;
    // Populations ≤ 16 that converge at all do so within a few hundred
    // interactions; one short run per input keeps the phase-1 cost of the
    // never-converging majority near zero.
    options.screening.runs = 1;
    options.screening.max_interactions = 1'000;
    options.screening.max_inconclusive_inputs = 2;
    options.static_screen = static_screen;
    const auto n = static_cast<std::size_t>(state.range(0));
    std::uint64_t screened_out = 0;
    std::uint64_t static_refuted = 0;
    std::uint64_t candidates = 0;
    for (auto _ : state) {
        options.seed = 0xbeefcafe + candidates;  // fresh sample per iteration
        const auto outcome = search::busy_beaver_search(n, options);
        screened_out += outcome.screened_out;
        static_refuted += outcome.static_refuted;
        candidates += outcome.enumerated;
        benchmark::DoNotOptimize(outcome.best_eta);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(candidates));
    state.counters["screened_out"] =
        candidates > 0 ? static_cast<double>(screened_out) / static_cast<double>(candidates) : 0;
    if (static_screen)
        state.counters["static_refuted"] =
            candidates > 0 ? static_cast<double>(static_refuted) / static_cast<double>(candidates)
                           : 0;
}
void BM_BusyBeaverSweepScreened(benchmark::State& state) {
    busy_beaver_sweep_bench(state, true);
}
void BM_BusyBeaverSweepExact(benchmark::State& state) {
    busy_beaver_sweep_bench(state, false);
}
// The zero-simulation static pre-screen (analyze/) stacked ahead of the
// simulation screen: candidates whose acceptance is refuted by certificate
// never touch the simulator; the counter reports the absorbed fraction.
void BM_BusyBeaverSweepStaticScreened(benchmark::State& state) {
    busy_beaver_sweep_bench(state, true, true);
}
BENCHMARK(BM_BusyBeaverSweepScreened)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BusyBeaverSweepExact)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BusyBeaverSweepStaticScreened)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

// --- Static analysis (ppsc-analyze) -----------------------------------------

// The full analyzer on the n = 17 flagship (|Q| = 131075, sparse rule
// table): pass 1 takes the O(|T|) singleton path (cone completion is gated
// off far below this size), pass 2 is one CSR worklist, and the trap lint
// reuses the worklist fixpoint — the whole run must stay linear in the
// protocol, which is what this row documents.
void BM_StaticInvariants(benchmark::State& state) {
    const Protocol& protocol = e11_flagship_protocol(static_cast<int>(state.range(0)));
    std::size_t certificates = 0;
    for (auto _ : state) {
        const analyze::Analysis analysis = analyze::analyze_protocol(protocol);
        if (analysis.cone_inference_ran)
            state.SkipWithError("cone completion ran at flagship scale");
        certificates = analysis.certificates.size();
        benchmark::DoNotOptimize(analysis);
    }
    state.counters["certificates"] = static_cast<double>(certificates);
    state.SetLabel("|Q|=" + std::to_string(protocol.num_states()));
}
BENCHMARK(BM_StaticInvariants)->Arg(17)->Unit(benchmark::kMillisecond);

// Tiny end-to-end run of the E11 workload: the family must decide its
// predicate in randomized simulation, and both fired-step selection paths
// must complete their interaction budget.  Exits non-zero on any failure so
// CI catches a rotten workload.
int run_e11_smoke() {
    bool ok = true;
    const auto check = [&ok](bool condition, const char* what) {
        std::printf("  %-60s %s\n", what, condition ? "ok" : "FAIL");
        ok = ok && condition;
    };

    std::printf("E11 smoke: double_exp_threshold(2), eta = 2^2^2 = 16\n");
    {
        const Protocol p = protocols::double_exp_threshold(2);
        check(p.num_states() == (1u << 2) + 3, "|Q| = 2^n + 3");
        ConvergenceSweepOptions options;
        options.runs_per_size = 4;
        const auto rows = convergence_sweep(
            p, {12, 16, 24, 40}, [](AgentCount i) { return i >= 16 ? 1 : 0; }, options);
        for (const ConvergenceRow& row : rows) {
            char what[96];
            std::snprintf(what, sizeof what,
                          "population %lld: all runs converge to [x >= 16](x)",
                          static_cast<long long>(row.population));
            check(row.converged_runs == row.runs && row.correct_fraction == 1.0, what);
        }
    }
    std::printf("E11 smoke: double_exp_threshold_dense(2), eta = 2^2^2 - 1 = 15\n");
    {
        const Protocol p = protocols::double_exp_threshold_dense(2);
        ConvergenceSweepOptions options;
        options.runs_per_size = 4;
        const auto rows = convergence_sweep(
            p, {10, 15, 30}, [](AgentCount i) { return i >= 15 ? 1 : 0; }, options);
        for (const ConvergenceRow& row : rows) {
            char what[96];
            std::snprintf(what, sizeof what,
                          "population %lld: all runs converge to [x >= 15](x)",
                          static_cast<long long>(row.population));
            check(row.converged_runs == row.runs && row.correct_fraction == 1.0, what);
        }
    }
    std::printf("E11 smoke: throughput sweep, both fired-step selection paths\n");
    for (const PairSelect select : {PairSelect::fenwick, PairSelect::scan}) {
        E11Options tiny;
        tiny.tower_ns = {4};
        tiny.populations = {512};
        tiny.interactions_per_row = 1 << 16;
        tiny.selection = select;
        const auto rows = e11_throughput_sweep(tiny);
        const char* label =
            select == PairSelect::fenwick ? "fenwick rows complete" : "scan rows complete";
        bool complete = !rows.empty();
        for (const ThroughputRow& row : rows)
            complete = complete && row.interactions == tiny.interactions_per_row;
        check(complete, label);
    }
    std::printf("E11 smoke: reference trap computation forced on every instance\n");
    {
        // Mirrors the forced-sparse leg below: the reference trap fixpoint
        // must still build and drive the workload, and the worklist must
        // produce identical traps and identical convergence rows.
        const Protocol p = protocols::double_exp_threshold(3);
        const Simulator worklist(p, PairSelect::automatic, TrapCompute::worklist);
        const Simulator reference(p, PairSelect::automatic, TrapCompute::reference);
        bool traps_identical = true;
        for (int b = 0; b < 2; ++b)
            traps_identical = traps_identical && worklist.output_trap(b) == reference.output_trap(b);
        check(traps_identical, "worklist/reference trap sets identical");

        ConvergenceSweepOptions options;
        options.runs_per_size = 4;
        options.trap_compute = TrapCompute::reference;
        const auto ref_rows = convergence_sweep(
            p, {200, 256, 300}, [](AgentCount i) { return i >= 256 ? 1 : 0; }, options);
        options.trap_compute = TrapCompute::worklist;
        const auto wl_rows = convergence_sweep(
            p, {200, 256, 300}, [](AgentCount i) { return i >= 256 ? 1 : 0; }, options);
        bool rows_identical = ref_rows.size() == wl_rows.size();
        for (std::size_t i = 0; rows_identical && i < ref_rows.size(); ++i) {
            rows_identical = ref_rows[i].converged_runs == wl_rows[i].converged_runs &&
                             ref_rows[i].mean_parallel_time == wl_rows[i].mean_parallel_time &&
                             ref_rows[i].correct_fraction == wl_rows[i].correct_fraction;
        }
        check(rows_identical, "reference-trap convergence rows identical to worklist");

        E11Options tiny;
        tiny.tower_ns = {4};
        tiny.populations = {512};
        tiny.interactions_per_row = 1 << 16;
        tiny.trap_compute = TrapCompute::reference;
        const auto rows = e11_throughput_sweep(tiny);
        bool complete = !rows.empty();
        for (const ThroughputRow& row : rows)
            complete = complete && row.interactions == tiny.interactions_per_row;
        check(complete, "forced-reference-trap rows complete");
    }
    std::printf("E11 smoke: sparse rule table forced on every instance\n");
    {
        E11Options tiny;
        tiny.tower_ns = {4};
        tiny.populations = {512};
        tiny.interactions_per_row = 1 << 16;
        tiny.rule_table = RuleTable::sparse;
        const auto rows = e11_throughput_sweep(tiny);
        bool complete = !rows.empty();
        for (const ThroughputRow& row : rows) {
            complete = complete && row.interactions == tiny.interactions_per_row &&
                       row.rule_table == "sparse";
        }
        check(complete, "forced-sparse rows complete");

        // Dense and sparse lookups must drive byte-identical trajectories.
        const Protocol dense =
            protocols::double_exp_threshold(4).with_rule_table(RuleTable::dense);
        const Protocol sparse = dense.with_rule_table(RuleTable::sparse);
        const Simulator sim_dense(dense), sim_sparse(sparse);
        bool identical = true;
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            Config a = dense.initial_config(512), b = sparse.initial_config(512);
            Rng rng_a(seed), rng_b(seed);
            identical = identical &&
                        sim_dense.run_batch(a, rng_a, 1 << 14) ==
                            sim_sparse.run_batch(b, rng_b, 1 << 14) &&
                        a == b;
        }
        check(identical, "dense/sparse trajectories identical per seed");
    }
    std::printf("E11 smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

// Epoch-stepping smoke: deterministic statistical checks of the epoch-
// batched engine (engine idea 5) fast enough for every CI leg, sanitizers
// included.  Fixed seeds throughout — a failure is a regression, not noise.
int run_epoch_smoke() {
    bool ok = true;
    const auto check = [&ok](bool condition, const char* what) {
        std::printf("  %-60s %s\n", what, condition ? "ok" : "FAIL");
        ok = ok && condition;
    };

    std::printf("epoch smoke: conditional-binomial samplers against exact moments\n");
    {
        // Binomial via both algorithms (inversion and BTRS) and the Fenwick
        // multinomial decomposition built on them: sample means within 5
        // standard errors of the exact law at fixed seeds.
        Rng rng(stat::derive_seed(0xE90C, "samplers"));
        const int reps = 4'000;
        double small_sum = 0.0, large_sum = 0.0;
        for (int r = 0; r < reps; ++r) {
            small_sum += static_cast<double>(rng.binomial(40, 0.2));        // inversion
            large_sum += static_cast<double>(rng.binomial(100'000, 0.37));  // BTRS
        }
        const auto within = [&](double sum, double n, double p) {
            const double se = std::sqrt(n * p * (1 - p) / reps);
            return std::abs(sum / reps - n * p) < 5.0 * se;
        };
        check(within(small_sum, 40, 0.2), "binomial inversion mean within 5 SE");
        check(within(large_sum, 100'000, 0.37), "binomial BTRS mean within 5 SE");

        const std::vector<std::int64_t> weights = {60, 30, 90, 20, 50};
        const FenwickTree tree{std::span<const std::int64_t>(weights)};
        std::vector<std::uint64_t> counts(5, 0);
        tree.multinomial(200'000, rng,
                         [&](std::size_t index, std::uint64_t c) { counts[index] += c; });
        std::uint64_t total = 0;
        for (const std::uint64_t c : counts) total += c;
        check(total == 200'000, "multinomial split conserves the draw count");
        const std::vector<double> expected(weights.begin(), weights.end());
        const stat::GofResult gof = stat::chi_squared_gof(counts, expected);
        check(gof.pass, "multinomial split passes chi-squared GOF");
    }

    std::printf("epoch smoke: epoch vs per-step on double_exp_threshold(2)\n");
    {
        const Protocol p = protocols::double_exp_threshold(2);
        const Simulator sim(p, PairSelect::fenwick);
        sim.reset_epoch_stats();
        const int runs = 60;
        double mean[2] = {0.0, 0.0};
        bool converged_ok = true, verdict_ok = true;
        for (int mode = 0; mode < 2; ++mode) {
            Rng rng(stat::derive_seed(0xE90C, mode == 0 ? "ref" : "epoch"));
            for (int r = 0; r < runs; ++r) {
                SimulationOptions options;
                options.max_interactions = std::uint64_t{1} << 32;
                options.step_mode = mode == 0 ? StepMode::per_step : StepMode::epoch;
                options.epoch.min_firings = 8;
                const SimulationResult result = sim.run(p.initial_config(4096), rng, options);
                converged_ok = converged_ok && result.converged;
                verdict_ok = verdict_ok && result.output == 1;  // 4096 >= eta = 16
                mean[mode] += static_cast<double>(result.interactions) / runs;
            }
        }
        check(converged_ok, "all runs converge in both modes");
        check(verdict_ok, "all runs reach the correct consensus");
        // Distribution-level agreement: the two sample means differ by a few
        // percent at these sample sizes; 15% catches a wrong epoch law
        // without flaking (cf. BatchedRun tests, same tolerance rationale).
        check(std::abs(mean[1] / mean[0] - 1.0) < 0.15,
              "mean interactions to convergence within 15% of reference");
        const EpochStats stats = sim.epoch_stats();
        check(stats.epochs > 0 && stats.epoch_fired > stats.fallback_fired,
              "epoch path served the bulk of the fired interactions");
    }

    std::printf("epoch smoke: e11 sweep rows under epoch stepping\n");
    {
        E11Options tiny;
        tiny.tower_ns = {4};
        tiny.populations = {1 << 16};
        tiny.interactions_per_row = 1 << 20;
        tiny.step_mode = StepMode::epoch;
        const auto rows = e11_throughput_sweep(tiny);
        bool complete = !rows.empty();
        for (const ThroughputRow& row : rows) {
            complete = complete && row.interactions == tiny.interactions_per_row &&
                       row.fired > 0 && row.fired <= row.interactions &&
                       row.fired_per_sec > 0.0;
        }
        check(complete, "epoch rows complete with consistent fired accounting");
    }
    std::printf("epoch smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

// Analysis-stack smoke (PR 6): every ported layer run under both the sparse
// default and the forced dense reference on E11-family members, asserting
// result identity end to end.  Exits non-zero on any disagreement — the CI
// entry point for the verification stack (the deep sweeps live in
// tests/analysis_sparse_test.cpp).
int run_analysis_smoke() {
    bool ok = true;
    const auto check = [&ok](bool condition, const char* what) {
        std::printf("  %-60s %s\n", what, condition ? "ok" : "FAIL");
        ok = ok && condition;
    };
    const auto options_for = [](ClosureCompute compute) {
        ReachabilityOptions options;
        options.compute = compute;
        return options;
    };

    std::printf("analysis smoke: reachability slices, sparse vs reference\n");
    {
        const Protocol p = protocols::double_exp_threshold(2);
        const ReachabilityGraph sparse =
            ReachabilityGraph::full_slice(p, 4, options_for(ClosureCompute::sparse));
        const ReachabilityGraph reference =
            ReachabilityGraph::full_slice(p, 4, options_for(ClosureCompute::reference));
        bool identical = sparse.num_nodes() == reference.num_nodes() &&
                         sparse.num_edges() == reference.num_edges();
        for (std::size_t node = 0; identical && node < sparse.num_nodes(); ++node) {
            const auto id = static_cast<NodeId>(node);
            const auto a = sparse.successors(id);
            const auto b = reference.successors(id);
            identical = sparse.config(id) == reference.config(id) &&
                        std::equal(a.begin(), a.end(), b.begin(), b.end());
        }
        check(identical, "double_exp(2) population-4 slice identical");

        std::vector<bool> bad(sparse.num_nodes(), false);
        for (std::size_t node = 0; node < sparse.num_nodes(); ++node)
            bad[node] = p.consensus_output(sparse.config(static_cast<NodeId>(node))) != 1;
        check(sparse.backward_closure(bad, ClosureCompute::sparse) ==
                  sparse.backward_closure(bad, ClosureCompute::reference),
              "backward closure of Bad_1 identical");
    }
    std::printf("analysis smoke: stable sets\n");
    {
        const Protocol p = protocols::double_exp_threshold(2);
        const StableAnalysis sparse(p, 4, {}, ClosureCompute::sparse);
        const StableAnalysis reference(p, 4, {}, ClosureCompute::reference);
        bool identical = true;
        for (AgentCount population = 2; population <= 4; ++population)
            for (int b = 0; b < 2; ++b)
                identical = identical && sparse.stable_configs(population, b) ==
                                             reference.stable_configs(population, b);
        check(identical, "double_exp(2) stable sets identical on sizes 2..4");
    }
    std::printf("analysis smoke: verifier verdicts and two-phase threshold\n");
    {
        const Protocol p = protocols::unary_threshold(3);
        const Verifier sparse(p, options_for(ClosureCompute::sparse));
        const Verifier reference(p, options_for(ClosureCompute::reference));
        bool identical = true;
        for (AgentCount i = 2; i <= 8; ++i) {
            const InputVerdict a = sparse.verify_input(i);
            const InputVerdict b = reference.verify_input(i);
            identical = identical && a.well_specified == b.well_specified &&
                        a.computed == b.computed && a.explored_nodes == b.explored_nodes;
        }
        check(identical, "unary_threshold(3) verdicts identical on inputs 2..8");
        check(sparse.infer_threshold(8) == AgentCount{3}, "exact threshold is 3");
        ScreeningOptions screening;
        screening.max_interactions = 4'000;
        check(sparse.infer_threshold(8, screening) == sparse.infer_threshold(8),
              "two-phase threshold identical to exact");
    }
    std::printf("analysis smoke: diophantine bases\n");
    {
        for (const AgentCount eta : {AgentCount{2}, AgentCount{3}}) {
            const Protocol p = protocols::collector_threshold(eta);
            HilbertOptions sparse, reference;
            sparse.compute = HilbertCompute::sparse;
            reference.compute = HilbertCompute::reference;
            const RealisableBasis a = realisable_multiset_basis(p, sparse);
            const RealisableBasis b = realisable_multiset_basis(p, reference);
            char what[96];
            std::snprintf(what, sizeof what, "collector(%lld) realisable basis identical",
                          static_cast<long long>(eta));
            check(a.elements == b.elements && a.inputs == b.inputs && a.results == b.results,
                  what);
        }
    }
    std::printf("analysis smoke: pumping selections\n");
    {
        const Protocol p = protocols::unary_threshold(3);
        bool identical = true;
        for (AgentCount input = 2; input <= 6; ++input)
            identical = identical &&
                        bounds::stable_configuration_for_input(p, input, {},
                                                               ClosureCompute::sparse) ==
                            bounds::stable_configuration_for_input(p, input, {},
                                                                   ClosureCompute::reference);
        check(identical, "unary_threshold(3) stable configurations identical");
    }
    std::printf("analysis smoke: screened busy-beaver sweep\n");
    {
        search::SearchOptions exact;
        exact.max_input = 6;
        search::SearchOptions screened = exact;
        screened.screen = true;
        screened.screening.max_interactions = 2'000;
        const auto a = search::busy_beaver_search(2, exact);
        const auto b = search::busy_beaver_search(2, screened);
        check(a.best_eta == b.best_eta && a.threshold_protocols == b.threshold_protocols &&
                  a.eta_histogram == b.eta_histogram,
              "screened n=2 sweep result-identical to exact");
        check(b.screened_out > 0, "screening absorbed some candidates");
    }
    std::printf("analysis smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

// Static-analyzer smoke: run analyze_protocol over *every* registered
// protocol family (built from its documented example parameters), require
// the independent checker to accept every emitted certificate and the
// serialisation to round-trip, and require the analyzer to find nothing
// wrong with these known-good protocols.  The CI entry point for the
// analyze/ subsystem — run on every matrix leg, sanitizers included.
int run_analyze_smoke() {
    bool ok = true;
    const auto check = [&ok](bool condition, const std::string& what) {
        std::printf("  %-60s %s\n", what.c_str(), condition ? "ok" : "FAIL");
        ok = ok && condition;
    };

    std::printf("analyze smoke: every registered family, certificates checker-verified\n");
    for (const protocols::ProtocolFamily& family : protocols::protocol_families()) {
        std::vector<std::string> args;
        std::istringstream example(family.example_args);
        for (std::string token; example >> token;) args.push_back(token);
        const Protocol protocol = protocols::build_family(family.name, args);
        const analyze::Analysis analysis = analyze::analyze_protocol(protocol);

        const std::string name = family.name;
        bool clean = !analysis.consensus_refuted[0] && !analysis.consensus_refuted[1];
        for (const bool u : analysis.unreachable) clean = clean && !u;
        for (const bool d : analysis.dead) clean = clean && !d;
        check(clean, name + ": no unreachable/dead/refuted findings");

        const analyze::CheckReport report =
            analyze::check_certificates(protocol, analysis.certificates);
        check(report.ok, name + ": checker accepts all " +
                             std::to_string(analysis.certificates.size()) + " certificates");
        const std::vector<analyze::Certificate> reparsed = analyze::parse_certificates(
            analyze::format_certificates(analysis.certificates));
        check(reparsed == analysis.certificates, name + ": certificates round-trip");
    }
    std::printf("analyze smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--e11-smoke") == 0) return run_e11_smoke();
        if (std::strcmp(argv[i], "--epoch-smoke") == 0) return run_epoch_smoke();
        if (std::strcmp(argv[i], "--analysis-smoke") == 0) return run_analysis_smoke();
        if (std::strcmp(argv[i], "--analyze-smoke") == 0) return run_analyze_smoke();
    }
    benchmark::Initialize(&argc, argv);
    bool skip_sweeps = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--skip-sweeps") == 0) skip_sweeps = true;
    }
    benchmark::RunSpecifiedBenchmarks();
    if (skip_sweeps) return 0;

    auto print_rows = [](const std::vector<ConvergenceRow>& rows) {
        std::printf("%10s %9s %16s %16s %16s %9s\n", "population", "runs", "mean par.time",
                    "stddev", "max", "correct");
        for (const auto& row : rows) {
            char runs_column[32];
            std::snprintf(runs_column, sizeof runs_column, "%llu/%llu",
                          static_cast<unsigned long long>(row.converged_runs),
                          static_cast<unsigned long long>(row.runs));
            std::printf("%10lld %9s %16.1f %16.1f %16.1f %8.0f%%\n",
                        static_cast<long long>(row.population), runs_column,
                        row.mean_parallel_time, row.stddev_parallel_time,
                        row.max_parallel_time, 100.0 * row.correct_fraction);
        }
    };

    std::printf("\n=== E10a: population scaling, fixed eta = 100 ===\n\n");
    const Protocol protocol = protocols::collector_threshold(100);
    ConvergenceSweepOptions options;
    options.runs_per_size = 5;
    options.simulation.max_interactions = 500'000'000;
    print_rows(convergence_sweep(
        protocol, {128, 256, 512, 1024, 2048, 4096},
        [](AgentCount i) { return i >= 100 ? 1 : 0; }, options));
    std::printf("\nshape: for fixed eta, larger populations converge *faster* per parallel\n"
                "unit — surplus tokens make a threshold witness appear early.\n");

    std::printf("\n=== E10b: threshold scaling, population = 1.25·eta (the hard regime) ===\n\n");
    std::printf("%8s %10s %16s\n", "eta", "population", "mean par.time");
    for (const AgentCount eta : {16, 32, 64, 128, 256, 512}) {
        const Protocol p = protocols::collector_threshold(eta);
        ConvergenceSweepOptions sweep;
        sweep.runs_per_size = 5;
        sweep.simulation.max_interactions = 500'000'000;
        const auto rows = convergence_sweep(
            p, {eta + eta / 4}, [eta](AgentCount i) { return i >= eta ? 1 : 0; }, sweep);
        std::printf("%8lld %10lld %16.1f\n", static_cast<long long>(eta),
                    static_cast<long long>(rows[0].population), rows[0].mean_parallel_time);
    }
    std::printf("\nshape: near the threshold the token-merging phase dominates and parallel\n"
                "time grows superlinearly in eta — the time/state trade-off the fast\n"
                "O(polylog) protocols cited in the paper's introduction buy off with many\n"
                "more states.\n");

    std::printf("\n=== E11: double-exponential thresholds (Czerner 2022 regime) ===\n\n");
    std::printf("%22s %8s %12s %7s %10s %12s %10s %14s\n", "protocol", "|Q|", "pairs", "table",
                "tbl KiB", "trap setup s", "population", "interactions/s");
    E11Options e11;
    // n = 13 (flagship only: |Q| = 8195) needs the sparse rule table; n = 17
    // (|Q| = 131075) additionally needs the worklist trap fixpoint — the
    // reference pass structure costs ~5·10¹⁰ transition checks there, which
    // is what used to make the sweep buildable but not runnable past n = 13.
    e11.tower_ns = {6, 8, 10, 13, 17};
    e11.max_dense_n = 10;
    e11.populations = {1 << 12, 1 << 16};
    e11.interactions_per_row = 1 << 22;
    for (const ThroughputRow& row : e11_throughput_sweep(e11)) {
        std::printf("%22s %8zu %12zu %7s %10.1f %12.4f %10lld %14.3g\n", row.protocol.c_str(),
                    row.num_states, row.nonsilent_pairs, row.rule_table.c_str(),
                    static_cast<double>(row.rule_table_bytes) / 1024.0, row.trap_setup_seconds,
                    static_cast<long long>(row.population), row.interactions_per_sec);
    }
    std::printf("\nshape: |Q| grows geometrically with n while throughput stays within a\n"
                "small factor — fired-step work is O(log #pairs) via the pair-weight\n"
                "Fenwick tree (the BM_E11FiredStep* microbenchmarks above isolate the\n"
                "selection step against the O(#pairs) reference scan).  Rule-table\n"
                "memory switches from Θ(|Q|²) (dense) to Θ(#non-silent pairs) (sparse)\n"
                "past ~4k states, which is what admits the n = 13 flagship rows, and\n"
                "trap setup stays O(|T|) via the worklist fixpoint (trap setup s\n"
                "column; BM_ComputeOutputTraps* isolates it against the reference),\n"
                "which is what admits the n = 17 rows.\n");

    std::printf("\n=== E11e: epoch-batched stepping, population 2^40 ===\n\n");
    std::printf("%22s %10s %12s %16s %16s %14s %14s\n", "protocol", "mode", "population",
                "interactions", "fired", "interactions/s", "fired/s");
    // The flagship at a population far past 2³² (pair weights in 128-bit):
    // the epoch rows draw the merge frontier's firings as multinomials over
    // the pair-weight Fenwick; the per-step reference resolves the same law
    // one Fenwick descent per firing.  Budgets differ (2³⁶ vs 2²⁶ scheduler
    // interactions) because the reference would need hours on the epoch
    // budget; fired/s is the comparable column either way.
    for (const StepMode mode : {StepMode::epoch, StepMode::per_step}) {
        E11Options epoch_sweep;
        epoch_sweep.tower_ns = {13};
        epoch_sweep.include_dense = false;
        epoch_sweep.populations = {AgentCount{1} << 40};
        epoch_sweep.interactions_per_row =
            mode == StepMode::epoch ? std::uint64_t{1} << 36 : std::uint64_t{1} << 26;
        epoch_sweep.step_mode = mode;
        for (const ThroughputRow& row : e11_throughput_sweep(epoch_sweep)) {
            std::printf("%22s %10s %12s %16llu %16llu %14.3g %14.3g\n", row.protocol.c_str(),
                        mode == StepMode::epoch ? "epoch" : "per-step", "2^40",
                        static_cast<unsigned long long>(row.interactions),
                        static_cast<unsigned long long>(row.fired), row.interactions_per_sec,
                        row.fired_per_sec);
        }
    }
    std::printf("\nshape: the epoch rows sustain >= 10^9 fired interactions/s (ROADMAP\n"
                "acceptance for engine idea 5) — two to three orders past the per-step\n"
                "reference on identical hardware, at identical firing distributions\n"
                "(tests/support_stats/ holds the statistical-equivalence evidence).\n");
    return 0;
}
