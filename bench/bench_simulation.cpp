// Experiment E10 — simulator throughput and convergence-time scaling.
//
// google-benchmark microbenchmarks for the hot paths (interaction
// throughput of the batched engine, the single-step API, exhaustive
// verification) followed by the convergence-time series: mean parallel
// time to stable consensus as the population grows, for the succinct
// threshold protocol — the simulation-side context for the paper's
// introduction (time/state trade-offs).
//
// Flags (after the --benchmark_* flags): --skip-sweeps omits the E10a/E10b
// convergence tables (used by bench/run_benchmarks.sh, which only wants
// the JSON microbenchmark numbers).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "protocols/threshold.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "verify/verifier.hpp"

using namespace ppsc;

namespace {

// Throughput of the batched engine (Fenwick sampling + incremental silence
// tracking + rejection-free silent-run skipping): interactions per second
// along the exact scheduler-chain distribution.  When a trajectory reaches
// silence the configuration restarts from IC, so the benchmark measures
// sustained full-trajectory throughput.
void BM_SimulatorStep(benchmark::State& state) {
    const Protocol protocol = protocols::collector_threshold(1 << 20);
    const Simulator simulator(protocol);
    const auto population = static_cast<AgentCount>(state.range(0));
    Config config = protocol.initial_config(population);
    Rng rng(11);
    constexpr std::uint64_t kBatch = 1 << 14;
    std::uint64_t executed = 0;
    for (auto _ : state) {
        const std::uint64_t done = simulator.run_batch(config, rng, kBatch);
        executed += done;
        if (done < kBatch) config = protocol.initial_config(population);  // went silent
        benchmark::DoNotOptimize(config);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
}
BENCHMARK(BM_SimulatorStep)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

// The per-call single-step API (one interaction per call, cached Fenwick
// sampler) — the seed's original benchmark, kept for regression tracking.
void BM_SimulatorSingleStep(benchmark::State& state) {
    const Protocol protocol = protocols::collector_threshold(1 << 20);
    const Simulator simulator(protocol);
    Config config = protocol.initial_config(static_cast<AgentCount>(state.range(0)));
    Rng rng(11);
    for (auto _ : state) {
        simulator.step(config, rng);
        benchmark::DoNotOptimize(config);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorSingleStep)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_FullRunToConsensus(benchmark::State& state) {
    const Protocol protocol = protocols::collector_threshold(50);
    const Simulator simulator(protocol);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        Rng rng(seed++);
        const SimulationResult result =
            simulator.run_input(static_cast<AgentCount>(state.range(0)), rng);
        benchmark::DoNotOptimize(result.interactions);
    }
}
BENCHMARK(BM_FullRunToConsensus)->Arg(256)->Arg(1024);

// The trial-parallel convergence sweep (one row, 8 trials).  Wall-clock
// scales with the worker count on multi-core hosts; per-trial results do
// not depend on it.
void BM_ConvergenceSweep(benchmark::State& state) {
    const Protocol protocol = protocols::collector_threshold(32);
    for (auto _ : state) {
        ConvergenceSweepOptions options;
        options.runs_per_size = 8;
        options.parallelism = static_cast<unsigned>(state.range(0));
        const auto rows = convergence_sweep(
            protocol, {40}, [](AgentCount i) { return i >= 32 ? 1 : 0; }, options);
        benchmark::DoNotOptimize(rows);
    }
}
BENCHMARK(BM_ConvergenceSweep)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_ExhaustiveVerification(benchmark::State& state) {
    const Protocol protocol = protocols::unary_threshold(3);
    const Verifier verifier(protocol);
    for (auto _ : state) {
        const InputVerdict verdict = verifier.verify_input(static_cast<AgentCount>(state.range(0)));
        benchmark::DoNotOptimize(verdict.explored_nodes);
    }
}
BENCHMARK(BM_ExhaustiveVerification)->Arg(6)->Arg(10)->Arg(14);

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    bool skip_sweeps = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--skip-sweeps") == 0) skip_sweeps = true;
    }
    benchmark::RunSpecifiedBenchmarks();
    if (skip_sweeps) return 0;

    auto print_rows = [](const std::vector<ConvergenceRow>& rows) {
        std::printf("%10s %9s %16s %16s %16s %9s\n", "population", "runs", "mean par.time",
                    "stddev", "max", "correct");
        for (const auto& row : rows) {
            char runs_column[32];
            std::snprintf(runs_column, sizeof runs_column, "%llu/%llu",
                          static_cast<unsigned long long>(row.converged_runs),
                          static_cast<unsigned long long>(row.runs));
            std::printf("%10lld %9s %16.1f %16.1f %16.1f %8.0f%%\n",
                        static_cast<long long>(row.population), runs_column,
                        row.mean_parallel_time, row.stddev_parallel_time,
                        row.max_parallel_time, 100.0 * row.correct_fraction);
        }
    };

    std::printf("\n=== E10a: population scaling, fixed eta = 100 ===\n\n");
    const Protocol protocol = protocols::collector_threshold(100);
    ConvergenceSweepOptions options;
    options.runs_per_size = 5;
    options.simulation.max_interactions = 500'000'000;
    print_rows(convergence_sweep(
        protocol, {128, 256, 512, 1024, 2048, 4096},
        [](AgentCount i) { return i >= 100 ? 1 : 0; }, options));
    std::printf("\nshape: for fixed eta, larger populations converge *faster* per parallel\n"
                "unit — surplus tokens make a threshold witness appear early.\n");

    std::printf("\n=== E10b: threshold scaling, population = 1.25·eta (the hard regime) ===\n\n");
    std::printf("%8s %10s %16s\n", "eta", "population", "mean par.time");
    for (const AgentCount eta : {16, 32, 64, 128, 256, 512}) {
        const Protocol p = protocols::collector_threshold(eta);
        ConvergenceSweepOptions sweep;
        sweep.runs_per_size = 5;
        sweep.simulation.max_interactions = 500'000'000;
        const auto rows = convergence_sweep(
            p, {eta + eta / 4}, [eta](AgentCount i) { return i >= eta ? 1 : 0; }, sweep);
        std::printf("%8lld %10lld %16.1f\n", static_cast<long long>(eta),
                    static_cast<long long>(rows[0].population), rows[0].mean_parallel_time);
    }
    std::printf("\nshape: near the threshold the token-merging phase dominates and parallel\n"
                "time grows superlinearly in eta — the time/state trade-off the fast\n"
                "O(polylog) protocols cited in the paper's introduction buy off with many\n"
                "more states.\n");
    return 0;
}
