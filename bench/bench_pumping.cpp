// Experiment E11 — the Theorem 4.5 proof pipeline on concrete protocols
// (Lemmas 4.1 / 4.2 + Dickson's lemma).
//
// For each protocol: materialise the stable-configuration sequence C_2,
// C_3, …, find the first Dickson pair that passes the semantic pumping
// re-check, and report the certified bound η ≤ a next to the protocol's
// actual threshold.  Also counts the ordered pairs rejected by the
// re-check — the pairs that violate Lemma 4.1's shared-basis-element side
// condition, demonstrating why the lemma needs it.
#include <cstdio>

#include "bounds/pumping.hpp"
#include "protocols/leader.hpp"
#include "protocols/threshold.hpp"

using namespace ppsc;

int main() {
    std::printf("=== E11: Lemma 4.1 pumping certificates ===\n\n");
    std::printf("%-28s %8s %12s %6s %6s %10s %10s\n", "protocol", "true eta", "certified a",
                "b", "out", "rejected", "bound ok");

    struct Row {
        const char* name;
        Protocol protocol;
        AgentCount eta;
        AgentCount horizon;
    };
    Row rows[] = {
        {"unary_threshold(2)", protocols::unary_threshold(2), 2, 9},
        {"unary_threshold(3)", protocols::unary_threshold(3), 3, 10},
        {"unary_threshold(4)", protocols::unary_threshold(4), 4, 11},
        {"binary_threshold_power(2)", protocols::binary_threshold_power(2), 4, 11},
        {"collector_threshold(3)", protocols::collector_threshold(3), 3, 10},
        {"collector_threshold(5)", protocols::collector_threshold(5), 5, 12},
        {"collector_threshold(6)", protocols::collector_threshold(6), 6, 13},
        {"leader_threshold(3)", protocols::leader_threshold(3), 3, 10},
        {"leader_counter_cascade(2,2)", protocols::leader_counter_cascade(2, 2), 4, 11},
    };
    for (auto& row : rows) {
        bounds::PumpingOptions options;
        options.max_input = row.horizon;
        const auto certificate = bounds::find_pumping_certificate(row.protocol, options);
        if (!certificate) {
            std::printf("%-28s %8lld %12s\n", row.name, static_cast<long long>(row.eta),
                        "none<=horizon");
            continue;
        }
        // Lemma 4.1: eta <= a.  The certificate must never contradict the
        // actual threshold.
        const bool bound_ok = row.eta <= certificate->a;
        std::printf("%-28s %8lld %12lld %6lld %6d %10zu %10s\n", row.name,
                    static_cast<long long>(row.eta), static_cast<long long>(certificate->a),
                    static_cast<long long>(certificate->b), certificate->verdict,
                    certificate->candidates_rejected, bound_ok ? "yes" : "NO");
    }
    std::printf("\nreading: the pipeline certifies eta <= a for every protocol — the\n"
                "exact mechanism behind Theorem 4.5's Ackermannian bound, where the\n"
                "horizon is replaced by the controlled-bad-sequence length F_{l,theta(n)}\n"
                "of Lemma 4.4 instead of exhaustive search.\n");
    return 0;
}
