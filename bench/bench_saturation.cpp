// Experiment E6 — reaching 1-saturated configurations (Lemmas 5.3 / 5.4).
//
// Lemma 5.4: from input 3^n a 1-saturated configuration (every state
// populated) is reachable within 3^n transitions.  This bench measures the
// *actual* minimal saturating input and the BFS-shortest saturating
// sequence for concrete protocols, against the 3^n guarantee.
#include <cstdio>
#include <deque>
#include <optional>
#include <unordered_map>

#include "core/protocol.hpp"
#include "protocols/threshold.hpp"

using namespace ppsc;

namespace {

struct Saturation {
    AgentCount input = 0;       ///< minimal input with a reachable 1-saturated config
    std::size_t depth = 0;      ///< BFS-shortest saturating sequence from it
    std::size_t explored = 0;
};

/// BFS from IC(input) until a 1-saturated configuration is found.
std::optional<std::size_t> shortest_saturation(const Protocol& protocol, AgentCount input,
                                               std::size_t budget, std::size_t& explored) {
    const Config root = protocol.initial_config(input);
    if (root.is_saturated(1)) return 0;
    std::unordered_map<Config, std::size_t, ConfigHash> depth{{root, 0}};
    std::deque<Config> queue{root};
    while (!queue.empty()) {
        const Config current = queue.front();
        queue.pop_front();
        const std::size_t d = depth.at(current);
        const auto support = current.support();
        for (std::size_t i = 0; i < support.size(); ++i) {
            for (std::size_t j = i; j < support.size(); ++j) {
                if (i == j && current[support[i]] < 2) continue;
                for (const TransitionId rule :
                     protocol.rules_for_pair(support[i], support[j])) {
                    const Transition& t =
                        protocol.transitions()[static_cast<std::size_t>(rule)];
                    Config next = protocol.fire(current, t);
                    if (depth.contains(next)) continue;
                    if (next.is_saturated(1)) {
                        explored += depth.size();
                        return d + 1;
                    }
                    depth.emplace(next, d + 1);
                    if (depth.size() > budget) {
                        explored += depth.size();
                        return std::nullopt;  // budget; caller reports honestly
                    }
                    queue.push_back(std::move(next));
                }
            }
        }
    }
    explored += depth.size();
    return std::nullopt;
}

std::optional<Saturation> find_saturation(const Protocol& protocol, AgentCount max_input,
                                          std::size_t budget) {
    Saturation result;
    for (AgentCount input = 2; input <= max_input; ++input) {
        const auto depth = shortest_saturation(protocol, input, budget, result.explored);
        if (depth) {
            result.input = input;
            result.depth = *depth;
            return result;
        }
    }
    return std::nullopt;
}

std::uint64_t pow3(std::size_t n) {
    std::uint64_t v = 1;
    for (std::size_t i = 0; i < n && v < (1ull << 50); ++i) v *= 3;
    return v;
}

}  // namespace

int main() {
    std::printf("=== E6: reaching 1-saturated configurations (Lemma 5.4) ===\n\n");
    std::printf("%-26s %4s %12s %14s %12s %12s\n", "protocol", "n", "bound 3^n",
                "min sat input", "seq length", "explored");

    struct Row {
        const char* name;
        Protocol protocol;
    };
    Row rows[] = {
        {"unary_threshold(2)", protocols::unary_threshold(2)},
        {"unary_threshold(3)", protocols::unary_threshold(3)},
        {"unary_threshold(4)", protocols::unary_threshold(4)},
        {"binary_threshold_power(2)", protocols::binary_threshold_power(2)},
        {"binary_threshold_power(3)", protocols::binary_threshold_power(3)},
        {"collector_threshold(3)", protocols::collector_threshold(3)},
        {"collector_threshold(5)", protocols::collector_threshold(5)},
        {"collector_threshold(6)", protocols::collector_threshold(6)},
    };
    for (auto& row : rows) {
        const std::size_t n = row.protocol.num_states();
        const auto saturation = find_saturation(row.protocol, 40, 400'000);
        if (saturation) {
            std::printf("%-26s %4zu %12llu %14lld %12zu %12zu\n", row.name, n,
                        static_cast<unsigned long long>(pow3(n)),
                        static_cast<long long>(saturation->input), saturation->depth,
                        saturation->explored);
        } else {
            std::printf("%-26s %4zu %12llu %14s %12s %12s\n", row.name, n,
                        static_cast<unsigned long long>(pow3(n)), "none<=40", "-", "-");
        }
    }
    std::printf("\nshape check: actual saturating inputs and sequence lengths are tiny\n"
                "(roughly n) against the 3^n guarantee — Lemma 5.4 is worst-case.\n"
                "note: leaderless protocols can always saturate (Lemma 5.3 argument);\n"
                "a 'none' row would indicate a dead state, i.e. a protocol bug.\n");
    return 0;
}
