// Experiment E5 — Lemma 5.1: firing sequences vs Parikh arithmetic.
//
// (i)  C --sigma--> C' implies C =pi=> C' for pi the Parikh image of sigma:
//      checked on thousands of random executions.
// (ii) C =pi=> C' and C 2|pi|-saturated implies pi can actually be fired in
//      any order: checked by firing random permutations from saturated
//      configurations.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/parikh.hpp"
#include "protocols/modulo.hpp"
#include "protocols/threshold.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

using namespace ppsc;

namespace {

struct Outcome {
    std::uint64_t trials = 0;
    std::uint64_t part_i_ok = 0;
    std::uint64_t part_ii_ok = 0;
    std::uint64_t part_ii_applicable = 0;
};

Outcome run_experiment(const Protocol& protocol, std::uint64_t trials, std::uint64_t seed) {
    const Simulator simulator(protocol);
    Rng rng(seed);
    Outcome outcome;
    outcome.trials = trials;

    for (std::uint64_t trial = 0; trial < trials; ++trial) {
        // Random execution from a random input.
        const AgentCount input = 4 + static_cast<AgentCount>(rng.below(12));
        Config config = protocol.initial_config(input);
        const Config start = config;
        std::vector<TransitionId> sequence;
        const std::uint64_t steps = 1 + rng.below(60);
        for (std::uint64_t s = 0; s < steps; ++s) {
            const auto fired = simulator.step(config, rng);
            if (fired) sequence.push_back(*fired);
        }

        // Part (i): C' must equal C + Delta(pi).
        const ParikhImage parikh = parikh_of_sequence(protocol, sequence);
        const auto predicted = apply_parikh(start, protocol, parikh);
        bool match = true;
        for (std::size_t q = 0; q < predicted.size(); ++q) {
            if (predicted[q] != config[static_cast<StateId>(q)]) match = false;
        }
        if (match) ++outcome.part_i_ok;

        // Part (ii): from a 2|pi|-saturated configuration, any order of pi
        // fires to completion.
        const std::int64_t size = parikh_size(parikh);
        if (size == 0 || size > 40) continue;
        ++outcome.part_ii_applicable;
        Config saturated(protocol.num_states());
        for (std::size_t q = 0; q < protocol.num_states(); ++q)
            saturated.set(static_cast<StateId>(q), 2 * size);
        // Random order of the multiset.
        std::vector<TransitionId> order;
        for (std::size_t t = 0; t < parikh.size(); ++t)
            for (std::int64_t c = 0; c < parikh[t]; ++c)
                order.push_back(static_cast<TransitionId>(t));
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);
        bool fired_all = true;
        Config current = saturated;
        for (const TransitionId t : order) {
            const Transition& transition = protocol.transitions()[static_cast<std::size_t>(t)];
            if (!protocol.enabled(current, transition)) {
                fired_all = false;
                break;
            }
            current = protocol.fire(current, transition);
        }
        if (fired_all) {
            const auto expected = apply_parikh(saturated, protocol, parikh);
            bool same = true;
            for (std::size_t q = 0; q < expected.size(); ++q)
                if (expected[q] != current[static_cast<StateId>(q)]) same = false;
            if (same) ++outcome.part_ii_ok;
        }
    }
    return outcome;
}

}  // namespace

int main() {
    std::printf("=== E5: Lemma 5.1 — executions vs Parikh displacement ===\n\n");
    std::printf("%-26s %8s %14s %22s\n", "protocol", "trials", "(i) holds",
                "(ii) holds/applicable");
    struct Row {
        const char* name;
        Protocol protocol;
    };
    Row rows[] = {
        {"unary_threshold(3)", protocols::unary_threshold(3)},
        {"binary_threshold_power(2)", protocols::binary_threshold_power(2)},
        {"collector_threshold(6)", protocols::collector_threshold(6)},
        {"modulo(3,1)", protocols::modulo(3, 1)},
    };
    for (auto& row : rows) {
        const Outcome outcome = run_experiment(row.protocol, 3000, 0x5151);
        std::printf("%-26s %8llu %10llu/%llu %16llu/%llu\n", row.name,
                    static_cast<unsigned long long>(outcome.trials),
                    static_cast<unsigned long long>(outcome.part_i_ok),
                    static_cast<unsigned long long>(outcome.trials),
                    static_cast<unsigned long long>(outcome.part_ii_ok),
                    static_cast<unsigned long long>(outcome.part_ii_applicable));
    }
    std::printf("\nexpected: (i) 100%% — firing is displacement arithmetic;\n"
                "(ii) 100%% of applicable trials — 2|pi|-saturation removes all ordering\n"
                "constraints, the engine of Lemma 5.2's pumping.\n");
    return 0;
}
