#!/usr/bin/env bash
# Runs the google-benchmark microbenchmarks and records the results as
# BENCH_simulation.json at the repository root — the repo's perf
# trajectory.  The JSON includes the E11 rows (BM_E11MergePhase, the
# BM_E11FiredStep{Fenwick,Scan} pair-selection comparison, and the
# sparse-rule-table rows BM_E11FiredStepFlagship/BM_E11SparseMergePhase
# on the double-exponential threshold workload).  Re-run after any change
# to the simulation hot path and commit the refreshed JSON alongside the
# change.
#
# Usage:  bench/run_benchmarks.sh [output.json]
# Env:    BUILD_DIR (default: build)   — CMake build directory
#         RUN_SWEEPS=1                 — also print the (slow) E10a/E10b
#                                        convergence tables and the E11
#                                        throughput table to stdout
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_simulation.json}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DPPSC_BUILD_BENCH=ON
cmake --build "$BUILD_DIR" -j --target bench_simulation

SWEEP_FLAG=--skip-sweeps
if [[ "${RUN_SWEEPS:-0}" == "1" ]]; then
    SWEEP_FLAG=
fi

"$BUILD_DIR"/bench_simulation \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json \
    --benchmark_format=console \
    $SWEEP_FLAG

echo "wrote $OUT"
