// Experiment E3 — structure of stable sets (Lemmas 3.1 and 3.2).
//
// For a portfolio of protocols: counts of b-stable configurations per
// population slice, the exhaustive downward-closure check (Lemma 3.1), the
// empirical basis of SC_b with its norms, and the astronomically loose
// theoretical norm bound β(n) = 2^(2(2n+1)!+1) (Definition 3).
#include <cstdio>

#include "bounds/paper_bounds.hpp"
#include "protocols/majority.hpp"
#include "protocols/threshold.hpp"
#include "stable/stable_sets.hpp"

using namespace ppsc;

namespace {

void analyse(const char* name, const Protocol& protocol, AgentCount max_population) {
    const StableAnalysis analysis(protocol, max_population);
    std::printf("--- %s (n = %zu states, slices 2..%lld) ---\n", name, protocol.num_states(),
                static_cast<long long>(max_population));

    std::printf("  |SC_0|, |SC_1| per slice:");
    const auto counts0 = analysis.stable_counts(0);
    const auto counts1 = analysis.stable_counts(1);
    for (std::size_t i = 0; i < counts0.size(); ++i)
        std::printf("  N=%lld: %zu/%zu", static_cast<long long>(counts0[i].first),
                    counts0[i].second, counts1[i].second);
    std::printf("\n");

    const auto violation = analysis.downward_closure_violation();
    std::printf("  Lemma 3.1 downward closure: %s\n",
                violation ? "VIOLATED (bug!)" : "holds on the whole region");

    for (int b = 0; b < 2; ++b) {
        const auto basis = analysis.empirical_basis(b);
        AgentCount max_norm = 0;
        for (const auto& element : basis) max_norm = std::max(max_norm, element.norm());
        std::printf("  empirical basis of SC_%d: %zu elements, max norm %lld\n", b,
                    basis.size(), static_cast<long long>(max_norm));
    }
    std::printf("  Lemma 3.2 norm bound beta(n) = %s, size bound theta(n) = %s\n\n",
                bounds::small_basis_beta(protocol.num_states()).to_string().c_str(),
                bounds::theta(protocol.num_states()).to_string().c_str());
}

}  // namespace

int main() {
    std::printf("=== E3: stable sets, downward closure, small bases ===\n\n");
    analyse("unary_threshold(2)", protocols::unary_threshold(2), 7);
    analyse("unary_threshold(3)", protocols::unary_threshold(3), 7);
    analyse("collector_threshold(3)", protocols::collector_threshold(3), 6);
    analyse("collector_threshold(5)", protocols::collector_threshold(5), 6);
    analyse("majority (4 states)", protocols::majority(), 7);
    std::printf("observation: empirical norms are single digits; the theoretical bound\n"
                "is a tower — exactly the slack the paper's open problems point at.\n");
    return 0;
}
