// Experiment E1 — Example 2.1 of the paper.
//
// Regenerates the example's quantitative content: P_k computes x >= 2^k
// with 2^k + 1 states, P'_k with the states {0, 2^0..2^k} (k + 2 states;
// the paper's prose says k + 1 — an off-by-one in the example's counting,
// see EXPERIMENTS.md).  Both are exhaustively verified for small k, and
// their convergence speeds compared under the random scheduler.
#include <cstdio>

#include "protocols/threshold.hpp"
#include "sim/simulator.hpp"
#include "verify/verifier.hpp"

using namespace ppsc;

int main() {
    std::printf("=== E1: Example 2.1 — P_k (unary) vs P'_k (binary doubling) ===\n\n");
    std::printf("%3s %8s %10s %10s %22s\n", "k", "eta=2^k", "|Q| P_k", "|Q| P'_k",
                "exhaustive verification");

    for (int k = 1; k <= 3; ++k) {
        const AgentCount eta = AgentCount{1} << k;
        const Protocol unary = protocols::unary_threshold(eta);
        const Protocol binary = protocols::binary_threshold_power(k);

        const Verifier vu(unary), vb(binary);
        const bool unary_ok = vu.check_predicate(Predicate::x_at_least(eta), 2, eta + 3).holds;
        const bool binary_ok = vb.check_predicate(Predicate::x_at_least(eta), 2, eta + 3).holds;

        std::printf("%3d %8lld %10zu %10zu %11s / %-8s\n", k, static_cast<long long>(eta),
                    unary.num_states(), binary.num_states(), unary_ok ? "P_k OK" : "P_k FAIL",
                    binary_ok ? "P'_k OK" : "P'_k FAIL");
    }
    for (int k = 4; k <= 8; ++k) {
        const AgentCount eta = AgentCount{1} << k;
        std::printf("%3d %8lld %10lld %10d %22s\n", k, static_cast<long long>(eta),
                    static_cast<long long>(eta + 1), k + 2, "(states only)");
    }

    std::printf("\nconvergence under the random scheduler (population 2^k+2, seed 3):\n");
    std::printf("%3s %12s %18s %18s\n", "k", "population", "P_k par. time", "P'_k par. time");
    for (int k = 1; k <= 7; ++k) {
        const AgentCount eta = AgentCount{1} << k;
        const AgentCount population = eta + 2;
        const Simulator su(protocols::unary_threshold(eta));
        const Simulator sb(protocols::binary_threshold_power(k));
        Rng r1(3), r2(3);
        SimulationOptions options;
        options.max_interactions = 100'000'000;
        const SimulationResult ru = su.run_input(population, r1, options);
        const SimulationResult rb = sb.run_input(population, r2, options);
        std::printf("%3d %12lld %18.1f %18.1f\n", k, static_cast<long long>(population),
                    ru.parallel_time, rb.parallel_time);
    }
    std::printf("\nboth families decide x >= 2^k; the binary family pays for its\n"
                "exponentially smaller state count with slower convergence.\n");
    return 0;
}
