// Experiment E9 — empirical busy beaver (Definition 1).
//
// Exhaustive census of deterministic protocols for n = 2, 3 and a random
// sample for n = 4, bracketed by the paper's bounds.
#include <cstdio>

#include "bounds/paper_bounds.hpp"
#include "search/busy_beaver.hpp"

using namespace ppsc;

int main() {
    std::printf("=== E9: empirical busy beaver BB(n) ===\n\n");
    std::printf("%3s %12s %12s %12s %10s %12s %20s\n", "n", "enumerated", "canonical",
                "thresholds", "BB_det(n)", "constr. LB", "Thm 5.9 UB");

    for (std::size_t n = 2; n <= 4; ++n) {
        search::SearchOptions options;
        options.max_input = n == 2 ? 10 : 9;
        if (n >= 4) {
            options.sample_limit = 30'000;  // the exhaustive space has ~10^10 tables
            options.seed = 99;
        }
        const auto outcome = search::busy_beaver_search(n, options);
        const auto lower = bounds::busy_beaver_lower(n);
        std::printf("%3zu %12llu %12llu %12llu %9lld%s %12lld %20s\n", n,
                    static_cast<unsigned long long>(outcome.enumerated),
                    static_cast<unsigned long long>(outcome.canonical),
                    static_cast<unsigned long long>(outcome.threshold_protocols),
                    static_cast<long long>(outcome.best_eta), outcome.exhaustive ? "" : "*",
                    static_cast<long long>(lower.best()),
                    bounds::theta(n).to_string().c_str());
    }
    std::printf("  (* = random sample, value is a lower bound on BB_det)\n");

    std::printf("\nhistogram for n = 3 (thresholds realised by canonical protocols):\n");
    search::SearchOptions options;
    options.max_input = 9;
    const auto outcome = search::busy_beaver_search(3, options);
    for (const auto& [eta, count] : outcome.eta_histogram)
        std::printf("  x >= %lld : %llu protocols\n", static_cast<long long>(eta),
                    static_cast<unsigned long long>(count));
    std::printf("\nmeasured: BB_det(2) = 2, BB_det(3) = 3 (verified on all inputs up to the\n"
                "horizon).  The paper's bracket at n = 3: lower 2 (constructions), upper\n"
                "2^(8!) — the measured value sits at the very bottom, as expected for\n"
                "deterministic protocols at tiny n.\n");
    return 0;
}
