// Experiment E2 — state complexity of x >= eta across constructions
// (Theorem 2.2 context).
//
// Prints STATE(eta) upper bounds realised by the library's constructions
// against the paper's asymptotic landscape: O(log eta) leaderless upper
// bound [12], Ω(log log eta) leaderless lower bound (Theorem 5.9), and the
// busy-beaver view BB(n) >= 2^(n-2) via the binary family.
#include <cmath>
#include <cstdio>

#include "bounds/paper_bounds.hpp"
#include "protocols/threshold.hpp"

using namespace ppsc;

int main() {
    std::printf("=== E2: state complexity of x >= eta ===\n\n");
    std::printf("%12s %12s %12s %14s %14s\n", "eta", "unary |Q|", "collector |Q|",
                "4*log2(eta)+4", "loglog eta");
    const AgentCount etas[] = {2,    3,     5,      10,      100,
                               1000, 65536, 1000000, 1 << 28, (AgentCount{1} << 30) - 1};
    for (const AgentCount eta : etas) {
        const double log2eta = std::log2(static_cast<double>(eta));
        std::printf("%12lld %12lld %12zu %14.1f %14.2f\n", static_cast<long long>(eta),
                    static_cast<long long>(eta + 1), protocols::collector_threshold_states(eta),
                    4 * log2eta + 4, std::log2(std::max(1.0, log2eta)));
    }

    std::printf("\nbusy-beaver view: largest eta computable with n states "
                "(construction lower bounds)\n");
    std::printf("%4s %10s %12s %14s %10s\n", "n", "unary", "binary", "collector", "2^(n-2)");
    for (std::size_t n = 3; n <= 16; ++n) {
        const auto lower = bounds::busy_beaver_lower(n);
        std::printf("%4zu %10lld %12lld %14lld %10lld\n", n,
                    static_cast<long long>(lower.unary_eta),
                    static_cast<long long>(lower.binary_eta),
                    static_cast<long long>(lower.collector_eta),
                    static_cast<long long>(n >= 2 ? (AgentCount{1} << (n - 2)) : 0));
    }
    std::printf("\nshape check (paper): leaderless constructions give BB(n) = 2^Θ(n);\n"
                "Theorem 5.9 caps BB(n) at 2^((2n+2)!) — doubly exponential gap that\n"
                "matches the open Ω(log log eta) vs O(log eta) state-complexity gap.\n");
    return 0;
}
