// Experiment E4 — controlled bad sequences and the fast-growing hierarchy
// (Lemma 4.4 / Theorem 4.5).
//
// Measures the exact maximal length of bad sequences in N^d under the
// linear control g(i) = i + delta, and tabulates the fast-growing
// hierarchy levels that Theorem 4.5's Ackermannian bound lives in.
#include <cstdio>

#include "wqo/dickson.hpp"
#include "wqo/fast_growing.hpp"

using namespace ppsc;

int main() {
    std::printf("=== E4: controlled bad sequences (Dickson / Lemma 4.4) ===\n\n");
    std::printf("longest bad sequence in N^d with ||v_i|| <= i + delta:\n");
    std::printf("%3s %6s %10s %8s %14s\n", "d", "delta", "length", "exact", "search nodes");

    struct Case {
        int d;
        std::int64_t delta;
        std::uint64_t budget;
    };
    const Case cases[] = {
        {1, 0, 1u << 20}, {1, 1, 1u << 20}, {1, 2, 1u << 20}, {1, 4, 1u << 20},
        {1, 8, 1u << 20}, {2, 0, 1u << 22}, {2, 1, 1u << 22}, {2, 2, 1u << 24},
        {2, 3, 1u << 17}, {3, 0, 1u << 24}, {3, 1, 1u << 17},
    };
    for (const auto& [d, delta, budget] : cases) {
        BadSequenceOptions options;
        options.max_nodes = budget;
        const auto result = longest_controlled_bad_sequence(d, delta, options);
        std::printf("%3d %6lld %10zu %8s %14llu\n", d, static_cast<long long>(delta),
                    result.length, result.exact ? "yes" : "no (>=)",
                    static_cast<unsigned long long>(result.nodes_explored));
    }

    std::printf("\nfast-growing hierarchy F_k(x) (Theorem 4.5 lives at level F_omega):\n");
    std::printf("%8s", "k\\x");
    for (int x = 0; x <= 5; ++x) std::printf(" %12d", x);
    std::printf("\n");
    for (std::uint64_t k = 0; k <= 3; ++k) {
        std::printf("%8llu", static_cast<unsigned long long>(k));
        for (std::uint64_t x = 0; x <= 5; ++x)
            std::printf(" %12s", fast_growing(k, x).to_string().c_str());
        std::printf("\n");
    }
    std::printf("%8s", "omega");
    for (std::uint64_t x = 0; x <= 5; ++x)
        std::printf(" %12s", fast_growing_omega(x).to_string().c_str());
    std::printf("\n");

    std::printf("\nAckermann diagonal and its inverse (the Theorem 4.5 lower-bound rate):\n");
    std::printf("%6s %16s      %22s %6s\n", "k", "A(k,k)", "n", "alpha(n)");
    for (std::uint64_t k = 0; k <= 4; ++k) {
        const std::uint64_t probes[] = {3, 61, 100000, 1ull << 40, 1ull << 62};
        std::printf("%6llu %16s      %22llu %6d\n", static_cast<unsigned long long>(k),
                    ackermann(k, k).to_string().c_str(),
                    static_cast<unsigned long long>(probes[k]),
                    inverse_ackermann(probes[k]));
    }
    std::printf("\nshape: lengths explode with dimension (Lemma 4.4's F_omega), while the\n"
                "inverse direction — the paper's general lower bound — is glacial.\n");
    return 0;
}
