// protocol_tool — drive any protocol from a text file.
//
//   $ ./protocol_tool info      <file.pp>
//   $ ./protocol_tool analyze   <file.pp> [--emit-certificates [out]] [--check <certs>]
//   $ ./protocol_tool verify    <file.pp> <eta> [max_input]
//   $ ./protocol_tool simulate  <file.pp> <population> [seed]
//   $ ./protocol_tool longrun   <file.pp> <population> <interactions> [seed]
//   $ ./protocol_tool sweep     <file.pp> <eta> <pop1,pop2,...> [runs] [seed]
//   $ ./protocol_tool dot       <file.pp>
//   $ ./protocol_tool family    <name> [params]  (prints a built-in family)
//   $ ./protocol_tool demo                       (prints a sample file)
//   $ ./protocol_tool help                       (full usage, all families)
//
// The text format is documented in src/core/protocol_parser.hpp; `demo`
// emits a ready-to-use threshold-3 protocol, so
//
//   $ ./protocol_tool demo > t3.pp
//   $ ./protocol_tool verify t3.pp 3
//
// is a complete round trip.  `family` does the same for every registered
// protocol family (see src/protocols/families.hpp — `help` lists them all
// with their parameter ranges), e.g.
//
//   $ ./protocol_tool family double_exp 2 > d2.pp
//   $ ./protocol_tool verify d2.pp 16
//
// `longrun` and `sweep` are the durable run surfaces: with
// --checkpoint-dir they periodically snapshot (config, rng, counters)
// crash-safely (sim/checkpoint.hpp — atomic rename, keep-last-K
// rotation), SIGTERM/SIGINT triggers a graceful stop (finish the current
// step, write a final checkpoint, exit cleanly), and --resume (longrun) /
// re-running with the same flags (sweep) continues the trajectory
// byte-identically — a resumed run prints the same final digest line as
// an uninterrupted one:
//
//   $ ./protocol_tool family double_exp 3 > d3.pp
//   $ ./protocol_tool longrun d3.pp 512 100000000 7 --checkpoint-dir ck
//         --checkpoint-every 1000000   (one command line)
//   ^C   (or SIGKILL — the rotation keeps the last snapshots)
//   $ ./protocol_tool longrun d3.pp 512 100000000 7 --checkpoint-dir ck --resume
#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/checker.hpp"
#include "core/protocol_parser.hpp"
#include "protocols/families.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "verify/verifier.hpp"

using namespace ppsc;

namespace {

constexpr const char* kDemo = R"(# x >= 3, collector style
state v0 0
state v1 0
state v2 0
state T 1
input x -> v1
trans v1 v1 -> v0 v2
trans v2 v1 -> T T
trans v2 v2 -> T T
trans T v0 -> T T
trans T v1 -> T T
trans T v2 -> T T
)";

void print_usage(const char* argv0, std::FILE* out) {
    std::fprintf(out,
                 "usage: %s <command> [args]\n"
                 "\n"
                 "commands:\n"
                 "  info     <file.pp>                     print states/inputs/transitions\n"
                 "  analyze  <file.pp> [--emit-certificates [out]] [--check <certs>]\n"
                 "                                         static analysis: invariant +\n"
                 "                                         closure certificates, dead code,\n"
                 "                                         consensus refutation, lints\n"
                 "                                         (file:line diagnostics; --check\n"
                 "                                         re-verifies a certificate file)\n"
                 "  verify   <file.pp> <eta> [max_input]   exhaustively check x >= eta\n"
                 "  simulate <file.pp> <population> [seed] one randomized run from IC\n"
                 "  longrun  <file.pp> <population> <interactions> [seed]\n"
                 "                                         checkpointed throughput run\n"
                 "  sweep    <file.pp> <eta> <pop1,pop2,...> [runs] [seed]\n"
                 "                                         checkpointed convergence sweep\n"
                 "  dot      <file.pp>                     GraphViz rendering\n"
                 "  family   <name> [params]               print a built-in family as .pp\n"
                 "  demo                                   print a sample .pp file\n"
                 "  help                                   this message\n"
                 "\n"
                 "checkpoint flags (longrun, sweep):\n"
                 "  --checkpoint-dir <dir>    crash-safe rotation directory\n"
                 "  --checkpoint-every <n>    interactions between snapshots (default 10^8)\n"
                 "  --checkpoint-keep <k>     rotation depth keep-last-K (default 3)\n"
                 "  --resume                  longrun: restore the newest valid snapshot\n"
                 "                            (sweep resumes automatically per trial)\n"
                 "  --die-after <n>           testing: SIGKILL self at the first snapshot\n"
                 "                            at/past n interactions\n"
                 "SIGTERM/SIGINT stop gracefully: finish the current step, write a final\n"
                 "checkpoint, exit 0.\n"
                 "\n"
                 "families (every registered family; parameters and ranges):\n%s",
                 argv0, protocols::family_usage().c_str());
}

Protocol load(const char* path) {
    std::ifstream file(path);
    if (!file) throw std::invalid_argument(std::string("cannot open ") + path);
    std::ostringstream text;
    text << file.rdbuf();
    return parse_protocol(text.str());
}

/// Strict numeric argument parsing: the whole token must be a number in
/// [min, max] — "12x", "", and out-of-range values all get a one-line
/// diagnostic instead of strtoll's silent 0.
// ppsc-lint: validated-parser (end pointer, full token, ERANGE, and range checked below)
std::int64_t parse_int(const char* what, const char* text, std::int64_t min, std::int64_t max) {
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || value < min || value > max) {
        std::ostringstream message;
        message << what << " must be an integer in [" << min << ", " << max << "], got '"
                << text << "'";
        throw std::invalid_argument(message.str());
    }
    return value;
}

std::uint64_t parse_u64(const char* what, const char* text) {
    return static_cast<std::uint64_t>(
        parse_int(what, text, 0, std::numeric_limits<std::int64_t>::max()));
}

std::vector<AgentCount> parse_population_list(const char* text) {
    std::vector<AgentCount> populations;
    std::stringstream stream(text);
    std::string token;
    while (std::getline(stream, token, ','))
        populations.push_back(parse_int("population", token.c_str(), 2,
                                        std::numeric_limits<std::int64_t>::max()));
    if (populations.empty())
        throw std::invalid_argument("population list must name at least one population");
    return populations;
}

/// Graceful-shutdown flag: SIGTERM/SIGINT set it (std::atomic<bool> stores
/// are async-signal-safe); a second signal falls back to the default
/// disposition so a stuck process can still be killed with Ctrl-C Ctrl-C.
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int signum) {
    g_stop.store(true);
    std::signal(signum, SIG_DFL);
}

void install_stop_handlers() {
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
}

struct CheckpointFlags {
    std::string dir;
    std::uint64_t every = 100'000'000;
    std::size_t keep = 3;
    bool resume = false;
    std::uint64_t die_after = 0;  // 0 = disabled
};

/// Extracts the checkpoint flags from argv (erasing them), leaving the
/// positional arguments in place.
CheckpointFlags extract_checkpoint_flags(std::vector<const char*>& args) {
    CheckpointFlags flags;
    std::vector<const char*> positional;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string_view arg = args[i];
        const auto value = [&](const char* name) -> const char* {
            if (++i >= args.size())
                throw std::invalid_argument(std::string(name) + " needs a value");
            return args[i];
        };
        if (arg == "--checkpoint-dir") {
            flags.dir = value("--checkpoint-dir");
        } else if (arg == "--checkpoint-every") {
            flags.every = parse_u64("--checkpoint-every", value("--checkpoint-every"));
            if (flags.every == 0)
                throw std::invalid_argument("--checkpoint-every must be positive");
        } else if (arg == "--checkpoint-keep") {
            flags.keep = static_cast<std::size_t>(
                parse_int("--checkpoint-keep", value("--checkpoint-keep"), 1, 1 << 20));
        } else if (arg == "--resume") {
            flags.resume = true;
        } else if (arg == "--die-after") {
            flags.die_after = parse_u64("--die-after", value("--die-after"));
        } else if (arg.starts_with("--")) {
            throw std::invalid_argument("unknown flag '" + std::string(arg) + "'");
        } else {
            positional.push_back(args[i]);
        }
    }
    if (flags.dir.empty() && (flags.resume || flags.die_after != 0))
        throw std::invalid_argument("--resume/--die-after need --checkpoint-dir");
    args = std::move(positional);
    return flags;
}

/// The durable throughput run: drives run_batch to an interaction budget
/// (restarting from IC whenever a trajectory goes silent, like the E11
/// sweep), snapshotting every ≥ N interactions.  The final line is a
/// digest of (interactions, fired, restarts, rng state, config) — a
/// killed-and-resumed run prints exactly the uninterrupted run's line.
int run_longrun(const Protocol& protocol, AgentCount population, std::uint64_t budget,
                std::uint64_t seed, const CheckpointFlags& flags) {
    const std::uint64_t fingerprint = protocol_fingerprint(protocol);
    const Simulator simulator(protocol);

    Config config = protocol.initial_config(population);
    Rng rng(seed);
    std::uint64_t done = 0, fired = 0, restarts = 0;

    std::optional<CheckpointDir> dir;
    if (!flags.dir.empty()) dir.emplace(flags.dir, flags.keep);
    if (flags.resume) {
        const CheckpointDir::Latest latest = dir->load_latest(fingerprint);
        for (const std::string& rejection : latest.rejected)
            std::fprintf(stderr, "resume: skipping %s\n", rejection.c_str());
        if (latest.checkpoint) {
            config = latest.checkpoint->config;
            rng.set_state(latest.checkpoint->rng_state);
            done = latest.checkpoint->interactions;
            fired = latest.checkpoint->fired;
            restarts = latest.checkpoint->restarts;
            std::printf("resumed from %s at %llu interactions\n", latest.path.c_str(),
                        static_cast<unsigned long long>(done));
        } else {
            std::printf("no valid checkpoint in %s — starting fresh\n", flags.dir.c_str());
        }
    }

    install_stop_handlers();
    const auto snapshot = [&](const Config& at, std::uint64_t rng_state,
                              std::uint64_t interactions, std::uint64_t fired_total) {
        Checkpoint ck;
        ck.fingerprint = fingerprint;
        ck.config = at;
        ck.rng_state = rng_state;
        ck.interactions = interactions;
        ck.fired = fired_total;
        ck.restarts = restarts;
        std::string detail;
        if (dir->write(ck, nullptr, &detail) != CheckpointError::none)
            std::fprintf(stderr, "checkpoint write failed: %s\n", detail.c_str());
    };

    while (done < budget && !g_stop.load()) {
        CheckpointHook hook;
        const CheckpointHook* hook_ptr = nullptr;
        if (dir) {
            hook.every = flags.every;
            hook.callback = [&](const CheckpointTick& tick) {
                snapshot(tick.config, tick.rng_state, done + tick.interactions,
                         fired + tick.fired);
                if (flags.die_after != 0 && done + tick.interactions >= flags.die_after) {
                    // Deterministic crash injection for the CI smoke: a real
                    // SIGKILL — no cleanup, no final checkpoint, the rotation
                    // is all that survives.
                    std::raise(SIGKILL);
                }
                return !g_stop.load();
            };
            hook_ptr = &hook;
        }
        std::uint64_t fired_in_call = 0;
        const std::uint64_t got =
            simulator.run_batch(config, rng, budget - done, false, hook_ptr, &fired_in_call);
        done += got;
        fired += fired_in_call;
        if (done >= budget || g_stop.load()) break;
        if (got == 0) {
            std::printf("configuration is silent from the start — nothing to run\n");
            break;
        }
        // Trajectory went silent before the budget: restart from IC so the
        // run keeps measuring (deterministic — part of the resumable state).
        ++restarts;
        config = protocol.initial_config(population);
    }

    const bool interrupted = g_stop.load();
    if (dir) {
        snapshot(config, rng.state(), done, fired);
        if (interrupted)
            std::printf("interrupted — final checkpoint written to %s\n", flags.dir.c_str());
    }
    std::printf("longrun: interactions=%llu fired=%llu restarts=%llu rng=%016llx digest=%016llx\n",
                static_cast<unsigned long long>(done), static_cast<unsigned long long>(fired),
                static_cast<unsigned long long>(restarts),
                static_cast<unsigned long long>(rng.state()),
                static_cast<unsigned long long>(config_digest(config)));
    return 0;
}

/// Maps analyzer subjects back to source lines of the .pp text: a state's
/// `state <name> …` line, a transition's `trans …` line (matched by the
/// canonical unordered pre/post pairs, first unclaimed match wins so
/// distinct rules on one pre-pair land on their own lines).  0 = unknown.
struct SourceMap {
    std::vector<std::size_t> state_line;
    std::vector<std::size_t> transition_line;
};

SourceMap map_source_lines(const Protocol& protocol, const std::string& text) {
    SourceMap map;
    map.state_line.assign(protocol.num_states(), 0);
    map.transition_line.assign(protocol.num_transitions(), 0);
    std::istringstream input(text);
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(input, line)) {
        ++line_number;
        std::istringstream is(line);
        std::vector<std::string> tokens;
        for (std::string token; is >> token && token.front() != '#';) tokens.push_back(token);
        if (tokens.empty()) continue;
        if (tokens[0] == "state" && tokens.size() >= 2) {
            if (const auto q = protocol.find_state(tokens[1]))
                map.state_line[static_cast<std::size_t>(*q)] = line_number;
        } else if ((tokens[0] == "trans" || tokens[0] == "trans+") && tokens.size() == 6) {
            const auto a = protocol.find_state(tokens[1]), b = protocol.find_state(tokens[2]);
            const auto c = protocol.find_state(tokens[4]), d = protocol.find_state(tokens[5]);
            if (!a || !b || !c || !d) continue;
            const auto pre = std::minmax(*a, *b);
            const auto post = std::minmax(*c, *d);
            for (std::size_t t = 0; t < protocol.num_transitions(); ++t) {
                const Transition& tr = protocol.transitions()[t];
                if (map.transition_line[t] == 0 && tr.pre1 == pre.first &&
                    tr.pre2 == pre.second && tr.post1 == post.first && tr.post2 == post.second) {
                    map.transition_line[t] = line_number;
                    break;
                }
            }
        }
    }
    return map;
}

const char* severity_name(analyze::Severity severity) {
    switch (severity) {
        case analyze::Severity::error: return "error";
        case analyze::Severity::warning: return "warning";
        case analyze::Severity::note: return "note";
    }
    return "note";
}

/// `protocol_tool analyze`: run the static analyzer, print machine-readable
/// `file:line: severity [code]: message` diagnostics, self-check the
/// emitted certificates through the independent checker, and optionally
/// write them out (--emit-certificates) or re-verify an external
/// certificate file (--check).  Exit codes: 0 clean, 2 a certificate
/// failed its check.
int run_analyze(const char* path, bool emit, const char* emit_path, const char* check_path) {
    std::ifstream file(path);
    if (!file) throw std::invalid_argument(std::string("cannot open ") + path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string text = buffer.str();

    std::vector<ParseWarning> warnings;
    const Protocol protocol = parse_protocol(text, &warnings);
    const SourceMap lines = map_source_lines(protocol, text);
    for (const ParseWarning& warning : warnings)
        std::printf("%s:%zu: warning [duplicate-rule]: %s\n", path, warning.line,
                    warning.message.c_str());

    const analyze::Analysis analysis = analyze::analyze_protocol(protocol);
    for (const analyze::Diagnostic& d : analysis.diagnostics) {
        std::size_t line = 1;
        if (d.state >= 0 && lines.state_line[static_cast<std::size_t>(d.state)] != 0)
            line = lines.state_line[static_cast<std::size_t>(d.state)];
        if (d.transition >= 0 &&
            lines.transition_line[static_cast<std::size_t>(d.transition)] != 0)
            line = lines.transition_line[static_cast<std::size_t>(d.transition)];
        std::printf("%s:%zu: %s [%s]: %s\n", path, line, severity_name(d.severity),
                    d.code.c_str(), d.message.c_str());
    }

    std::size_t unreachable = 0, dead = 0;
    for (const bool u : analysis.unreachable) unreachable += u;
    for (const bool d : analysis.dead) dead += d;
    const analyze::CheckReport self_check =
        analyze::check_certificates(protocol, analysis.certificates);
    std::printf("analyze: %zu unreachable state%s, %zu dead transition%s, consensus 0 %s, "
                "consensus 1 %s\n",
                unreachable, unreachable == 1 ? "" : "s", dead, dead == 1 ? "" : "s",
                analysis.consensus_refuted[0] ? "refuted" : "possible",
                analysis.consensus_refuted[1] ? "refuted" : "possible");
    std::printf("certificates: %zu emitted, checker %s\n", analysis.certificates.size(),
                self_check.ok ? "accepted all" : self_check.error.c_str());

    if (emit) {
        const std::string formatted = analyze::format_certificates(analysis.certificates);
        if (emit_path != nullptr) {
            std::ofstream out(emit_path);
            if (!out) throw std::invalid_argument(std::string("cannot write ") + emit_path);
            out << formatted;
        } else {
            std::fputs(formatted.c_str(), stdout);
        }
    }
    if (check_path != nullptr) {
        std::ifstream certs_file(check_path);
        if (!certs_file)
            throw std::invalid_argument(std::string("cannot open ") + check_path);
        std::ostringstream certs_text;
        certs_text << certs_file.rdbuf();
        const std::vector<analyze::Certificate> external =
            analyze::parse_certificates(certs_text.str());
        const analyze::CheckReport report = analyze::check_certificates(protocol, external);
        std::printf("check %s: %zu certificate%s %s\n", check_path, external.size(),
                    external.size() == 1 ? "" : "s",
                    report.ok ? "all valid" : ("REJECTED — " + report.error).c_str());
        if (!report.ok) return 2;
    }
    return self_check.ok ? 0 : 2;
}

int run_sweep(const Protocol& protocol, AgentCount eta, const std::vector<AgentCount>& populations,
              std::uint64_t runs, std::uint64_t seed, const CheckpointFlags& flags) {
    install_stop_handlers();
    ConvergenceSweepOptions options;
    options.runs_per_size = runs;
    options.seed = seed;
    options.checkpoint_dir = flags.dir;
    options.checkpoint_every = flags.dir.empty() ? 0 : flags.every;
    options.checkpoint_keep_last = flags.keep;
    options.stop = &g_stop;
    const auto rows = convergence_sweep(
        protocol, populations, [eta](AgentCount i) { return i >= eta ? 1 : 0; }, options);
    std::printf("%10s %9s %16s %16s %9s\n", "population", "runs", "mean par.time", "stddev",
                "correct");
    for (const ConvergenceRow& row : rows) {
        char runs_column[32];
        std::snprintf(runs_column, sizeof runs_column, "%llu/%llu",
                      static_cast<unsigned long long>(row.converged_runs),
                      static_cast<unsigned long long>(row.runs));
        std::printf("%10lld %9s %16.1f %16.1f %8.0f%%\n", static_cast<long long>(row.population),
                    runs_column, row.mean_parallel_time, row.stddev_parallel_time,
                    100.0 * row.correct_fraction);
    }
    if (g_stop.load()) {
        std::printf("interrupted — unfinished trials checkpointed under %s; re-run the same\n"
                    "sweep to resume them\n",
                    flags.dir.empty() ? "(no --checkpoint-dir: progress lost)"
                                      : flags.dir.c_str());
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc >= 2 && std::string_view(argv[1]) == "demo") {
        std::fputs(kDemo, stdout);
        return 0;
    }
    if (argc >= 2 && (std::string_view(argv[1]) == "help" ||
                      std::string_view(argv[1]) == "--help" ||
                      std::string_view(argv[1]) == "-h")) {
        print_usage(argv[0], stdout);
        return 0;
    }
    if (argc < 3) {
        print_usage(argv[0], stderr);
        return 1;
    }
    const std::string_view command = argv[1];
    try {
        if (command == "family") {
            const std::vector<std::string> params(argv + 3, argv + argc);
            std::fputs(format_protocol(protocols::build_family(argv[2], params)).c_str(),
                       stdout);
            return 0;
        }
        if (command == "analyze") {
            // analyze has its own flag grammar (no checkpoint flags).
            bool emit = false;
            const char* emit_path = nullptr;
            const char* check_path = nullptr;
            std::vector<const char*> positional;
            for (int i = 2; i < argc; ++i) {
                const std::string_view arg = argv[i];
                if (arg == "--emit-certificates") {
                    emit = true;
                    if (i + 1 < argc && argv[i + 1][0] != '-') emit_path = argv[++i];
                } else if (arg == "--check") {
                    if (++i >= argc) throw std::invalid_argument("--check needs a file");
                    check_path = argv[i];
                } else if (arg.starts_with("--")) {
                    throw std::invalid_argument("unknown flag '" + std::string(arg) + "'");
                } else {
                    positional.push_back(argv[i]);
                }
            }
            if (positional.size() != 1)
                throw std::invalid_argument("analyze needs exactly one <file.pp>");
            return run_analyze(positional[0], emit, emit_path, check_path);
        }
        std::vector<const char*> args(argv + 2, argv + argc);
        const CheckpointFlags flags = extract_checkpoint_flags(args);
        if (args.empty()) throw std::invalid_argument("missing <file.pp>");
        const Protocol protocol = load(args[0]);
        if (command == "info") {
            std::fputs(protocol.to_text().c_str(), stdout);
        } else if (command == "dot") {
            std::fputs(protocol.to_dot().c_str(), stdout);
        } else if (command == "verify") {
            if (args.size() < 2) {
                std::fprintf(stderr, "verify needs <eta>\n");
                return 1;
            }
            const AgentCount eta = parse_int("eta", args[1], 1, 1ll << 60);
            const AgentCount max_input =
                args.size() > 2 ? parse_int("max_input", args[2], 2, 1ll << 60) : eta + 4;
            const Verifier verifier(protocol);
            const PredicateCheck check =
                verifier.check_predicate(Predicate::x_at_least(eta), 2, max_input);
            std::printf("x >= %lld on inputs 2..%lld: %s (%zu configurations explored)\n",
                        static_cast<long long>(eta), static_cast<long long>(max_input),
                        check.holds ? "CORRECT" : "WRONG", check.total_nodes);
            for (const auto& failure : check.failures) {
                std::printf("  input %lld: %s\n", static_cast<long long>(failure.input[0]),
                            failure.well_specified
                                ? (*failure.computed ? "computes 1" : "computes 0")
                                : "ill-specified");
            }
            return check.holds ? 0 : 2;
        } else if (command == "simulate") {
            if (args.size() < 2) {
                std::fprintf(stderr, "simulate needs <population>\n");
                return 1;
            }
            const AgentCount population =
                parse_int("population", args[1], 2, std::numeric_limits<std::int64_t>::max());
            Rng rng(args.size() > 2 ? parse_u64("seed", args[2]) : 1);
            const Simulator simulator(protocol);
            const SimulationResult result = simulator.run_input(population, rng);
            std::printf("population %lld: %s, output %s, %llu interactions (%.1f parallel)\n",
                        static_cast<long long>(population),
                        result.converged ? "stabilised" : "timeout",
                        result.output ? (*result.output ? "1" : "0") : "mixed",
                        static_cast<unsigned long long>(result.interactions),
                        result.parallel_time);
            std::printf("final: %s\n",
                        result.final_config.to_string(protocol.state_names()).c_str());
        } else if (command == "longrun") {
            if (args.size() < 3) {
                std::fprintf(stderr, "longrun needs <population> <interactions>\n");
                return 1;
            }
            const AgentCount population =
                parse_int("population", args[1], 2, std::numeric_limits<std::int64_t>::max());
            const std::uint64_t budget = parse_u64("interactions", args[2]);
            const std::uint64_t seed = args.size() > 3 ? parse_u64("seed", args[3]) : 1;
            return run_longrun(protocol, population, budget, seed, flags);
        } else if (command == "sweep") {
            if (args.size() < 3) {
                std::fprintf(stderr, "sweep needs <eta> <pop1,pop2,...>\n");
                return 1;
            }
            const AgentCount eta = parse_int("eta", args[1], 1, 1ll << 60);
            const std::vector<AgentCount> populations = parse_population_list(args[2]);
            const std::uint64_t runs = args.size() > 3 ? parse_u64("runs", args[3]) : 20;
            const std::uint64_t seed = args.size() > 4 ? parse_u64("seed", args[4]) : 0x5eed;
            return run_sweep(protocol, eta, populations, runs, seed, flags);
        } else {
            std::fprintf(stderr, "unknown command '%s'; see '%s help'\n", argv[1], argv[0]);
            return 1;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
