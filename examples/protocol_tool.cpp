// protocol_tool — drive any protocol from a text file.
//
//   $ ./protocol_tool info      <file.pp>
//   $ ./protocol_tool verify    <file.pp> <eta> [max_input]
//   $ ./protocol_tool simulate  <file.pp> <population> [seed]
//   $ ./protocol_tool dot       <file.pp>
//   $ ./protocol_tool family    <name> [params]  (prints a built-in family)
//   $ ./protocol_tool demo                       (prints a sample file)
//   $ ./protocol_tool help                       (full usage, all families)
//
// The text format is documented in src/core/protocol_parser.hpp; `demo`
// emits a ready-to-use threshold-3 protocol, so
//
//   $ ./protocol_tool demo > t3.pp
//   $ ./protocol_tool verify t3.pp 3
//
// is a complete round trip.  `family` does the same for every registered
// protocol family (see src/protocols/families.hpp — `help` lists them all
// with their parameter ranges), e.g.
//
//   $ ./protocol_tool family double_exp 2 > d2.pp
//   $ ./protocol_tool verify d2.pp 16
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/protocol_parser.hpp"
#include "protocols/families.hpp"
#include "sim/simulator.hpp"
#include "verify/verifier.hpp"

using namespace ppsc;

namespace {

constexpr const char* kDemo = R"(# x >= 3, collector style
state v0 0
state v1 0
state v2 0
state T 1
input x -> v1
trans v1 v1 -> v0 v2
trans v2 v1 -> T T
trans v2 v2 -> T T
trans T v0 -> T T
trans T v1 -> T T
trans T v2 -> T T
)";

void print_usage(const char* argv0, std::FILE* out) {
    std::fprintf(out,
                 "usage: %s <command> [args]\n"
                 "\n"
                 "commands:\n"
                 "  info     <file.pp>                     print states/inputs/transitions\n"
                 "  verify   <file.pp> <eta> [max_input]   exhaustively check x >= eta\n"
                 "  simulate <file.pp> <population> [seed] one randomized run from IC\n"
                 "  dot      <file.pp>                     GraphViz rendering\n"
                 "  family   <name> [params]               print a built-in family as .pp\n"
                 "  demo                                   print a sample .pp file\n"
                 "  help                                   this message\n"
                 "\n"
                 "families (every registered family; parameters and ranges):\n%s",
                 argv0, protocols::family_usage().c_str());
}

Protocol load(const char* path) {
    std::ifstream file(path);
    if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path);
        std::exit(1);
    }
    std::ostringstream text;
    text << file.rdbuf();
    return parse_protocol(text.str());
}

}  // namespace

int main(int argc, char** argv) {
    if (argc >= 2 && std::string_view(argv[1]) == "demo") {
        std::fputs(kDemo, stdout);
        return 0;
    }
    if (argc >= 2 && (std::string_view(argv[1]) == "help" ||
                      std::string_view(argv[1]) == "--help" ||
                      std::string_view(argv[1]) == "-h")) {
        print_usage(argv[0], stdout);
        return 0;
    }
    if (argc < 3) {
        print_usage(argv[0], stderr);
        return 1;
    }
    const std::string_view command = argv[1];
    try {
        if (command == "family") {
            const std::vector<std::string> params(argv + 3, argv + argc);
            std::fputs(format_protocol(protocols::build_family(argv[2], params)).c_str(),
                       stdout);
            return 0;
        }
        const Protocol protocol = load(argv[2]);
        if (command == "info") {
            std::fputs(protocol.to_text().c_str(), stdout);
        } else if (command == "dot") {
            std::fputs(protocol.to_dot().c_str(), stdout);
        } else if (command == "verify") {
            if (argc < 4) {
                std::fprintf(stderr, "verify needs <eta>\n");
                return 1;
            }
            const AgentCount eta = std::strtoll(argv[3], nullptr, 10);
            const AgentCount max_input = argc > 4 ? std::strtoll(argv[4], nullptr, 10) : eta + 4;
            const Verifier verifier(protocol);
            const PredicateCheck check =
                verifier.check_predicate(Predicate::x_at_least(eta), 2, max_input);
            std::printf("x >= %lld on inputs 2..%lld: %s (%zu configurations explored)\n",
                        static_cast<long long>(eta), static_cast<long long>(max_input),
                        check.holds ? "CORRECT" : "WRONG", check.total_nodes);
            for (const auto& failure : check.failures) {
                std::printf("  input %lld: %s\n", static_cast<long long>(failure.input[0]),
                            failure.well_specified
                                ? (*failure.computed ? "computes 1" : "computes 0")
                                : "ill-specified");
            }
            return check.holds ? 0 : 2;
        } else if (command == "simulate") {
            if (argc < 4) {
                std::fprintf(stderr, "simulate needs <population>\n");
                return 1;
            }
            const AgentCount population = std::strtoll(argv[3], nullptr, 10);
            Rng rng(argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1);
            const Simulator simulator(protocol);
            const SimulationResult result = simulator.run_input(population, rng);
            std::printf("population %lld: %s, output %s, %llu interactions (%.1f parallel)\n",
                        static_cast<long long>(population),
                        result.converged ? "stabilised" : "timeout",
                        result.output ? (*result.output ? "1" : "0") : "mixed",
                        static_cast<unsigned long long>(result.interactions),
                        result.parallel_time);
            std::printf("final: %s\n",
                        result.final_config.to_string(protocol.state_names()).c_str());
        } else {
            std::fprintf(stderr, "unknown command '%s'; see '%s help'\n", argv[1], argv[0]);
            return 1;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
