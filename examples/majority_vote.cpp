// Majority voting with 4-state sensors.
//
//   $ ./majority_vote
//
// The classic population-protocol demo: anonymous sensors vote A or B and
// must agree whether A holds a strict majority.  Shows exhaustive
// verification over all small electorates and simulated accuracy at scale,
// including the near-tie regime where convergence is slowest.
#include <cstdio>

#include "protocols/majority.hpp"
#include "sim/simulator.hpp"
#include "verify/verifier.hpp"

int main() try {
    using namespace ppsc;

    const Protocol protocol = protocols::majority();
    std::printf("%s\n", protocol.to_text().c_str());

    // Exhaustive verification over every electorate with up to 10 voters.
    const Verifier verifier(protocol);
    const PredicateCheck check = verifier.check_predicate_all_tuples(Predicate::majority(), 10);
    std::printf("exhaustively verified on %zu electorates up to 10 voters: %s\n\n",
                check.inputs_checked, check.holds ? "CORRECT" : "WRONG");

    // Simulated elections.
    const Simulator simulator(protocol);
    std::printf("%6s %6s %9s %14s %8s\n", "A", "B", "expected", "parallel time", "verdict");
    struct Election {
        AgentCount a, b;
    };
    const Election elections[] = {{600, 400}, {510, 490}, {501, 499}, {500, 500}, {499, 501}};
    for (const auto& [a, b] : elections) {
        Rng rng(7);
        const AgentCount input[] = {a, b};
        SimulationOptions options;
        options.max_interactions = 200'000'000;
        const SimulationResult result =
            simulator.run(protocol.initial_config(input), rng, options);
        const char* verdict = "timeout";
        if (result.converged && result.output) verdict = *result.output ? "A wins" : "no A maj";
        std::printf("%6lld %6lld %9s %14.1f %8s\n", static_cast<long long>(a),
                    static_cast<long long>(b), a > b ? "A wins" : "no A maj",
                    result.parallel_time, verdict);
    }
    std::printf("\nnote: ties and near-ties converge much more slowly — the\n"
                "time/state trade-off that motivates the state-complexity question.\n");
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
