// Debugging a broken protocol with the exhaustive verifier.
//
//   $ ./verify_protocol
//
// A deliberately buggy threshold protocol (a careless "optimisation" of
// Example 2.1) is model-checked; the verifier pinpoints the failing input
// and produces a counterexample configuration.  The fixed protocol then
// verifies cleanly — the workflow used throughout this library's own test
// suite.  Finally a member of the double-exponential family from the
// follow-up paper is verified end to end, both exactly and in the
// two-phase screen-then-verify mode.
#include <cstdio>

#include "core/protocol.hpp"
#include "protocols/double_exp_threshold.hpp"
#include "verify/verifier.hpp"

using namespace ppsc;

namespace {

/// Buggy x >= 3: the author remembered "2+2 reaches the threshold" and a
/// cute "split a 2 back into 1+1" rule, but forgot the 2+1 rule.  Input 3
/// then cycles between {3·v1} and {v1, v0, v2} forever and stabilises to
/// the wrong answer.
Protocol buggy_threshold3() {
    ProtocolBuilder b;
    const StateId v0 = b.add_state("v0", 0);
    const StateId v1 = b.add_state("v1", 0);
    const StateId v2 = b.add_state("v2", 0);
    const StateId top = b.add_state("T", 1);
    b.set_input("x", v1);
    b.add_transition(v1, v1, v0, v2);    // 1+1 = 2
    b.add_transition(v2, v2, top, top);  // 2+2 >= 3
    b.add_transition(v2, v0, v1, v1);    // split a 2 (value-conserving)
    // BUG: missing v2,v1 -> T,T.
    for (const StateId y : {v0, v1, v2}) b.add_transition(top, y, top, top);
    return std::move(b).build();
}

/// The correct version: value conservation, capped at 3.
Protocol fixed_threshold3() {
    ProtocolBuilder b;
    const StateId v0 = b.add_state("v0", 0);
    const StateId v1 = b.add_state("v1", 0);
    const StateId v2 = b.add_state("v2", 0);
    const StateId top = b.add_state("T", 1);
    b.set_input("x", v1);
    b.add_transition(v1, v1, v0, v2);
    b.add_transition(v2, v1, top, top);
    b.add_transition(v2, v2, top, top);
    for (const StateId y : {v0, v1, v2}) b.add_transition(top, y, top, top);
    return std::move(b).build();
}

void report(const char* name, const Protocol& protocol) {
    const Verifier verifier(protocol);
    const PredicateCheck check = verifier.check_predicate(Predicate::x_at_least(3), 2, 9);
    std::printf("%s: %s\n", name, check.holds ? "verified correct" : "BROKEN");
    for (const InputVerdict& failure : check.failures) {
        std::printf("  input %lld: ", static_cast<long long>(failure.input[0]));
        if (!failure.well_specified) {
            std::printf("ill-specified (fair executions disagree)");
        } else {
            std::printf("computes %d, expected %d", *failure.computed,
                        failure.input[0] >= 3 ? 1 : 0);
        }
        if (failure.counterexample)
            std::printf("; counterexample %s",
                        failure.counterexample->to_string(protocol.state_names()).c_str());
        std::printf("\n");
    }
}

/// The double-exponential family: double_exp_threshold(1) decides
/// x ≥ 2^(2^1) = 4 with 2¹ + 3 = 5 states.  infer_threshold recovers η
/// from the verdict pattern alone; the two-phase overload screens each
/// input on the simulation fast path first and must agree exactly.
void report_family() {
    const Protocol protocol = protocols::double_exp_threshold(1);
    const Verifier verifier(protocol);
    const AgentCount max_input = 9;

    const auto exact = verifier.infer_threshold(max_input);
    const auto two_phase = verifier.infer_threshold(max_input, ScreeningOptions{});
    std::printf("double_exp(1)     : threshold x >= %lld (exact)%s\n",
                exact ? static_cast<long long>(*exact) : -1,
                exact == two_phase ? ", two-phase agrees" : ", TWO-PHASE DISAGREES");
}

}  // namespace

int main() try {
    report("buggy threshold-3 ", buggy_threshold3());
    report("fixed threshold-3 ", fixed_threshold3());
    report_family();
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
