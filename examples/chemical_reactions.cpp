// Population protocols as chemical reaction networks.
//
//   $ ./chemical_reactions
//
// The paper's introduction notes that population protocols are equivalent
// to chemical reaction networks: states are species, transitions are
// bimolecular reactions, and the number of states is the number of species
// a wet-lab implementation needs — the practical reason state complexity
// matters.  This example prints a protocol as a reaction system and traces
// species concentrations along one stochastic trajectory.
#include <cstdio>

#include "protocols/threshold.hpp"
#include "sim/simulator.hpp"

int main() try {
    using namespace ppsc;

    const Protocol protocol = protocols::collector_threshold(5);

    std::printf("reaction network for the x >= 5 detector (%zu species):\n",
                protocol.num_states());
    for (const Transition& t : protocol.transitions()) {
        std::printf("  %s + %s  ->  %s + %s\n",
                    protocol.state_name(t.pre1).c_str(), protocol.state_name(t.pre2).c_str(),
                    protocol.state_name(t.post1).c_str(), protocol.state_name(t.post2).c_str());
    }

    // One stochastic trajectory from 40 copies of the input species.
    const Simulator simulator(protocol);
    Config mixture = protocol.initial_config(40);
    Rng rng(2024);

    std::printf("\ntrajectory (counts per species, sampled every 40 interactions):\n%9s",
                "step");
    for (std::size_t q = 0; q < protocol.num_states(); ++q)
        std::printf(" %6s", protocol.state_name(static_cast<StateId>(q)).c_str());
    std::printf("\n");

    for (int step = 0; step <= 400; ++step) {
        if (step % 40 == 0) {
            std::printf("%9d", step);
            for (std::size_t q = 0; q < protocol.num_states(); ++q)
                std::printf(" %6lld",
                            static_cast<long long>(mixture[static_cast<StateId>(q)]));
            std::printf("\n");
            if (simulator.is_provably_stable(mixture)) break;
        }
        simulator.step(mixture, rng);
    }

    const auto output = protocol.consensus_output(mixture);
    std::printf("\nfinal consensus: %s\n",
                output ? (*output ? "threshold reached" : "below threshold") : "not yet settled");
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
