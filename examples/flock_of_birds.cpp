// Flock of birds: "are at least eta birds sick?"
//
//   $ ./flock_of_birds [eta]        (default eta = 1000)
//
// The motivating scenario of the threshold predicate literature (the name
// follows Blondin–Esparza–Jaax [12]): each sick bird carries a sensor with
// a few bits of state; sensors interact in pairs when birds meet; the flock
// must reach consensus on whether the number of sick birds reaches eta.
//
// This example contrasts the state budgets of the library's three
// leaderless constructions and simulates the succinct one at scale.
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "protocols/threshold.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) try {
    using namespace ppsc;

    AgentCount eta = 1000;
    if (argc > 1) {
        errno = 0;
        char* end = nullptr;
        // ppsc-lint: allow(R5) end pointer, full token, ERANGE and range are all checked on the next line
        const long long value = std::strtoll(argv[1], &end, 10);
        if (end == argv[1] || *end != '\0' || errno == ERANGE || value < 2 ||
            value > (1ll << 30)) {
            std::fprintf(stderr, "eta must be an integer in [2, 2^30], got '%s'\n", argv[1]);
            return 1;
        }
        eta = value;
    }

    std::printf("predicate: x >= %lld\n\n", static_cast<long long>(eta));
    std::printf("%-28s %10s\n", "construction", "states");
    std::printf("%-28s %10lld\n", "unary (Example 2.1 P_k)",
                static_cast<long long>(eta + 1));
    long long k = 0;
    while ((AgentCount{1} << (k + 1)) <= eta) ++k;
    std::printf("%-28s %10lld  (only for eta = 2^k)\n", "binary (Example 2.1 P'_k)", k + 2);
    std::printf("%-28s %10zu\n\n", "collector (O(log eta))",
                protocols::collector_threshold_states(eta));

    const Protocol protocol = protocols::collector_threshold(eta);
    const Simulator simulator(protocol);

    std::printf("simulating the collector protocol (seed 1):\n");
    std::printf("%10s %8s %14s %14s\n", "sick birds", "verdict", "interactions",
                "parallel time");
    for (const AgentCount population :
         {eta / 2, eta - 1, eta, eta + 1, 2 * eta, 10 * eta}) {
        if (population < 2) continue;
        Rng rng(1);
        SimulationOptions options;
        options.max_interactions = 400'000'000;
        const SimulationResult result = simulator.run_input(population, rng, options);
        const char* verdict = "timeout";
        if (result.converged && result.output) verdict = *result.output ? "sick!" : "healthy";
        std::printf("%10lld %8s %14llu %14.1f\n", static_cast<long long>(population), verdict,
                    static_cast<unsigned long long>(result.interactions),
                    result.parallel_time);
    }
    std::printf("\nexpected: 'sick!' exactly from %lld birds upward\n",
                static_cast<long long>(eta));
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
