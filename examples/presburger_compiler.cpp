// Compiling Presburger predicates to population protocols.
//
//   $ ./presburger_compiler
//
// Population protocols compute exactly the Presburger predicates ([8] in
// the paper).  This example compiles a few formulas, reports the state
// counts (the very quantity the paper's state-complexity question is
// about), and verifies each compiled protocol exhaustively.
#include <cstdio>

#include "protocols/presburger.hpp"
#include "verify/verifier.hpp"

int main() try {
    using namespace ppsc;

    struct Case {
        Predicate predicate;
        AgentCount max_population;
    };
    const Case cases[] = {
        {Predicate::threshold({1}, 3), 8},
        {Predicate::majority(), 7},
        {Predicate::modulo({1, 2}, 3, 1), 6},
        {Predicate::conjunction(Predicate::threshold({1}, 2), Predicate::modulo({1}, 2, 0)), 7},
        {Predicate::negation(Predicate::threshold({1, -1}, 1)), 6},
    };

    std::printf("%-42s %8s %10s %10s\n", "predicate", "states", "verified", "inputs");
    for (const auto& [predicate, max_population] : cases) {
        const Protocol protocol = protocols::compile_presburger(predicate);
        const Verifier verifier(protocol);
        const PredicateCheck check =
            verifier.check_predicate_all_tuples(predicate, max_population);
        std::printf("%-42s %8zu %10s %10zu\n", predicate.to_string().c_str(),
                    protocol.num_states(), check.holds ? "CORRECT" : "WRONG",
                    check.inputs_checked);
    }

    std::printf("\nthe compiler is correct but not succinct: products multiply state\n"
                "counts, while dedicated constructions (see flock_of_birds) reach the\n"
                "same predicates with exponentially fewer states — the gap the paper's\n"
                "lower bounds constrain.\n");
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
