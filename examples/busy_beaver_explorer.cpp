// Busy-beaver exploration: what is the largest threshold tiny protocols
// can count to?
//
//   $ ./busy_beaver_explorer [n]     (default n = 2; n = 3 takes ~a minute)
//
// Definition 1 of the paper: BB(n) = max { eta : some leaderless n-state
// protocol computes x >= eta }.  This example enumerates every
// deterministic n-state protocol up to state renaming, verifies each
// exhaustively, and prints the census — the experimental floor under the
// paper's Ω(2^n) lower bound and 2^((2n+2)!) upper bound.
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "bounds/paper_bounds.hpp"
#include "search/busy_beaver.hpp"

int main(int argc, char** argv) try {
    using namespace ppsc;

    std::size_t n = 2;
    if (argc > 1) {
        errno = 0;
        char* end = nullptr;
        const unsigned long long value = std::strtoull(argv[1], &end, 10);
        if (end == argv[1] || *end != '\0' || errno == ERANGE || value < 2 || value > 3) {
            std::fprintf(stderr, "n must be 2 or 3 (exhaustive search), got '%s'\n", argv[1]);
            return 1;
        }
        n = static_cast<std::size_t>(value);
    }

    search::SearchOptions options;
    options.max_input = n == 2 ? 10 : 12;
    const auto outcome = search::busy_beaver_search(n, options);

    std::printf("busy-beaver search over %zu-state protocols\n", n);
    std::printf("  candidate encodings : %llu\n",
                static_cast<unsigned long long>(outcome.enumerated));
    std::printf("  canonical survivors : %llu\n",
                static_cast<unsigned long long>(outcome.canonical));
    std::printf("  threshold protocols : %llu (verified on inputs 2..%lld)\n",
                static_cast<unsigned long long>(outcome.threshold_protocols),
                static_cast<long long>(options.max_input));
    std::printf("\n  eta   #protocols computing x >= eta\n");
    for (const auto& [eta, count] : outcome.eta_histogram)
        std::printf("  %3lld   %llu\n", static_cast<long long>(eta),
                    static_cast<unsigned long long>(count));

    std::printf("\nempirical BB(%zu) = %lld; witness:\n%s\n", n,
                static_cast<long long>(outcome.best_eta), outcome.best_protocol_text.c_str());

    const auto lower = bounds::busy_beaver_lower(n);
    std::printf("construction lower bound for BB(%zu): %lld (binary family: %lld)\n", n,
                static_cast<long long>(lower.best()), static_cast<long long>(lower.binary_eta));
    std::printf("Theorem 5.9 upper bound: %s\n", bounds::theta(n).to_string().c_str());
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
