// Busy-beaver exploration: what is the largest threshold tiny protocols
// can count to?
//
//   $ ./busy_beaver_explorer [n]     (default n = 2; n = 3 takes ~a minute)
//
// Definition 1 of the paper: BB(n) = max { eta : some leaderless n-state
// protocol computes x >= eta }.  This example enumerates every
// deterministic n-state protocol up to state renaming, verifies each
// exhaustively, and prints the census — the experimental floor under the
// paper's Ω(2^n) lower bound and 2^((2n+2)!) upper bound.
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "bounds/paper_bounds.hpp"
#include "search/busy_beaver.hpp"

int main(int argc, char** argv) try {
    using namespace ppsc;

    std::size_t n = 2;
    if (argc > 1) {
        errno = 0;
        char* end = nullptr;
        // ppsc-lint: allow(R5) end pointer, full token, ERANGE and range are all checked on the next line
        const unsigned long long value = std::strtoull(argv[1], &end, 10);
        if (end == argv[1] || *end != '\0' || errno == ERANGE || value < 2 || value > 3) {
            std::fprintf(stderr, "n must be 2 or 3 (exhaustive search), got '%s'\n", argv[1]);
            return 1;
        }
        n = static_cast<std::size_t>(value);
    }

    search::SearchOptions options;
    options.max_input = n == 2 ? 10 : 12;
    // Two-phase verification: each canonical candidate is screened on the
    // simulation fast path first; only survivors pay for exact graphs.
    // The results are identical to a screen-free run by construction.
    options.screen = true;
    options.screening.runs = 1;
    options.screening.max_interactions = 1'500;
    const auto outcome = search::busy_beaver_search(n, options);

    std::printf("busy-beaver search over %zu-state protocols\n", n);
    std::printf("  candidate encodings : %llu\n",
                static_cast<unsigned long long>(outcome.enumerated));
    std::printf("  canonical survivors : %llu\n",
                static_cast<unsigned long long>(outcome.canonical));
    std::printf("  screened out        : %llu (refuted by simulation alone)\n",
                static_cast<unsigned long long>(outcome.screened_out));
    std::printf("  threshold protocols : %llu (verified on inputs 2..%lld)\n",
                static_cast<unsigned long long>(outcome.threshold_protocols),
                static_cast<long long>(options.max_input));
    std::printf("\n  eta   #protocols computing x >= eta\n");
    for (const auto& [eta, count] : outcome.eta_histogram)
        std::printf("  %3lld   %llu\n", static_cast<long long>(eta),
                    static_cast<unsigned long long>(count));

    std::printf("\nempirical BB(%zu) = %lld; witness:\n%s\n", n,
                static_cast<long long>(outcome.best_eta), outcome.best_protocol_text.c_str());

    // Place the measurement between the paper's theorems: it must reach the
    // constructive Ω(2^n) witnesses and sit below the ϑ(n) upper bound.  A
    // measurement below the constructions flags an incomplete search.
    const auto bracket = bounds::busy_beaver_bracket(n, outcome.best_eta);
    std::printf("construction lower bound for BB(%zu): %lld — measurement %s it\n", n,
                static_cast<long long>(bracket.construction_lower),
                bracket.reaches_construction ? "reaches" : "FALLS SHORT OF");
    std::printf("Theorem 5.9 upper bound: %s — measurement %s\n",
                bracket.upper.to_string().c_str(),
                bracket.below_upper ? "respects it" : "EXCEEDS IT");
    return bracket.reaches_construction && bracket.below_upper ? 0 : 1;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
