// Quickstart: build a protocol, verify it exhaustively, simulate it.
//
//   $ ./quickstart
//
// Walks through the three core workflows of the library on the paper's
// central predicate family x >= eta:
//   1. construct a succinct O(log eta) threshold protocol;
//   2. verify it exhaustively for all small inputs (fair semantics);
//   3. run the random scheduler on a larger population.
#include <cstdio>

#include "protocols/threshold.hpp"
#include "sim/simulator.hpp"
#include "verify/verifier.hpp"

int main() try {
    using namespace ppsc;

    constexpr AgentCount eta = 21;

    // 1. Construct.  collector_threshold builds a leaderless protocol for
    //    x >= eta with ~2·log2(eta) states (Example 2.1 / [12] style).
    const Protocol protocol = protocols::collector_threshold(eta);
    std::printf("protocol for x >= %lld: %zu states, %zu transitions\n",
                static_cast<long long>(eta), protocol.num_states(),
                protocol.num_transitions());

    // 2. Verify.  The verifier enumerates every configuration reachable
    //    from IC(i) and checks that all fair executions stabilise to the
    //    right answer — exact, for each checked input.
    const Verifier verifier(protocol);
    const PredicateCheck check =
        verifier.check_predicate(Predicate::x_at_least(eta), 2, eta + 4);
    std::printf("exhaustive verification on inputs 2..%lld: %s (%zu configurations)\n",
                static_cast<long long>(eta + 4), check.holds ? "CORRECT" : "WRONG",
                check.total_nodes);

    // 3. Simulate.  Random pairwise scheduling; parallel time is
    //    interactions divided by population.
    const Simulator simulator(protocol);
    for (const AgentCount population : {eta - 1, eta, 4 * eta, 40 * eta}) {
        Rng rng(42);
        const SimulationResult result = simulator.run_input(population, rng);
        std::printf("population %5lld: output %s after %8llu interactions "
                    "(%.1f parallel time)\n",
                    static_cast<long long>(population),
                    result.output ? (*result.output ? "1" : "0") : "?",
                    static_cast<unsigned long long>(result.interactions),
                    result.parallel_time);
    }
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
