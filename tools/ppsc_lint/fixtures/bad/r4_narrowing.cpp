// Fixture: unchecked narrowing out of the __int128 weight lanes.
// ppsc-lint: pretend(src/support/weights_bad.cpp)
#include <cstdint>

using Int128 = __int128;

std::int64_t lose_bits(__int128 weight) {
    const __int128 doubled = weight * 2;
    const auto lo = static_cast<std::uint64_t>(doubled);  // expect(R4)
    (void)lo;
    return static_cast<std::int64_t>(weight);  // expect(R4)
}
