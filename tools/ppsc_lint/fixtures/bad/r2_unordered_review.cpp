// Fixture: the same iteration outside the trajectory directories is a
// "review" finding — still blocking until suppressed with a proof or
// rewritten as a sorted extraction.
// ppsc-lint: pretend(src/verify/order_review.cpp)
#include <unordered_set>
#include <vector>

int review() {
    std::unordered_set<int> pool{1, 2, 3};
    int sum = 0;
    for (const int v : pool) sum += v;  // expect(R2)
    return sum;
}
