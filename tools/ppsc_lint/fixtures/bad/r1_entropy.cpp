// Fixture: every entropy source R1 guards against, in a trajectory dir.
// ppsc-lint: pretend(src/sim/entropy_violations.cpp)
#include <chrono>
#include <cstdlib>
#include <random>

void violations() {
    std::random_device rd;                               // expect(R1)
    std::mt19937 gen(rd());                              // expect(R1)
    srand(42);                                           // expect(R1)
    int r = rand();                                      // expect(R1)
    auto t = time(nullptr);                              // expect(R1)
    auto seed = std::chrono::steady_clock::now().time_since_epoch().count();  // expect(R1)
    (void)gen;
    (void)r;
    (void)t;
    (void)seed;
}
