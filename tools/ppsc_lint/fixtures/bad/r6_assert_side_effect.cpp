// Fixture: side-effecting expressions inside assertion macros.  Every one
// of these mutates state iff the assertion is compiled in, so behaviour
// diverges between debug and NDEBUG builds.
// ppsc-lint: pretend(src/sim/assert_effects.cpp)
#include <cassert>
#include <cstddef>

#include "support/check.hpp"

void violations(int* counter, std::size_t n) {
    std::size_t budget = n;
    int mask = 0;
    assert((*counter)++ < 100);                        // expect(R6)
    assert(--budget > 0);                              // expect(R6)
    PPSC_DASSERT(budget -= 1);                         // expect(R6)
    PPSC_CHECK(mask |= 2);                             // expect(R6)
    PPSC_CHECK_MSG(mask <<= 1, "shifted");             // expect(R6)
    assert((mask = 3) != 0);                           // expect(R6)
    // Multi-line argument lists are tracked across the break.
    PPSC_CHECK(budget > 0 &&
               budget-- < n);                          // expect(R6)
    (void)mask;
}
