// Fixture: floating-point members in a serialized-state struct.
// ppsc-lint: pretend(src/sim/snapshot_bad.hpp)
#include <cstdint>

// ppsc-lint: serialized-state
struct BadSnapshot {
    std::uint64_t interactions = 0;
    double mean_time = 0.0;  // expect(R3)
    float ratio = 0.0f;      // expect(R3)
};
