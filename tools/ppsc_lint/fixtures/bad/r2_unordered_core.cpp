// Fixture: iteration over unordered containers on a trajectory-affecting
// path (severity "error" — hash order would leak into trajectories).
// ppsc-lint: pretend(src/core/order_leak.cpp)
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

int leak() {
    std::unordered_map<std::string, int> table;
    std::unordered_set<std::uint64_t> seen;
    table["a"] = 1;
    int sum = 0;
    for (const auto& [key, value] : table) sum += value;  // expect(R2)
    for (const auto& v : seen) sum += static_cast<int>(v);  // expect(R2)
    auto it = table.begin();  // expect(R2)
    (void)it;
    return sum;
}
