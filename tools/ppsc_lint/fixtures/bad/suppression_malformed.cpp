// Fixture: suppressions without a substantive reason do NOT suppress and
// are themselves findings (R0) — the reason is the audit trail.
// ppsc-lint: pretend(src/support/suppress_bad.cpp)
#include <cstdint>

std::int64_t narrow(__int128 weight) {
    // The next two lines: a reason-free allow is malformed (R0 on the
    // comment line) and the R4 finding below it survives.
    // expect-below(R0)
    // ppsc-lint: allow(R4)
    const auto a = static_cast<std::int64_t>(weight);  // expect(R4)
    // A too-short reason is equally malformed.
    // expect-below(R0)
    // ppsc-lint: allow(R4) ok
    const auto b = static_cast<std::int64_t>(weight);  // expect(R4)
    return a + b;
}
