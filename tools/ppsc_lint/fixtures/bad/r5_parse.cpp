// Fixture: raw parse calls outside a validated-parser helper.
// ppsc-lint: pretend(src/core/parse_bad.cpp)
#include <cstdlib>
#include <string>

long parse_sloppy(const std::string& text) {
    long a = std::atol(text.c_str());          // expect(R5)
    long b = std::strtol(text.c_str(), nullptr, 10);  // expect(R5)
    long c = std::stol(text);                  // expect(R5)
    return a + b + c;
}
