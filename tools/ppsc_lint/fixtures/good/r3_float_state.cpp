// Fixture: serialized-state structs done right — integral images for the
// persisted layout; methods may mention double freely (the rule is about
// the persisted members, not the API); unmarked structs are out of scope.
// ppsc-lint: pretend(src/sim/snapshot_good.hpp)
#include <bit>
#include <cstdint>

// ppsc-lint: serialized-state
struct GoodSnapshot {
    std::uint64_t interactions = 0;
    std::uint64_t mean_bits = 0;  // IEEE-754 image of the mean, bit-exact

    double mean() const { return std::bit_cast<double>(mean_bits); }
    void set_mean(double m) { mean_bits = std::bit_cast<std::uint64_t>(m); }
};

// ppsc-lint: serialized-state
struct SuppressedSnapshot {
    // ppsc-lint: allow(R3) serialized as an IEEE-754 bit image in u64 — bit-exact round trip
    double mean = 0.0;
};

// Not marked: scratch structs may hold doubles.
struct EphemeralRow {
    double throughput = 0.0;
};
