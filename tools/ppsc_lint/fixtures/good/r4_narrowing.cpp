// Fixture: the sanctioned ways out of the __int128 weight lanes.
// ppsc-lint: pretend(src/support/weights_good.cpp)
#include <cstdint>

#include "support/check.hpp"

std::int64_t narrow_checked(__int128 weight) {
    // checked_narrow round-trips and sign-checks; out-of-range throws.
    return ppsc::checked_narrow<std::int64_t>(weight);
}

__int128 widen(std::int64_t count) {
    // Widening casts into __int128 are always safe.
    return static_cast<__int128>(count) * count;
}

std::int64_t narrow_suppressed(__int128 weight) {
    // ppsc-lint: allow(R4) weight < 2^40 by the population cap argued in the caller
    return static_cast<std::int64_t>(weight);
}
