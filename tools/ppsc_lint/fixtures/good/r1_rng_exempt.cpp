// Fixture: src/support/rng.hpp is the one place entropy machinery may
// live (it wraps it behind explicit seeding).
// ppsc-lint: pretend(src/support/rng.hpp)
#include <random>

std::mt19937 make_engine(unsigned seed) { return std::mt19937(seed); }
