// Fixture: parse calls inside a validated-parser helper are the sanctioned
// pattern — the helper checks full-token consumption and throws typed
// errors, so the raw call inside it is the implementation detail.
// ppsc-lint: pretend(src/core/parse_good.cpp)
#include <stdexcept>
#include <string>

// ppsc-lint: validated-parser (full-token check below: pos must consume the entire string)
long parse_strict(const std::string& text) {
    std::size_t pos = 0;
    const long value = std::stol(text, &pos);
    if (pos != text.size()) throw std::invalid_argument("trailing junk in '" + text + "'");
    return value;
}

long outside_the_helper(const std::string& text) {
    // Calls to the *helper* are of course fine anywhere.
    return parse_strict(text);
}
