// Fixture: the sanctioned unordered-container patterns — lookup-only use,
// sorted extraction before iteration, and ordered containers.
// ppsc-lint: pretend(src/core/order_clean.cpp)
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

int clean() {
    std::unordered_map<std::string, int> table;
    table["a"] = 1;
    // Lookup-only: no iteration, no order dependence.
    const auto it = table.find("a");
    int sum = it != table.end() ? it->second : 0;
    // Sorted extraction: copy keys out, sort, then iterate the vector.
    std::vector<std::string> keys;
    keys.reserve(table.size());
    for (std::size_t i = 0; i < keys.size(); ++i) sum += static_cast<int>(keys[i].size());
    std::sort(keys.begin(), keys.end());
    for (const auto& key : keys) sum += static_cast<int>(key.size());
    // Ordered containers iterate deterministically.
    std::map<std::string, int> ordered(table.begin(), table.end());  // ppsc-lint: allow(R2) ordered-map constructor consumes the range order-insensitively (values are re-sorted by key)
    for (const auto& [key, value] : ordered) sum += value;
    return sum;
}
