// Fixture: assertion patterns R6 must NOT flag — comparisons, hoisted
// mutations, operators outside any assertion, lambda default captures,
// and a suppressed intentional mutation.
// ppsc-lint: pretend(src/sim/assert_clean.cpp)
#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

#include "support/check.hpp"

void clean(std::vector<int>& values, std::size_t n) {
    // Comparison operators sharing characters with assignments are fine.
    assert(values.size() <= n);
    PPSC_CHECK(n >= 1);
    PPSC_DASSERT(!values.empty() && values.front() != -1);
    PPSC_CHECK_MSG(values.size() == n || n == 0, "size mismatch");
    // Hoist the mutation, then assert on the result.
    const std::size_t next = n - 1;
    assert(next < n);
    // Mutations outside assertions are none of R6's business.
    std::size_t budget = n;
    --budget;
    budget += 2;
    values[0] = static_cast<int>(budget);
    // Lambda default capture inside an assertion is not a mutation.
    assert(std::all_of(values.begin(), values.end(), [=](int v) { return v <= static_cast<int>(n); }));
    // Multi-line argument lists with pure contents stay clean.
    PPSC_CHECK(budget > 0 &&
               budget <= n + 2);
    // Intentional side effect, audited and suppressed.
    int probes = 0;
    // ppsc-lint: allow(R6) probe counter exists only to be mutated here; both builds tolerate either value
    assert(++probes > 0);
    (void)probes;
}
