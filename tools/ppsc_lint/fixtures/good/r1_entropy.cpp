// Fixture: entropy-adjacent code that must NOT be flagged.
// ppsc-lint: pretend(src/sim/clean_timing.cpp)
#include <chrono>
#include <cstdint>

std::uint64_t elapsed_time_seconds();

void clean() {
    // Wall-clock *measurement* is fine — only clock-derived seeds break
    // reproducibility.
    const auto start = std::chrono::steady_clock::now();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    (void)elapsed;
    // Identifiers merely containing the forbidden tokens are not matches.
    const std::uint64_t elapsed_time = elapsed_time_seconds();
    const std::uint64_t operand = elapsed_time;
    (void)operand;
    // Member calls named time() are not the libc entropy call.
    struct Timer {
        double time() const { return 0.0; }
    } timer;
    (void)timer.time();
}
