// Fixture: well-formed suppressions (rule id + substantive reason) on the
// same line or the line above are honored.
// ppsc-lint: pretend(src/core/suppress_good.cpp)
#include <cstdint>
#include <unordered_set>

std::int64_t suppressed(__int128 weight) {
    // ppsc-lint: allow(R4) weight is bounded by the caller's population cap of 2^40
    const auto a = static_cast<std::int64_t>(weight);
    const auto b = static_cast<std::int64_t>(weight);  // ppsc-lint: allow(R4) same bound as above, same caller
    std::unordered_set<int> pool{1, 2};
    int sum = 0;
    // ppsc-lint: allow(R2) summation is commutative — the fold is order-insensitive
    for (const int v : pool) sum += v;
    return a + b + sum;
}
